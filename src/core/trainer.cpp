#include "core/trainer.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "core/model_store.h"
#include "hmm/baum_welch.h"
#include "hmm/online_filter.h"
#include "util/stats.h"

namespace cs2p {
namespace {

/// Floor for one-step log-likelihoods: a degenerate update reports -inf,
/// which would let a single underflow dominate any mean/median. -50 nats is
/// already "the model assigns this observation essentially zero mass".
constexpr double kLogLikelihoodFloor = -50.0;

/// Denominator floor for relative horizon error (Mbps).
constexpr double kThroughputFloor = 0.01;

double clamped_log_likelihood(double ll) noexcept {
  if (std::isnan(ll)) return kLogLikelihoodFloor;
  return std::max(ll, kLogLikelihoodFloor);
}

std::string sanitize_label(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw)
    out += std::isprint(static_cast<unsigned char>(c)) ? c : '_';
  return out;
}

double sequence_mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace

std::string_view canary_reject_reason_name(CanaryRejectReason reason) noexcept {
  switch (reason) {
    case CanaryRejectReason::kTrainingFailed: return "TRAINING_FAILED";
    case CanaryRejectReason::kInsufficientData: return "INSUFFICIENT_DATA";
    case CanaryRejectReason::kLogLikelihood: return "LOG_LIKELIHOOD";
    case CanaryRejectReason::kHorizonError: return "HORIZON_ERROR";
  }
  return "UNKNOWN";
}

ContinuousTrainer::MetricHandles ContinuousTrainer::MetricHandles::create(
    obs::MetricsRegistry& registry) {
  MetricHandles m;
  m.ingested = &registry.counter("cs2p_trainer_sessions_ingested_total");
  m.dropped_no_cluster = &registry.counter("cs2p_trainer_sessions_dropped_total",
                                           {{"reason", "no_cluster"}});
  m.dropped_short = &registry.counter("cs2p_trainer_sessions_dropped_total",
                                      {{"reason", "short"}});
  m.retrains = &registry.counter("cs2p_trainer_retrains_total");
  m.accepts = &registry.counter("cs2p_trainer_canary_accept_total");
  m.rejects_total = &registry.counter("cs2p_trainer_canary_reject_total");
  for (int r = 0; r < 4; ++r) {
    m.rejects_by_reason[r] = &registry.counter(
        "cs2p_trainer_canary_reject_by_reason_total",
        {{"reason", std::string(canary_reject_reason_name(
                        static_cast<CanaryRejectReason>(r)))}});
  }
  m.rollbacks = &registry.counter("cs2p_trainer_rollback_total");
  m.generation = &registry.gauge("cs2p_trainer_generation");
  m.model_age = &registry.gauge("cs2p_trainer_model_age_seconds");
  m.clusters_tracked = &registry.gauge("cs2p_trainer_clusters_tracked");
  m.retrain_lag = &registry.histogram("cs2p_trainer_retrain_lag_seconds",
                                      obs::default_duration_buckets_seconds());
  return m;
}

ContinuousTrainer::ContinuousTrainer(std::shared_ptr<const Cs2pEngine> engine,
                                     TrainerConfig config)
    : config_(config),
      engine_(std::move(engine)),
      rng_(config.seed),
      metrics_(engine_ && engine_->config().metrics
                   ? engine_->config().metrics
                   : std::make_shared<obs::MetricsRegistry>()),
      m_(MetricHandles::create(*metrics_)) {
  if (!engine_)
    throw std::invalid_argument("ContinuousTrainer: null engine");
  if (config_.reservoir_size == 0 || config_.holdout_stride == 0 ||
      config_.horizon == 0)
    throw std::invalid_argument("ContinuousTrainer: zero-sized config field");
  incumbent_checksum_ = snapshot_checksum(serialize_engine(*engine_));
  last_swap_ = Clock::now();
  m_.generation->set(static_cast<double>(engine_->lineage().generation));
}

ContinuousTrainer::~ContinuousTrainer() { stop(); }

void ContinuousTrainer::set_publish(TrainerPublishFn publish) {
  std::scoped_lock lock(publish_mutex_);
  publish_ = std::move(publish);
}

std::shared_ptr<const Cs2pEngine> ContinuousTrainer::engine() const {
  std::scoped_lock lock(mutex_);
  return engine_;
}

void ContinuousTrainer::set_engine(std::shared_ptr<const Cs2pEngine> engine,
                                   const std::string& snapshot_bytes) {
  if (!engine) throw std::invalid_argument("ContinuousTrainer: null engine");
  // Exclude an in-flight run_once so the external reload and a trainer swap
  // cannot interleave adoption.
  std::scoped_lock train_lock(train_mutex_);
  std::scoped_lock lock(mutex_);
  engine_ = std::move(engine);
  incumbent_checksum_ = snapshot_checksum(snapshot_bytes);
  last_swap_ = Clock::now();
  m_.generation->set(static_cast<double>(engine_->lineage().generation));
  // The reload rebuilt every cluster from scratch: probations guarded models
  // of a superseded lineage, movement baselines restart from the reservoirs.
  for (auto& [key, state] : clusters_) {
    (void)key;
    state.probation = {};
    state.model_born = last_swap_;
  }
}

ContinuousTrainer::ClusterState& ContinuousTrainer::state_for(
    std::size_t candidate_id, const std::string& bucket_key) {
  const std::string key = std::to_string(candidate_id) + ":" + bucket_key;
  auto it = clusters_.find(key);
  if (it != clusters_.end()) return it->second;

  ClusterState state;
  state.candidate_id = candidate_id;
  state.bucket_key = bucket_key;
  state.model_born = last_swap_;
  if (const Cluster* cluster = engine_->find_cluster(candidate_id, bucket_key)) {
    state.baseline_mean = cluster->average_median;
    state.baseline_set = true;
  }
  const std::string label = sanitize_label(key);
  state.generation_gauge = &metrics_->gauge("cs2p_trainer_cluster_generation",
                                            {{"cluster", label}});
  state.age_gauge = &metrics_->gauge("cs2p_trainer_cluster_model_age_seconds",
                                     {{"cluster", label}});
  auto [slot, inserted] = clusters_.emplace(key, std::move(state));
  if (inserted)
    m_.clusters_tracked->set(static_cast<double>(clusters_.size()));
  return slot->second;
}

void ContinuousTrainer::ingest(const SessionFeatures& features,
                               double start_hour,
                               const std::vector<double>& observations) {
  // Sample-wise sanitization mirrors the serving-side ObservationSanitizer:
  // a single NaN must not poison a reservoir entry.
  std::vector<double> clean;
  clean.reserve(observations.size());
  for (double w : observations)
    if (std::isfinite(w) && w >= 0.0) clean.push_back(w);
  if (clean.size() < config_.min_sequence_epochs) {
    m_.dropped_short->inc();
    return;
  }

  std::shared_ptr<const Cs2pEngine> engine;
  {
    std::scoped_lock lock(mutex_);
    engine = engine_;
  }
  const SelectionResult selection =
      engine->selector().select(features, start_hour);
  if (!selection.found) {
    m_.dropped_no_cluster->inc();
    return;
  }
  const std::string bucket_key =
      engine->cluster_index()
          .index_for(selection.candidate_id)
          .bucket_key_for(features, start_hour);
  const double session_mean = sequence_mean(clean);

  std::scoped_lock lock(mutex_);
  ClusterState& state = state_for(selection.candidate_id, bucket_key);

  // Reservoir sampling: every completed session has an equal chance of
  // being in the training window, however long the cluster has streamed.
  if (state.reservoir.size() < config_.reservoir_size) {
    state.reservoir.push_back(std::move(clean));
  } else {
    const std::uint64_t j = rng_.uniform_index(state.seen + 1);
    if (j < config_.reservoir_size)
      state.reservoir[static_cast<std::size_t>(j)] = std::move(clean);
  }
  ++state.seen;

  ++state.new_since_train;
  state.recent_sum += session_mean;
  if (!state.baseline_set) {
    // No offline cluster to anchor against: the first batch of live traffic
    // becomes the baseline (and is itself retrain-eligible).
    if (state.new_since_train >= config_.min_new_sessions) {
      state.baseline_mean = state.recent_sum /
                            static_cast<double>(state.new_since_train);
      state.baseline_set = true;
      if (!state.dirty) {
        state.dirty = true;
        state.dirty_since = Clock::now();
      }
    }
  } else if (state.new_since_train >= config_.min_new_sessions) {
    const double recent_mean =
        state.recent_sum / static_cast<double>(state.new_since_train);
    const double base = std::max(state.baseline_mean, kThroughputFloor);
    if (std::abs(recent_mean - state.baseline_mean) >
        config_.stat_shift_fraction * base) {
      if (!state.dirty) {
        state.dirty = true;
        state.dirty_since = Clock::now();
      }
    }
  }
  m_.ingested->inc();
}

ContinuousTrainer::CanaryScore ContinuousTrainer::score_model(
    const GaussianHmm& model,
    const std::vector<std::vector<double>>& holdout) const {
  std::vector<double> per_sequence_ll;
  std::vector<double> horizon_errors;
  per_sequence_ll.reserve(holdout.size());
  for (const auto& sequence : holdout) {
    OnlineHmmFilter filter(model, PredictionRule::kMleState);
    double ll_sum = 0.0;
    for (std::size_t t = 0; t < sequence.size(); ++t) {
      filter.observe(sequence[t]);
      ll_sum += clamped_log_likelihood(filter.last_log_likelihood());
      // After observing epoch t, predict(h) forecasts epoch t + h.
      const std::size_t target = t + config_.horizon;
      if (target < sequence.size()) {
        const double predicted = filter.predict(config_.horizon);
        const double actual = sequence[target];
        horizon_errors.push_back(std::abs(predicted - actual) /
                                 std::max(actual, kThroughputFloor));
      }
    }
    per_sequence_ll.push_back(ll_sum / static_cast<double>(sequence.size()));
  }

  CanaryScore score;
  // Median, not mean: a poisoned minority of holdout sequences would drag a
  // mean toward whatever cover-everything model the poison trained, but
  // cannot move the median past the clean majority.
  score.median_log_likelihood = median(per_sequence_ll);
  if (!horizon_errors.empty()) {
    score.median_horizon_error = median(horizon_errors);
    score.has_horizon = true;
  }
  return score;
}

bool ContinuousTrainer::swap_cluster_model(ClusterState& state,
                                           const GaussianHmm* model,
                                           Clock::time_point now) {
  std::shared_ptr<const Cs2pEngine> base;
  std::uint64_t parent_checksum = 0;
  {
    std::scoped_lock lock(mutex_);
    base = engine_;
    parent_checksum = incumbent_checksum_;
  }

  EngineRestoreData data;
  data.global_initial = base->global_initial();
  data.global_hmm = base->global_hmm();
  data.selector_table = base->selector().error_table();
  data.cluster_models = base->export_cluster_models();
  auto entry = std::find_if(
      data.cluster_models.begin(), data.cluster_models.end(),
      [&state](const ClusterModelEntry& e) {
        return e.candidate_id == state.candidate_id &&
               e.bucket_key == state.bucket_key;
      });
  if (model != nullptr) {
    if (entry != data.cluster_models.end()) {
      entry->hmm = *model;
    } else {
      data.cluster_models.push_back(
          ClusterModelEntry{state.candidate_id, state.bucket_key, *model});
    }
  } else if (entry != data.cluster_models.end()) {
    data.cluster_models.erase(entry);
  }
  data.lineage.generation = base->lineage().generation + 1;
  data.lineage.parent_checksum = parent_checksum;

  Cs2pConfig config = base->config();
  config.metrics = metrics_;
  std::shared_ptr<const Cs2pEngine> fresh;
  try {
    fresh = std::make_shared<Cs2pEngine>(base->training(), std::move(config),
                                         std::move(data));
  } catch (const std::exception&) {
    // Defensive: every input came from a validated engine, but a swap that
    // cannot construct must never take the incumbent down with it.
    return false;
  }
  const std::string bytes = serialize_engine(*fresh);

  TrainerPublishFn publish;
  {
    std::scoped_lock lock(publish_mutex_);
    publish = publish_;
  }
  if (publish && !publish(fresh, bytes)) return false;

  {
    std::scoped_lock lock(mutex_);
    engine_ = fresh;
    incumbent_checksum_ = snapshot_checksum(bytes);
    last_swap_ = now;
  }
  m_.generation->set(static_cast<double>(fresh->lineage().generation));
  return true;
}

void ContinuousTrainer::retrain_cluster(ClusterState& state,
                                        Clock::time_point now) {
  ClusterModelView incumbent;
  std::vector<std::vector<double>> train_set, holdout;
  Clock::time_point dirty_since;
  {
    std::scoped_lock lock(mutex_);
    dirty_since = state.dirty_since;
    for (std::size_t i = 0; i < state.reservoir.size(); ++i) {
      if (i % config_.holdout_stride == 0)
        holdout.push_back(state.reservoir[i]);
      else
        train_set.push_back(state.reservoir[i]);
    }
    // The attempt consumes the movement window whatever its outcome; the
    // next verdict comes from fresh sessions, not a replay of these.
    state.new_since_train = 0;
    state.recent_sum = 0.0;
    state.dirty = false;
    incumbent =
        engine_->cluster_model_view(state.candidate_id, state.bucket_key);
  }

  const auto reject = [&](CanaryRejectReason reason) {
    m_.rejects_total->inc();
    m_.rejects_by_reason[static_cast<int>(reason)]->inc();
    std::scoped_lock lock(mutex_);
    state.last_reject = reason;
  };

  if (train_set.size() < 2 || holdout.empty()) {
    reject(CanaryRejectReason::kInsufficientData);
    return;
  }

  m_.retrains->inc();
  std::shared_ptr<const Cs2pEngine> engine;
  {
    std::scoped_lock lock(mutex_);
    engine = engine_;
  }
  GaussianHmm candidate;
  try {
    const Cs2pConfig& config = engine->config();
    candidate = config.trainer ? config.trainer(train_set, config.hmm).model
                               : train_hmm(train_set, config.hmm).model;
  } catch (const std::exception&) {
    reject(CanaryRejectReason::kTrainingFailed);
    return;
  }

  const CanaryScore candidate_score = score_model(candidate, holdout);
  const CanaryScore incumbent_score = score_model(incumbent.hmm, holdout);
  if (candidate_score.median_log_likelihood <
      incumbent_score.median_log_likelihood + config_.canary_margin) {
    reject(CanaryRejectReason::kLogLikelihood);
    return;
  }
  if (candidate_score.has_horizon && incumbent_score.has_horizon &&
      candidate_score.median_horizon_error >
          incumbent_score.median_horizon_error *
                  (1.0 + config_.horizon_tolerance) +
              1e-9) {
    reject(CanaryRejectReason::kHorizonError);
    return;
  }

  // Canary won: swap the candidate in and open its probation window.
  double new_baseline = 0.0;
  for (const auto& sequence : train_set)
    new_baseline += sequence_mean(sequence);
  new_baseline /= static_cast<double>(train_set.size());

  if (!swap_cluster_model(state, &candidate, now)) return;

  m_.accepts->inc();
  m_.retrain_lag->observe(
      std::chrono::duration<double>(now - dirty_since).count());
  std::scoped_lock lock(mutex_);
  state.baseline_mean = new_baseline;
  state.baseline_set = true;
  state.last_reject.reset();
  ++state.generation;
  state.model_born = now;
  state.probation.active = true;
  state.probation.parent = std::move(incumbent);
  state.probation.deadline =
      now + std::chrono::milliseconds(config_.probation_ms);
  state.generation_gauge->set(static_cast<double>(state.generation));
}

void ContinuousTrainer::resolve_probation(ClusterState& state,
                                          Clock::time_point now) {
  ClusterModelView parent;
  {
    std::scoped_lock lock(mutex_);
    if (!state.probation.active) return;
    const Cluster* cluster =
        engine_->find_cluster(state.candidate_id, state.bucket_key);
    const bool tripped = cluster != nullptr && engine_->cluster_drifted(cluster);
    if (!tripped) {
      if (now >= state.probation.deadline) {
        // Survived probation: the generation is trusted, backoff resets.
        state.probation = {};
        state.backoff_ms = 0;
      }
      return;
    }
    parent = state.probation.parent;
  }

  // Drift quorum tripped inside the probation window: re-swap the parent
  // generation (lineage moves forward — a rollback is a new generation whose
  // model happens to be the grandparent's) and back off this cluster.
  const bool swapped = swap_cluster_model(
      state, parent.cluster_specific ? &parent.hmm : nullptr, now);
  if (!swapped) return;  // publish vetoed; retry on the next pass

  m_.rollbacks->inc();
  std::scoped_lock lock(mutex_);
  state.probation = {};
  ++state.generation;
  state.model_born = now;
  state.backoff_ms = state.backoff_ms == 0
                         ? config_.backoff_initial_ms
                         : std::min(state.backoff_ms * 2, config_.backoff_max_ms);
  state.backoff_until = now + std::chrono::milliseconds(state.backoff_ms);
  state.generation_gauge->set(static_cast<double>(state.generation));
}

void ContinuousTrainer::update_age_gauges(Clock::time_point now) {
  std::scoped_lock lock(mutex_);
  m_.model_age->set(std::chrono::duration<double>(now - last_swap_).count());
  for (auto& [key, state] : clusters_) {
    (void)key;
    state.age_gauge->set(
        std::chrono::duration<double>(now - state.model_born).count());
  }
}

std::size_t ContinuousTrainer::run_once() {
  std::scoped_lock train_lock(train_mutex_);
  const Clock::time_point now = Clock::now();

  std::vector<std::string> keys;
  {
    std::scoped_lock lock(mutex_);
    keys.reserve(clusters_.size());
    for (const auto& [key, state] : clusters_) {
      (void)state;
      keys.push_back(key);
    }
  }

  std::size_t swaps = 0;
  for (const std::string& key : keys) {
    ClusterState* state = nullptr;
    bool want_retrain = false;
    bool want_probation = false;
    {
      std::scoped_lock lock(mutex_);
      auto it = clusters_.find(key);
      if (it == clusters_.end()) continue;  // states are never erased
      state = &it->second;
      want_probation = state->probation.active;
      want_retrain = !want_probation && state->dirty &&
                     state->new_since_train >= config_.min_new_sessions &&
                     now >= state->backoff_until;
    }
    // ClusterState nodes are stable (unordered_map never moves elements),
    // so the pointer survives concurrent ingest inserts; every field access
    // inside these helpers re-takes mutex_.
    if (want_probation) {
      const std::uint64_t before = m_.rollbacks->value();
      resolve_probation(*state, now);
      swaps += m_.rollbacks->value() - before;
    } else if (want_retrain) {
      const std::uint64_t before = m_.accepts->value();
      retrain_cluster(*state, now);
      swaps += m_.accepts->value() - before;
    }
  }

  update_age_gauges(now);
  return swaps;
}

void ContinuousTrainer::thread_main() {
  std::unique_lock lock(thread_mutex_);
  while (!stopping_) {
    thread_cv_.wait_for(lock,
                        std::chrono::milliseconds(config_.train_interval_ms),
                        [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    run_once();
    lock.lock();
  }
}

void ContinuousTrainer::start() {
  std::scoped_lock lock(thread_mutex_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { thread_main(); });
}

void ContinuousTrainer::stop() {
  {
    std::scoped_lock lock(thread_mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  thread_cv_.notify_all();
  thread_.join();
  std::scoped_lock lock(thread_mutex_);
  running_ = false;
}

TrainerStats ContinuousTrainer::stats() const {
  TrainerStats out;
  out.sessions_ingested = m_.ingested->value();
  out.sessions_dropped =
      m_.dropped_no_cluster->value() + m_.dropped_short->value();
  out.retrains = m_.retrains->value();
  out.canary_accepts = m_.accepts->value();
  out.canary_rejects = m_.rejects_total->value();
  out.rollbacks = m_.rollbacks->value();
  std::scoped_lock lock(mutex_);
  out.generation = engine_->lineage().generation;
  out.clusters_tracked = clusters_.size();
  for (const auto& [key, state] : clusters_) {
    (void)key;
    if (state.probation.active) ++out.probations_active;
  }
  return out;
}

std::optional<CanaryRejectReason> ContinuousTrainer::last_reject(
    const std::string& cluster_key) const {
  std::scoped_lock lock(mutex_);
  const auto it = clusters_.find(cluster_key);
  if (it == clusters_.end()) return std::nullopt;
  return it->second.last_reject;
}

}  // namespace cs2p
