// Cluster index: Agg(M, s) lookups over the training set (paper §5.1).
//
// A clustering *candidate* M is a (feature subset, time granularity) pair.
// For every candidate, the index hashes each training session by the
// concatenation of its selected feature values and its time-of-day block;
// Agg(M, s) is then the bucket the probe session s falls into. Per-bucket
// initial-throughput medians are precomputed since the initial predictor is
// F(S) = Median(S) (Eq. 6) and the feature-selection step (Eq. 3) evaluates
// that median against thousands of estimation sessions.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/time_window.h"
#include "dataset/dataset.h"

namespace cs2p {

/// One clustering candidate M: which features to match, at what time
/// granularity.
struct CandidateSpec {
  FeatureMask mask = 0;
  TimeGranularity window = TimeGranularity::kAll;

  bool operator==(const CandidateSpec&) const = default;
};

/// "ISP+City@daypart"-style label.
std::string candidate_to_string(const CandidateSpec& candidate);

/// Every non-empty feature subset crossed with every time granularity
/// (2^6 - 1 masks x 3 windows = 189 candidates by default).
std::vector<CandidateSpec> enumerate_candidates();

/// One cluster (bucket) of training sessions under a candidate.
struct Cluster {
  std::vector<std::size_t> session_indices;  ///< into the training dataset
  double initial_median = 0.0;               ///< median initial throughput
  double average_median = 0.0;  ///< median of per-session average throughput
  /// IQR of per-session average throughput over its median — the Fig 6
  /// "how stable is throughput when these features are pinned" statistic.
  double average_dispersion = 0.0;
  std::size_t size() const noexcept { return session_indices.size(); }
};

/// Buckets of one candidate.
class CandidateIndex {
 public:
  CandidateIndex() = default;  ///< empty index (for container pre-sizing)
  CandidateIndex(const Dataset& training, const CandidateSpec& candidate);

  /// The cluster a session with these features/time falls into, or nullptr.
  const Cluster* find(const SessionFeatures& features, double start_hour) const;

  /// The stable bucket key a session with these features/time maps to —
  /// the cluster identity snapshots and the continuous trainer use
  /// (core/model_store.h, core/trainer.h). Defined whether or not the
  /// bucket currently holds any training session.
  std::string bucket_key_for(const SessionFeatures& features,
                             double start_hour) const {
    return bucket_key(features, start_hour);
  }

  const CandidateSpec& candidate() const noexcept { return spec_; }
  std::size_t num_clusters() const noexcept { return clusters_.size(); }

  /// Iteration support (benches inspect cluster-size distributions).
  const std::unordered_map<std::string, Cluster>& clusters() const noexcept {
    return clusters_;
  }

 private:
  std::string bucket_key(const SessionFeatures& features, double start_hour) const;

  CandidateSpec spec_;
  std::unordered_map<std::string, Cluster> clusters_;
};

/// The full index: one CandidateIndex per candidate, sharing the training
/// dataset (held by reference — the dataset must outlive the index).
class ClusterIndex {
 public:
  /// Builds buckets for `candidates` (default: enumerate_candidates()).
  ClusterIndex(const Dataset& training, std::vector<CandidateSpec> candidates);

  const std::vector<CandidateSpec>& candidates() const noexcept { return candidates_; }
  const CandidateIndex& index_for(std::size_t candidate_id) const {
    return per_candidate_[candidate_id];
  }
  std::size_t num_candidates() const noexcept { return per_candidate_.size(); }
  const Dataset& training() const noexcept { return *training_; }

 private:
  const Dataset* training_;
  std::vector<CandidateSpec> candidates_;
  std::vector<CandidateIndex> per_candidate_;
};

}  // namespace cs2p
