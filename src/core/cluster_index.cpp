#include "core/cluster_index.h"

#include <algorithm>

#include "util/parallel.h"
#include "util/stats.h"

namespace cs2p {

std::string candidate_to_string(const CandidateSpec& candidate) {
  std::string out = mask_to_string(candidate.mask);
  out += "@";
  out += time_granularity_name(candidate.window);
  return out;
}

std::vector<CandidateSpec> enumerate_candidates() {
  std::vector<CandidateSpec> out;
  out.reserve((kAllFeaturesMask) * all_time_granularities().size());
  for (FeatureMask mask = 1; mask <= kAllFeaturesMask; ++mask) {
    for (TimeGranularity g : all_time_granularities()) {
      out.push_back({mask, g});
    }
  }
  return out;
}

std::string CandidateIndex::bucket_key(const SessionFeatures& features,
                                       double start_hour) const {
  std::string key = feature_key(features, spec_.mask);
  key += static_cast<char>('0' + block_of(start_hour, spec_.window));
  return key;
}

CandidateIndex::CandidateIndex(const Dataset& training, const CandidateSpec& candidate)
    : spec_(candidate) {
  std::unordered_map<std::string, std::vector<double>> initials;
  std::unordered_map<std::string, std::vector<double>> averages;
  const auto& sessions = training.sessions();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto& s = sessions[i];
    if (s.throughput_mbps.empty()) continue;
    const std::string key = bucket_key(s.features, s.start_hour);
    clusters_[key].session_indices.push_back(i);
    initials[key].push_back(s.initial_throughput());
    averages[key].push_back(s.average_throughput());
  }
  for (auto& [key, cluster] : clusters_) {
    cluster.initial_median = median(initials[key]);
    auto& avg = averages[key];
    std::sort(avg.begin(), avg.end());
    cluster.average_median = quantile_sorted(avg, 0.5);
    const double iqr =
        quantile_sorted(avg, 0.75) - quantile_sorted(avg, 0.25);
    cluster.average_dispersion =
        cluster.average_median > 0.0 ? iqr / cluster.average_median : 0.0;
  }
}

const Cluster* CandidateIndex::find(const SessionFeatures& features,
                                    double start_hour) const {
  const auto it = clusters_.find(bucket_key(features, start_hour));
  return it == clusters_.end() ? nullptr : &it->second;
}

ClusterIndex::ClusterIndex(const Dataset& training, std::vector<CandidateSpec> candidates)
    : training_(&training), candidates_(std::move(candidates)) {
  // Candidate indexes are independent: build them in parallel. Slots are
  // pre-sized so each worker writes a distinct element.
  per_candidate_.resize(candidates_.size());
  parallel_for(candidates_.size(), [&](std::size_t c) {
    per_candidate_[c] = CandidateIndex(training, candidates_[c]);
  });
}

}  // namespace cs2p
