// Continuous training: streaming ingest -> canary gate -> hot-swap ->
// probation/rollback (DESIGN.md §15).
//
// The paper retrains per day (§6); the stability studies in PAPERS.md show
// throughput regimes move on much shorter timescales. This subsystem closes
// the loop the drift guardrails opened: completed serving sessions stream
// into per-cluster reservoirs, a background thread retrains only clusters
// whose statistics moved, and every candidate model must *win a canary
// evaluation* against the incumbent on held-out live data before the
// RCU/model_store machinery swaps it in. Accepted generations carry lineage
// (generation id + parent snapshot checksum) and serve under probation: if
// the drift quorum trips the freshly swapped cluster, the trainer re-swaps
// the parent generation automatically and backs off retraining that cluster.
//
// Invariant the whole pipeline defends: a model that has not beaten the
// incumbent on real held-out observations never reaches the hot path, and
// a model that wins the canary but loses in production is rolled back
// without operator action.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace cs2p {

/// Why the canary gate refused a candidate model. Typed so tests and
/// operators can distinguish "the data was bad" from "the model was worse".
enum class CanaryRejectReason : std::uint8_t {
  kTrainingFailed = 0,  ///< Baum-Welch threw (degenerate reservoir)
  kInsufficientData,    ///< too few usable sequences to train or hold out
  kLogLikelihood,       ///< lost the one-step log-likelihood margin
  kHorizonError,        ///< lost the horizon absolute-error comparison
};

/// Stable name for logs/metric labels ("TRAINING_FAILED", ...).
std::string_view canary_reject_reason_name(CanaryRejectReason reason) noexcept;

struct TrainerConfig {
  /// Per-cluster reservoir of completed-session throughput sequences.
  std::size_t reservoir_size = 64;
  /// A cluster is retrain-eligible only after this many completed sessions
  /// arrived since its last (attempted) retrain.
  std::size_t min_new_sessions = 8;
  /// Sequences shorter than this carry no usable transition signal.
  std::size_t min_sequence_epochs = 4;
  /// "Statistics moved" threshold: retrain when the mean throughput of
  /// sessions since the last retrain differs from the cluster's baseline by
  /// more than this fraction.
  double stat_shift_fraction = 0.2;
  /// Every k-th reservoir entry is held out of training for the canary.
  std::size_t holdout_stride = 4;
  /// Canary win margin, in nats per observation of median one-step
  /// log-likelihood: the candidate must beat the incumbent by at least this.
  double canary_margin = 0.05;
  /// The candidate's median horizon relative error may exceed the
  /// incumbent's by at most this fraction.
  double horizon_tolerance = 0.25;
  /// Look-ahead (epochs) of the horizon-error leg of the canary.
  unsigned horizon = 4;
  /// Background thread cadence.
  std::uint64_t train_interval_ms = 1000;
  /// Probation window after an accepted swap: a drift-quorum trip on the
  /// swapped cluster inside this window triggers automatic rollback.
  std::uint64_t probation_ms = 5000;
  /// Retrain backoff after a rollback (doubles per rollback, capped).
  std::uint64_t backoff_initial_ms = 2000;
  std::uint64_t backoff_max_ms = 60000;
  /// Reservoir-sampling seed (deterministic ingest for tests).
  std::uint64_t seed = 0x20160816;
};

/// Counter snapshot (read-out of the metrics registry plus trainer-local
/// state, like EngineStats).
struct TrainerStats {
  std::uint64_t sessions_ingested = 0;
  std::uint64_t sessions_dropped = 0;  ///< no cluster / too short / invalid
  std::uint64_t retrains = 0;          ///< candidate models trained
  std::uint64_t canary_accepts = 0;
  std::uint64_t canary_rejects = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t generation = 0;  ///< current engine lineage generation
  std::size_t clusters_tracked = 0;
  std::size_t probations_active = 0;
};

/// How an accepted (or rolled-back) engine reaches the serving tier: the
/// serving tool points this at PredictionServer::swap_model +
/// publish_snapshot + peer SYNC pushes. Returning false aborts the adoption
/// (the trainer keeps the old engine and will re-evaluate later). Null:
/// the trainer adopts internally — the test/bench configuration.
using TrainerPublishFn = std::function<bool(
    const std::shared_ptr<const Cs2pEngine>& engine,
    const std::string& snapshot_bytes)>;

class ContinuousTrainer {
 public:
  /// `engine` is the serving incumbent (generation root for lineage).
  explicit ContinuousTrainer(std::shared_ptr<const Cs2pEngine> engine,
                             TrainerConfig config = {});
  ~ContinuousTrainer();

  ContinuousTrainer(const ContinuousTrainer&) = delete;
  ContinuousTrainer& operator=(const ContinuousTrainer&) = delete;

  /// Install the serving-tier publish hook (after the server exists; the
  /// trainer is constructed first so teardown order is safe).
  void set_publish(TrainerPublishFn publish);

  /// Feed one completed session (BYE or eviction teardown). Thread-safe,
  /// cheap: maps the session to its cluster, updates the reservoir and the
  /// movement statistics. Invalid observations are dropped sample-wise;
  /// sessions that map to no cluster or end up too short are counted and
  /// discarded.
  void ingest(const SessionFeatures& features, double start_hour,
              const std::vector<double>& observations);

  /// One deterministic trainer pass: resolve probations (rollback or
  /// release), then retrain every dirty cluster through the canary gate.
  /// Returns the number of engine swaps published (accepts + rollbacks).
  /// Serialized against itself; safe to call concurrently with ingest().
  std::size_t run_once();

  /// Background thread: run_once() every train_interval_ms until stop().
  void start();
  void stop();

  /// Adopt an externally built engine (interval/SIGHUP reload path).
  /// Reservoirs and backoffs survive; probations are cleared — the parent
  /// models they held belong to a superseded lineage.
  void set_engine(std::shared_ptr<const Cs2pEngine> engine,
                  const std::string& snapshot_bytes);

  /// Current incumbent (what ingest maps sessions against).
  std::shared_ptr<const Cs2pEngine> engine() const;

  TrainerStats stats() const;
  const TrainerConfig& config() const noexcept { return config_; }

  /// Last canary rejection for a cluster key ("<candidate>:<bucket>"), if
  /// any — test/diagnostic visibility into the gate's verdicts.
  std::optional<CanaryRejectReason> last_reject(
      const std::string& cluster_key) const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Everything the trainer tracks about one (candidate id, bucket key)
  /// cluster identity. Identities are stable across engine hot-swaps; the
  /// Cluster* inside any particular engine is resolved on demand.
  struct ClusterState {
    std::size_t candidate_id = 0;
    std::string bucket_key;

    std::vector<std::vector<double>> reservoir;
    std::uint64_t seen = 0;  ///< sequences offered (drives reservoir sampling)

    // Movement statistics: mean session throughput since the last retrain
    // attempt, compared against the baseline captured at the last accept.
    std::uint64_t new_since_train = 0;
    double recent_sum = 0.0;
    double baseline_mean = 0.0;
    bool baseline_set = false;
    bool dirty = false;
    Clock::time_point dirty_since{};

    std::uint64_t backoff_ms = 0;
    Clock::time_point backoff_until{};
    std::optional<CanaryRejectReason> last_reject;

    std::uint64_t generation = 0;  ///< accepted swaps for this cluster
    Clock::time_point model_born{};

    struct Probation {
      bool active = false;
      /// The incumbent model at swap time. cluster_specific == false means
      /// the parent state is "no per-cluster model" (rollback removes the
      /// entry instead of restoring one).
      ClusterModelView parent;
      Clock::time_point deadline{};
    } probation;

    obs::Gauge* generation_gauge = nullptr;
    obs::Gauge* age_gauge = nullptr;
  };

  /// Canary scores of one model over the holdout slice.
  struct CanaryScore {
    double median_log_likelihood = 0.0;
    double median_horizon_error = 0.0;
    bool has_horizon = false;
  };

  struct MetricHandles {
    obs::Counter* ingested = nullptr;
    obs::Counter* dropped_no_cluster = nullptr;
    obs::Counter* dropped_short = nullptr;
    obs::Counter* retrains = nullptr;
    obs::Counter* accepts = nullptr;
    obs::Counter* rejects_total = nullptr;
    obs::Counter* rejects_by_reason[4] = {nullptr, nullptr, nullptr, nullptr};
    obs::Counter* rollbacks = nullptr;
    obs::Gauge* generation = nullptr;
    obs::Gauge* model_age = nullptr;
    obs::Gauge* clusters_tracked = nullptr;
    obs::Histogram* retrain_lag = nullptr;

    static MetricHandles create(obs::MetricsRegistry& registry);
  };

  CanaryScore score_model(const GaussianHmm& model,
                          const std::vector<std::vector<double>>& holdout) const;

  /// Rebuild the incumbent with one cluster's model replaced (or removed,
  /// when `model` is null), bump the lineage, serialize, publish, adopt.
  /// Returns false when the publish hook vetoed the swap.
  bool swap_cluster_model(ClusterState& state, const GaussianHmm* model,
                          Clock::time_point now);

  void retrain_cluster(ClusterState& state, Clock::time_point now);
  void resolve_probation(ClusterState& state, Clock::time_point now);
  void update_age_gauges(Clock::time_point now);

  ClusterState& state_for(std::size_t candidate_id,
                          const std::string& bucket_key);

  void thread_main();

  TrainerConfig config_;

  /// Guards engine_, clusters_, rng_ and incumbent_checksum_. Ingest and
  /// adoption are short critical sections; EM and canary replay run outside.
  mutable std::mutex mutex_;
  std::shared_ptr<const Cs2pEngine> engine_;
  std::uint64_t incumbent_checksum_ = 0;
  std::unordered_map<std::string, ClusterState> clusters_;
  Rng rng_;
  Clock::time_point last_swap_{};

  /// Serializes run_once() callers (background thread vs tests).
  std::mutex train_mutex_;

  TrainerPublishFn publish_;
  std::mutex publish_mutex_;

  std::shared_ptr<obs::MetricsRegistry> metrics_;
  MetricHandles m_;

  std::thread thread_;
  std::mutex thread_mutex_;
  std::condition_variable thread_cv_;
  bool stopping_ = false;
  bool running_ = false;
};

}  // namespace cs2p
