// Data-driven selection of the best feature set M*_s (paper §5.1, Eq. 2-3).
//
// Offline, every training session s' gets an error score per candidate M:
//   err(M, s') = Err( Median(Agg(M, s')), s'_w )          (Eq. 1, initial w)
// with err = +inf when Agg(M, s') is smaller than the min-cluster-size
// threshold (such clusters are "removed from consideration").
//
// For a new session s, Est(s) — training sessions likely to share s's best
// model — is approximated by sessions matching s on ISP+City (relaxing to
// ISP, then to everything, when too few match), and
//   M*_s = argmin_M  mean_{s' in Est(s)} err(M, s')       (Eq. 3)
// Selection results are cached per Est-key since every session from the same
// neighbourhood shares the same Est set.
#pragma once

#include <cstddef>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cluster_index.h"

namespace cs2p {

struct FeatureSelectorConfig {
  std::size_t min_cluster_size = 20;     ///< Agg smaller than this is discarded
  std::size_t estimation_set_size = 40;  ///< cap on |Est(s)|
};

/// Outcome of a best-candidate query.
struct SelectionResult {
  bool found = false;          ///< false -> fall back to the global model
  std::size_t candidate_id = 0;
  double estimated_error = std::numeric_limits<double>::infinity();
};

class FeatureSelector {
 public:
  /// Precomputes the err(M, s') table over the index's training set.
  FeatureSelector(const ClusterIndex& index, FeatureSelectorConfig config = {});

  /// Restores a selector from a previously computed error table (snapshot
  /// load path — skips the candidate x session precompute). The table must
  /// be [num_candidates][num training sessions] with no NaN entries (+inf
  /// marks unusable clusters); throws std::invalid_argument otherwise.
  FeatureSelector(const ClusterIndex& index, FeatureSelectorConfig config,
                  std::vector<std::vector<double>> precomputed_table);

  /// Best candidate for a session with the given features/start time.
  /// Returns found = false when no candidate yields a usable cluster for
  /// this session (the caller then regresses to the global model).
  SelectionResult select(const SessionFeatures& features, double start_hour) const;

  /// err(M, s') for inspection/tests: row = candidate id, col = training
  /// session index; +inf marks unusable clusters.
  double error_entry(std::size_t candidate_id, std::size_t session_index) const {
    return error_table_[candidate_id][session_index];
  }

  /// Whole table, for snapshot serialization (core/model_store.h).
  const std::vector<std::vector<double>>& error_table() const noexcept {
    return error_table_;
  }

  const FeatureSelectorConfig& config() const noexcept { return config_; }

 private:
  /// Est(s) neighbourhood maps, shared by both constructors.
  void build_neighbourhoods();

  /// Training-session indices forming Est for an (ISP, City) neighbourhood.
  std::vector<std::size_t> estimation_set(const SessionFeatures& features) const;

  const ClusterIndex* index_;
  FeatureSelectorConfig config_;
  std::vector<std::vector<double>> error_table_;  ///< [candidate][session]

  /// ISP+City -> training session indices (relaxation path uses ISP alone).
  std::unordered_map<std::string, std::vector<std::size_t>> by_isp_city_;
  std::unordered_map<std::string, std::vector<std::size_t>> by_isp_;

  /// Candidates ranked by mean err over one Est set, best first. Cached per
  /// Est-neighbourhood key; the final pick still checks that the candidate
  /// yields a usable cluster for the *probe* session.
  using Ranking = std::vector<std::pair<double, std::size_t>>;
  const Ranking& ranking_for(const std::vector<std::size_t>& est,
                             const std::string& est_key) const;

  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<std::string, Ranking> ranking_cache_;
};

}  // namespace cs2p
