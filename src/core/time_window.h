// Time dimension of the session-clustering candidates (paper §5.1).
//
// The paper's candidate time ranges are "last 5/10/30 minutes to 10 hours"
// and "same hour of day in the last 1-7 days". Our datasets span two days
// (day 0 trains, day 1 tests), so rolling look-back windows would reach out
// of the training day; we substitute *time-of-day granularities*: a cluster
// candidate may pool all training sessions, those in the same 6-hour
// daypart, or those in the same 3-hour block. This preserves what the time
// dimension is for — capturing diurnal throughput patterns (peak-hour
// contention) — while staying precomputable. Documented in DESIGN.md.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace cs2p {

/// Time-of-day pooling granularity of a clustering candidate.
enum class TimeGranularity : std::uint8_t {
  kAll = 0,      ///< ignore time of day
  kDaypart,      ///< four 6-hour blocks
  kTriHour,      ///< eight 3-hour blocks
};

inline constexpr std::array<TimeGranularity, 3> all_time_granularities() noexcept {
  return {TimeGranularity::kAll, TimeGranularity::kDaypart, TimeGranularity::kTriHour};
}

constexpr int num_blocks(TimeGranularity g) noexcept {
  switch (g) {
    case TimeGranularity::kAll: return 1;
    case TimeGranularity::kDaypart: return 4;
    case TimeGranularity::kTriHour: return 8;
  }
  return 1;
}

/// Maps an hour of day in [0, 24) to its block under `g`.
constexpr int block_of(double hour, TimeGranularity g) noexcept {
  const int blocks = num_blocks(g);
  const double width = 24.0 / blocks;
  int block = static_cast<int>(hour / width);
  if (block < 0) block = 0;
  if (block >= blocks) block = blocks - 1;
  return block;
}

constexpr std::string_view time_granularity_name(TimeGranularity g) noexcept {
  switch (g) {
    case TimeGranularity::kAll: return "any-time";
    case TimeGranularity::kDaypart: return "daypart";
    case TimeGranularity::kTriHour: return "3h-block";
  }
  return "?";
}

}  // namespace cs2p
