#include "core/feature_selector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/error_metrics.h"
#include "util/parallel.h"

namespace cs2p {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string isp_city_key(const SessionFeatures& features) {
  std::string key(features.isp);
  key += '\x1f';
  key += features.city;
  return key;
}

}  // namespace

void FeatureSelector::build_neighbourhoods() {
  const auto& sessions = index_->training().sessions();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (sessions[i].throughput_mbps.empty()) continue;
    by_isp_city_[isp_city_key(sessions[i].features)].push_back(i);
    by_isp_[sessions[i].features.isp].push_back(i);
  }
}

FeatureSelector::FeatureSelector(const ClusterIndex& index,
                                 FeatureSelectorConfig config,
                                 std::vector<std::vector<double>> precomputed_table)
    : index_(&index), config_(config), error_table_(std::move(precomputed_table)) {
  build_neighbourhoods();
  const std::size_t num_sessions = index.training().size();
  if (error_table_.size() != index.num_candidates())
    throw std::invalid_argument(
        "FeatureSelector: precomputed table candidate count mismatch");
  for (const auto& row : error_table_) {
    if (row.size() != num_sessions)
      throw std::invalid_argument(
          "FeatureSelector: precomputed table session count mismatch");
    for (double err : row)
      if (std::isnan(err) || err < 0.0)
        throw std::invalid_argument(
            "FeatureSelector: precomputed table has NaN/negative entry");
  }
}

FeatureSelector::FeatureSelector(const ClusterIndex& index, FeatureSelectorConfig config)
    : index_(&index), config_(config) {
  const auto& sessions = index.training().sessions();
  build_neighbourhoods();

  // err(M, s') table. The cluster median includes s' itself; with clusters
  // at least min_cluster_size strong the self-inclusion bias is negligible.
  error_table_.assign(index.num_candidates(),
                      std::vector<double>(sessions.size(), kInf));
  // Rows are independent per candidate: fill them in parallel.
  parallel_for(index.num_candidates(), [&](std::size_t c) {
    const CandidateIndex& cand = index.index_for(c);
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      const auto& s = sessions[i];
      if (s.throughput_mbps.empty()) continue;
      const Cluster* cluster = cand.find(s.features, s.start_hour);
      if (cluster == nullptr || cluster->size() < config_.min_cluster_size) continue;
      // Score the candidate on how well its cluster predicts BOTH the
      // session's initial throughput (Eq. 6 drives initial selection) and
      // its whole-session average (a cluster whose sessions share one
      // throughput process has a tight average, so this term steers the
      // choice toward clusters that are pure enough for the HMM).
      const double initial_err =
          absolute_normalized_error(cluster->initial_median, s.initial_throughput());
      const double average_err =
          absolute_normalized_error(cluster->average_median, s.average_throughput());
      // The dispersion term is the Fig 6 statistic: a cluster whose sessions
      // share one throughput process is tight, one that merely matches on
      // incidental features is spread out.
      error_table_[c][i] =
          0.5 * (initial_err + average_err) + 0.5 * cluster->average_dispersion;
    }
  });
}

std::vector<std::size_t> FeatureSelector::estimation_set(
    const SessionFeatures& features) const {
  auto take = [this](const std::vector<std::size_t>& pool) {
    std::vector<std::size_t> out = pool;
    if (out.size() > config_.estimation_set_size)
      out.resize(config_.estimation_set_size);
    return out;
  };

  if (const auto it = by_isp_city_.find(isp_city_key(features));
      it != by_isp_city_.end() && it->second.size() >= 5) {
    return take(it->second);
  }
  if (const auto it = by_isp_.find(features.isp);
      it != by_isp_.end() && !it->second.empty()) {
    return take(it->second);
  }
  // Last resort: a slice of everything.
  std::vector<std::size_t> out;
  const std::size_t n = index_->training().size();
  for (std::size_t i = 0; i < n && out.size() < config_.estimation_set_size; ++i)
    out.push_back(i);
  return out;
}

const FeatureSelector::Ranking& FeatureSelector::ranking_for(
    const std::vector<std::size_t>& est, const std::string& est_key) const {
  std::scoped_lock lock(cache_mutex_);
  const auto cached = ranking_cache_.find(est_key);
  if (cached != ranking_cache_.end()) return cached->second;

  Ranking ranking;
  ranking.reserve(index_->num_candidates());
  for (std::size_t c = 0; c < index_->num_candidates(); ++c) {
    double sum = 0.0;
    std::size_t usable = 0;
    for (std::size_t i : est) {
      const double err = error_table_[c][i];
      if (std::isinf(err)) continue;
      sum += err;
      ++usable;
    }
    // Candidates must be usable for a meaningful slice of the estimation
    // set; otherwise their mean error is computed on too biased a subset.
    if (usable * 4 < est.size() || usable < 3) {
      ranking.emplace_back(kInf, c);
    } else {
      ranking.emplace_back(sum / static_cast<double>(usable), c);
    }
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  return ranking_cache_.emplace(est_key, std::move(ranking)).first->second;
}

SelectionResult FeatureSelector::select(const SessionFeatures& features,
                                        double start_hour) const {
  std::string est_key;
  if (const auto it = by_isp_city_.find(isp_city_key(features));
      it != by_isp_city_.end() && it->second.size() >= 5) {
    est_key = isp_city_key(features);
  } else if (by_isp_.contains(features.isp)) {
    est_key = features.isp;
  }  // else: empty key = global slice

  const auto est = estimation_set(features);
  const Ranking& ranking = ranking_for(est, est_key);

  for (const auto& [mean_err, candidate_id] : ranking) {
    if (std::isinf(mean_err)) break;  // ranking is sorted; the rest are unusable
    const Cluster* cluster =
        index_->index_for(candidate_id).find(features, start_hour);
    if (cluster != nullptr && cluster->size() >= config_.min_cluster_size) {
      return {true, candidate_id, mean_err};
    }
  }
  return {};  // regress to the global model
}

}  // namespace cs2p
