// The CS2P Prediction Engine (paper §4-§5): the trained artifact that video
// servers or clients query for per-session throughput models.
//
// Offline (construction): builds the cluster index over the training set,
// precomputes the feature-selection error table, and trains the global
// fallback HMM. Per-cluster HMMs are trained lazily on first use and cached,
// mirroring the paper's per-day offline training that "can be easily
// parallelized" — here we simply amortise it across queries.
//
// Online: session_model() maps a new session to its best cluster (M*_s),
// returning the cluster's HMM and median initial throughput — or the global
// model when no cluster survives the min-size threshold (the paper measures
// ~4% of sessions on the global model).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/feature_selector.h"
#include "hmm/baum_welch.h"
#include "hmm/online_filter.h"
#include "obs/metrics.h"
#include "predictors/guarded_session.h"
#include "predictors/guardrail.h"
#include "predictors/predictor.h"

namespace cs2p {

/// Training-function hook: defaults to train_hmm. Tests and fault-injection
/// harnesses substitute a trainer that throws to exercise the engine's
/// cluster-quarantine path. Not part of the config fingerprint.
using TrainerFn = std::function<BaumWelchResult(
    const std::vector<std::vector<double>>&, const BaumWelchConfig&)>;

/// Cluster-level drift policy: when a quorum of a cluster's live guarded
/// sessions are tripped at once, the whole cluster is declared drifted and
/// served by the global fallback until the next retrain.
struct DriftPolicy {
  std::size_t min_tripped_sessions = 4;  ///< absolute floor before a verdict
  double quorum = 0.5;                   ///< tripped / live threshold
};

struct Cs2pConfig {
  FeatureSelectorConfig selector;
  BaumWelchConfig hmm;  ///< per-cluster HMM training (N = 6 by default)
  std::size_t max_sequences_per_cluster = 60;  ///< EM cost bound
  std::size_t max_global_sequences = 1200;
  PredictionRule prediction_rule = PredictionRule::kMleState;
  bool median_initial = true;  ///< false: mean (ablation of Eq. 6)
  /// Per-session prediction guardrails (sanitizer + surprise monitor +
  /// fallback chain; DESIGN.md §10). Serving-time behavior only — excluded
  /// from the snapshot config fingerprint like the trainer hook, because it
  /// does not change any trained artifact.
  GuardrailConfig guardrail;
  DriftPolicy drift;
  TrainerFn trainer;  ///< training override (tests); null = train_hmm
  /// Telemetry sink (DESIGN.md §11). Null: the engine creates a private
  /// registry, so per-engine stats stay hermetic; serving tools inject the
  /// process-wide registry so engine counters appear in one STATS scrape.
  /// Excluded from the snapshot config fingerprint like the trainer hook.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// What the engine hands out for one session.
struct SessionModelRef {
  const GaussianHmm* hmm = nullptr;  ///< owned by the engine
  double initial_prediction = 0.0;   ///< Mbps
  bool used_global_model = false;
  bool cluster_drifted = false;      ///< cluster was drift-marked at lookup
  std::string cluster_label;         ///< candidate description, for logs
  std::size_t cluster_size = 0;
  /// Identity of the serving cluster for drift attribution; null when the
  /// session runs on the global model (no cluster to attribute to).
  const Cluster* cluster = nullptr;
};

/// Engine usage counters (coverage diagnostics for §7.4, plus the failure-
/// isolation and snapshot-restore counters of the model lifecycle, plus the
/// guardrail/drift counters of the prediction guardrails). Since the
/// telemetry layer these are a *read-out of the metrics registry* — the
/// registry is the single source of truth, this struct is the convenience
/// snapshot tests and benches consume.
struct EngineStats {
  std::size_t sessions_served = 0;
  std::size_t global_fallbacks = 0;
  std::size_t clusters_trained = 0;
  std::size_t clusters_restored = 0;     ///< cache entries seeded from a snapshot
  std::size_t clusters_quarantined = 0;  ///< EM failures isolated to the global model
  std::size_t clusters_drifted = 0;      ///< guardrail quorum marked these drifted
  std::size_t guarded_sessions = 0;      ///< sessions opened with a guardrail
  std::size_t guardrail_trips = 0;       ///< session-level DEGRADED entries
  std::size_t guardrail_recoveries = 0;  ///< session-level recoveries
};

/// Where a trained engine sits in the continuous-training lineage
/// (DESIGN.md §15). Generation 0 with a zero parent checksum is the
/// offline-trained root; every canary-accepted retrain (and every rollback)
/// increments the generation and records the snapshot checksum of the
/// engine it was derived from, so an operator can walk a serving model back
/// to its ancestry and the trainer can re-swap the parent on rollback.
struct ModelLineage {
  std::uint64_t generation = 0;
  std::uint64_t parent_checksum = 0;  ///< snapshot_checksum of the parent
};

/// One cached per-cluster model, addressed by its stable identity
/// (candidate id + bucket key) instead of the in-memory Cluster pointer —
/// this is what the snapshot store persists and the restore path replays.
struct ClusterModelEntry {
  std::size_t candidate_id = 0;
  std::string bucket_key;
  GaussianHmm hmm;
};

/// Trained state a snapshot restores into an engine, skipping every EM run
/// and the feature-selection precompute.
struct EngineRestoreData {
  double global_initial = 0.0;
  GaussianHmm global_hmm;
  std::vector<std::vector<double>> selector_table;  ///< err(M, s') rows
  std::vector<ClusterModelEntry> cluster_models;
  ModelLineage lineage;
};

/// What a (candidate id, bucket key) cluster serves right now — the view
/// the continuous trainer's canary gate evaluates candidates against.
struct ClusterModelView {
  GaussianHmm hmm;  ///< copy of the serving model
  /// False when the cluster is served by the global fallback (uncached,
  /// quarantined, or drift-marked) instead of its own model.
  bool cluster_specific = false;
};

// -- Batched serving API (DESIGN.md §16) -------------------------------------
// One poll round's worth of (session, value) pairs, grouped by shared HMM
// kernel and pushed through BatchHmmFilter in one state-matrix walk per
// group. Items whose predictor is not batchable (non-HMM family, cold start,
// degraded fallback, sanitizer reject) run their scalar path — the batch
// driver is an optimization, never a semantic fork.

/// One OBSERVE: advance the session on `observation`, then produce the
/// next-epoch prediction (the server's OBSERVE reply).
struct ObserveBatchItem {
  SessionPredictor* predictor = nullptr;
  double observation = 0.0;
  double prediction = 0.0;      ///< out
  bool via_batch_kernel = false;  ///< out: prediction came from the batch kernel
};

/// One PREDICT at an arbitrary horizon.
struct PredictBatchItem {
  SessionPredictor* predictor = nullptr;
  unsigned steps_ahead = 1;  ///< must be >= 1
  double prediction = 0.0;      ///< out
  bool via_batch_kernel = false;  ///< out
};

/// How much of a batch the kernel actually served (feeds the
/// cs2p_server_batched_predicts counter).
struct BatchStats {
  std::size_t batched = 0;  ///< predictions served by the batch kernel
  std::size_t scalar = 0;   ///< predictions that fell back to scalar predict()
};

class Cs2pEngine {
 public:
  /// Copies the training dataset (the engine must outlive external data).
  /// Throws std::invalid_argument on an empty or all-empty training set, or
  /// when any session carries a NaN, infinite, or negative throughput
  /// sample (ingest validation — bad data must not reach Baum-Welch).
  Cs2pEngine(Dataset training, Cs2pConfig config = {});

  /// Restore path: rebuilds the cheap structural state (cluster index,
  /// neighbourhood maps) from `training` and adopts the expensive trained
  /// state from `restored` — no Baum-Welch runs, no error-table precompute.
  /// Throws std::invalid_argument when the restored state does not fit the
  /// dataset (unknown cluster key, wrong table shape, invalid model); the
  /// model store wraps that into a typed SnapshotError.
  Cs2pEngine(Dataset training, Cs2pConfig config, EngineRestoreData restored);

  /// Resolves the prediction model for a new session.
  SessionModelRef session_model(const SessionFeatures& features,
                                double start_hour) const;

  /// Pre-trains cluster HMMs for the feature tuples seen in training — the
  /// paper's per-day offline training (§6: "we do it on a per-day basis"),
  /// so that serving threads never pay EM latency. Returns the number of
  /// distinct cluster models trained. `max_clusters` bounds the work
  /// (0 = unlimited).
  std::size_t warm_up(std::size_t max_clusters = 0) const;

  const Cs2pConfig& config() const noexcept { return config_; }
  EngineStats stats() const;

  /// The registry this engine reports into (config().metrics, or the
  /// engine's private one).
  obs::MetricsRegistry& metrics() const noexcept { return *metrics_; }

  /// Shared guardrail counter handles, passed to every guarded session this
  /// engine's model spawns.
  const GuardrailMetrics& guardrail_metrics() const noexcept {
    return guardrail_metrics_;
  }

  /// Surprise baseline of a model the engine owns (global or cached cluster
  /// HMM), computed lazily once per model and cached. The pointer must come
  /// from a SessionModelRef of this engine.
  SurpriseBaseline surprise_baseline(const GaussianHmm* hmm) const;

  /// Shared SoA inference kernel of an engine-owned HMM (hmm/kernel.h),
  /// built lazily once per model and cached — every session pinned to that
  /// model shares one kernel block, which is what makes them batchable.
  /// Same pointer contract as surprise_baseline().
  std::shared_ptr<const HmmKernel> hmm_kernel(const GaussianHmm* hmm) const;

  /// Advances every item's session on its observation and produces the
  /// next-epoch prediction, grouping kernel-sharing sessions through
  /// BatchHmmFilter (one state-matrix walk per model per round). Each
  /// session id must appear at most once per call (core/batch.cpp explains
  /// the sequential-dependence rule); the caller holds whatever locks
  /// protect the predictors. Static: operates on any predictor mix and
  /// touches no engine state.
  static BatchStats observe_batch(std::span<ObserveBatchItem> items);

  /// Batched horizon predictions; groups by (kernel, steps_ahead). Items
  /// whose predictor cannot batch (cold start, degraded, non-HMM) run
  /// scalar predict() with identical results and side effects.
  static BatchStats predict_batch(std::span<PredictBatchItem> items);

  /// Guardrail lifecycle feed (called by Cs2pPredictorModel's event hook,
  /// possibly from many serving threads). Aggregates per-session trips into
  /// cluster-level drift: when >= DriftPolicy::quorum of a cluster's live
  /// guarded sessions are tripped (and at least min_tripped_sessions are),
  /// the cluster is marked drifted and served by the global fallback until
  /// the next retrain builds a fresh engine. `cluster` may be null (global
  /// sessions feed the session counters only).
  void note_guardrail_event(const Cluster* cluster, GuardrailEvent event,
                            bool tripped) const;

  /// Clusters currently drift-marked (what a reload loop polls to decide an
  /// early retrain).
  std::size_t drifted_cluster_count() const;

  /// True when the given cluster is drift-marked.
  bool cluster_drifted(const Cluster* cluster) const;

  /// Where this engine sits in the continuous-training lineage. The main
  /// constructor produces generation 0 (offline root); the restore
  /// constructor adopts whatever the snapshot recorded.
  const ModelLineage& lineage() const noexcept { return lineage_; }
  void set_lineage(ModelLineage lineage) noexcept { lineage_ = lineage; }

  /// The cluster a (candidate id, bucket key) identity resolves to in this
  /// engine's index, or nullptr when the bucket does not exist (e.g. the
  /// training set has no session with those features). Stable for the
  /// engine's lifetime — this is how the trainer maps cluster identities
  /// back onto drift/quarantine state after a hot-swap.
  const Cluster* find_cluster(std::size_t candidate_id,
                              const std::string& bucket_key) const;

  /// What the given cluster identity serves *right now*: its cached
  /// per-cluster HMM, or the global fallback when the model is uncached,
  /// quarantined, or drift-marked. Never triggers an EM run — the canary
  /// gate must observe the serving state, not force training.
  ClusterModelView cluster_model_view(std::size_t candidate_id,
                                      const std::string& bucket_key) const;

  const GaussianHmm& global_hmm() const noexcept { return global_hmm_; }
  double global_initial() const noexcept { return global_initial_; }
  const ClusterIndex& cluster_index() const noexcept { return index_; }
  const FeatureSelector& selector() const noexcept { return selector_; }
  const Dataset& training() const noexcept { return training_; }

  /// Copies every cached per-cluster model with its stable (candidate id,
  /// bucket key) identity — the snapshot store's view of the cache. Models
  /// that merely alias the global HMM (empty-sequence clusters) and
  /// quarantined clusters are included/excluded naturally: only real cache
  /// entries are returned.
  std::vector<ClusterModelEntry> export_cluster_models() const;

 private:
  const GaussianHmm& cluster_hmm(const Cluster& cluster) const;
  double cluster_initial(const Cluster& cluster) const;
  BaumWelchResult run_trainer(const std::vector<std::vector<double>>& sequences) const;

  /// Registry handles cached at construction: the serving path increments
  /// through these pointers lock-free (obs/metrics.h rule 1).
  struct MetricHandles {
    obs::Counter* sessions = nullptr;
    obs::Counter* global_fallbacks = nullptr;
    obs::Counter* cluster_hits = nullptr;
    obs::Counter* drifted_serves = nullptr;
    obs::Counter* quarantined_serves = nullptr;
    obs::Counter* clusters_trained = nullptr;
    obs::Counter* clusters_restored = nullptr;
    obs::Counter* clusters_quarantined = nullptr;
    obs::Counter* guarded_sessions = nullptr;
    obs::Counter* guardrail_trips = nullptr;
    obs::Counter* guardrail_recoveries = nullptr;
    obs::Gauge* drifted_clusters = nullptr;
    obs::Histogram* em_seconds = nullptr;

    static MetricHandles create(obs::MetricsRegistry& registry);
  };

  Dataset training_;
  Cs2pConfig config_;
  ClusterIndex index_;
  FeatureSelector selector_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  MetricHandles m_;
  GuardrailMetrics guardrail_metrics_;
  GaussianHmm global_hmm_;
  double global_initial_ = 0.0;
  ModelLineage lineage_;

  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<const Cluster*, std::unique_ptr<GaussianHmm>> hmm_cache_;
  /// Clusters whose EM training threw: served by the global model from then
  /// on. Recording the failure (instead of caching a partial model or
  /// retrying forever) is what keeps one degenerate cluster from ever
  /// reaching the serving path again.
  mutable std::unordered_set<const Cluster*> quarantined_;
  /// Lazily-computed per-model surprise baselines, keyed by the stable
  /// address of an engine-owned HMM (global_hmm_ or a hmm_cache_ entry).
  mutable std::unordered_map<const GaussianHmm*, SurpriseBaseline> baseline_cache_;
  /// Lazily-built shared inference kernels, same key (DESIGN.md §16).
  mutable std::unordered_map<const GaussianHmm*, std::shared_ptr<const HmmKernel>>
      kernel_cache_;

  /// Cluster-level drift aggregation (guarded by its own mutex: the event
  /// feed runs on serving threads and must not contend with EM training).
  struct DriftCounters {
    std::size_t live = 0;     ///< open guarded sessions on this cluster
    std::size_t tripped = 0;  ///< of which currently DEGRADED
  };
  mutable std::mutex drift_mutex_;
  mutable std::unordered_map<const Cluster*, DriftCounters> drift_counters_;
  mutable std::unordered_set<const Cluster*> drifted_;
};

/// PredictorModel adapter so the engine plugs into the shared evaluation and
/// simulation harnesses alongside every baseline.
class Cs2pPredictorModel final : public PredictorModel {
 public:
  /// Trains an engine on `training`.
  explicit Cs2pPredictorModel(Dataset training, Cs2pConfig config = {});

  /// Shares an existing engine.
  explicit Cs2pPredictorModel(std::shared_ptr<const Cs2pEngine> engine);

  std::string name() const override { return "CS2P"; }
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext& context) const override;
  std::optional<DownloadableModel> downloadable_model(
      const SessionContext& context) const override;

  const Cs2pEngine& engine() const noexcept { return *engine_; }

  /// Shared handle to the engine — what the continuous trainer holds so the
  /// incumbent stays alive across hot-swaps while a canary is evaluated.
  std::shared_ptr<const Cs2pEngine> engine_ptr() const noexcept {
    return engine_;
  }

 private:
  std::shared_ptr<const Cs2pEngine> engine_;
};

}  // namespace cs2p
