// Crash-safe persistence of a trained Cs2pEngine (the model lifecycle of
// DESIGN.md §9).
//
// The paper's deployment retrains per day (§6) and serves continuously; a
// production engine therefore needs (a) restarts that cost a snapshot load
// instead of a full Baum-Welch pass over the training set, and (b) writes
// that a kill -9 can never tear into a loadable-but-corrupt store.
//
// Snapshot format (text, single file):
//
//   cs2p-snapshot-v1 <payload-bytes>\n     header, read before the payload
//   <payload>                              see serialize_engine
//   checksum <16-hex fnv1a64(payload)>\n   footer
//
// The payload carries the config fingerprint, the training-dataset
// fingerprint, the global model + initial prediction, the feature-selection
// error table (sparse: +inf entries are omitted), and every cached
// per-cluster HMM keyed by its stable (candidate id, bucket key) identity.
//
// Durability: save_snapshot writes to `<path>.tmp.<pid>`, fsyncs the file,
// atomically rename(2)s it over `path`, then fsyncs the directory — a crash
// at any point leaves either the old snapshot or the new one, never a mix.
// Integrity: restore verifies the declared payload length (truncation) and
// the checksum (bit rot / torn writes) before parsing a single field, and
// every parse failure is a typed SnapshotError — corrupt bytes can fall
// back to fresh training but can never construct an invalid engine.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/engine.h"

namespace cs2p {

/// Why a snapshot could not be saved or restored. Callers branch on this to
/// distinguish "retrain and overwrite" (mismatch/corruption) from "disk is
/// broken" (kIo).
enum class SnapshotErrorCode : std::uint8_t {
  kIo = 0,            ///< open/read/write/fsync/rename failed
  kBadMagic,          ///< not a cs2p snapshot at all
  kVersionMismatch,   ///< a cs2p snapshot, but a different format version
  kTruncated,         ///< shorter than the declared payload (torn write)
  kChecksumMismatch,  ///< payload bytes do not hash to the footer
  kConfigMismatch,    ///< trained under a different Cs2pConfig
  kDatasetMismatch,   ///< trained on a different dataset
  kCorruptModel,      ///< decoded fields do not form a valid engine
};

/// Stable name for logs ("IO", "BAD_MAGIC", ...).
std::string_view snapshot_error_code_name(SnapshotErrorCode code) noexcept;

class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(SnapshotErrorCode code, const std::string& message)
      : std::runtime_error("snapshot: [" +
                           std::string(snapshot_error_code_name(code)) + "] " +
                           message),
        code_(code) {}

  SnapshotErrorCode code() const noexcept { return code_; }

 private:
  SnapshotErrorCode code_;
};

/// FNV-1a 64-bit over the numeric/semantic fields of the config (the
/// `trainer` test hook is deliberately excluded). Two engines with equal
/// fingerprints produce identical models from identical data.
std::uint64_t config_fingerprint(const Cs2pConfig& config) noexcept;

/// FNV-1a 64-bit over every session's identity, features and throughput
/// series. A snapshot only restores against the exact dataset it was
/// trained on (cluster bucket keys and the error table index into it).
std::uint64_t dataset_fingerprint(const Dataset& dataset) noexcept;

/// FNV-1a 64-bit over the complete snapshot bytes (header + payload +
/// footer). This is the identity recorded in ModelLineage::parent_checksum:
/// two byte-identical snapshots are the same model generation.
std::uint64_t snapshot_checksum(const std::string& snapshot_bytes) noexcept;

/// Serializes the engine's trained state into complete snapshot bytes
/// (header + payload + checksum footer), ready to be written to disk.
std::string serialize_engine(const Cs2pEngine& engine);

/// Verifies framing, checksum and fingerprints, then decodes the trained
/// state. Throws SnapshotError with the precise failure code; never returns
/// partially-decoded state.
EngineRestoreData parse_snapshot(const std::string& bytes,
                                 const Cs2pConfig& expected_config,
                                 const Dataset& training);

/// Atomic, durable write of `engine`'s snapshot to `path` (temp file +
/// fsync + rename + directory fsync). Throws SnapshotError{kIo} on any
/// filesystem failure; `path` is either untouched or fully replaced.
void save_snapshot(const std::string& path, const Cs2pEngine& engine);

/// Loads `path`, verifies it against `config` and `training`, and builds an
/// engine without running EM. Throws SnapshotError on any failure.
std::unique_ptr<Cs2pEngine> restore_engine(const std::string& path,
                                           Dataset training,
                                           const Cs2pConfig& config);

/// In-memory variant of restore_engine (tests exercise torn-write handling
/// at every byte offset without touching the filesystem).
std::unique_ptr<Cs2pEngine> restore_engine_from_bytes(const std::string& bytes,
                                                      Dataset training,
                                                      const Cs2pConfig& config);

/// The serving startup path: restore from `snapshot_path` when it is valid
/// for (config, training); otherwise train fresh, warm up the per-cluster
/// cache when `warm_up` is set, and best-effort persist the result back to
/// `snapshot_path`. An empty `snapshot_path` trains without persistence.
/// `status_out` (optional) receives a one-line human-readable account of
/// which path was taken — serving tools log it verbatim.
std::shared_ptr<const Cs2pEngine> load_or_train(const std::string& snapshot_path,
                                                Dataset training,
                                                const Cs2pConfig& config,
                                                bool warm_up = true,
                                                std::string* status_out = nullptr);

}  // namespace cs2p
