// Batch driver of the serving tier (DESIGN.md §16): Cs2pEngine::observe_batch
// and predict_batch.
//
// Grouping rule: sessions are batchable together exactly when their filters
// share an HmmKernel pointer (same pinned model — RCU hot-swaps naturally
// split old and new generations into different groups). Groups are formed in
// first-appearance order with a linear sweep: a serving round sees one or
// two distinct models in practice, so anything cleverer than O(groups x
// items) would be tuning the cold path.
//
// Sequential-dependence rule: a session may appear at most once per call.
// The batch kernel gathers all beliefs, advances, and scatters back; two
// observations for the same session in one batch would both read the
// pre-advance belief instead of chaining. The server enforces this by
// extracting at most one frame per connection per round and routing
// duplicate session ids (a session driven over two connections at once)
// through the scalar path.
#include <vector>

#include "core/engine.h"
#include "hmm/batch_filter.h"

namespace cs2p {

namespace {

struct PlannedObserve {
  std::size_t item = 0;
  OnlineHmmFilter* filter = nullptr;
  double value = 0.0;
  const HmmKernel* kernel = nullptr;
  bool grouped = false;
};

struct PlannedPredict {
  std::size_t item = 0;
  const OnlineHmmFilter* filter = nullptr;
  unsigned steps = 1;
  const HmmKernel* kernel = nullptr;
  bool grouped = false;
};

/// Per-worker scratch: the batch workspace plus the staging vectors, all
/// reused across rounds so the steady-state serve path allocates nothing.
struct BatchWorkspace {
  BatchHmmFilter batch;
  std::vector<PlannedObserve> observes;
  std::vector<PlannedPredict> predicts;
  std::vector<OnlineHmmFilter*> filters;
  std::vector<const OnlineHmmFilter*> const_filters;
  std::vector<double> values;
  std::vector<std::size_t> members;
};

BatchWorkspace& workspace() {
  thread_local BatchWorkspace ws;
  return ws;
}

}  // namespace

BatchStats Cs2pEngine::observe_batch(std::span<ObserveBatchItem> items) {
  BatchStats stats;
  BatchWorkspace& ws = workspace();

  // Phase 1: stage every observation. kScalar items advance inline (their
  // observe() is the whole contract); kFilter items queue for the kernel.
  ws.observes.clear();
  for (std::size_t i = 0; i < items.size(); ++i) {
    ObserveBatchItem& item = items[i];
    const BatchObservePlan plan = item.predictor->begin_batch_observe(item.observation);
    switch (plan.kind) {
      case BatchObservePlan::Kind::kScalar:
        item.predictor->observe(item.observation);
        break;
      case BatchObservePlan::Kind::kConsumed:
        break;
      case BatchObservePlan::Kind::kFilter:
        ws.observes.push_back(
            {i, plan.filter, plan.value, plan.filter->kernel().get(), false});
        break;
    }
  }

  // Phase 2: one kernel walk per distinct model, first-appearance order.
  for (std::size_t start = 0; start < ws.observes.size(); ++start) {
    if (ws.observes[start].grouped) continue;
    const HmmKernel* kernel = ws.observes[start].kernel;
    ws.filters.clear();
    ws.values.clear();
    for (std::size_t j = start; j < ws.observes.size(); ++j) {
      PlannedObserve& p = ws.observes[j];
      if (p.grouped || p.kernel != kernel) continue;
      p.grouped = true;
      ws.filters.push_back(p.filter);
      ws.values.push_back(p.value);
    }
    ws.batch.observe(*kernel, ws.filters, ws.values);
  }
  // Completion hooks after the advance, in item order (guardrail scoring,
  // trip/recover events — the scalar observe() tail).
  for (const PlannedObserve& p : ws.observes)
    items[p.item].predictor->finish_batch_observe();

  // Phase 3: the OBSERVE reply's next-epoch prediction, batched the same
  // way. A session can leave the batchable set between phases (this very
  // observation tripped its guardrail) — batch_predict_filter re-decides.
  ws.predicts.clear();
  for (std::size_t i = 0; i < items.size(); ++i) {
    ObserveBatchItem& item = items[i];
    const OnlineHmmFilter* filter = item.predictor->batch_predict_filter(1);
    if (filter == nullptr) {
      item.prediction = item.predictor->predict(1);
      ++stats.scalar;
      continue;
    }
    ws.predicts.push_back({i, filter, 1, filter->kernel().get(), false});
  }
  for (std::size_t start = 0; start < ws.predicts.size(); ++start) {
    if (ws.predicts[start].grouped) continue;
    const HmmKernel* kernel = ws.predicts[start].kernel;
    ws.const_filters.clear();
    ws.members.clear();
    for (std::size_t j = start; j < ws.predicts.size(); ++j) {
      PlannedPredict& p = ws.predicts[j];
      if (p.grouped || p.kernel != kernel) continue;
      p.grouped = true;
      ws.const_filters.push_back(p.filter);
      ws.members.push_back(p.item);
    }
    ws.values.resize(ws.const_filters.size());
    ws.batch.predict(*kernel, ws.const_filters, 1, ws.values);
    for (std::size_t k = 0; k < ws.members.size(); ++k) {
      items[ws.members[k]].prediction = ws.values[k];
      items[ws.members[k]].via_batch_kernel = true;
    }
    stats.batched += ws.members.size();
  }
  return stats;
}

BatchStats Cs2pEngine::predict_batch(std::span<PredictBatchItem> items) {
  BatchStats stats;
  BatchWorkspace& ws = workspace();

  ws.predicts.clear();
  for (std::size_t i = 0; i < items.size(); ++i) {
    PredictBatchItem& item = items[i];
    const OnlineHmmFilter* filter =
        item.predictor->batch_predict_filter(item.steps_ahead);
    if (filter == nullptr) {
      item.prediction = item.predictor->predict(item.steps_ahead);
      ++stats.scalar;
      continue;
    }
    ws.predicts.push_back(
        {i, filter, item.steps_ahead, filter->kernel().get(), false});
  }
  // Group key is (kernel, horizon): one propagation matrix per group.
  for (std::size_t start = 0; start < ws.predicts.size(); ++start) {
    if (ws.predicts[start].grouped) continue;
    const HmmKernel* kernel = ws.predicts[start].kernel;
    const unsigned steps = ws.predicts[start].steps;
    ws.const_filters.clear();
    ws.members.clear();
    for (std::size_t j = start; j < ws.predicts.size(); ++j) {
      PlannedPredict& p = ws.predicts[j];
      if (p.grouped || p.kernel != kernel || p.steps != steps) continue;
      p.grouped = true;
      ws.const_filters.push_back(p.filter);
      ws.members.push_back(p.item);
    }
    ws.values.resize(ws.const_filters.size());
    ws.batch.predict(*kernel, ws.const_filters, steps, ws.values);
    for (std::size_t k = 0; k < ws.members.size(); ++k) {
      items[ws.members[k]].prediction = ws.values[k];
      items[ws.members[k]].via_batch_kernel = true;
    }
    stats.batched += ws.members.size();
  }
  return stats;
}

}  // namespace cs2p
