#include "core/engine.h"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "predictors/hmm_session.h"
#include "util/stats.h"

namespace cs2p {
namespace {

/// Rejects NaN/negative throughput samples before any index or HMM sees
/// them (one bad sample silently poisons Baum-Welch sufficient statistics).
/// Runs in the member-initializer list, ahead of ClusterIndex and
/// FeatureSelector construction. Empty sessions are tolerated here and
/// skipped by training, like before.
Dataset validate_training_set(Dataset training) {
  for (const auto& s : training.sessions()) {
    for (double w : s.throughput_mbps) {
      if (!std::isfinite(w) || w < 0.0)
        throw std::invalid_argument(
            "Cs2pEngine: training session " + std::to_string(s.id) +
            " has a NaN, infinite, or negative throughput sample");
    }
  }
  return training;
}

/// Deterministically subsamples up to `cap` sequences from the sessions at
/// `indices` (even stride, so long and short sessions stay represented).
std::vector<std::vector<double>> gather_sequences(const Dataset& training,
                                                  const std::vector<std::size_t>& indices,
                                                  std::size_t cap) {
  std::vector<std::vector<double>> sequences;
  if (indices.empty() || cap == 0) return sequences;
  const std::size_t stride = indices.size() > cap ? indices.size() / cap : 1;
  for (std::size_t i = 0; i < indices.size() && sequences.size() < cap; i += stride) {
    const auto& series = training.sessions()[indices[i]].throughput_mbps;
    if (series.size() >= 2) sequences.push_back(series);
  }
  return sequences;
}

}  // namespace

Cs2pEngine::MetricHandles Cs2pEngine::MetricHandles::create(
    obs::MetricsRegistry& registry) {
  MetricHandles m;
  m.sessions = &registry.counter("cs2p_engine_sessions_total");
  m.global_fallbacks = &registry.counter("cs2p_engine_global_fallbacks_total");
  m.cluster_hits = &registry.counter("cs2p_engine_cluster_hits_total");
  m.drifted_serves = &registry.counter("cs2p_engine_drifted_serves_total");
  m.quarantined_serves =
      &registry.counter("cs2p_engine_quarantined_serves_total");
  m.clusters_trained = &registry.counter("cs2p_engine_clusters_trained_total");
  m.clusters_restored = &registry.counter("cs2p_engine_clusters_restored_total");
  m.clusters_quarantined =
      &registry.counter("cs2p_engine_clusters_quarantined_total");
  m.guarded_sessions = &registry.counter("cs2p_engine_guarded_sessions_total");
  m.guardrail_trips = &registry.counter("cs2p_engine_guardrail_trips_total");
  m.guardrail_recoveries =
      &registry.counter("cs2p_engine_guardrail_recoveries_total");
  m.drifted_clusters = &registry.gauge("cs2p_engine_drifted_clusters");
  m.em_seconds = &registry.histogram("cs2p_engine_em_train_seconds",
                                     obs::default_latency_buckets_seconds());
  return m;
}

BaumWelchResult Cs2pEngine::run_trainer(
    const std::vector<std::vector<double>>& sequences) const {
  const auto start = std::chrono::steady_clock::now();
  BaumWelchResult result = config_.trainer ? config_.trainer(sequences, config_.hmm)
                                           : train_hmm(sequences, config_.hmm);
  m_.em_seconds->observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

Cs2pEngine::Cs2pEngine(Dataset training, Cs2pConfig config)
    : training_(validate_training_set(std::move(training))),
      config_(std::move(config)),
      index_(training_, enumerate_candidates()),
      selector_(index_, config_.selector),
      metrics_(config_.metrics ? config_.metrics
                               : std::make_shared<obs::MetricsRegistry>()),
      m_(MetricHandles::create(*metrics_)),
      guardrail_metrics_(GuardrailMetrics::from_registry(*metrics_)) {
  std::vector<double> initials;
  std::vector<std::size_t> all_indices;
  for (std::size_t i = 0; i < training_.size(); ++i) {
    const auto& s = training_.sessions()[i];
    if (s.throughput_mbps.empty()) continue;
    initials.push_back(s.initial_throughput());
    all_indices.push_back(i);
  }
  if (initials.empty())
    throw std::invalid_argument("Cs2pEngine: training set has no observations");

  global_initial_ = config_.median_initial ? median(initials) : mean(initials);

  auto sequences =
      gather_sequences(training_, all_indices, config_.max_global_sequences);
  if (sequences.empty())
    throw std::invalid_argument("Cs2pEngine: no usable training sequences");
  // A failed *global* training is fatal: there is no coarser model to fall
  // back to, so TrainingError propagates to the caller here (unlike the
  // per-cluster path, which quarantines).
  global_hmm_ = run_trainer(sequences).model;
}

Cs2pEngine::Cs2pEngine(Dataset training, Cs2pConfig config,
                       EngineRestoreData restored)
    : training_(validate_training_set(std::move(training))),
      config_(std::move(config)),
      index_(training_, enumerate_candidates()),
      selector_(index_, config_.selector, std::move(restored.selector_table)),
      metrics_(config_.metrics ? config_.metrics
                               : std::make_shared<obs::MetricsRegistry>()),
      m_(MetricHandles::create(*metrics_)),
      guardrail_metrics_(GuardrailMetrics::from_registry(*metrics_)),
      global_hmm_(std::move(restored.global_hmm)),
      global_initial_(restored.global_initial) {
  global_hmm_.validate(1e-3);
  if (!std::isfinite(global_initial_) || global_initial_ < 0.0)
    throw std::invalid_argument("Cs2pEngine: restored global initial invalid");
  for (auto& entry : restored.cluster_models) {
    if (entry.candidate_id >= index_.num_candidates())
      throw std::invalid_argument(
          "Cs2pEngine: restored cluster model has unknown candidate id");
    const auto& clusters = index_.index_for(entry.candidate_id).clusters();
    const auto it = clusters.find(entry.bucket_key);
    if (it == clusters.end())
      throw std::invalid_argument(
          "Cs2pEngine: restored cluster model has unknown bucket key");
    entry.hmm.validate(1e-3);
    const auto [slot, inserted] = hmm_cache_.emplace(
        &it->second, std::make_unique<GaussianHmm>(std::move(entry.hmm)));
    (void)slot;
    if (!inserted)
      throw std::invalid_argument(
          "Cs2pEngine: duplicate cluster model in restored state");
    m_.clusters_restored->inc();
  }
  lineage_ = restored.lineage;
}

const Cluster* Cs2pEngine::find_cluster(std::size_t candidate_id,
                                        const std::string& bucket_key) const {
  if (candidate_id >= index_.num_candidates()) return nullptr;
  const auto& clusters = index_.index_for(candidate_id).clusters();
  const auto it = clusters.find(bucket_key);
  return it == clusters.end() ? nullptr : &it->second;
}

ClusterModelView Cs2pEngine::cluster_model_view(
    std::size_t candidate_id, const std::string& bucket_key) const {
  ClusterModelView view;
  const Cluster* cluster = find_cluster(candidate_id, bucket_key);
  if (cluster == nullptr) {
    view.hmm = global_hmm_;
    return view;
  }
  {
    std::scoped_lock lock(drift_mutex_);
    if (drifted_.contains(cluster)) {
      view.hmm = global_hmm_;
      return view;
    }
  }
  std::scoped_lock lock(cache_mutex_);
  if (!quarantined_.contains(cluster)) {
    const auto it = hmm_cache_.find(cluster);
    if (it != hmm_cache_.end()) {
      view.hmm = *it->second;
      view.cluster_specific = true;
      return view;
    }
  }
  view.hmm = global_hmm_;
  return view;
}

std::vector<ClusterModelEntry> Cs2pEngine::export_cluster_models() const {
  // Reverse map: Cluster* -> stable (candidate id, bucket key) identity.
  std::unordered_map<const Cluster*, ClusterModelEntry> identity;
  for (std::size_t c = 0; c < index_.num_candidates(); ++c) {
    for (const auto& [key, cluster] : index_.index_for(c).clusters())
      identity.emplace(&cluster, ClusterModelEntry{c, key, {}});
  }

  std::vector<ClusterModelEntry> out;
  std::scoped_lock lock(cache_mutex_);
  out.reserve(hmm_cache_.size());
  for (const auto& [cluster, hmm] : hmm_cache_) {
    const auto it = identity.find(cluster);
    if (it == identity.end()) continue;  // unreachable: cache keys come from index_
    ClusterModelEntry entry = it->second;
    entry.hmm = *hmm;
    out.push_back(std::move(entry));
  }
  return out;
}

double Cs2pEngine::cluster_initial(const Cluster& cluster) const {
  if (config_.median_initial) return cluster.initial_median;
  std::vector<double> initials;
  initials.reserve(cluster.size());
  for (std::size_t i : cluster.session_indices)
    initials.push_back(training_.sessions()[i].initial_throughput());
  return mean(initials);
}

const GaussianHmm& Cs2pEngine::cluster_hmm(const Cluster& cluster) const {
  {
    std::scoped_lock lock(cache_mutex_);
    if (quarantined_.contains(&cluster)) return global_hmm_;
    const auto it = hmm_cache_.find(&cluster);
    if (it != hmm_cache_.end()) return *it->second;
  }

  // Train outside the lock: EM dominates, and a rare duplicate training of
  // the same cluster is harmless (first insert wins).
  auto sequences = gather_sequences(training_, cluster.session_indices,
                                    config_.max_sequences_per_cluster);
  std::unique_ptr<GaussianHmm> model;
  if (sequences.empty()) {
    model = std::make_unique<GaussianHmm>(global_hmm_);
  } else {
    try {
      model = std::make_unique<GaussianHmm>(run_trainer(sequences).model);
    } catch (const std::exception&) {
      // Failure isolation: one degenerate cluster (EM collapse, zero
      // variance, injected fault) must not throw into the serving path —
      // and must not leave a partial cache entry that re-throws on every
      // later session. Quarantine it once and serve the global model.
      std::scoped_lock lock(cache_mutex_);
      if (quarantined_.insert(&cluster).second) m_.clusters_quarantined->inc();
      return global_hmm_;
    }
  }

  std::scoped_lock lock(cache_mutex_);
  const auto [it, inserted] = hmm_cache_.emplace(&cluster, std::move(model));
  if (inserted) m_.clusters_trained->inc();
  return *it->second;
}

SessionModelRef Cs2pEngine::session_model(const SessionFeatures& features,
                                          double start_hour) const {
  const SelectionResult selection = selector_.select(features, start_hour);
  m_.sessions->inc();
  if (!selection.found) m_.global_fallbacks->inc();

  SessionModelRef ref;
  if (!selection.found) {
    ref.hmm = &global_hmm_;
    ref.initial_prediction = global_initial_;
    ref.used_global_model = true;
    ref.cluster_label = "(global)";
    return ref;
  }

  const CandidateIndex& candidate = index_.index_for(selection.candidate_id);
  const Cluster* cluster = candidate.find(features, start_hour);
  // select() only returns candidates with a usable cluster for this session.
  {
    // A drifted cluster's trained state no longer matches what its sessions
    // measure, so — unlike quarantine — even the cluster's initial median is
    // suspect: serve the global model wholesale and leave ref.cluster null
    // so post-drift sessions don't keep feeding the quorum that already
    // fired.
    std::scoped_lock lock(drift_mutex_);
    if (drifted_.contains(cluster)) {
      m_.drifted_serves->inc();
      ref.hmm = &global_hmm_;
      ref.initial_prediction = global_initial_;
      ref.used_global_model = true;
      ref.cluster_drifted = true;
      ref.cluster_label = candidate_to_string(candidate.candidate()) + " (drifted)";
      ref.cluster_size = cluster->size();
      return ref;
    }
  }
  ref.hmm = &cluster_hmm(*cluster);
  ref.initial_prediction = cluster_initial(*cluster);
  ref.cluster_label = candidate_to_string(candidate.candidate());
  ref.cluster_size = cluster->size();
  ref.cluster = cluster;
  // A quarantined cluster's sessions run on the global HMM (the cluster's
  // initial median is still valid — it is raw data, not an EM product).
  {
    std::scoped_lock lock(cache_mutex_);
    if (quarantined_.contains(cluster)) {
      ref.used_global_model = true;
      ref.cluster_label += " (quarantined)";
    }
  }
  if (ref.used_global_model)
    m_.quarantined_serves->inc();
  else
    m_.cluster_hits->inc();
  return ref;
}

std::size_t Cs2pEngine::warm_up(std::size_t max_clusters) const {
  std::size_t before = 0;
  {
    std::scoped_lock lock(cache_mutex_);
    before = hmm_cache_.size();
  }
  for (const auto& session : training_.sessions()) {
    if (session.throughput_mbps.empty()) continue;
    const SelectionResult selection =
        selector_.select(session.features, session.start_hour);
    if (!selection.found) continue;
    const Cluster* cluster = index_.index_for(selection.candidate_id)
                                 .find(session.features, session.start_hour);
    if (cluster != nullptr) (void)cluster_hmm(*cluster);
    if (max_clusters > 0) {
      std::scoped_lock lock(cache_mutex_);
      if (hmm_cache_.size() - before >= max_clusters) break;
    }
  }
  std::scoped_lock lock(cache_mutex_);
  return hmm_cache_.size() - before;
}

SurpriseBaseline Cs2pEngine::surprise_baseline(const GaussianHmm* hmm) const {
  {
    std::scoped_lock lock(cache_mutex_);
    const auto it = baseline_cache_.find(hmm);
    if (it != baseline_cache_.end()) return it->second;
  }
  // Monte Carlo over the model itself, outside the lock: it replays
  // baseline_sequences synthetic sessions through a forward filter. A rare
  // duplicate computation is harmless (deterministic seed, first insert
  // wins).
  const SurpriseBaseline baseline =
      compute_surprise_baseline(*hmm, config_.guardrail);
  std::scoped_lock lock(cache_mutex_);
  return baseline_cache_.emplace(hmm, baseline).first->second;
}

std::shared_ptr<const HmmKernel> Cs2pEngine::hmm_kernel(
    const GaussianHmm* hmm) const {
  {
    std::scoped_lock lock(cache_mutex_);
    const auto it = kernel_cache_.find(hmm);
    if (it != kernel_cache_.end()) return it->second;
  }
  // Built outside the lock (Matrix::pow up to kMaxCachedPowers); a rare
  // duplicate build is harmless, first insert wins and the loser's copy is
  // dropped.
  auto kernel = HmmKernel::create(*hmm);
  std::scoped_lock lock(cache_mutex_);
  return kernel_cache_.emplace(hmm, std::move(kernel)).first->second;
}

void Cs2pEngine::note_guardrail_event(const Cluster* cluster,
                                      GuardrailEvent event,
                                      bool tripped) const {
  std::scoped_lock lock(drift_mutex_);
  DriftCounters* counters =
      cluster != nullptr ? &drift_counters_[cluster] : nullptr;
  switch (event) {
    case GuardrailEvent::kOpened:
      m_.guarded_sessions->inc();
      if (counters != nullptr) ++counters->live;
      break;
    case GuardrailEvent::kTripped:
      m_.guardrail_trips->inc();
      if (counters != nullptr) {
        ++counters->tripped;
        // Quorum check: an absolute floor keeps one or two unlucky sessions
        // in a tiny cluster from condemning it; the ratio keeps a large
        // cluster from needing hundreds of trips.
        if (counters->tripped >= config_.drift.min_tripped_sessions &&
            counters->live > 0 &&
            static_cast<double>(counters->tripped) >=
                config_.drift.quorum * static_cast<double>(counters->live)) {
          if (drifted_.insert(cluster).second)
            m_.drifted_clusters->set(static_cast<double>(drifted_.size()));
        }
      }
      break;
    case GuardrailEvent::kRecovered:
      m_.guardrail_recoveries->inc();
      if (counters != nullptr && counters->tripped > 0) --counters->tripped;
      break;
    case GuardrailEvent::kClosed:
      if (counters != nullptr) {
        if (counters->live > 0) --counters->live;
        if (tripped && counters->tripped > 0) --counters->tripped;
      }
      break;
  }
}

std::size_t Cs2pEngine::drifted_cluster_count() const {
  std::scoped_lock lock(drift_mutex_);
  return drifted_.size();
}

bool Cs2pEngine::cluster_drifted(const Cluster* cluster) const {
  std::scoped_lock lock(drift_mutex_);
  return drifted_.contains(cluster);
}

EngineStats Cs2pEngine::stats() const {
  EngineStats out;
  out.sessions_served = m_.sessions->value();
  out.global_fallbacks = m_.global_fallbacks->value();
  out.clusters_trained = m_.clusters_trained->value();
  out.clusters_restored = m_.clusters_restored->value();
  out.clusters_quarantined = m_.clusters_quarantined->value();
  out.guarded_sessions = m_.guarded_sessions->value();
  out.guardrail_trips = m_.guardrail_trips->value();
  out.guardrail_recoveries = m_.guardrail_recoveries->value();
  std::scoped_lock lock(drift_mutex_);
  out.clusters_drifted = drifted_.size();
  return out;
}

Cs2pPredictorModel::Cs2pPredictorModel(Dataset training, Cs2pConfig config)
    : engine_(std::make_shared<Cs2pEngine>(std::move(training), config)) {}

Cs2pPredictorModel::Cs2pPredictorModel(std::shared_ptr<const Cs2pEngine> engine)
    : engine_(std::move(engine)) {
  if (!engine_) throw std::invalid_argument("Cs2pPredictorModel: null engine");
}

std::unique_ptr<SessionPredictor> Cs2pPredictorModel::make_session(
    const SessionContext& context) const {
  const SessionModelRef ref =
      engine_->session_model(context.features, context.start_hour);
  const Cs2pConfig& config = engine_->config();
  // Sessions share their model's SoA kernel: one contiguous constants block
  // per model instead of a private copy per session, and the handle the
  // batch driver groups by.
  auto kernel = engine_->hmm_kernel(ref.hmm);
  if (!config.guardrail.enabled) {
    return std::make_unique<HmmSessionPredictor>(
        std::move(kernel), ref.initial_prediction, config.prediction_rule);
  }

  std::uint8_t static_flags = serve_flags::kPrimary;
  if (ref.used_global_model) static_flags |= serve_flags::kGlobalModel;
  if (ref.cluster_drifted) static_flags |= serve_flags::kClusterDrifted;
  // The callback owns a shared_ptr to the engine: a guarded session may
  // outlive a model hot-swap, and its kClosed event must still find the
  // drift counters it incremented at kOpened.
  auto engine = engine_;
  const Cluster* cluster = ref.cluster;
  return std::make_unique<GuardedSessionPredictor>(
      std::move(kernel), ref.initial_prediction, engine_->global_initial(),
      engine_->surprise_baseline(ref.hmm), config.guardrail,
      config.prediction_rule, static_flags,
      [engine = std::move(engine), cluster](GuardrailEvent event, bool tripped) {
        engine->note_guardrail_event(cluster, event, tripped);
      },
      &engine_->guardrail_metrics());
}

std::optional<DownloadableModel> Cs2pPredictorModel::downloadable_model(
    const SessionContext& context) const {
  const SessionModelRef ref =
      engine_->session_model(context.features, context.start_hour);
  DownloadableModel out;
  out.initial_mbps = ref.initial_prediction;
  out.used_global_model = ref.used_global_model;
  out.hmm = *ref.hmm;
  return out;
}

}  // namespace cs2p
