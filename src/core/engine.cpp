#include "core/engine.h"

#include <cmath>
#include <stdexcept>

#include "predictors/hmm_session.h"
#include "util/stats.h"

namespace cs2p {
namespace {

/// Rejects NaN/negative throughput samples before any index or HMM sees
/// them (one bad sample silently poisons Baum-Welch sufficient statistics).
/// Runs in the member-initializer list, ahead of ClusterIndex and
/// FeatureSelector construction. Empty sessions are tolerated here and
/// skipped by training, like before.
Dataset validate_training_set(Dataset training) {
  for (const auto& s : training.sessions()) {
    for (double w : s.throughput_mbps) {
      if (!std::isfinite(w) || w < 0.0)
        throw std::invalid_argument(
            "Cs2pEngine: training session " + std::to_string(s.id) +
            " has a NaN, infinite, or negative throughput sample");
    }
  }
  return training;
}

/// Deterministically subsamples up to `cap` sequences from the sessions at
/// `indices` (even stride, so long and short sessions stay represented).
std::vector<std::vector<double>> gather_sequences(const Dataset& training,
                                                  const std::vector<std::size_t>& indices,
                                                  std::size_t cap) {
  std::vector<std::vector<double>> sequences;
  if (indices.empty() || cap == 0) return sequences;
  const std::size_t stride = indices.size() > cap ? indices.size() / cap : 1;
  for (std::size_t i = 0; i < indices.size() && sequences.size() < cap; i += stride) {
    const auto& series = training.sessions()[indices[i]].throughput_mbps;
    if (series.size() >= 2) sequences.push_back(series);
  }
  return sequences;
}

}  // namespace

BaumWelchResult Cs2pEngine::run_trainer(
    const std::vector<std::vector<double>>& sequences) const {
  return config_.trainer ? config_.trainer(sequences, config_.hmm)
                         : train_hmm(sequences, config_.hmm);
}

Cs2pEngine::Cs2pEngine(Dataset training, Cs2pConfig config)
    : training_(validate_training_set(std::move(training))),
      config_(std::move(config)),
      index_(training_, enumerate_candidates()),
      selector_(index_, config_.selector) {
  std::vector<double> initials;
  std::vector<std::size_t> all_indices;
  for (std::size_t i = 0; i < training_.size(); ++i) {
    const auto& s = training_.sessions()[i];
    if (s.throughput_mbps.empty()) continue;
    initials.push_back(s.initial_throughput());
    all_indices.push_back(i);
  }
  if (initials.empty())
    throw std::invalid_argument("Cs2pEngine: training set has no observations");

  global_initial_ = config_.median_initial ? median(initials) : mean(initials);

  auto sequences =
      gather_sequences(training_, all_indices, config_.max_global_sequences);
  if (sequences.empty())
    throw std::invalid_argument("Cs2pEngine: no usable training sequences");
  // A failed *global* training is fatal: there is no coarser model to fall
  // back to, so TrainingError propagates to the caller here (unlike the
  // per-cluster path, which quarantines).
  global_hmm_ = run_trainer(sequences).model;
}

Cs2pEngine::Cs2pEngine(Dataset training, Cs2pConfig config,
                       EngineRestoreData restored)
    : training_(validate_training_set(std::move(training))),
      config_(std::move(config)),
      index_(training_, enumerate_candidates()),
      selector_(index_, config_.selector, std::move(restored.selector_table)),
      global_hmm_(std::move(restored.global_hmm)),
      global_initial_(restored.global_initial) {
  global_hmm_.validate(1e-3);
  if (!std::isfinite(global_initial_) || global_initial_ < 0.0)
    throw std::invalid_argument("Cs2pEngine: restored global initial invalid");
  for (auto& entry : restored.cluster_models) {
    if (entry.candidate_id >= index_.num_candidates())
      throw std::invalid_argument(
          "Cs2pEngine: restored cluster model has unknown candidate id");
    const auto& clusters = index_.index_for(entry.candidate_id).clusters();
    const auto it = clusters.find(entry.bucket_key);
    if (it == clusters.end())
      throw std::invalid_argument(
          "Cs2pEngine: restored cluster model has unknown bucket key");
    entry.hmm.validate(1e-3);
    const auto [slot, inserted] = hmm_cache_.emplace(
        &it->second, std::make_unique<GaussianHmm>(std::move(entry.hmm)));
    (void)slot;
    if (!inserted)
      throw std::invalid_argument(
          "Cs2pEngine: duplicate cluster model in restored state");
    ++stats_.clusters_restored;
  }
}

std::vector<ClusterModelEntry> Cs2pEngine::export_cluster_models() const {
  // Reverse map: Cluster* -> stable (candidate id, bucket key) identity.
  std::unordered_map<const Cluster*, ClusterModelEntry> identity;
  for (std::size_t c = 0; c < index_.num_candidates(); ++c) {
    for (const auto& [key, cluster] : index_.index_for(c).clusters())
      identity.emplace(&cluster, ClusterModelEntry{c, key, {}});
  }

  std::vector<ClusterModelEntry> out;
  std::scoped_lock lock(cache_mutex_);
  out.reserve(hmm_cache_.size());
  for (const auto& [cluster, hmm] : hmm_cache_) {
    const auto it = identity.find(cluster);
    if (it == identity.end()) continue;  // unreachable: cache keys come from index_
    ClusterModelEntry entry = it->second;
    entry.hmm = *hmm;
    out.push_back(std::move(entry));
  }
  return out;
}

double Cs2pEngine::cluster_initial(const Cluster& cluster) const {
  if (config_.median_initial) return cluster.initial_median;
  std::vector<double> initials;
  initials.reserve(cluster.size());
  for (std::size_t i : cluster.session_indices)
    initials.push_back(training_.sessions()[i].initial_throughput());
  return mean(initials);
}

const GaussianHmm& Cs2pEngine::cluster_hmm(const Cluster& cluster) const {
  {
    std::scoped_lock lock(cache_mutex_);
    if (quarantined_.contains(&cluster)) return global_hmm_;
    const auto it = hmm_cache_.find(&cluster);
    if (it != hmm_cache_.end()) return *it->second;
  }

  // Train outside the lock: EM dominates, and a rare duplicate training of
  // the same cluster is harmless (first insert wins).
  auto sequences = gather_sequences(training_, cluster.session_indices,
                                    config_.max_sequences_per_cluster);
  std::unique_ptr<GaussianHmm> model;
  if (sequences.empty()) {
    model = std::make_unique<GaussianHmm>(global_hmm_);
  } else {
    try {
      model = std::make_unique<GaussianHmm>(run_trainer(sequences).model);
    } catch (const std::exception&) {
      // Failure isolation: one degenerate cluster (EM collapse, zero
      // variance, injected fault) must not throw into the serving path —
      // and must not leave a partial cache entry that re-throws on every
      // later session. Quarantine it once and serve the global model.
      std::scoped_lock lock(cache_mutex_);
      if (quarantined_.insert(&cluster).second) ++stats_.clusters_quarantined;
      return global_hmm_;
    }
  }

  std::scoped_lock lock(cache_mutex_);
  const auto [it, inserted] = hmm_cache_.emplace(&cluster, std::move(model));
  if (inserted) ++stats_.clusters_trained;
  return *it->second;
}

SessionModelRef Cs2pEngine::session_model(const SessionFeatures& features,
                                          double start_hour) const {
  const SelectionResult selection = selector_.select(features, start_hour);
  {
    std::scoped_lock lock(cache_mutex_);
    ++stats_.sessions_served;
    if (!selection.found) ++stats_.global_fallbacks;
  }

  SessionModelRef ref;
  if (!selection.found) {
    ref.hmm = &global_hmm_;
    ref.initial_prediction = global_initial_;
    ref.used_global_model = true;
    ref.cluster_label = "(global)";
    return ref;
  }

  const CandidateIndex& candidate = index_.index_for(selection.candidate_id);
  const Cluster* cluster = candidate.find(features, start_hour);
  // select() only returns candidates with a usable cluster for this session.
  {
    // A drifted cluster's trained state no longer matches what its sessions
    // measure, so — unlike quarantine — even the cluster's initial median is
    // suspect: serve the global model wholesale and leave ref.cluster null
    // so post-drift sessions don't keep feeding the quorum that already
    // fired.
    std::scoped_lock lock(drift_mutex_);
    if (drifted_.contains(cluster)) {
      ref.hmm = &global_hmm_;
      ref.initial_prediction = global_initial_;
      ref.used_global_model = true;
      ref.cluster_drifted = true;
      ref.cluster_label = candidate_to_string(candidate.candidate()) + " (drifted)";
      ref.cluster_size = cluster->size();
      return ref;
    }
  }
  ref.hmm = &cluster_hmm(*cluster);
  ref.initial_prediction = cluster_initial(*cluster);
  ref.cluster_label = candidate_to_string(candidate.candidate());
  ref.cluster_size = cluster->size();
  ref.cluster = cluster;
  // A quarantined cluster's sessions run on the global HMM (the cluster's
  // initial median is still valid — it is raw data, not an EM product).
  {
    std::scoped_lock lock(cache_mutex_);
    if (quarantined_.contains(cluster)) {
      ref.used_global_model = true;
      ref.cluster_label += " (quarantined)";
    }
  }
  return ref;
}

std::size_t Cs2pEngine::warm_up(std::size_t max_clusters) const {
  std::size_t before = 0;
  {
    std::scoped_lock lock(cache_mutex_);
    before = hmm_cache_.size();
  }
  for (const auto& session : training_.sessions()) {
    if (session.throughput_mbps.empty()) continue;
    const SelectionResult selection =
        selector_.select(session.features, session.start_hour);
    if (!selection.found) continue;
    const Cluster* cluster = index_.index_for(selection.candidate_id)
                                 .find(session.features, session.start_hour);
    if (cluster != nullptr) (void)cluster_hmm(*cluster);
    if (max_clusters > 0) {
      std::scoped_lock lock(cache_mutex_);
      if (hmm_cache_.size() - before >= max_clusters) break;
    }
  }
  std::scoped_lock lock(cache_mutex_);
  return hmm_cache_.size() - before;
}

SurpriseBaseline Cs2pEngine::surprise_baseline(const GaussianHmm* hmm) const {
  {
    std::scoped_lock lock(cache_mutex_);
    const auto it = baseline_cache_.find(hmm);
    if (it != baseline_cache_.end()) return it->second;
  }
  // Monte Carlo over the model itself, outside the lock: it replays
  // baseline_sequences synthetic sessions through a forward filter. A rare
  // duplicate computation is harmless (deterministic seed, first insert
  // wins).
  const SurpriseBaseline baseline =
      compute_surprise_baseline(*hmm, config_.guardrail);
  std::scoped_lock lock(cache_mutex_);
  return baseline_cache_.emplace(hmm, baseline).first->second;
}

void Cs2pEngine::note_guardrail_event(const Cluster* cluster,
                                      GuardrailEvent event,
                                      bool tripped) const {
  std::scoped_lock lock(drift_mutex_);
  DriftCounters* counters =
      cluster != nullptr ? &drift_counters_[cluster] : nullptr;
  switch (event) {
    case GuardrailEvent::kOpened:
      ++guarded_sessions_;
      if (counters != nullptr) ++counters->live;
      break;
    case GuardrailEvent::kTripped:
      ++guardrail_trips_;
      if (counters != nullptr) {
        ++counters->tripped;
        // Quorum check: an absolute floor keeps one or two unlucky sessions
        // in a tiny cluster from condemning it; the ratio keeps a large
        // cluster from needing hundreds of trips.
        if (counters->tripped >= config_.drift.min_tripped_sessions &&
            counters->live > 0 &&
            static_cast<double>(counters->tripped) >=
                config_.drift.quorum * static_cast<double>(counters->live)) {
          drifted_.insert(cluster);
        }
      }
      break;
    case GuardrailEvent::kRecovered:
      ++guardrail_recoveries_;
      if (counters != nullptr && counters->tripped > 0) --counters->tripped;
      break;
    case GuardrailEvent::kClosed:
      if (counters != nullptr) {
        if (counters->live > 0) --counters->live;
        if (tripped && counters->tripped > 0) --counters->tripped;
      }
      break;
  }
}

std::size_t Cs2pEngine::drifted_cluster_count() const {
  std::scoped_lock lock(drift_mutex_);
  return drifted_.size();
}

bool Cs2pEngine::cluster_drifted(const Cluster* cluster) const {
  std::scoped_lock lock(drift_mutex_);
  return drifted_.contains(cluster);
}

EngineStats Cs2pEngine::stats() const {
  EngineStats out;
  {
    std::scoped_lock lock(cache_mutex_);
    out = stats_;
  }
  std::scoped_lock lock(drift_mutex_);
  out.clusters_drifted = drifted_.size();
  out.guarded_sessions = guarded_sessions_;
  out.guardrail_trips = guardrail_trips_;
  out.guardrail_recoveries = guardrail_recoveries_;
  return out;
}

Cs2pPredictorModel::Cs2pPredictorModel(Dataset training, Cs2pConfig config)
    : engine_(std::make_shared<Cs2pEngine>(std::move(training), config)) {}

Cs2pPredictorModel::Cs2pPredictorModel(std::shared_ptr<const Cs2pEngine> engine)
    : engine_(std::move(engine)) {
  if (!engine_) throw std::invalid_argument("Cs2pPredictorModel: null engine");
}

std::unique_ptr<SessionPredictor> Cs2pPredictorModel::make_session(
    const SessionContext& context) const {
  const SessionModelRef ref =
      engine_->session_model(context.features, context.start_hour);
  const Cs2pConfig& config = engine_->config();
  if (!config.guardrail.enabled) {
    return std::make_unique<HmmSessionPredictor>(
        *ref.hmm, ref.initial_prediction, config.prediction_rule);
  }

  std::uint8_t static_flags = serve_flags::kPrimary;
  if (ref.used_global_model) static_flags |= serve_flags::kGlobalModel;
  if (ref.cluster_drifted) static_flags |= serve_flags::kClusterDrifted;
  // The callback owns a shared_ptr to the engine: a guarded session may
  // outlive a model hot-swap, and its kClosed event must still find the
  // drift counters it incremented at kOpened.
  auto engine = engine_;
  const Cluster* cluster = ref.cluster;
  return std::make_unique<GuardedSessionPredictor>(
      *ref.hmm, ref.initial_prediction, engine_->global_initial(),
      engine_->surprise_baseline(ref.hmm), config.guardrail,
      config.prediction_rule, static_flags,
      [engine = std::move(engine), cluster](GuardrailEvent event, bool tripped) {
        engine->note_guardrail_event(cluster, event, tripped);
      });
}

std::optional<DownloadableModel> Cs2pPredictorModel::downloadable_model(
    const SessionContext& context) const {
  const SessionModelRef ref =
      engine_->session_model(context.features, context.start_hour);
  DownloadableModel out;
  out.initial_mbps = ref.initial_prediction;
  out.used_global_model = ref.used_global_model;
  out.hmm = *ref.hmm;
  return out;
}

}  // namespace cs2p
