#include "core/model_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace cs2p {
namespace {

constexpr std::string_view kMagic = "cs2p-snapshot";
constexpr std::string_view kMagicV1 = "cs2p-snapshot-v1";
constexpr double kInf = std::numeric_limits<double>::infinity();

// -- FNV-1a 64 ---------------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a64(std::string_view data, std::uint64_t h = kFnvOffset) noexcept {
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_mix_u64(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_mix_double(std::uint64_t h, double v) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return fnv_mix_u64(h, bits);
}

std::uint64_t fnv_mix_string(std::uint64_t h, std::string_view s) noexcept {
  h = fnv_mix_u64(h, s.size());
  return fnv1a64(s, h);
}

std::string hex16(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

// -- payload cursor ----------------------------------------------------------

/// Sequential reader over the (already checksum-verified) payload. Any
/// structural surprise past this point is corruption that the checksum
/// could not catch only if the snapshot was *written* wrong — still
/// reported as a typed error, never undefined behaviour.
class Cursor {
 public:
  explicit Cursor(std::string_view payload) : payload_(payload) {}

  std::string_view next_line() {
    if (pos_ >= payload_.size())
      throw SnapshotError(SnapshotErrorCode::kCorruptModel,
                          "payload ended early");
    const std::size_t nl = payload_.find('\n', pos_);
    if (nl == std::string_view::npos)
      throw SnapshotError(SnapshotErrorCode::kCorruptModel,
                          "unterminated payload line");
    std::string_view line = payload_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return line;
  }

  /// Takes `n` raw bytes followed by a terminating newline.
  std::string_view take_block(std::size_t n) {
    if (payload_.size() - pos_ < n + 1 || payload_[pos_ + n] != '\n')
      throw SnapshotError(SnapshotErrorCode::kCorruptModel,
                          "length-prefixed block out of range");
    std::string_view block = payload_.substr(pos_, n);
    pos_ += n + 1;
    return block;
  }

  bool at_end() const noexcept { return pos_ >= payload_.size(); }

 private:
  std::string_view payload_;
  std::size_t pos_ = 0;
};

[[noreturn]] void corrupt(const std::string& what) {
  throw SnapshotError(SnapshotErrorCode::kCorruptModel, what);
}

std::istringstream line_stream(std::string_view line) {
  return std::istringstream(std::string(line));
}

/// Expects `tag` as the line's first token; returns a stream positioned
/// after it.
std::istringstream expect_tag(Cursor& cursor, std::string_view tag) {
  auto is = line_stream(cursor.next_line());
  std::string got;
  if (!(is >> got) || got != tag) corrupt("expected '" + std::string(tag) + "' record");
  return is;
}

std::uint64_t parse_hex16(const std::string& token) {
  if (token.size() != 16 ||
      token.find_first_not_of("0123456789abcdef") != std::string::npos)
    corrupt("malformed fingerprint/checksum token");
  return std::stoull(token, nullptr, 16);
}

}  // namespace

std::string_view snapshot_error_code_name(SnapshotErrorCode code) noexcept {
  switch (code) {
    case SnapshotErrorCode::kIo: return "IO";
    case SnapshotErrorCode::kBadMagic: return "BAD_MAGIC";
    case SnapshotErrorCode::kVersionMismatch: return "VERSION_MISMATCH";
    case SnapshotErrorCode::kTruncated: return "TRUNCATED";
    case SnapshotErrorCode::kChecksumMismatch: return "CHECKSUM_MISMATCH";
    case SnapshotErrorCode::kConfigMismatch: return "CONFIG_MISMATCH";
    case SnapshotErrorCode::kDatasetMismatch: return "DATASET_MISMATCH";
    case SnapshotErrorCode::kCorruptModel: return "CORRUPT_MODEL";
  }
  return "UNKNOWN";
}

std::uint64_t snapshot_checksum(const std::string& snapshot_bytes) noexcept {
  return fnv1a64(snapshot_bytes);
}

std::uint64_t config_fingerprint(const Cs2pConfig& config) noexcept {
  std::uint64_t h = kFnvOffset;
  h = fnv_mix_u64(h, config.selector.min_cluster_size);
  h = fnv_mix_u64(h, config.selector.estimation_set_size);
  h = fnv_mix_u64(h, config.hmm.num_states);
  h = fnv_mix_u64(h, static_cast<std::uint64_t>(config.hmm.max_iterations));
  h = fnv_mix_double(h, config.hmm.tolerance);
  h = fnv_mix_double(h, config.hmm.min_sigma);
  h = fnv_mix_double(h, config.hmm.transition_prior);
  h = fnv_mix_u64(h, config.hmm.seed);
  h = fnv_mix_u64(h, config.max_sequences_per_cluster);
  h = fnv_mix_u64(h, config.max_global_sequences);
  h = fnv_mix_u64(h, static_cast<std::uint64_t>(config.prediction_rule));
  h = fnv_mix_u64(h, config.median_initial ? 1 : 0);
  // config.trainer is a test hook, not a semantic parameter: excluded.
  return h;
}

std::uint64_t dataset_fingerprint(const Dataset& dataset) noexcept {
  std::uint64_t h = kFnvOffset;
  h = fnv_mix_u64(h, dataset.size());
  for (const auto& s : dataset.sessions()) {
    h = fnv_mix_u64(h, static_cast<std::uint64_t>(s.id));
    h = fnv_mix_u64(h, static_cast<std::uint64_t>(s.day));
    h = fnv_mix_double(h, s.start_hour);
    h = fnv_mix_double(h, s.epoch_seconds);
    h = fnv_mix_string(h, s.features.isp);
    h = fnv_mix_string(h, s.features.as_number);
    h = fnv_mix_string(h, s.features.province);
    h = fnv_mix_string(h, s.features.city);
    h = fnv_mix_string(h, s.features.server);
    h = fnv_mix_string(h, s.features.client_prefix);
    h = fnv_mix_u64(h, s.throughput_mbps.size());
    for (double w : s.throughput_mbps) h = fnv_mix_double(h, w);
  }
  return h;
}

std::string serialize_engine(const Cs2pEngine& engine) {
  std::ostringstream payload;
  payload.precision(17);

  payload << "config " << hex16(config_fingerprint(engine.config())) << "\n";
  payload << "dataset " << hex16(dataset_fingerprint(engine.training())) << ' '
          << engine.training().size() << "\n";
  // Continuous-training lineage (DESIGN.md §15). Written unconditionally;
  // readers treat it as optional so pre-lineage snapshots stay loadable.
  payload << "lineage " << engine.lineage().generation << ' '
          << hex16(engine.lineage().parent_checksum) << "\n";
  payload << "global-initial " << engine.global_initial() << "\n";

  const std::string global_hmm = serialize_hmm(engine.global_hmm());
  payload << "global-hmm " << global_hmm.size() << "\n" << global_hmm << "\n";

  // Feature-selection error table, sparse: +inf ("cluster removed from
  // consideration") dominates the table and is the implicit default.
  const auto& table = engine.selector().error_table();
  payload << "selector-table " << table.size() << ' '
          << engine.training().size() << "\n";
  for (std::size_t c = 0; c < table.size(); ++c) {
    std::size_t finite = 0;
    for (double err : table[c])
      if (!std::isinf(err)) ++finite;
    if (finite == 0) continue;
    payload << "errs " << c << ' ' << finite;
    for (std::size_t i = 0; i < table[c].size(); ++i)
      if (!std::isinf(table[c][i])) payload << ' ' << i << ' ' << table[c][i];
    payload << "\n";
  }

  const auto cluster_models = engine.export_cluster_models();
  payload << "cluster-models " << cluster_models.size() << "\n";
  for (const auto& entry : cluster_models) {
    const std::string hmm = serialize_hmm(entry.hmm);
    // Bucket keys embed dataset feature values; length-prefix both blocks so
    // no separator choice can collide with their content.
    payload << "cluster " << entry.candidate_id << ' ' << entry.bucket_key.size()
            << ' ' << hmm.size() << "\n"
            << entry.bucket_key << "\n"
            << hmm << "\n";
  }
  payload << "end\n";

  const std::string body = payload.str();
  std::ostringstream out;
  out << kMagicV1 << ' ' << body.size() << "\n"
      << body << "checksum " << hex16(fnv1a64(body)) << "\n";
  return out.str();
}

EngineRestoreData parse_snapshot(const std::string& bytes,
                                 const Cs2pConfig& expected_config,
                                 const Dataset& training) {
  // -- framing: magic, declared length, checksum -----------------------------
  const std::size_t magic_probe = std::min(bytes.size(), kMagic.size());
  if (bytes.compare(0, magic_probe, kMagic, 0, magic_probe) != 0)
    throw SnapshotError(SnapshotErrorCode::kBadMagic, "not a cs2p snapshot");
  const std::size_t header_end = bytes.find('\n');
  if (bytes.size() < kMagic.size() || header_end == std::string::npos)
    throw SnapshotError(SnapshotErrorCode::kTruncated,
                        "incomplete snapshot header");

  auto header = line_stream(std::string_view(bytes).substr(0, header_end));
  std::string magic;
  std::uint64_t payload_bytes = 0;
  if (!(header >> magic))
    throw SnapshotError(SnapshotErrorCode::kBadMagic, "empty snapshot header");
  if (magic != kMagicV1)
    throw SnapshotError(SnapshotErrorCode::kVersionMismatch,
                        "unsupported snapshot version '" + magic + "'");
  if (!(header >> payload_bytes))
    throw SnapshotError(SnapshotErrorCode::kTruncated,
                        "snapshot header missing payload length");

  const std::size_t payload_begin = header_end + 1;
  if (bytes.size() - payload_begin < payload_bytes)
    throw SnapshotError(SnapshotErrorCode::kTruncated,
                        "payload shorter than declared (torn write)");
  const std::string_view payload =
      std::string_view(bytes).substr(payload_begin, payload_bytes);

  const std::string_view footer =
      std::string_view(bytes).substr(payload_begin + payload_bytes);
  const std::size_t footer_nl = footer.find('\n');
  if (footer_nl == std::string_view::npos)
    throw SnapshotError(SnapshotErrorCode::kTruncated,
                        "missing checksum footer");
  if (footer_nl + 1 != footer.size())
    throw SnapshotError(SnapshotErrorCode::kCorruptModel,
                        "trailing bytes after checksum footer");
  auto footer_line = line_stream(footer.substr(0, footer_nl));
  std::string tag, checksum_hex;
  if (!(footer_line >> tag >> checksum_hex) || tag != "checksum")
    throw SnapshotError(SnapshotErrorCode::kTruncated,
                        "malformed checksum footer");
  if (parse_hex16(checksum_hex) != fnv1a64(payload))
    throw SnapshotError(SnapshotErrorCode::kChecksumMismatch,
                        "payload checksum mismatch");

  // -- payload ---------------------------------------------------------------
  Cursor cursor(payload);

  {
    auto is = expect_tag(cursor, "config");
    std::string fp;
    if (!(is >> fp)) corrupt("config record missing fingerprint");
    if (parse_hex16(fp) != config_fingerprint(expected_config))
      throw SnapshotError(SnapshotErrorCode::kConfigMismatch,
                          "snapshot was trained under a different config");
  }
  {
    auto is = expect_tag(cursor, "dataset");
    std::string fp;
    std::size_t n = 0;
    if (!(is >> fp >> n)) corrupt("dataset record malformed");
    if (n != training.size() ||
        parse_hex16(fp) != dataset_fingerprint(training))
      throw SnapshotError(SnapshotErrorCode::kDatasetMismatch,
                          "snapshot was trained on a different dataset");
  }

  EngineRestoreData restored;
  {
    // Optional lineage record (snapshots predating continuous training go
    // straight to global-initial and keep the zero-lineage default).
    auto is = line_stream(cursor.next_line());
    std::string tag;
    if (!(is >> tag)) corrupt("empty payload record");
    if (tag == "lineage") {
      std::string parent_hex;
      if (!(is >> restored.lineage.generation >> parent_hex))
        corrupt("lineage record malformed");
      restored.lineage.parent_checksum = parse_hex16(parent_hex);
      is = line_stream(cursor.next_line());
      if (!(is >> tag)) corrupt("empty payload record");
    }
    if (tag != "global-initial") corrupt("expected 'global-initial' record");
    if (!(is >> restored.global_initial) ||
        !std::isfinite(restored.global_initial) || restored.global_initial < 0.0)
      corrupt("global-initial invalid");
  }
  {
    auto is = expect_tag(cursor, "global-hmm");
    std::size_t len = 0;
    if (!(is >> len)) corrupt("global-hmm record missing length");
    try {
      restored.global_hmm = deserialize_hmm(std::string(cursor.take_block(len)));
    } catch (const ModelParseError& e) {
      corrupt(e.what());
    }
  }

  std::size_t num_candidates = 0, num_sessions = 0;
  {
    auto is = expect_tag(cursor, "selector-table");
    if (!(is >> num_candidates >> num_sessions)) corrupt("selector-table malformed");
    if (num_sessions != training.size())
      throw SnapshotError(SnapshotErrorCode::kDatasetMismatch,
                          "selector table session count mismatch");
    if (num_candidates == 0 || num_candidates > 4096)
      corrupt("selector table candidate count absurd");
  }
  restored.selector_table.assign(num_candidates,
                                 std::vector<double>(num_sessions, kInf));

  // errs rows until the cluster-models record.
  std::size_t num_cluster_models = 0;
  for (;;) {
    auto is = line_stream(cursor.next_line());
    std::string tag;
    if (!(is >> tag)) corrupt("empty payload record");
    if (tag == "cluster-models") {
      if (!(is >> num_cluster_models)) corrupt("cluster-models record malformed");
      break;
    }
    if (tag != "errs") corrupt("expected 'errs' or 'cluster-models' record");
    std::size_t c = 0, count = 0;
    if (!(is >> c >> count) || c >= num_candidates || count > num_sessions)
      corrupt("errs row header out of range");
    for (std::size_t k = 0; k < count; ++k) {
      std::size_t i = 0;
      double err = 0.0;
      if (!(is >> i >> err) || i >= num_sessions || std::isnan(err) || err < 0.0)
        corrupt("errs entry out of range");
      restored.selector_table[c][i] = err;
    }
  }

  restored.cluster_models.reserve(num_cluster_models);
  for (std::size_t m = 0; m < num_cluster_models; ++m) {
    auto is = expect_tag(cursor, "cluster");
    ClusterModelEntry entry;
    std::size_t key_len = 0, hmm_len = 0;
    if (!(is >> entry.candidate_id >> key_len >> hmm_len) ||
        entry.candidate_id >= num_candidates)
      corrupt("cluster record malformed");
    entry.bucket_key = std::string(cursor.take_block(key_len));
    try {
      entry.hmm = deserialize_hmm(std::string(cursor.take_block(hmm_len)));
    } catch (const ModelParseError& e) {
      corrupt(e.what());
    }
    restored.cluster_models.push_back(std::move(entry));
  }

  if (std::string_view end_line = cursor.next_line(); end_line != "end")
    corrupt("missing end marker");
  if (!cursor.at_end()) corrupt("trailing payload records");
  return restored;
}

namespace {

/// Close-on-destruction fd for the save path.
struct ScopedFd {
  int fd = -1;
  ~ScopedFd() {
    if (fd >= 0) ::close(fd);
  }
  int release() noexcept {
    const int f = fd;
    fd = -1;
    return f;
  }
};

[[noreturn]] void io_error(const std::string& what) {
  throw SnapshotError(SnapshotErrorCode::kIo,
                      what + ": " + std::strerror(errno));
}

void write_fully(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_error("write");
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

void save_snapshot(const std::string& path, const Cs2pEngine& engine) {
  const auto start = std::chrono::steady_clock::now();
  if (path.empty())
    throw SnapshotError(SnapshotErrorCode::kIo, "empty snapshot path");
  const std::string bytes = serialize_engine(engine);

  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    ScopedFd tmp;
    tmp.fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (tmp.fd < 0) io_error("open " + tmp_path);
    try {
      write_fully(tmp.fd, bytes);
      // fsync BEFORE rename: rename can commit the name while the data is
      // still dirty, which is exactly the loadable-but-corrupt state this
      // store exists to rule out.
      if (::fsync(tmp.fd) != 0) io_error("fsync " + tmp_path);
    } catch (...) {
      ::unlink(tmp_path.c_str());
      throw;
    }
    if (::close(tmp.release()) != 0) {
      ::unlink(tmp_path.c_str());
      io_error("close " + tmp_path);
    }
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    io_error("rename " + tmp_path + " -> " + path);
  }

  // Durability of the rename itself: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  ScopedFd dirfd;
  dirfd.fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd.fd < 0) io_error("open dir " + dir);
  if (::fsync(dirfd.fd) != 0) io_error("fsync dir " + dir);

  engine.metrics()
      .histogram("cs2p_model_snapshot_save_seconds",
                 obs::default_latency_buckets_seconds())
      .observe(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count());
}

std::unique_ptr<Cs2pEngine> restore_engine_from_bytes(const std::string& bytes,
                                                      Dataset training,
                                                      const Cs2pConfig& config) {
  EngineRestoreData restored = parse_snapshot(bytes, config, training);
  try {
    return std::make_unique<Cs2pEngine>(std::move(training), config,
                                        std::move(restored));
  } catch (const std::invalid_argument& e) {
    throw SnapshotError(SnapshotErrorCode::kCorruptModel, e.what());
  }
}

std::unique_ptr<Cs2pEngine> restore_engine(const std::string& path,
                                           Dataset training,
                                           const Cs2pConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw SnapshotError(SnapshotErrorCode::kIo, "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad())
    throw SnapshotError(SnapshotErrorCode::kIo, "read failed for " + path);
  auto engine =
      restore_engine_from_bytes(buffer.str(), std::move(training), config);
  engine->metrics()
      .histogram("cs2p_model_snapshot_load_seconds",
                 obs::default_latency_buckets_seconds())
      .observe(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start)
                   .count());
  return engine;
}

std::shared_ptr<const Cs2pEngine> load_or_train(const std::string& snapshot_path,
                                                Dataset training,
                                                const Cs2pConfig& config,
                                                bool warm_up,
                                                std::string* status_out) {
  std::string status;
  if (!snapshot_path.empty()) {
    try {
      std::shared_ptr<const Cs2pEngine> engine =
          restore_engine(snapshot_path, training, config);
      status = "restored engine from " + snapshot_path + " (" +
               std::to_string(engine->stats().clusters_restored) +
               " cluster models, no EM run)";
      engine->metrics()
          .counter("cs2p_model_restores_total", {{"outcome", "restored"}})
          .inc();
      if (status_out) *status_out = status;
      return engine;
    } catch (const SnapshotError& e) {
      status = std::string("snapshot unusable (") + e.what() +
               "), training fresh";
    }
  } else {
    status = "no snapshot path, training fresh";
  }

  auto engine = std::make_shared<Cs2pEngine>(std::move(training), config);
  engine->metrics()
      .counter("cs2p_model_restores_total", {{"outcome", "trained_fresh"}})
      .inc();
  if (warm_up) {
    const std::size_t trained = engine->warm_up();
    status += "; warm-up trained " + std::to_string(trained) + " cluster models";
  }
  if (!snapshot_path.empty()) {
    try {
      save_snapshot(snapshot_path, *engine);
      status += "; snapshot saved to " + snapshot_path;
    } catch (const SnapshotError& e) {
      // Persistence is best-effort on this path: a broken disk must not
      // stop a freshly trained engine from serving.
      status += std::string("; snapshot save failed (") + e.what() + ")";
    }
  }
  if (status_out) *status_out = status;
  return engine;
}

}  // namespace cs2p
