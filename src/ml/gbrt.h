// Gradient Boosted Regression Trees (paper baseline GBR [41]).
//
// Squared-error boosting: each round fits a depth-limited CART regression
// tree to the current residuals and adds it with shrinkage. Handles the
// one-hot/ordinal feature vectors produced for session features; split
// search is exact over sorted unique thresholds per feature.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/matrix.h"

namespace cs2p {

struct GbrtConfig {
  int num_trees = 60;
  int max_depth = 3;
  std::size_t min_samples_leaf = 5;
  double learning_rate = 0.1;   ///< shrinkage
  double subsample = 0.8;       ///< row sampling fraction per tree
  std::uint64_t seed = 13;
};

/// A single fitted regression tree (kept as a flat node array).
class RegressionTree {
 public:
  /// Fits to (rows, targets) restricted to `indices`.
  void fit(const std::vector<Vec>& rows, std::span<const double> targets,
           std::span<const std::size_t> indices, int max_depth,
           std::size_t min_samples_leaf);

  double predict(std::span<const double> features) const;

  std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;        ///< -1 marks a leaf
    double threshold = 0.0;  ///< go left when x[feature] <= threshold
    double value = 0.0;      ///< leaf prediction
    int left = -1;
    int right = -1;
  };

  int build(const std::vector<Vec>& rows, std::span<const double> targets,
            std::vector<std::size_t>& indices, std::size_t begin, std::size_t end,
            int depth, int max_depth, std::size_t min_samples_leaf);

  std::vector<Node> nodes_;
};

/// The boosted ensemble.
class GradientBoostedTrees {
 public:
  void fit(const std::vector<Vec>& rows, std::span<const double> y,
           const GbrtConfig& config = {});

  double predict(std::span<const double> features) const;

  bool trained() const noexcept { return !trees_.empty() || base_set_; }
  std::size_t num_trees() const noexcept { return trees_.size(); }

 private:
  std::vector<RegressionTree> trees_;
  double base_prediction_ = 0.0;
  double learning_rate_ = 0.1;
  bool base_set_ = false;
};

}  // namespace cs2p
