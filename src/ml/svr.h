// Linear epsilon-insensitive Support Vector Regression (paper baseline SVR).
//
// The paper's SVR baseline [34] predicts session throughput from session
// features. We implement the primal linear epsilon-SVR objective
//   min_w  lambda/2 ||w||^2 + (1/m) sum_i max(0, |w.x_i + b - y_i| - eps)
// with averaged stochastic subgradient descent. Categorical session features
// are one-hot encoded upstream, so a linear model in that space is a
// per-category offset model — expressive enough to serve as a faithful
// baseline while remaining dependency-free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/matrix.h"

namespace cs2p {

struct SvrConfig {
  double epsilon = 0.1;       ///< insensitive-tube half-width (Mbps)
  double lambda = 1e-4;       ///< L2 regularisation strength
  int epochs = 40;            ///< SGD passes over the data
  double learning_rate = 0.1; ///< initial step size (decays 1/sqrt(t))
  std::uint64_t seed = 11;    ///< shuffling seed
};

/// Trained linear SVR model.
class LinearSvr {
 public:
  LinearSvr() = default;

  /// Fits on `rows` (equal-length feature vectors) and targets `y`.
  /// Throws std::invalid_argument on empty or ragged input.
  void fit(const std::vector<Vec>& rows, std::span<const double> y,
           const SvrConfig& config = {});

  /// Predicts for one feature vector; requires fit() to have run and the
  /// dimension to match the training data.
  double predict(std::span<const double> features) const;

  bool trained() const noexcept { return !weights_.empty(); }
  const Vec& weights() const noexcept { return weights_; }
  double bias() const noexcept { return bias_; }

 private:
  Vec weights_;
  double bias_ = 0.0;
};

}  // namespace cs2p
