#include "ml/svr.h"

#include <cmath>
#include <stdexcept>

#include "ml/linear.h"
#include "util/rng.h"

namespace cs2p {

void LinearSvr::fit(const std::vector<Vec>& rows, std::span<const double> y,
                    const SvrConfig& config) {
  if (rows.empty()) throw std::invalid_argument("LinearSvr::fit: no rows");
  if (rows.size() != y.size())
    throw std::invalid_argument("LinearSvr::fit: X/y size mismatch");
  const std::size_t d = rows.front().size();
  if (d == 0) throw std::invalid_argument("LinearSvr::fit: empty feature vectors");
  for (const auto& row : rows)
    if (row.size() != d) throw std::invalid_argument("LinearSvr::fit: ragged rows");

  Vec w(d, 0.0);
  double b = 0.0;
  // Polyak-Ruppert averaging for a stabler final model.
  Vec w_avg(d, 0.0);
  double b_avg = 0.0;
  std::size_t averaged_steps = 0;

  Rng rng(config.seed);
  std::size_t step = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = rng.permutation(rows.size());
    for (std::size_t idx : order) {
      ++step;
      const double eta = config.learning_rate / std::sqrt(static_cast<double>(step));
      const Vec& x = rows[idx];
      const double residual = dot(w, x) + b - y[idx];

      // Subgradient of the epsilon-insensitive loss.
      double g = 0.0;
      if (residual > config.epsilon) g = 1.0;
      else if (residual < -config.epsilon) g = -1.0;

      for (std::size_t j = 0; j < d; ++j)
        w[j] -= eta * (config.lambda * w[j] + g * x[j]);
      b -= eta * g;

      // Average over the second half of training.
      if (epoch >= config.epochs / 2) {
        ++averaged_steps;
        for (std::size_t j = 0; j < d; ++j) w_avg[j] += w[j];
        b_avg += b;
      }
    }
  }

  if (averaged_steps > 0) {
    for (double& wj : w_avg) wj /= static_cast<double>(averaged_steps);
    weights_ = std::move(w_avg);
    bias_ = b_avg / static_cast<double>(averaged_steps);
  } else {
    weights_ = std::move(w);
    bias_ = b;
  }
}

double LinearSvr::predict(std::span<const double> features) const {
  if (!trained()) throw std::logic_error("LinearSvr::predict: model not trained");
  return dot(weights_, features) + bias_;
}

}  // namespace cs2p
