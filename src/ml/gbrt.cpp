#include "ml/gbrt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.h"
#include "util/stats.h"

namespace cs2p {
namespace {

double mean_of(std::span<const double> targets, std::span<const std::size_t> idx,
               std::size_t begin, std::size_t end) {
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += targets[idx[i]];
  const auto n = static_cast<double>(end - begin);
  return n > 0.0 ? sum / n : 0.0;
}

}  // namespace

int RegressionTree::build(const std::vector<Vec>& rows,
                          std::span<const double> targets,
                          std::vector<std::size_t>& indices, std::size_t begin,
                          std::size_t end, int depth, int max_depth,
                          std::size_t min_samples_leaf) {
  const std::size_t count = end - begin;
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = mean_of(targets, indices, begin, end);

  if (depth >= max_depth || count < 2 * min_samples_leaf) return node_id;

  const std::size_t d = rows.front().size();

  // Exact split search: for each feature, sort this node's indices by the
  // feature value and scan prefix sums.
  double best_gain = 1e-12;  // require strictly positive gain
  int best_feature = -1;
  double best_threshold = 0.0;

  double total_sum = 0.0, total_sq = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double t = targets[indices[i]];
    total_sum += t;
    total_sq += t * t;
  }
  const double parent_sse = total_sq - total_sum * total_sum / static_cast<double>(count);

  std::vector<std::size_t> scratch(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                                   indices.begin() + static_cast<std::ptrdiff_t>(end));
  for (std::size_t f = 0; f < d; ++f) {
    std::sort(scratch.begin(), scratch.end(), [&](std::size_t a, std::size_t b) {
      return rows[a][f] < rows[b][f];
    });
    double left_sum = 0.0, left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      const double t = targets[scratch[i]];
      left_sum += t;
      left_sq += t * t;
      const std::size_t left_n = i + 1;
      const std::size_t right_n = count - left_n;
      if (left_n < min_samples_leaf || right_n < min_samples_leaf) continue;
      const double x_here = rows[scratch[i]][f];
      const double x_next = rows[scratch[i + 1]][f];
      if (x_here == x_next) continue;  // can't split between equal values

      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double left_sse = left_sq - left_sum * left_sum / static_cast<double>(left_n);
      const double right_sse =
          right_sq - right_sum * right_sum / static_cast<double>(right_n);
      const double gain = parent_sse - left_sse - right_sse;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (x_here + x_next);
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition indices[begin, end) around the chosen split.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t i) {
        return rows[i][static_cast<std::size_t>(best_feature)] <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;  // numeric edge case

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = build(rows, targets, indices, begin, mid, depth + 1, max_depth,
                         min_samples_leaf);
  const int right =
      build(rows, targets, indices, mid, end, depth + 1, max_depth, min_samples_leaf);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

void RegressionTree::fit(const std::vector<Vec>& rows, std::span<const double> targets,
                         std::span<const std::size_t> indices, int max_depth,
                         std::size_t min_samples_leaf) {
  if (indices.empty()) throw std::invalid_argument("RegressionTree::fit: no samples");
  nodes_.clear();
  std::vector<std::size_t> idx(indices.begin(), indices.end());
  build(rows, targets, idx, 0, idx.size(), 0, max_depth, min_samples_leaf);
}

double RegressionTree::predict(std::span<const double> features) const {
  if (nodes_.empty()) throw std::logic_error("RegressionTree::predict: not fitted");
  int node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const auto& n = nodes_[static_cast<std::size_t>(node)];
    const auto f = static_cast<std::size_t>(n.feature);
    node = features[f] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

void GradientBoostedTrees::fit(const std::vector<Vec>& rows, std::span<const double> y,
                               const GbrtConfig& config) {
  if (rows.empty()) throw std::invalid_argument("GradientBoostedTrees::fit: no rows");
  if (rows.size() != y.size())
    throw std::invalid_argument("GradientBoostedTrees::fit: X/y size mismatch");
  const std::size_t d = rows.front().size();
  for (const auto& row : rows)
    if (row.size() != d)
      throw std::invalid_argument("GradientBoostedTrees::fit: ragged rows");

  trees_.clear();
  learning_rate_ = config.learning_rate;
  base_prediction_ = mean(y);
  base_set_ = true;

  std::vector<double> current(rows.size(), base_prediction_);
  std::vector<double> residuals(rows.size());
  Rng rng(config.seed);

  for (int round = 0; round < config.num_trees; ++round) {
    for (std::size_t i = 0; i < rows.size(); ++i) residuals[i] = y[i] - current[i];

    // Row subsampling without replacement.
    std::vector<std::size_t> sample;
    if (config.subsample >= 1.0) {
      sample.resize(rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) sample[i] = i;
    } else {
      const auto target =
          std::max<std::size_t>(1, static_cast<std::size_t>(
                                       config.subsample * static_cast<double>(rows.size())));
      auto perm = rng.permutation(rows.size());
      perm.resize(target);
      sample = std::move(perm);
    }

    RegressionTree tree;
    tree.fit(rows, residuals, sample, config.max_depth, config.min_samples_leaf);
    for (std::size_t i = 0; i < rows.size(); ++i)
      current[i] += learning_rate_ * tree.predict(rows[i]);
    trees_.push_back(std::move(tree));
  }
}

double GradientBoostedTrees::predict(std::span<const double> features) const {
  if (!base_set_) throw std::logic_error("GradientBoostedTrees::predict: not fitted");
  double out = base_prediction_;
  for (const auto& tree : trees_) out += learning_rate_ * tree.predict(features);
  return out;
}

}  // namespace cs2p
