// Ridge-regularised linear least squares.
//
// Used to fit the AR(k) baseline predictor's coefficients and as a generic
// building block. Problems are tiny (k <= ~10 lags, or a few dozen one-hot
// features), so the solver forms the normal equations and uses Gaussian
// elimination with partial pivoting.
#pragma once

#include <span>
#include <vector>

#include "util/matrix.h"

namespace cs2p {

/// Solves A x = b for square A by Gaussian elimination with partial
/// pivoting. Throws std::invalid_argument on shape mismatch and
/// std::runtime_error on a (numerically) singular system.
Vec solve_linear_system(Matrix a, Vec b);

/// Fits w to minimise ||X w - y||^2 + lambda ||w||^2.
/// `rows` are feature vectors of equal length; `lambda >= 0`.
/// An intercept is NOT added implicitly — append a 1-feature if wanted.
Vec ridge_regression(const std::vector<Vec>& rows, std::span<const double> y,
                     double lambda);

/// Dot product of equally-sized vectors.
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace cs2p
