#include "ml/linear.h"

#include <cmath>
#include <stdexcept>

namespace cs2p {

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

Vec solve_linear_system(Matrix a, Vec b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::invalid_argument("solve_linear_system: shape mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    if (std::abs(a(pivot, col)) < 1e-12)
      throw std::runtime_error("solve_linear_system: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  Vec x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a(i, c) * x[c];
    x[i] = sum / a(i, i);
  }
  return x;
}

Vec ridge_regression(const std::vector<Vec>& rows, std::span<const double> y,
                     double lambda) {
  if (rows.empty()) throw std::invalid_argument("ridge_regression: no rows");
  if (rows.size() != y.size())
    throw std::invalid_argument("ridge_regression: X/y size mismatch");
  const std::size_t d = rows.front().size();
  for (const auto& row : rows)
    if (row.size() != d)
      throw std::invalid_argument("ridge_regression: ragged feature rows");

  Matrix xtx(d, d, 0.0);
  Vec xty(d, 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t i = 0; i < d; ++i) {
      xty[i] += rows[r][i] * y[r];
      for (std::size_t j = i; j < d; ++j) xtx(i, j) += rows[r][i] * rows[r][j];
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    xtx(i, i) += lambda;
    for (std::size_t j = 0; j < i; ++j) xtx(i, j) = xtx(j, i);
  }
  return solve_linear_system(std::move(xtx), std::move(xty));
}

}  // namespace cs2p
