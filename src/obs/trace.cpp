#include "obs/trace.h"

#include <cinttypes>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cs2p::obs {

namespace {

/// splitmix64: cheap, well-mixed, and stable across platforms — the
/// sampling decision must not change when the standard library's hash does.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_value(std::string& out, const TraceField& field) {
  if (const auto* u = std::get_if<std::uint64_t>(&field.value)) {
    out += std::to_string(*u);
  } else if (const auto* i = std::get_if<std::int64_t>(&field.value)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&field.value)) {
    if (!std::isfinite(*d)) {
      out += "null";  // JSON has no NaN/Inf
    } else {
      std::ostringstream os;
      os.precision(17);
      os << *d;
      out += os.str();
    }
  } else if (const auto* b = std::get_if<bool>(&field.value)) {
    out += *b ? "true" : "false";
  } else if (const auto* s = std::get_if<std::string_view>(&field.value)) {
    append_json_string(out, *s);
  }
}

}  // namespace

bool trace_sample_decision(std::uint64_t seed, double sample_rate,
                           std::uint64_t session_id) noexcept {
  if (sample_rate >= 1.0) return true;
  if (sample_rate <= 0.0) return false;
  // Hash into [0, 2^64); sample the lowest `rate` fraction of hash space.
  const std::uint64_t hashed = splitmix64(seed ^ splitmix64(session_id));
  const double threshold = sample_rate * 18446744073709551616.0;  // 2^64
  return static_cast<double>(hashed) < threshold;
}

TraceLog::TraceLog(Config config)
    : config_(std::move(config)), start_(std::chrono::steady_clock::now()) {
  if (config_.path.empty())
    throw std::runtime_error("TraceLog: empty path");
  file_ = std::fopen(config_.path.c_str(), "ae");  // append, O_CLOEXEC
  if (file_ == nullptr)
    throw std::runtime_error("TraceLog: cannot open " + config_.path);
}

TraceLog::~TraceLog() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

bool TraceLog::should_sample(std::uint64_t session_id) const noexcept {
  return trace_sample_decision(config_.seed, config_.sample_rate, session_id);
}

void TraceLog::emit(std::string_view event, std::uint64_t session_id,
                    std::initializer_list<TraceField> fields) {
  const auto mono_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
  std::string line;
  line.reserve(96 + fields.size() * 24);
  line += "{\"ev\":";
  append_json_string(line, event);
  line += ",\"sid\":";
  line += std::to_string(session_id);
  line += ",\"mono_us\":";
  line += std::to_string(mono_us);
  for (const TraceField& field : fields) {
    line += ',';
    append_json_string(line, field.key);
    line += ':';
    append_value(line, field);
  }
  line += "}\n";

  std::scoped_lock lock(mutex_);
  if (std::fwrite(line.data(), 1, line.size(), file_) == line.size()) ++events_;
}

void TraceLog::flush() {
  std::scoped_lock lock(mutex_);
  std::fflush(file_);
}

std::uint64_t TraceLog::events_written() const noexcept {
  std::scoped_lock lock(mutex_);
  return events_;
}

}  // namespace cs2p::obs
