// Structured per-session prediction tracing (DESIGN.md §11).
//
// One JSONL record per traced request: the prediction lifecycle of a
// session (hello → cluster match → filter update → predict → reply) with
// serve-flags, predictive log-likelihood and per-stage monotonic-clock
// latency. Metrics (metrics.h) answer "how is the service doing"; traces
// answer "what happened to THIS session" — the two are deliberately
// separate sinks.
//
// Tracing must stay affordable at production request rates, so sessions are
// sampled, not requests: the decision is made once per session id from a
// seeded hash, every record of a sampled session is kept (a partial
// lifecycle is useless for debugging), and the same (seed, rate) traces the
// same sessions on every run — tests and incident replays are deterministic.
//
// Record schema (one JSON object per line, keys in emit order):
//
//   {"ev":"observe",            lifecycle stage: hello|observe|predict|
//                               bye|evict|reply-error
//    "sid":42,                  server-side session id
//    "mono_us":123456,          steady-clock microseconds since TraceLog
//                               construction (orders records; never jumps)
//    ...event fields...}        see DESIGN.md §11 per-event tables
//
// Field values are u64 / double / bool / string; doubles serialize with
// enough digits to round-trip, NaN/Inf as null (JSON has no spelling for
// them).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <variant>

namespace cs2p::obs {

/// One "key":value pair of a trace record.
struct TraceField {
  std::string_view key;
  std::variant<std::uint64_t, std::int64_t, double, bool, std::string_view> value;
};

class TraceLog {
 public:
  struct Config {
    std::string path;          ///< appended to; created when missing
    double sample_rate = 1.0;  ///< fraction of sessions traced, in [0, 1]
    std::uint64_t seed = 0x5cb2'9e16;  ///< sampling hash seed
  };

  /// Opens `config.path` for append. Throws std::runtime_error when the
  /// file cannot be opened.
  explicit TraceLog(Config config);
  ~TraceLog();

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Deterministic per-session sampling decision: depends only on
  /// (seed, session_id), so a session is either fully traced or fully
  /// absent, and reruns with the same seed trace the same sessions.
  bool should_sample(std::uint64_t session_id) const noexcept;

  /// Appends one record (adds "sid" and "mono_us" before `fields`).
  /// Thread-safe; buffered — call flush() to make records durable.
  void emit(std::string_view event, std::uint64_t session_id,
            std::initializer_list<TraceField> fields);

  /// Flushes buffered records to the OS. Called from the serve tool's
  /// signal path and metrics-interval ticks so a SIGINT during a hung
  /// connection cannot lose the tail of the trace.
  void flush();

  std::uint64_t events_written() const noexcept;
  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  std::FILE* file_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mutex_;
  std::uint64_t events_ = 0;
};

/// The sampling predicate by itself (exposed for tests and for callers that
/// need the decision without a TraceLog): true when session_id falls inside
/// the sampled fraction under `seed`.
bool trace_sample_decision(std::uint64_t seed, double sample_rate,
                           std::uint64_t session_id) noexcept;

}  // namespace cs2p::obs
