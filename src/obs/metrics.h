// Unified telemetry: the metrics registry every subsystem reports into
// (DESIGN.md §11).
//
// The serving hot path (OBSERVE → filter update → predict → reply) runs on
// many threads at once, so the primitives here are built around two rules:
//
//   1. Registration is cold, recording is hot. Looking a metric up by name
//      takes the registry mutex once; the returned handle is a stable
//      reference the caller caches and then updates lock-free forever.
//   2. Writers never share a cache line. Counters and histograms shard
//      their atomics across cache-line-aligned slots indexed per thread, so
//      N serving threads incrementing the same counter do not serialize on
//      one contended word. Readers (the STATS scrape) sum the shards —
//      scraping pays the cost, serving does not.
//
// Readout is Prometheus-style text exposition (`name{label="v"} value`
// lines behind a version header) because it diffs well, greps well, and the
// wire protocol's STATS verb can carry it verbatim.
//
// Metric naming scheme: `cs2p_<subsystem>_<what>[_<unit>]`, subsystems
// `server`, `engine`, `guardrail`, `ingest`, `model`, `client`. Counters end
// in `_total`, histograms in a unit (`_seconds`), gauges in neither.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cs2p::obs {

/// Label set of one metric instance ("series"), e.g. {{"verb", "OBSERVE"}}.
/// Kept sorted by key when rendered so equal label sets serialize equally.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
/// Writer shards: enough that a machine's worth of serving threads rarely
/// collide, small enough that scraping stays trivially cheap.
inline constexpr std::size_t kShards = 16;

/// Stable per-thread shard slot (round-robin assignment on first use).
std::size_t shard_index() noexcept;

struct alignas(64) ShardedWord {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

/// Monotonic counter. inc() is wait-free on x86 (one relaxed fetch_add on a
/// thread-private shard); value() sums the shards and may be momentarily
/// stale relative to concurrent writers — fine for telemetry, and the reason
/// counters must be monotonic.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    shards_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) sum += shard.value.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  std::array<detail::ShardedWord, detail::kShards> shards_;
};

/// Last-writer-wins instantaneous value (queue depth, live sessions).
/// A single atomic — gauges are set from bookkeeping paths, not the serve
/// hot path, so sharding would only blur the "current value" semantics.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (latencies, errors). Bucket upper bounds are set
/// at registration and never change; an implicit +inf bucket catches
/// overflow. observe() touches one thread-private shard (bucket count + sum
/// + count, all relaxed); quantile() interpolates linearly inside the
/// winning bucket, which is exact enough for the p50/p95/p99 readouts
/// operators act on as long as the buckets are sized for the range.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty; a value v
  /// lands in the first bucket with v <= bound, else in +inf.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept;
  double sum() const noexcept;

  /// Per-bucket (non-cumulative) counts; size = upper_bounds().size() + 1,
  /// last entry is the +inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  /// q in [0, 1]. Linear interpolation within the target bucket; values in
  /// the +inf bucket report the largest finite bound (the histogram cannot
  /// know more). 0 observations -> 0.
  double quantile(double q) const;

  const std::vector<double>& upper_bounds() const noexcept { return bounds_; }

 private:
  struct alignas(64) Shard {
    explicit Shard(std::size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<std::uint64_t>> counts;  ///< one per bucket (+inf last)
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Default request-latency bucket ladder: 1 us .. ~16 s, doubling. Covers a
/// loopback round trip (~tens of us) through an EM retrain (seconds).
std::vector<double> default_latency_buckets_seconds();

/// Buckets for relative prediction error (|w_hat - w| / w): 1% .. 100%+.
std::vector<double> default_error_buckets();

/// Buckets for long-lived durations (connection lifetimes, churn): 1 ms ..
/// ~68 min, quadrupling — a short ladder spanning a quick probe through a
/// feature-length streaming session.
std::vector<double> default_duration_buckets_seconds();

/// Version stamped into the first line of every scrape
/// (`# cs2p_metrics_version N`); bumped when the exposition grammar changes.
inline constexpr int kMetricsExpositionVersion = 1;

/// Name -> metric map with stable handle addresses. One registry per scrape
/// root: cs2p_serve wires a single registry through the server, the engine
/// and the guardrails so one STATS verb covers the whole process; tests
/// build private registries for hermetic assertions.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned reference is valid for the registry's
  /// lifetime. Throws std::invalid_argument when `name` (with equal labels)
  /// is already registered as a different metric type, or when the name is
  /// not a valid identifier ([a-zA-Z_][a-zA-Z0-9_]*).
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  /// `upper_bounds` is used on first registration; later lookups of the same
  /// series return the existing histogram regardless.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds,
                       Labels labels = {});

  /// Text exposition of every registered series:
  ///
  ///   # cs2p_metrics_version 1
  ///   name{label="value"} 42
  ///   hist_bucket{le="0.001"} 10        (cumulative, Prometheus-style)
  ///   hist_bucket{le="+Inf"} 12
  ///   hist_sum{} 0.0123
  ///   hist_count{} 12
  ///
  /// Series are emitted in lexicographic order so two scrapes diff cleanly.
  std::string scrape() const;

  /// Number of registered series (counts one per labelled instance).
  std::size_t series_count() const;

 private:
  struct Series;
  Series& find_or_create(const std::string& name, const Labels& labels,
                         int type, std::vector<double> bounds);

  mutable std::mutex mutex_;
  /// Keyed by rendered "name{labels}" so identical series unify; values are
  /// unique_ptrs so handle addresses survive rehashing.
  std::map<std::string, std::unique_ptr<Series>> series_;
};

/// Process-wide default registry, used when a component is not handed an
/// explicit one. Never destroyed (telemetry may be written from static
/// teardown paths).
MetricsRegistry& global_metrics();

}  // namespace cs2p::obs
