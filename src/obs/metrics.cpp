#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cs2p::obs {

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace detail

// -- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: needs at least one bucket bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i]))
      throw std::invalid_argument("Histogram: bucket bounds must be finite");
    if (i > 0 && bounds_[i] <= bounds_[i - 1])
      throw std::invalid_argument("Histogram: bucket bounds must be strictly increasing");
  }
  shards_.reserve(detail::kShards);
  for (std::size_t i = 0; i < detail::kShards; ++i)
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
}

void Histogram::observe(double v) noexcept {
  // NaN carries no magnitude; dropping it beats corrupting sum/quantiles.
  if (std::isnan(v)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  Shard& shard = *shards_[detail::shard_index()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (const auto& shard : shards_)
    for (std::size_t b = 0; b < counts.size(); ++b)
      counts[b] += shard->counts[b].load(std::memory_order_relaxed);
  return counts;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_)
    for (const auto& c : shard->counts) total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const auto& shard : shards_)
    total += shard->sum.load(std::memory_order_relaxed);
  return total;
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  // Rank of the target observation, then walk buckets until it is covered.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank) continue;
    if (b == counts.size() - 1) return bounds_.back();  // +inf bucket: clamp
    const double lower = b == 0 ? 0.0 : bounds_[b - 1];
    const double upper = bounds_[b];
    const double into =
        (rank - static_cast<double>(before)) / static_cast<double>(counts[b]);
    return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
  }
  return bounds_.back();
}

std::vector<double> default_latency_buckets_seconds() {
  std::vector<double> bounds;
  for (double b = 1e-6; b < 17.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> default_error_buckets() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0, 2.0, 5.0};
}

std::vector<double> default_duration_buckets_seconds() {
  std::vector<double> bounds;
  for (double b = 1e-3; b < 5000.0; b *= 4.0) bounds.push_back(b);
  return bounds;
}

// -- MetricsRegistry ---------------------------------------------------------

namespace {

bool valid_identifier(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_'))
    return false;
  for (const char c : name)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  return true;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// "name{k1="v1",k2="v2"}" with keys sorted; "name" when labels are empty.
std::string render_series_key(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  if (labels.empty()) return name;
  std::string out = name + '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first + "=\"" + escape_label_value(labels[i].second) + '"';
  }
  out += '}';
  return out;
}

std::string format_value(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Splices extra labels (e.g. le="...") into a rendered series key.
std::string key_with_label(const std::string& series_key, const std::string& base_name,
                           const std::string& extra) {
  if (series_key.size() == base_name.size())  // no labels yet
    return base_name + '{' + extra + '}';
  std::string out = series_key;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

}  // namespace

struct MetricsRegistry::Series {
  enum Type { kCounter = 0, kGauge, kHistogram };
  explicit Series(Type t, std::vector<double> bounds = {}) : type(t) {
    switch (type) {
      case kCounter: counter = std::make_unique<Counter>(); break;
      case kGauge: gauge = std::make_unique<Gauge>(); break;
      case kHistogram:
        histogram = std::make_unique<Histogram>(std::move(bounds));
        break;
    }
  }
  Type type;
  std::string base_name;  ///< name without labels, for _bucket/_sum rendering
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

// Out-of-line so translation units that only see the forward-declared Series
// can still construct/destroy registries.
MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Series& MetricsRegistry::find_or_create(
    const std::string& name, const Labels& labels, int type,
    std::vector<double> bounds) {
  if (!valid_identifier(name))
    throw std::invalid_argument("MetricsRegistry: invalid metric name '" + name + "'");
  for (const auto& [key, value] : labels) {
    (void)value;
    if (!valid_identifier(key))
      throw std::invalid_argument("MetricsRegistry: invalid label key '" + key + "'");
  }
  const std::string key = render_series_key(name, labels);
  std::scoped_lock lock(mutex_);
  const auto it = series_.find(key);
  if (it != series_.end()) {
    if (it->second->type != type)
      throw std::invalid_argument("MetricsRegistry: '" + key +
                                  "' already registered as a different type");
    return *it->second;
  }
  auto series = std::make_unique<Series>(static_cast<Series::Type>(type),
                                         std::move(bounds));
  series->base_name = name;
  return *series_.emplace(key, std::move(series)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  return *find_or_create(name, labels, Series::kCounter, {}).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  return *find_or_create(name, labels, Series::kGauge, {}).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      Labels labels) {
  return *find_or_create(name, labels, Series::kHistogram, std::move(upper_bounds))
              .histogram;
}

std::size_t MetricsRegistry::series_count() const {
  std::scoped_lock lock(mutex_);
  return series_.size();
}

std::string MetricsRegistry::scrape() const {
  std::ostringstream os;
  os << "# cs2p_metrics_version " << kMetricsExpositionVersion << '\n';
  std::scoped_lock lock(mutex_);
  for (const auto& [key, series] : series_) {
    switch (series->type) {
      case Series::kCounter:
        os << key << ' ' << series->counter->value() << '\n';
        break;
      case Series::kGauge:
        os << key << ' ' << format_value(series->gauge->value()) << '\n';
        break;
      case Series::kHistogram: {
        const Histogram& h = *series->histogram;
        const auto counts = h.bucket_counts();
        const auto& bounds = h.upper_bounds();
        // Rendered under "<name>_bucket{...,le="bound"}", cumulative like
        // Prometheus so downstream quantile math composes across scrapes.
        const std::string bucket_key_base = key.substr(series->base_name.size());
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < counts.size(); ++b) {
          cumulative += counts[b];
          const std::string le =
              b < bounds.size() ? format_value(bounds[b]) : std::string("+Inf");
          std::string bucket_key = series->base_name + "_bucket" + bucket_key_base;
          if (bucket_key_base.empty()) bucket_key = series->base_name + "_bucket";
          os << key_with_label(bucket_key, series->base_name + "_bucket",
                               "le=\"" + le + '"')
             << ' ' << cumulative << '\n';
        }
        os << series->base_name << "_sum" << bucket_key_base << ' '
           << format_value(h.sum()) << '\n';
        os << series->base_name << "_count" << bucket_key_base << ' ' << cumulative
           << '\n';
        break;
      }
    }
  }
  return os.str();
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace cs2p::obs
