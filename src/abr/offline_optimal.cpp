#include "abr/offline_optimal.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace cs2p {

OfflineOptimalResult offline_optimal_qoe(const VideoSpec& video,
                                         const ThroughputTrace& trace,
                                         const OfflineOptimalConfig& config) {
  const std::size_t ladder = video.bitrates_kbps.size();
  const std::size_t chunks = video.num_chunks;
  if (ladder == 0 || chunks == 0 || config.buffer_quantum_seconds <= 0.0)
    throw std::invalid_argument("offline_optimal_qoe: malformed configuration");

  const double quantum = config.buffer_quantum_seconds;
  const auto buffer_levels =
      static_cast<std::size_t>(video.buffer_capacity_seconds / quantum) + 1;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  auto to_level = [&](double buffer_seconds) {
    const double clamped =
        std::clamp(buffer_seconds, 0.0, video.buffer_capacity_seconds);
    return static_cast<std::size_t>(clamped / quantum + 0.5);
  };

  // value[r][b]: best achievable QoE from the *current* chunk onward, given
  // the previous chunk used ladder index r and the buffer is b levels.
  // Iterate chunks backwards; choice[k][r][b] records the argmax for plan
  // reconstruction.
  const std::size_t plane = ladder * buffer_levels;
  std::vector<double> value(plane, 0.0), next_value(plane, 0.0);
  std::vector<std::uint8_t> choice(chunks * plane, 0);

  auto idx = [&](std::size_t r, std::size_t b) { return r * buffer_levels + b; };

  for (std::size_t k = chunks; k-- > 1;) {
    const double throughput = trace.at(k);
    std::swap(value, next_value);  // next_value now holds chunk k+1's values
    for (std::size_t r = 0; r < ladder; ++r) {
      const double prev_bitrate = video.bitrates_kbps[r];
      for (std::size_t b = 0; b < buffer_levels; ++b) {
        const double buffer = static_cast<double>(b) * quantum;
        double best = kNegInf;
        std::uint8_t best_choice = 0;
        for (std::size_t c = 0; c < ladder; ++c) {
          const double bitrate = video.bitrates_kbps[c];
          const double download = bitrate * video.chunk_seconds / 1000.0 / throughput;
          const double rebuffer = std::max(0.0, download - buffer);
          double next_buffer =
              std::max(buffer - download, 0.0) + video.chunk_seconds;
          next_buffer = std::min(next_buffer, video.buffer_capacity_seconds);
          const double reward = bitrate -
                                config.qoe.lambda * std::abs(bitrate - prev_bitrate) -
                                config.qoe.mu * rebuffer;
          const double future =
              k + 1 < chunks ? next_value[idx(c, to_level(next_buffer))] : 0.0;
          if (reward + future > best) {
            best = reward + future;
            best_choice = static_cast<std::uint8_t>(c);
          }
        }
        value[idx(r, b)] = best;
        choice[k * plane + idx(r, b)] = best_choice;
      }
    }
  }

  // Chunk 0: empty buffer; the wait is startup delay (penalty mu_s), and the
  // buffer afterwards holds exactly one chunk.
  OfflineOptimalResult result;
  double best0 = kNegInf;
  std::size_t best0_choice = 0;
  const double throughput0 = trace.at(0);
  for (std::size_t c = 0; c < ladder; ++c) {
    const double bitrate = video.bitrates_kbps[c];
    const double startup = bitrate * video.chunk_seconds / 1000.0 / throughput0;
    const double next_buffer =
        std::min(video.chunk_seconds, video.buffer_capacity_seconds);
    const double future =
        chunks > 1 ? value[idx(c, to_level(next_buffer))] : 0.0;
    const double total = bitrate - config.qoe.mu_s * startup + future;
    if (total > best0) {
      best0 = total;
      best0_choice = c;
    }
  }
  result.qoe = best0;

  // Reconstruct the plan by replaying the (exact, unquantised) dynamics and
  // reading decisions off the choice table.
  result.bitrate_plan.resize(chunks);
  result.bitrate_plan[0] = best0_choice;
  double buffer = std::min(video.chunk_seconds, video.buffer_capacity_seconds);
  std::size_t prev = best0_choice;
  for (std::size_t k = 1; k < chunks; ++k) {
    const std::size_t c = choice[k * plane + idx(prev, to_level(buffer))];
    const double bitrate = video.bitrates_kbps[c];
    const double download = bitrate * video.chunk_seconds / 1000.0 / trace.at(k);
    buffer = std::max(buffer - download, 0.0) + video.chunk_seconds;
    buffer = std::min(buffer, video.buffer_capacity_seconds);
    result.bitrate_plan[k] = c;
    prev = c;
  }
  return result;
}

}  // namespace cs2p
