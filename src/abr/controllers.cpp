#include "abr/controllers.h"

#include <algorithm>

namespace cs2p {

std::size_t highest_sustainable(const VideoSpec& video, double budget_kbps) noexcept {
  std::size_t best = 0;
  for (std::size_t i = 0; i < video.bitrates_kbps.size(); ++i)
    if (video.bitrates_kbps[i] <= budget_kbps) best = i;
  return best;
}

std::size_t FixedBitrateController::select_bitrate(const AbrState&,
                                                   const VideoSpec& video) {
  return std::min(bitrate_index_, video.bitrates_kbps.size() - 1);
}

std::size_t RateBasedController::select_bitrate(const AbrState& state,
                                                const VideoSpec& video) {
  double predicted_mbps = 0.0;
  if (state.predictor != nullptr) {
    if (state.chunk_index == 0) {
      const auto initial = state.predictor->predict_initial();
      if (!initial) return 0;  // conservative cold start
      predicted_mbps = *initial;
    } else {
      predicted_mbps = state.predictor->predict(1);
    }
  } else {
    if (state.chunk_index == 0) return 0;
    predicted_mbps = state.last_throughput_mbps;
  }
  return highest_sustainable(video, safety_factor_ * predicted_mbps * 1000.0);
}

std::size_t BufferBasedController::select_bitrate(const AbrState& state,
                                                  const VideoSpec& video) {
  if (state.chunk_index == 0) return 0;  // BB has no cold-start signal
  const double b = state.buffer_seconds;
  if (b <= reservoir_) return 0;
  const std::size_t top = video.bitrates_kbps.size() - 1;
  if (b >= reservoir_ + cushion_) return top;
  const double fraction = (b - reservoir_) / cushion_;
  return static_cast<std::size_t>(fraction * static_cast<double>(top) + 0.5);
}

}  // namespace cs2p
