// QoE evaluation harness (paper §7.3): replays test sessions through the
// player simulator under a (predictor, ABR controller) pairing, and
// normalises each session's QoE by its offline optimum (n-QoE).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "abr/offline_optimal.h"
#include "dataset/dataset.h"
#include "predictors/predictor.h"
#include "sim/player.h"

namespace cs2p {

/// Produces a fresh controller per session (controllers are stateful).
using ControllerFactory = std::function<std::unique_ptr<AbrController>()>;

struct AbrEvaluationOptions {
  VideoSpec video;
  QoeParams qoe;
  std::size_t max_sessions = 0;       ///< 0 = all eligible sessions
  std::size_t min_trace_epochs = 10;  ///< skip sessions shorter than this
  /// Skip sessions whose average throughput cannot sustain even the lowest
  /// ladder rung — stalling is then unavoidable for every policy including
  /// the offline optimum, so the session measures nothing about adaptation.
  /// (Standard trace filtering in the ABR literature.)
  double min_avg_throughput_mbps = 0.45;
  bool provide_oracle = false;        ///< let Oracle predictors see the trace
};

/// Outcome for one session.
struct AbrSessionOutcome {
  double qoe = 0.0;
  double optimal_qoe = 0.0;
  double normalized_qoe = 0.0;  ///< qoe / optimal (clamped below at 0)
  QoeBreakdown breakdown;
};

/// Aggregate over the test set.
struct AbrEvaluation {
  std::string label;
  std::vector<AbrSessionOutcome> outcomes;
  double median_n_qoe = 0.0;
  double mean_n_qoe = 0.0;
  double avg_bitrate_kbps = 0.0;   ///< mean of per-session AvgBitrate
  double good_ratio = 0.0;         ///< mean of per-session GoodRatio
  double mean_rebuffer_seconds = 0.0;
  double mean_startup_seconds = 0.0;
};

/// Runs the sweep. `model` may be null for predictor-free controllers (BB).
AbrEvaluation evaluate_abr(const std::string& label, const PredictorModel* model,
                           const ControllerFactory& make_controller,
                           const Dataset& test, const AbrEvaluationOptions& options);

}  // namespace cs2p
