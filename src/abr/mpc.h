// FastMPC controller (Yin et al. [47], the adaptation algorithm the paper
// pairs every predictor with in §5.3/§7.3).
//
// At each chunk boundary MPC solves, by exhaustive enumeration over the
// bitrate ladder, the H-step lookahead problem
//
//   max_{R_k..R_{k+H-1}}  sum_h [ q(R_h) - lambda |q(R_h) - q(R_{h-1})|
//                                 - mu * rebuffer_h ]
//
// under the simulator's buffer dynamics, using the plugged-in predictor's
// h-step-ahead throughput forecasts, and applies the first decision. With a
// 5-rung ladder and H = 5 that is 3125 rollouts per chunk — the table-free
// equivalent of the paper's FastMPC table enumeration.
//
// The initial chunk (no buffer, no current bitrate) cannot be chosen by MPC
// (§5.3); it uses the highest sustainable bitrate below the predicted
// initial throughput, or the lowest rung if the predictor cannot cold-start.
#pragma once

#include <vector>

#include "qoe/qoe.h"
#include "sim/player.h"

namespace cs2p {

struct MpcConfig {
  unsigned horizon = 5;     ///< lookahead chunks
  QoeParams qoe;            ///< objective weights (lambda, mu)
  double safety_factor = 1.0;  ///< scales predicted throughput (1 = trust)

  /// RobustMPC (Yin et al. [47] §V): divide the forecast by
  /// (1 + max error of the last `robust_window` forecasts). An accurate
  /// predictor is discounted little and can safely ride high bitrates; a
  /// noisy one gets an automatic safety margin. This is how prediction
  /// accuracy translates into QoE, so the QoE benches enable it for every
  /// predictor arm equally.
  bool robust = false;
  std::size_t robust_window = 5;
};

class MpcController final : public AbrController {
 public:
  explicit MpcController(MpcConfig config = {}) : config_(config) {}

  std::string name() const override { return config_.robust ? "RobustMPC" : "MPC"; }
  std::size_t select_bitrate(const AbrState& state, const VideoSpec& video) override;
  void reset() override;

 private:
  MpcConfig config_;
  std::vector<double> recent_errors_;  ///< ring of last forecast errors
  double last_forecast_mbps_ = -1.0;   ///< h = 1 forecast issued last chunk
};

}  // namespace cs2p
