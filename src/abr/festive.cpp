#include "abr/festive.h"

#include <algorithm>

#include "abr/controllers.h"
#include "util/stats.h"

namespace cs2p {

void FestiveController::reset() {
  recent_throughput_.clear();
  up_streak_ = 0;
}

std::size_t FestiveController::select_bitrate(const AbrState& state,
                                              const VideoSpec& video) {
  if (state.chunk_index == 0 || state.last_bitrate_index < 0) {
    // FESTIVE has no cross-session signal: conservative cold start.
    return 0;
  }

  recent_throughput_.push_back(state.last_throughput_mbps);
  if (recent_throughput_.size() > config_.window)
    recent_throughput_.erase(recent_throughput_.begin());

  const double estimate_kbps =
      harmonic_mean(recent_throughput_) * 1000.0 * config_.safety_factor;
  const auto current = static_cast<std::size_t>(state.last_bitrate_index);
  const std::size_t target = highest_sustainable(video, estimate_kbps);

  if (target > current) {
    // Gradual, patience-gated climbing: one rung after `patience`
    // consecutive up-recommendations, and only if the efficiency gain
    // outweighs the stability cost of a switch.
    ++up_streak_;
    if (up_streak_ < config_.patience) return current;
    const double gain = video.bitrates_kbps[current + 1] -
                        video.bitrates_kbps[current];
    if (gain < config_.stability_weight * video.bitrates_kbps[current])
      return current;  // not worth the switch
    up_streak_ = 0;
    return current + 1;
  }

  up_streak_ = 0;
  if (target < current) {
    // Down-switches happen immediately (safety) but still one rung at a
    // time — FESTIVE's gradual switching limits oscillation amplitude.
    return current - 1;
  }
  return current;
}

}  // namespace cs2p
