#include "abr/mpc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "abr/controllers.h"
#include "util/error_metrics.h"

namespace cs2p {

void MpcController::reset() {
  recent_errors_.clear();
  last_forecast_mbps_ = -1.0;
}

std::size_t MpcController::select_bitrate(const AbrState& state,
                                          const VideoSpec& video) {
  const std::size_t ladder = video.bitrates_kbps.size();
  if (ladder == 0) throw std::invalid_argument("MpcController: empty bitrate ladder");

  // Initial chunk: pick by predicted initial throughput (§5.3).
  if (state.chunk_index == 0 || state.last_bitrate_index < 0) {
    if (state.predictor != nullptr) {
      if (const auto initial = state.predictor->predict_initial()) {
        last_forecast_mbps_ = *initial;
        return highest_sustainable(video,
                                   config_.safety_factor * *initial * 1000.0);
      }
    }
    return 0;
  }

  if (state.predictor == nullptr)
    throw std::invalid_argument("MpcController: midstream selection needs a predictor");

  // RobustMPC discount: track how wrong the previous h = 1 forecast was.
  double discount = 1.0;
  if (config_.robust) {
    if (last_forecast_mbps_ > 0.0 && state.last_throughput_mbps > 0.0) {
      recent_errors_.push_back(absolute_normalized_error(
          last_forecast_mbps_, state.last_throughput_mbps));
      if (recent_errors_.size() > config_.robust_window)
        recent_errors_.erase(recent_errors_.begin());
    }
    // Discount by the mean recent error rather than the max: transient
    // one-epoch bursts hit every predictor's worst-case alike and would
    // mask genuine accuracy differences, which are exactly what this
    // mechanism should reward.
    double sum = 0.0;
    for (double err : recent_errors_) sum += err;
    if (!recent_errors_.empty())
      discount = 1.0 + sum / static_cast<double>(recent_errors_.size());
  }

  const unsigned horizon = std::max(1U, config_.horizon);
  std::vector<double> forecast_mbps(horizon);
  for (unsigned h = 0; h < horizon; ++h) {
    forecast_mbps[h] = std::max(
        1e-6, config_.safety_factor * state.predictor->predict(h + 1) / discount);
  }
  last_forecast_mbps_ = state.predictor->predict(1);

  // Exhaustive rollout over bitrate sequences (base-`ladder` counter).
  double best_value = -std::numeric_limits<double>::infinity();
  std::size_t best_first = 0;
  std::vector<std::size_t> plan(horizon, 0);
  const double chunk_s = video.chunk_seconds;

  while (true) {
    double buffer = state.buffer_seconds;
    double value = 0.0;
    double prev_bitrate = video.bitrates_kbps[static_cast<std::size_t>(
        state.last_bitrate_index)];
    for (unsigned h = 0; h < horizon; ++h) {
      const double bitrate = video.bitrates_kbps[plan[h]];
      const double download =
          bitrate * chunk_s / 1000.0 / forecast_mbps[h];
      const double rebuffer = std::max(0.0, download - buffer);
      buffer = std::max(buffer - download, 0.0) + chunk_s;
      buffer = std::min(buffer, video.buffer_capacity_seconds);
      value += bitrate - config_.qoe.lambda * std::abs(bitrate - prev_bitrate) -
               config_.qoe.mu * rebuffer;
      prev_bitrate = bitrate;
    }
    if (value > best_value) {
      best_value = value;
      best_first = plan[0];
    }
    // Advance the counter.
    unsigned digit = 0;
    while (digit < horizon && ++plan[digit] == ladder) {
      plan[digit] = 0;
      ++digit;
    }
    if (digit == horizon) break;
  }
  return best_first;
}

}  // namespace cs2p
