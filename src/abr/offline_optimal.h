// Offline-optimal QoE: the n-QoE normaliser of §7.1 ("the offline optimal
// QoE ... achieved given perfect throughput information in the entire
// future, calculated by solving a MILP").
//
// Under the chunk-indexed dynamics shared with the simulator, the MILP
// reduces exactly to a finite-horizon dynamic program over
// (chunk, previous bitrate, quantised buffer). Buffer is quantised to
// `buffer_quantum_seconds` (default 0.02 s), which bounds the value error by
// a few kbps-equivalents — negligible against QoE scores in the thousands.
#pragma once

#include "qoe/qoe.h"
#include "sim/player.h"

namespace cs2p {

struct OfflineOptimalConfig {
  QoeParams qoe;
  double buffer_quantum_seconds = 0.02;
};

/// Result of the DP: the optimal value and the bitrate plan achieving it.
struct OfflineOptimalResult {
  double qoe = 0.0;
  std::vector<std::size_t> bitrate_plan;  ///< ladder index per chunk
};

/// Computes the offline optimum for one trace. Throws on malformed specs.
OfflineOptimalResult offline_optimal_qoe(const VideoSpec& video,
                                         const ThroughputTrace& trace,
                                         const OfflineOptimalConfig& config = {});

}  // namespace cs2p
