// Baseline ABR controllers (paper §2, §5.3, §7.3):
//
//   FixedBitrate — the fixed-bitrate streaming of Table 1.
//   RateBased    — highest bitrate below (a safety factor times) the
//                  predicted throughput; the classic throughput-rule.
//   BufferBased  — BBA-style reservoir/cushion mapping of buffer occupancy
//                  onto the bitrate ladder [27]; uses no prediction at all.
//
// Initial chunk: Rate-based uses the predictor's cold-start estimate when
// available ("select the highest sustainable bitrate below the predicted
// initial throughput", §5.3) and the lowest rung otherwise — the
// conservative ramp-up the paper criticises in Table 1.
#pragma once

#include "sim/player.h"

namespace cs2p {

/// Index of the highest ladder rung whose bitrate is <= `budget_kbps`
/// (index 0 when even the lowest rung exceeds the budget).
std::size_t highest_sustainable(const VideoSpec& video, double budget_kbps) noexcept;

class FixedBitrateController final : public AbrController {
 public:
  explicit FixedBitrateController(std::size_t bitrate_index)
      : bitrate_index_(bitrate_index) {}
  std::string name() const override { return "Fixed"; }
  std::size_t select_bitrate(const AbrState&, const VideoSpec& video) override;

 private:
  std::size_t bitrate_index_;
};

class RateBasedController final : public AbrController {
 public:
  explicit RateBasedController(double safety_factor = 1.0)
      : safety_factor_(safety_factor) {}
  std::string name() const override { return "RB"; }
  std::size_t select_bitrate(const AbrState& state, const VideoSpec& video) override;

 private:
  double safety_factor_;
};

class BufferBasedController final : public AbrController {
 public:
  BufferBasedController(double reservoir_seconds = 5.0, double cushion_seconds = 20.0)
      : reservoir_(reservoir_seconds), cushion_(cushion_seconds) {}
  std::string name() const override { return "BB"; }
  std::size_t select_bitrate(const AbrState& state, const VideoSpec& video) override;

 private:
  double reservoir_;
  double cushion_;
};

}  // namespace cs2p
