#include "abr/evaluation.h"

#include <algorithm>

#include "util/stats.h"

namespace cs2p {

AbrEvaluation evaluate_abr(const std::string& label, const PredictorModel* model,
                           const ControllerFactory& make_controller,
                           const Dataset& test, const AbrEvaluationOptions& options) {
  AbrEvaluation out;
  out.label = label;

  OfflineOptimalConfig optimal_config;
  optimal_config.qoe = options.qoe;

  std::vector<double> n_qoes, bitrates, good_ratios, rebuffers, startups;
  std::size_t evaluated = 0;
  for (const auto& session : test.sessions()) {
    if (options.max_sessions && evaluated >= options.max_sessions) break;
    if (session.throughput_mbps.size() < options.min_trace_epochs) continue;
    if (session.average_throughput() < options.min_avg_throughput_mbps) continue;
    ++evaluated;

    const ThroughputTrace trace(session.throughput_mbps);

    std::unique_ptr<SessionPredictor> predictor;
    if (model != nullptr) {
      SessionContext context = SessionContext::from(session);
      if (options.provide_oracle) context.oracle_series = &session.throughput_mbps;
      predictor = model->make_session(context);
    }

    const auto controller = make_controller();
    const PlaybackResult playback =
        simulate_playback(options.video, trace, *controller, predictor.get());
    AbrSessionOutcome outcome;
    outcome.breakdown = compute_qoe(playback, options.qoe);
    outcome.qoe = outcome.breakdown.total;
    outcome.optimal_qoe =
        offline_optimal_qoe(options.video, trace, optimal_config).qoe;
    outcome.normalized_qoe =
        outcome.optimal_qoe > 0.0
            ? std::max(0.0, outcome.qoe / outcome.optimal_qoe)
            : 0.0;

    n_qoes.push_back(outcome.normalized_qoe);
    bitrates.push_back(outcome.breakdown.avg_bitrate_kbps);
    good_ratios.push_back(outcome.breakdown.good_ratio);
    rebuffers.push_back(outcome.breakdown.rebuffer_seconds);
    startups.push_back(outcome.breakdown.startup_seconds);
    out.outcomes.push_back(std::move(outcome));
  }

  out.median_n_qoe = median(n_qoes);
  out.mean_n_qoe = mean(n_qoes);
  out.avg_bitrate_kbps = mean(bitrates);
  out.good_ratio = mean(good_ratios);
  out.mean_rebuffer_seconds = mean(rebuffers);
  out.mean_startup_seconds = mean(startups);
  return out;
}

}  // namespace cs2p
