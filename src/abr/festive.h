// FESTIVE-style controller (Jiang et al., CoNEXT'12 [31]) — the decentralized
// rate-adaptation baseline the paper repeatedly cites alongside BB and MPC.
//
// The implementation captures FESTIVE's three published mechanisms at chunk
// granularity (its randomized scheduling component concerns multi-player
// start-time jitter and has no effect in a single-player replay):
//
//  * bandwidth estimation by the harmonic mean of the last `window` chunks;
//  * gradual switching: step at most one ladder rung at a time, and only
//    climb after `patience` consecutive chunks have recommended a higher
//    rung (stability against noise);
//  * delayed update via an efficiency/stability trade-off: a step is taken
//    only when the estimated efficiency gain outweighs the configured
//    stability cost.
#pragma once

#include "sim/player.h"

namespace cs2p {

struct FestiveConfig {
  std::size_t window = 5;        ///< harmonic-mean window (chunks)
  unsigned patience = 3;         ///< consecutive up-recommendations to climb
  double safety_factor = 0.85;   ///< target rate = safety * estimate
  double stability_weight = 0.3; ///< switch only when gain beats this fraction
};

class FestiveController final : public AbrController {
 public:
  explicit FestiveController(FestiveConfig config = {}) : config_(config) {}

  std::string name() const override { return "FESTIVE"; }
  std::size_t select_bitrate(const AbrState& state, const VideoSpec& video) override;
  void reset() override;

 private:
  FestiveConfig config_;
  std::vector<double> recent_throughput_;
  unsigned up_streak_ = 0;
};

}  // namespace cs2p
