// Umbrella header: the full public API of the cs2p library.
//
//   #include "cs2p.h"
//
// Pulls in the prediction engine, every baseline predictor, the dataset
// tooling, the player simulator + ABR controllers, the QoE model, and the
// TCP prediction service. Fine-grained headers remain available for
// consumers who want shorter compile times.
#pragma once

// Data: session schema, containers, synthetic world.
#include "dataset/dataset.h"     // IWYU pragma: export
#include "dataset/session.h"     // IWYU pragma: export
#include "dataset/synthetic.h"   // IWYU pragma: export

// HMM substrate.
#include "hmm/baum_welch.h"      // IWYU pragma: export
#include "hmm/forward_backward.h"// IWYU pragma: export
#include "hmm/model.h"           // IWYU pragma: export
#include "hmm/model_selection.h" // IWYU pragma: export
#include "hmm/online_filter.h"   // IWYU pragma: export
#include "hmm/viterbi.h"         // IWYU pragma: export

// Predictors: interface, CS2P engine, baselines, evaluation harness.
#include "core/engine.h"             // IWYU pragma: export
#include "core/model_store.h"        // IWYU pragma: export
#include "core/trainer.h"            // IWYU pragma: export
#include "predictors/evaluation.h"   // IWYU pragma: export
#include "predictors/ghm.h"          // IWYU pragma: export
#include "predictors/history.h"      // IWYU pragma: export
#include "predictors/hmm_session.h"  // IWYU pragma: export
#include "predictors/ml_predictors.h"// IWYU pragma: export
#include "predictors/oracle.h"       // IWYU pragma: export
#include "predictors/predictor.h"    // IWYU pragma: export
#include "predictors/simple_cross.h" // IWYU pragma: export

// Playback: simulator, ABR controllers, QoE.
#include "abr/controllers.h"     // IWYU pragma: export
#include "abr/evaluation.h"      // IWYU pragma: export
#include "abr/festive.h"         // IWYU pragma: export
#include "abr/mpc.h"             // IWYU pragma: export
#include "abr/offline_optimal.h" // IWYU pragma: export
#include "qoe/qoe.h"             // IWYU pragma: export
#include "sim/player.h"          // IWYU pragma: export

// Deployment: TCP prediction service.
#include "net/client.h"          // IWYU pragma: export
#include "net/server.h"          // IWYU pragma: export
#include "net/session_table.h"   // IWYU pragma: export
#include "net/wire.h"            // IWYU pragma: export

// Observability: metrics registry + per-session trace log.
#include "obs/metrics.h"         // IWYU pragma: export
#include "obs/trace.h"           // IWYU pragma: export
