#include "net/replica_set.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "predictors/predictor.h"

namespace cs2p {
namespace {

// FNV-1a 64 (the same mixing wire.cpp uses for snapshot checksums) plus a
// SplitMix64 finalizer — FNV alone has weak high bits, and rendezvous
// ranking compares full 64-bit scores.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::string_view data) noexcept {
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t finalize(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::string_view replica_health_name(ReplicaHealth health) noexcept {
  switch (health) {
    case ReplicaHealth::kHealthy: return "HEALTHY";
    case ReplicaHealth::kSuspect: return "SUSPECT";
    case ReplicaHealth::kDown: return "DOWN";
  }
  return "UNKNOWN";
}

std::uint64_t make_session_key(const SessionFeatures& features,
                               double start_hour,
                               std::uint64_t nonce) noexcept {
  std::uint64_t hash = kFnvOffset;
  hash = fnv1a(hash, features.isp);
  hash = fnv1a(hash, features.as_number);
  hash = fnv1a(hash, features.province);
  hash = fnv1a(hash, features.city);
  hash = fnv1a(hash, features.server);
  hash = fnv1a(hash, features.client_prefix);
  std::uint64_t hour_bits = 0;
  static_assert(sizeof(hour_bits) == sizeof(start_hour));
  __builtin_memcpy(&hour_bits, &start_hour, sizeof(hour_bits));
  hash = fnv1a(hash, hour_bits);
  hash = fnv1a(hash, nonce);
  return finalize(hash);
}

std::uint64_t rendezvous_score(std::uint64_t key,
                               std::string_view name) noexcept {
  return finalize(fnv1a(fnv1a(kFnvOffset, name), key));
}

ReplicaSet::ReplicaSet(std::vector<Endpoint> endpoints,
                       ReplicaSetConfig config)
    : config_(std::move(config)),
      metrics_(config_.metrics ? config_.metrics
                               : std::make_shared<obs::MetricsRegistry>()) {
  if (endpoints.empty())
    throw std::invalid_argument("ReplicaSet: no replicas");
  if (config_.down_after_failures < 1)
    throw std::invalid_argument("ReplicaSet: down_after_failures must be >= 1");
  if (config_.recover_after_successes < 1)
    throw std::invalid_argument(
        "ReplicaSet: recover_after_successes must be >= 1");
  failovers_ = &metrics_->counter("cs2p_client_failovers_total");
  planned_migrations_ =
      &metrics_->counter("cs2p_client_planned_migrations_total");
  failover_seconds_ =
      &metrics_->histogram("cs2p_client_failover_seconds",
                           obs::default_latency_buckets_seconds());
  recovery_seconds_ =
      &metrics_->histogram("cs2p_client_replica_recovery_seconds",
                           obs::default_duration_buckets_seconds());
  replicas_.reserve(endpoints.size());
  std::uint64_t replica_index = 0;
  for (auto& endpoint : endpoints) {
    if (endpoint.name.empty())
      throw std::invalid_argument("ReplicaSet: empty replica name");
    if (!endpoint.connector)
      throw std::invalid_argument("ReplicaSet: null connector for " +
                                  endpoint.name);
    auto replica = std::make_unique<Replica>();
    replica->name = endpoint.name;
    ClientConfig client_config = config_.client;
    client_config.metrics = metrics_;
    // Distinct jitter streams per replica: a shared seed would re-sync the
    // very retry storms jitter exists to break up.
    client_config.backoff_seed =
        finalize(client_config.backoff_seed ^ fnv1a(kFnvOffset, replica_index));
    replica->client = std::make_unique<PredictionClient>(
        std::move(endpoint.connector), client_config);
    replica->failures = &metrics_->counter(
        "cs2p_client_replica_failures_total", {{"replica", replica->name}});
    replica->health_gauge = &metrics_->gauge("cs2p_client_replica_health",
                                             {{"replica", replica->name}});
    replica->health_gauge->set(0.0);
    replica->draining_gauge = &metrics_->gauge(
        "cs2p_client_replica_draining", {{"replica", replica->name}});
    replica->draining_gauge->set(0.0);
    replicas_.push_back(std::move(replica));
    ++replica_index;
  }
}

ReplicaSet::ReplicaSet(const std::vector<std::uint16_t>& ports,
                       ReplicaSetConfig config)
    : ReplicaSet(
          [&ports, &config] {
            std::vector<Endpoint> endpoints;
            endpoints.reserve(ports.size());
            for (const std::uint16_t port : ports) {
              TransportDeadlines deadlines;
              deadlines.recv_timeout_ms = config.client.recv_timeout_ms;
              deadlines.send_timeout_ms = config.client.send_timeout_ms;
              endpoints.push_back(
                  Endpoint{"127.0.0.1:" + std::to_string(port),
                           loopback_connector(port, deadlines)});
            }
            return endpoints;
          }(),
          std::move(config)) {}

std::vector<std::size_t> ReplicaSet::preference_order(
    std::uint64_t key) const {
  std::vector<std::size_t> order(replicas_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto sa = rendezvous_score(key, replicas_[a]->name);
    const auto sb = rendezvous_score(key, replicas_[b]->name);
    if (sa != sb) return sa > sb;
    return a < b;  // total order even on (vanishingly unlikely) score ties
  });
  return order;
}

ReplicaHealth ReplicaSet::health(std::size_t index) const {
  std::scoped_lock lock(health_mutex_);
  return replicas_.at(index)->health;
}

std::size_t ReplicaSet::session_replica(std::uint64_t session_id) const {
  std::scoped_lock lock(sessions_mutex_);
  return sessions_.at(session_id).replica;
}

std::vector<std::size_t> ReplicaSet::candidates(std::uint64_t key,
                                                bool include_resting_down) {
  const auto order = preference_order(key);
  std::vector<std::size_t> usable;
  std::vector<std::size_t> draining;
  std::vector<std::size_t> resting;
  const auto now = Clock::now();
  const auto probe_rest =
      std::chrono::milliseconds(std::max(0, config_.down_probe_after_ms));
  std::scoped_lock lock(health_mutex_);
  for (const std::size_t index : order) {
    Replica& replica = *replicas_[index];
    if (replica.health != ReplicaHealth::kDown) {
      // A draining replica still serves its sessions but refuses new ones:
      // rank it behind every non-draining replica so placements avoid it,
      // but keep it ahead of resting-DOWN — it is alive and may have
      // restarted (in which case its reply clears the flag).
      (replica.draining ? draining : usable).push_back(index);
      continue;
    }
    const auto rested_since =
        std::max(replica.down_since, replica.last_probe);
    if (now - rested_since >= probe_rest) {
      replica.last_probe = now;  // one probe per rest interval, not a stampede
      usable.push_back(index);
    } else {
      resting.push_back(index);
    }
  }
  usable.insert(usable.end(), draining.begin(), draining.end());
  if (include_resting_down)
    usable.insert(usable.end(), resting.begin(), resting.end());
  return usable;
}

bool ReplicaSet::replica_draining(std::size_t index) const {
  std::scoped_lock lock(health_mutex_);
  return replicas_.at(index)->draining;
}

void ReplicaSet::set_draining(std::size_t index, bool draining) {
  Replica& replica = *replicas_[index];
  std::scoped_lock lock(health_mutex_);
  if (replica.draining == draining) return;
  replica.draining = draining;
  replica.draining_gauge->set(draining ? 1.0 : 0.0);
}

void ReplicaSet::overload_backoff(std::uint32_t retry_after_ms) {
  const int capped = static_cast<int>(
      std::min<std::uint32_t>(retry_after_ms,
                              static_cast<std::uint32_t>(
                                  std::max(1, config_.max_retry_after_ms))));
  int sleep_ms = 0;
  {
    std::scoped_lock lock(backoff_mutex_);
    sleep_ms = jittered_backoff_ms(std::max(1, capped),
                                   config_.client.backoff_jitter, backoff_rng_);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

void ReplicaSet::record_failure(std::size_t index) {
  Replica& replica = *replicas_[index];
  replica.failures->inc();
  std::scoped_lock lock(health_mutex_);
  replica.success_streak = 0;
  replica.failure_streak += 1;
  if (replica.health == ReplicaHealth::kHealthy)
    replica.health = ReplicaHealth::kSuspect;
  if (replica.health == ReplicaHealth::kSuspect &&
      replica.failure_streak >= config_.down_after_failures) {
    replica.health = ReplicaHealth::kDown;
    replica.down_since = Clock::now();
    replica.last_probe = replica.down_since;
  }
  replica.health_gauge->set(static_cast<double>(
      static_cast<std::uint8_t>(replica.health)));
}

void ReplicaSet::record_success(std::size_t index) {
  Replica& replica = *replicas_[index];
  std::scoped_lock lock(health_mutex_);
  replica.failure_streak = 0;
  if (replica.health == ReplicaHealth::kHealthy) return;
  replica.success_streak += 1;
  if (replica.success_streak < config_.recover_after_successes) return;
  if (replica.health == ReplicaHealth::kDown)
    recovery_seconds_->observe(
        std::chrono::duration<double>(Clock::now() - replica.down_since)
            .count());
  replica.health = ReplicaHealth::kHealthy;
  replica.success_streak = 0;
  replica.health_gauge->set(0.0);
}

bool ReplicaSet::is_failover_signal(const ServerError& error) noexcept {
  // OVERLOADED / SHUTTING_DOWN: the replica told us to go elsewhere.
  // Anything else (BAD_REQUEST, INVALID_SAMPLE, ...) reflects our request,
  // and would fail identically on every replica.
  return error.code() == WireErrorCode::kOverloaded ||
         error.code() == WireErrorCode::kShuttingDown;
}

SessionResponse ReplicaSet::hello(const SessionFeatures& features,
                                  double start_hour) {
  std::uint64_t nonce = 0;
  {
    std::scoped_lock lock(sessions_mutex_);
    nonce = next_nonce_++;
  }
  const std::uint64_t key = make_session_key(features, start_hour, nonce);
  std::exception_ptr last_error;
  const int passes = std::max(1, config_.overload_retry_passes);
  for (int pass = 0; pass < passes; ++pass) {
    std::uint32_t retry_after = 0;  // min server hint seen this pass
    for (const std::size_t index :
         candidates(key, /*include_resting_down=*/true)) {
      try {
        SessionResponse response =
            replicas_[index]->client->hello(features, start_hour);
        record_success(index);
        // A draining replica refuses HELLO, so accepting one proves it is
        // not (anymore) — this is how a restarted replica sheds the flag.
        set_draining(index, false);
        SessionRecord record;
        record.hello = HelloRequest{features, start_hour};
        record.key = key;
        record.replica = index;
        record.remote_id = response.session_id;
        std::scoped_lock lock(sessions_mutex_);
        const std::uint64_t local_id = next_session_id_++;
        sessions_[local_id] = std::move(record);
        response.session_id = local_id;
        return response;
      } catch (const ServerError& e) {
        if (!is_failover_signal(e)) throw;
        if (e.code() == WireErrorCode::kShuttingDown) set_draining(index, true);
        if (e.retry_after_ms() > 0 &&
            (retry_after == 0 || e.retry_after_ms() < retry_after))
          retry_after = e.retry_after_ms();
        record_failure(index);
        last_error = std::current_exception();
      } catch (const TransportError&) {
        record_failure(index);
        last_error = std::current_exception();
      } catch (const ProtocolError&) {
        record_failure(index);
        last_error = std::current_exception();
      }
    }
    // The whole tier turned us away. If any replica supplied a retry-after
    // hint, honor it (jittered) and sweep again instead of surfacing a
    // hot-spin-inducing error; without a hint there is nothing to wait for.
    if (retry_after == 0 || pass + 1 >= passes) break;
    overload_backoff(retry_after);
  }
  std::rethrow_exception(last_error);
}

ReplicaSet::SessionRecord ReplicaSet::record_copy(
    std::uint64_t session_id) const {
  std::scoped_lock lock(sessions_mutex_);
  const auto it = sessions_.find(session_id);
  if (it == sessions_.end())
    throw std::invalid_argument("ReplicaSet: unknown session " +
                                std::to_string(session_id));
  return it->second;
}

template <typename Op>
PredictionResponse ReplicaSet::session_op(std::uint64_t session_id, Op&& op) {
  std::exception_ptr last_error;
  const int passes = std::max(1, config_.overload_retry_passes);
  for (int pass = 0; pass < passes; ++pass) {
    SessionRecord record = record_copy(session_id);
    // The current replica first (sticky placement), then the preference
    // list.
    std::vector<std::size_t> order{record.replica};
    for (const std::size_t index : candidates(record.key, true))
      if (index != record.replica) order.push_back(index);

    std::uint32_t retry_after = 0;  // min server hint seen this pass
    Clock::time_point first_failure{};
    for (const std::size_t index : order) {
      const bool migrating = index != record.replica;
      try {
        if (migrating) {
          // Replay HELLO on the new replica: same re-establishment path the
          // single-replica client uses when a server loses a session. The
          // replica-local handle below stays valid across its own
          // reconnects.
          const SessionResponse session = replicas_[index]->client->hello(
              record.hello.features, record.hello.start_hour);
          record.replica = index;
          record.remote_id = session.session_id;
        }
        PredictionResponse response = op(*replicas_[index]->client,
                                         record.remote_id);
        record_success(index);
        const bool drain_hinted =
            (response.flags & serve_flags::kDraining) != 0;
        set_draining(index, drain_hinted);
        if (migrating) {
          failovers_->inc();
          failover_seconds_->observe(
              std::chrono::duration<double>(Clock::now() - first_failure)
                  .count());
          std::scoped_lock lock(sessions_mutex_);
          const auto it = sessions_.find(session_id);
          if (it != sessions_.end()) it->second = record;
        }
        // Planned migration (DESIGN.md §14): the reply is good, but the
        // replica told us it is draining — move the session now, while both
        // sides are still serving, instead of waiting for the replica to
        // die under us. Best-effort; the answer we already have is
        // returned either way.
        if (drain_hinted) migrate_off_draining(session_id, record);
        return response;
      } catch (const ServerError& e) {
        if (!is_failover_signal(e)) throw;
        if (e.code() == WireErrorCode::kShuttingDown) set_draining(index, true);
        if (e.retry_after_ms() > 0 &&
            (retry_after == 0 || e.retry_after_ms() < retry_after))
          retry_after = e.retry_after_ms();
        record_failure(index);
        last_error = std::current_exception();
      } catch (const TransportError&) {
        record_failure(index);
        last_error = std::current_exception();
      } catch (const ProtocolError&) {
        record_failure(index);
        last_error = std::current_exception();
      }
      if (first_failure == Clock::time_point{}) first_failure = Clock::now();
    }
    if (retry_after == 0 || pass + 1 >= passes) break;
    overload_backoff(retry_after);
  }
  std::rethrow_exception(last_error);
}

void ReplicaSet::migrate_off_draining(std::uint64_t session_id,
                                      SessionRecord record) {
  const std::vector<std::size_t> order =
      candidates(record.key, /*include_resting_down=*/false);
  // Replicas still marked draining go last, as probes: the mark can be
  // stale — a drained replica that restarted sheds it only when traffic
  // lands on it again, and during a rolling restart the freshly restarted
  // replicas are exactly the marked ones. The HELLO doubles as the probe: a
  // genuinely draining target refuses it with SHUTTING_DOWN and keeps its
  // mark, a restarted one accepts and clears it.
  for (const bool probe_marked : {false, true}) {
    for (const std::size_t index : order) {
      if (index == record.replica || replica_draining(index) != probe_marked)
        continue;
      SessionRecord moved = record;
      try {
        const SessionResponse session = replicas_[index]->client->hello(
            record.hello.features, record.hello.start_hour);
        moved.replica = index;
        moved.remote_id = session.session_id;
        record_success(index);
        set_draining(index, false);  // the accepted HELLO is the probe result
      } catch (const ServerError& e) {
        if (e.code() == WireErrorCode::kShuttingDown)
          set_draining(index, true);
        record_failure(index);
        continue;  // try the next candidate
      } catch (const std::exception&) {
        record_failure(index);
        continue;
      }
      bool committed = false;
      {
        std::scoped_lock lock(sessions_mutex_);
        const auto it = sessions_.find(session_id);
        // The session may have BYEd or migrated concurrently; only commit
        // if it is still where we copied it from.
        if (it != sessions_.end() && it->second.replica == record.replica) {
          it->second = moved;
          committed = true;
        }
      }
      if (!committed) {
        // Lost the race: the session we just opened on `index` is an orphan.
        try {
          replicas_[index]->client->bye(moved.remote_id);
        } catch (const std::exception&) {
        }
        return;
      }
      planned_migrations_->inc();
      // Tell the draining replica the session is gone so its drain completes
      // now rather than when the shrunk TTL expires. Best-effort.
      try {
        replicas_[record.replica]->client->bye(record.remote_id);
      } catch (const std::exception&) {
      }
      return;
    }
  }
  // Every other replica is down or refused the HELLO: stay put — the shrunk
  // drain TTL or a later op will move us.
}

PredictionResponse ReplicaSet::observe_response(std::uint64_t session_id,
                                                double throughput_mbps) {
  return session_op(session_id,
                    [&](PredictionClient& client, std::uint64_t remote_id) {
                      return client.observe_response(remote_id,
                                                     throughput_mbps);
                    });
}

PredictionResponse ReplicaSet::predict_response(std::uint64_t session_id,
                                                unsigned steps_ahead) {
  return session_op(session_id,
                    [&](PredictionClient& client, std::uint64_t remote_id) {
                      return client.predict_response(remote_id, steps_ahead);
                    });
}

void ReplicaSet::bye(std::uint64_t session_id) {
  SessionRecord record;
  {
    std::scoped_lock lock(sessions_mutex_);
    const auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;
    record = it->second;
    sessions_.erase(it);
  }
  try {
    replicas_[record.replica]->client->bye(record.remote_id);
    record_success(record.replica);
  } catch (const std::exception&) {
    // Best-effort: a dead replica forgets the session via TTL eviction, and
    // a BYE that cannot be delivered is not worth a migration.
    record_failure(record.replica);
  }
}

}  // namespace cs2p
