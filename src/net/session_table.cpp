#include "net/session_table.h"

#include <string>

namespace cs2p {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  if (n < 2) return 1;
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// splitmix64 finalizer: sequential session ids must not land in sequential
/// shards, or one busy tenant allocating a burst of sessions would hammer
/// one lock. Same mixer the trace sampler uses (obs/trace.cpp).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SessionTable::SessionTable(SessionTableConfig config,
                           obs::MetricsRegistry* registry)
    : config_(config), ttl_ms_(config.ttl_ms) {
  const std::size_t count = round_up_pow2(config_.shards == 0 ? 16 : config_.shards);
  shard_mask_ = count - 1;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    if (registry != nullptr) {
      shard->contention =
          &registry->counter("cs2p_server_session_shard_contention_total",
                             {{"shard", std::to_string(i)}});
    }
    shards_.push_back(std::move(shard));
  }
  if (config_.evict_scan_budget == 0) config_.evict_scan_budget = 1;
}

SessionTable::Shard& SessionTable::shard_for(std::uint64_t id) noexcept {
  return *shards_[mix64(id) & shard_mask_];
}

std::unique_lock<std::mutex> SessionTable::lock_shard(Shard& shard) noexcept {
  std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    contentions_.fetch_add(1, std::memory_order_relaxed);
    if (shard.contention != nullptr) shard.contention->inc();
    lock.lock();
  }
  return lock;
}

bool SessionTable::erase(std::uint64_t id, bool* traced) {
  Shard& shard = shard_for(id);
  const auto lock = lock_shard(shard);
  const auto it = shard.entries.find(id);
  if (it == shard.entries.end()) return false;
  if (traced != nullptr) *traced = it->second.traced;
  shard.entries.erase(it);
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool SessionTable::erase(std::uint64_t id, const EvictCallback& on_erase,
                         bool* traced) {
  Shard& shard = shard_for(id);
  Entry removed;
  {
    const auto lock = lock_shard(shard);
    const auto it = shard.entries.find(id);
    if (it == shard.entries.end()) return false;
    removed = std::move(it->second);
    shard.entries.erase(it);
    size_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (traced != nullptr) *traced = removed.traced;
  if (on_erase) on_erase(id, removed);
  return true;
}

SessionTable::EvictStats SessionTable::evict_tick(Clock::time_point now,
                                                  const EvictCallback& on_evict) {
  EvictStats stats;
  const int ttl = ttl_ms_.load(std::memory_order_relaxed);
  if (ttl <= 0) return stats;
  const auto deadline = now - std::chrono::milliseconds(ttl);
  std::vector<std::uint64_t> expired;
  std::vector<std::pair<std::uint64_t, Entry>> removed;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    expired.clear();
    removed.clear();
    {
      const auto lock = lock_shard(shard);
      const std::size_t buckets = shard.entries.bucket_count();
      if (buckets == 0 || shard.entries.empty()) continue;
      if (shard.cursor >= buckets) shard.cursor = 0;
      const std::size_t start = shard.cursor;
      std::size_t scanned = 0;
      // Whole buckets at a time (chains are short under the default load
      // factor), stopping once the budget is met — the lock hold is bounded
      // by the budget plus one bucket's chain, never by the table size.
      do {
        for (auto it = shard.entries.begin(shard.cursor);
             it != shard.entries.end(shard.cursor); ++it) {
          ++scanned;
          if (it->second.last_used < deadline) expired.push_back(it->first);
        }
        shard.cursor = (shard.cursor + 1) % buckets;
      } while (scanned < config_.evict_scan_budget && shard.cursor != start);
      for (const std::uint64_t id : expired) {
        const auto it = shard.entries.find(id);
        if (it == shard.entries.end()) continue;
        removed.emplace_back(id, std::move(it->second));
        shard.entries.erase(it);
        size_.fetch_sub(1, std::memory_order_relaxed);
      }
      std::size_t seen = max_scanned_.load(std::memory_order_relaxed);
      while (scanned > seen &&
             !max_scanned_.compare_exchange_weak(seen, scanned,
                                                 std::memory_order_relaxed)) {
      }
      stats.scanned += scanned;
      stats.evicted += removed.size();
    }
    // Callbacks run after the shard lock is released: the completion hook
    // may feed the trainer (its own locks, possibly EM in progress) and must
    // never extend an eviction lock hold.
    if (on_evict)
      for (auto& [id, entry] : removed) on_evict(id, entry);
  }
  return stats;
}

}  // namespace cs2p
