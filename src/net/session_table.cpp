#include "net/session_table.h"

#include <string>

namespace cs2p {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  if (n < 2) return 1;
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// splitmix64 finalizer: sequential session ids must not land in sequential
/// shards, or one busy tenant allocating a burst of sessions would hammer
/// one lock. Same mixer the trace sampler uses (obs/trace.cpp).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SessionTable::SessionTable(SessionTableConfig config,
                           obs::MetricsRegistry* registry)
    : config_(config), ttl_ms_(config.ttl_ms) {
  const std::size_t count = round_up_pow2(config_.shards == 0 ? 16 : config_.shards);
  shard_mask_ = count - 1;
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    if (registry != nullptr) {
      shard->contention =
          &registry->counter("cs2p_server_session_shard_contention_total",
                             {{"shard", std::to_string(i)}});
    }
    shards_.push_back(std::move(shard));
  }
  if (config_.evict_scan_budget == 0) config_.evict_scan_budget = 1;
}

SessionTable::Shard& SessionTable::shard_for(std::uint64_t id) noexcept {
  return *shards_[mix64(id) & shard_mask_];
}

std::size_t SessionTable::shard_index(std::uint64_t id) const noexcept {
  return mix64(id) & shard_mask_;
}

std::uint32_t SessionTable::Shard::acquire_slot() {
  if (free_head != kNoSlot) {
    const std::uint32_t i = free_head;
    Slot& s = slot(i);
    free_head = s.next_free;
    s.next_free = kNoSlot;
    return i;
  }
  if (allocated == slabs.size() * kSlabSlots)
    slabs.push_back(std::make_unique<Slab>());
  return allocated++;
}

void SessionTable::Shard::release_slot(std::uint32_t i) {
  Slot& s = slot(i);
  s.id = 0;
  s.live = false;
  s.entry = Entry{};  // predictor, model pin, and history die here, not later
  s.next_free = free_head;
  free_head = i;
}

std::size_t SessionTable::arena_slots() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    total += shard->allocated;
  }
  return total;
}

std::unique_lock<std::mutex> SessionTable::lock_shard(Shard& shard) noexcept {
  std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    contentions_.fetch_add(1, std::memory_order_relaxed);
    if (shard.contention != nullptr) shard.contention->inc();
    lock.lock();
  }
  return lock;
}

bool SessionTable::erase(std::uint64_t id, bool* traced) {
  Shard& shard = shard_for(id);
  const auto lock = lock_shard(shard);
  const auto it = shard.index.find(id);
  if (it == shard.index.end()) return false;
  if (traced != nullptr) *traced = shard.slot(it->second).entry.traced;
  shard.release_slot(it->second);
  shard.index.erase(it);
  size_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool SessionTable::erase(std::uint64_t id, const EvictCallback& on_erase,
                         bool* traced) {
  Shard& shard = shard_for(id);
  Entry removed;
  {
    const auto lock = lock_shard(shard);
    const auto it = shard.index.find(id);
    if (it == shard.index.end()) return false;
    removed = std::move(shard.slot(it->second).entry);
    shard.release_slot(it->second);
    shard.index.erase(it);
    size_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (traced != nullptr) *traced = removed.traced;
  if (on_erase) on_erase(id, removed);
  return true;
}

SessionTable::EvictStats SessionTable::evict_tick(Clock::time_point now,
                                                  const EvictCallback& on_evict) {
  EvictStats stats;
  const int ttl = ttl_ms_.load(std::memory_order_relaxed);
  if (ttl <= 0) return stats;
  const auto deadline = now - std::chrono::milliseconds(ttl);
  std::vector<std::pair<std::uint64_t, Entry>> removed;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    removed.clear();
    {
      const auto lock = lock_shard(shard);
      if (shard.allocated == 0 || shard.index.empty()) continue;
      if (shard.cursor >= shard.allocated) shard.cursor = 0;
      const std::uint32_t start = shard.cursor;
      std::size_t scanned = 0;
      // A linear walk over the slot arena (live and free slots alike),
      // stopping once the budget is met — the lock hold is bounded by the
      // budget, never by the table size, and the walk order is the arena's
      // memory order.
      do {
        const std::uint32_t i = shard.cursor;
        Slot& slot = shard.slot(i);
        ++scanned;
        if (slot.live && slot.entry.last_used < deadline) {
          removed.emplace_back(slot.id, std::move(slot.entry));
          shard.index.erase(slot.id);
          shard.release_slot(i);
          size_.fetch_sub(1, std::memory_order_relaxed);
        }
        shard.cursor = (shard.cursor + 1) % shard.allocated;
      } while (scanned < config_.evict_scan_budget && shard.cursor != start);
      std::size_t seen = max_scanned_.load(std::memory_order_relaxed);
      while (scanned > seen &&
             !max_scanned_.compare_exchange_weak(seen, scanned,
                                                 std::memory_order_relaxed)) {
      }
      stats.scanned += scanned;
      stats.evicted += removed.size();
    }
    // Callbacks run after the shard lock is released: the completion hook
    // may feed the trainer (its own locks, possibly EM in progress) and must
    // never extend an eviction lock hold.
    if (on_evict)
      for (auto& [id, entry] : removed) on_evict(id, entry);
  }
  return stats;
}

}  // namespace cs2p
