#include "net/transport.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace cs2p {
namespace {

/// Waits for `events` on `fd`. Returns false on timeout (timeout_ms > 0);
/// blocks indefinitely when timeout_ms <= 0.
bool wait_for(int fd, short events, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
    if (rc > 0) return true;  // readiness, error, or hangup: let recv/send see it
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw ConnectionError(std::string("transport: poll: ") + std::strerror(errno));
  }
}

[[noreturn]] void throw_io_error(const char* op) {
  throw ConnectionError(std::string("transport: ") + op + ": " +
                        std::strerror(errno));
}

}  // namespace

SocketTransport::SocketTransport(FdHandle fd, TransportDeadlines deadlines)
    : fd_(std::move(fd)), deadlines_(deadlines) {
  if (!fd_.valid()) throw ConnectionError("transport: invalid socket");
  // Non-blocking + poll keeps every wait under the configured deadline.
  set_nonblocking(fd_);
}

void SocketTransport::send(std::span<const std::byte> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    if (!wait_for(fd_.get(), POLLOUT, deadlines_.send_timeout_ms))
      throw TimeoutError("transport: send deadline elapsed");
    const ssize_t n = ::send(fd_.get(), data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_io_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool SocketTransport::recv(std::span<std::byte> data) {
  std::size_t received = 0;
  while (received < data.size()) {
    if (!wait_for(fd_.get(), POLLIN, deadlines_.recv_timeout_ms))
      throw TimeoutError("transport: recv deadline elapsed");
    const ssize_t n =
        ::recv(fd_.get(), data.data() + received, data.size() - received, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      throw_io_error("recv");
    }
    if (n == 0) {
      if (received == 0) return false;  // clean EOF between messages
      throw ConnectionError("transport: connection closed mid-message");
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

void SocketTransport::shutdown() noexcept {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

TransportFactory loopback_connector(std::uint16_t port,
                                    TransportDeadlines deadlines) {
  return [port, deadlines]() -> std::unique_ptr<Transport> {
    try {
      return std::make_unique<SocketTransport>(connect_loopback(port), deadlines);
    } catch (const std::system_error& e) {
      throw ConnectionError(std::string("transport: connect: ") + e.what());
    }
  };
}

}  // namespace cs2p
