// PredictionClient: the player-side stub of the prediction service.
//
// RemoteSessionPredictor implements the SessionPredictor interface over the
// wire, so the player simulator can be pointed at a live PredictionServer
// unchanged — this is how the pilot-deployment bench (§7.5) drives CS2P+MPC
// through a real TCP round-trip per chunk, like the dash.js player posting
// to the Node.js server in §6.
//
// Fault discipline (the paper's pilot runs prediction as an always-on
// service; the player must survive losing it):
//   - every round trip runs under send/recv deadlines (TimeoutError instead
//     of a hung socket),
//   - transport failures reconnect and retry with bounded exponential
//     backoff,
//   - a server that lost our session (restart, TTL eviction) is healed by
//     replaying the stored HELLO and continuing under the new session id,
//   - when the retry budget is exhausted RemoteSessionPredictor does not
//     throw into the player loop: it degrades to a local harmonic-mean
//     fallback (the paper's §3 HM baseline) over the samples it has seen.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "net/transport.h"
#include "net/wire.h"
#include "predictors/predictor.h"

namespace cs2p {

/// Deadline/retry policy of one client. max_retries counts retries after
/// the first attempt; backoff doubles (capped) between attempts.
struct ClientConfig {
  int recv_timeout_ms = 2'000;
  int send_timeout_ms = 2'000;
  int max_retries = 3;
  int backoff_initial_ms = 10;
  double backoff_multiplier = 2.0;
  int backoff_max_ms = 200;
};

/// One logical connection to a PredictionServer; reconnects transparently.
/// Thread-safe (per-call lock).
class PredictionClient {
 public:
  /// Connects lazily to 127.0.0.1:`port` with the config's deadlines.
  explicit PredictionClient(std::uint16_t port, ClientConfig config = {});

  /// Uses `connector` for every (re)connect — this is how tests interpose
  /// FaultInjectingTransport.
  explicit PredictionClient(TransportFactory connector, ClientConfig config = {});

  /// Registers a session; returns the server's session handle + initial
  /// prediction. The returned session_id is a client-local handle that
  /// stays valid across reconnects and server-side session loss (the
  /// client replays HELLO under the hood). Throws ServerError on
  /// server-reported errors, TransportError when the retry budget runs out.
  SessionResponse hello(const SessionFeatures& features, double start_hour);

  /// Reports a measurement; returns the next-epoch forecast.
  double observe(std::uint64_t session_id, double throughput_mbps);

  /// Requests an h-step-ahead forecast without new data.
  double predict(std::uint64_t session_id, unsigned steps_ahead);

  /// Full-reply variants carrying the v2 serve-flags byte alongside the
  /// forecast (why the server answered from the path it did).
  PredictionResponse observe_response(std::uint64_t session_id,
                                      double throughput_mbps);
  PredictionResponse predict_response(std::uint64_t session_id,
                                      unsigned steps_ahead);

  /// Ends a session server-side.
  void bye(std::uint64_t session_id);

  /// Downloads the compact per-session model for local execution (§5.3's
  /// client-side solution): no per-epoch round trips afterwards. Throws
  /// ServerError when the server's model family cannot export one.
  DownloadableModel download_model(const SessionFeatures& features,
                                   double start_hour);

  /// Scrapes the server's metrics registry (the v3 STATS verb): the raw
  /// versioned text exposition, exactly as the server rendered it. What
  /// cs2p_stats is built on.
  StatsResponse stats();

  const ClientConfig& config() const noexcept { return config_; }

  /// Transport teardowns that forced a fresh connect.
  std::uint64_t reconnects() const noexcept { return reconnects_.load(); }

  /// Round-trip attempts beyond the first (any reason).
  std::uint64_t retries() const noexcept { return retries_.load(); }

  /// Sessions re-established by replaying HELLO after UNKNOWN_SESSION.
  std::uint64_t sessions_reestablished() const noexcept {
    return rehellos_.load();
  }

 private:
  struct SessionRecord {
    HelloRequest hello;        ///< replayed to re-establish after loss
    std::uint64_t remote_id = 0;
  };

  void ensure_connected();
  Response locked_round_trip(const Request& request);
  template <typename MakeRequest>
  Response locked_session_round_trip(std::uint64_t local_id, MakeRequest&& make);

  std::mutex mutex_;
  TransportFactory connector_;
  ClientConfig config_;
  std::unique_ptr<Transport> transport_;
  std::unordered_map<std::uint64_t, SessionRecord> sessions_;
  std::uint64_t next_local_id_ = 1;
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> rehellos_{0};
};

/// SessionPredictor adapter over a PredictionClient. The client must
/// outlive the predictor.
///
/// Degradation contract: no member ever throws into the player loop. When
/// the service is unreachable past the client's retry budget (including a
/// failed HELLO), the predictor flips to degraded() and serves a harmonic
/// mean of the throughput samples observed so far — the player keeps
/// streaming on the paper's HM baseline and the §7.5 bench can report
/// QoE-under-failure.
class RemoteSessionPredictor final : public SessionPredictor {
 public:
  RemoteSessionPredictor(PredictionClient& client, const SessionFeatures& features,
                         double start_hour);
  ~RemoteSessionPredictor() override;

  RemoteSessionPredictor(const RemoteSessionPredictor&) = delete;
  RemoteSessionPredictor& operator=(const RemoteSessionPredictor&) = delete;

  std::optional<double> predict_initial() const override;
  double predict(unsigned steps_ahead) const override;
  void observe(double throughput_mbps) override;

  /// True once the predictor has switched to the local fallback.
  bool degraded() const override { return degraded_; }

  /// Local fallback state plus the server-reported serving path of the last
  /// reply: a remote player can tell "the service is gone" (kRemoteFallback)
  /// from "the service is up but serving me from a guardrail fallback or a
  /// drifted cluster" (server bits passed through).
  std::uint8_t serve_flags() const override;

  /// serve_flags byte of the most recent server reply (0 before any).
  std::uint8_t last_server_flags() const noexcept { return last_server_flags_; }

  /// Remote calls that failed past the retry budget.
  std::uint64_t remote_failures() const noexcept { return remote_failures_; }

  /// Forecasts served by the local harmonic-mean fallback.
  std::uint64_t fallback_predictions() const noexcept {
    return fallback_predictions_;
  }

 private:
  void degrade() const noexcept;
  double fallback_forecast() const;

  PredictionClient* client_;
  std::uint64_t session_id_ = 0;
  bool session_established_ = false;
  double initial_mbps_ = 0.0;
  double last_forecast_ = 0.0;
  bool has_observed_ = false;
  std::vector<double> history_;  ///< observed samples, feeds the fallback
  mutable bool degraded_ = false;
  mutable std::uint8_t last_server_flags_ = 0;
  mutable std::uint64_t remote_failures_ = 0;
  mutable std::uint64_t fallback_predictions_ = 0;
};

}  // namespace cs2p
