// PredictionClient: the player-side stub of the prediction service.
//
// RemoteSessionPredictor implements the SessionPredictor interface over the
// wire, so the player simulator can be pointed at a live PredictionServer
// unchanged — this is how the pilot-deployment bench (§7.5) drives CS2P+MPC
// through a real TCP round-trip per chunk, like the dash.js player posting
// to the Node.js server in §6.
//
// Fault discipline (the paper's pilot runs prediction as an always-on
// service; the player must survive losing it):
//   - every round trip runs under send/recv deadlines (TimeoutError instead
//     of a hung socket),
//   - transport failures reconnect and retry with bounded exponential
//     backoff,
//   - a server that lost our session (restart, TTL eviction) is healed by
//     replaying the stored HELLO and continuing under the new session id,
//   - when the retry budget is exhausted RemoteSessionPredictor does not
//     throw into the player loop: it degrades to a local harmonic-mean
//     fallback (the paper's §3 HM baseline) over the samples it has seen.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "predictors/predictor.h"
#include "util/rng.h"

namespace cs2p {

/// Deadline/retry policy of one client. max_retries counts retries after
/// the first attempt; backoff doubles (capped) between attempts, with full
/// jitter: each sleep is drawn uniformly from ((1 - jitter) * b, b]. Without
/// jitter, every client that lost the same replica retries on the same
/// deterministic schedule — a synchronized retry storm the instant it dies.
struct ClientConfig {
  int recv_timeout_ms = 2'000;
  int send_timeout_ms = 2'000;
  int max_retries = 3;
  int backoff_initial_ms = 10;
  double backoff_multiplier = 2.0;
  int backoff_max_ms = 200;
  /// Fraction of each backoff randomized away (1.0 = full jitter, 0 = the
  /// old deterministic doubling).
  double backoff_jitter = 1.0;
  /// Seed of the jitter stream; deterministic so tests replay exactly.
  std::uint64_t backoff_seed = 0x9e3779b97f4a7c15ULL;
  /// Optional telemetry sink: OVERLOADED replies and retry counters land
  /// here when set (DESIGN.md §13). Null: client-local atomics only.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// The backoff actually slept before a retry: `backoff_ms` shrunk by up to
/// `jitter` of itself, uniformly at random. Pure — exposed so tests can
/// assert the jitter window without timing a sleep.
int jittered_backoff_ms(int backoff_ms, double jitter, Rng& rng) noexcept;

/// Player-facing session operations of the prediction service — the surface
/// RemoteSessionPredictor drives. Implemented by PredictionClient (one
/// server) and ReplicaSet (replicated tier with rendezvous-hash failover,
/// net/replica_set.h), so a player binds to either without changing.
class SessionClient {
 public:
  virtual ~SessionClient() = default;

  virtual SessionResponse hello(const SessionFeatures& features,
                                double start_hour) = 0;
  virtual PredictionResponse observe_response(std::uint64_t session_id,
                                              double throughput_mbps) = 0;
  virtual PredictionResponse predict_response(std::uint64_t session_id,
                                              unsigned steps_ahead) = 0;
  virtual void bye(std::uint64_t session_id) = 0;
};

/// One logical connection to a PredictionServer; reconnects transparently.
/// Thread-safe (per-call lock).
class PredictionClient final : public SessionClient {
 public:
  /// Connects lazily to 127.0.0.1:`port` with the config's deadlines.
  explicit PredictionClient(std::uint16_t port, ClientConfig config = {});

  /// Uses `connector` for every (re)connect — this is how tests interpose
  /// FaultInjectingTransport.
  explicit PredictionClient(TransportFactory connector, ClientConfig config = {});

  /// Registers a session; returns the server's session handle + initial
  /// prediction. The returned session_id is a client-local handle that
  /// stays valid across reconnects and server-side session loss (the
  /// client replays HELLO under the hood). Throws ServerError on
  /// server-reported errors, TransportError when the retry budget runs out.
  SessionResponse hello(const SessionFeatures& features,
                        double start_hour) override;

  /// Reports a measurement; returns the next-epoch forecast.
  double observe(std::uint64_t session_id, double throughput_mbps);

  /// Requests an h-step-ahead forecast without new data.
  double predict(std::uint64_t session_id, unsigned steps_ahead);

  /// Full-reply variants carrying the v2 serve-flags byte alongside the
  /// forecast (why the server answered from the path it did).
  PredictionResponse observe_response(std::uint64_t session_id,
                                      double throughput_mbps) override;
  PredictionResponse predict_response(std::uint64_t session_id,
                                      unsigned steps_ahead) override;

  /// Ends a session server-side.
  void bye(std::uint64_t session_id) override;

  /// Downloads the compact per-session model for local execution (§5.3's
  /// client-side solution): no per-epoch round trips afterwards. Throws
  /// ServerError when the server's model family cannot export one.
  DownloadableModel download_model(const SessionFeatures& features,
                                   double start_hour);

  /// Scrapes the server's metrics registry (the v3 STATS verb): the raw
  /// versioned text exposition, exactly as the server rendered it. What
  /// cs2p_stats is built on.
  StatsResponse stats();

  /// Ships a model_store snapshot to the server over the v4 SYNC verbs
  /// (BEGIN, kSyncChunkBytes-sized DATA frames, COMMIT). The server
  /// verifies the declared checksum byte-for-byte before hot-swapping; a
  /// rejected snapshot throws ServerError{kSyncRejected} and the server
  /// keeps its current model. A mid-push reconnect (the server's staging is
  /// per-connection) restarts the whole sequence once before giving up.
  void push_snapshot(const std::string& snapshot_bytes);

  /// Pulls the server's published snapshot chunk by chunk (SYNCFETCH),
  /// verifying the declared checksum over the reassembled bytes. A
  /// republish mid-fetch restarts the pull. Throws ServerError when the
  /// server has no snapshot published, ProtocolError on a checksum mismatch.
  std::string fetch_snapshot();

  const ClientConfig& config() const noexcept { return config_; }

  /// Transport teardowns that forced a fresh connect.
  std::uint64_t reconnects() const noexcept { return reconnects_.load(); }

  /// Round-trip attempts beyond the first (any reason).
  std::uint64_t retries() const noexcept { return retries_.load(); }

  /// Sessions re-established by replaying HELLO after UNKNOWN_SESSION.
  std::uint64_t sessions_reestablished() const noexcept {
    return rehellos_.load();
  }

  /// OVERLOADED replies seen (also counted in the registry when one is
  /// configured). A failover signal, not a retry-this-socket signal: the
  /// replica is shedding load, so ReplicaSet moves the session elsewhere.
  std::uint64_t overloaded_replies() const noexcept {
    return overloaded_.load();
  }

 private:
  struct SessionRecord {
    HelloRequest hello;        ///< replayed to re-establish after loss
    std::uint64_t remote_id = 0;
  };

  void ensure_connected();
  Response locked_round_trip(const Request& request);
  template <typename MakeRequest>
  Response locked_session_round_trip(std::uint64_t local_id, MakeRequest&& make);

  std::mutex mutex_;
  TransportFactory connector_;
  ClientConfig config_;
  std::unique_ptr<Transport> transport_;
  std::unordered_map<std::uint64_t, SessionRecord> sessions_;
  std::uint64_t next_local_id_ = 1;
  Rng backoff_rng_;  ///< jitter stream; guarded by mutex_ like the transport
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> rehellos_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  obs::Counter* overloaded_counter_ = nullptr;  ///< null without a registry
  obs::Counter* retries_counter_ = nullptr;
};

/// SessionPredictor adapter over a PredictionClient. The client must
/// outlive the predictor.
///
/// Degradation contract: no member ever throws into the player loop. When
/// the service is unreachable past the client's retry budget (including a
/// failed HELLO), the predictor flips to degraded() and serves a harmonic
/// mean of the throughput samples observed so far — the player keeps
/// streaming on the paper's HM baseline and the §7.5 bench can report
/// QoE-under-failure.
class RemoteSessionPredictor final : public SessionPredictor {
 public:
  RemoteSessionPredictor(SessionClient& client, const SessionFeatures& features,
                         double start_hour);
  ~RemoteSessionPredictor() override;

  RemoteSessionPredictor(const RemoteSessionPredictor&) = delete;
  RemoteSessionPredictor& operator=(const RemoteSessionPredictor&) = delete;

  std::optional<double> predict_initial() const override;
  double predict(unsigned steps_ahead) const override;
  void observe(double throughput_mbps) override;

  /// True once the predictor has switched to the local fallback.
  bool degraded() const override { return degraded_; }

  /// Local fallback state plus the server-reported serving path of the last
  /// reply: a remote player can tell "the service is gone" (kRemoteFallback)
  /// from "the service is up but serving me from a guardrail fallback or a
  /// drifted cluster" (server bits passed through).
  std::uint8_t serve_flags() const override;

  /// serve_flags byte of the most recent server reply (0 before any).
  std::uint8_t last_server_flags() const noexcept { return last_server_flags_; }

  /// Remote calls that failed past the retry budget.
  std::uint64_t remote_failures() const noexcept { return remote_failures_; }

  /// Forecasts served by the local harmonic-mean fallback.
  std::uint64_t fallback_predictions() const noexcept {
    return fallback_predictions_;
  }

 private:
  void degrade() const noexcept;
  double fallback_forecast() const;

  SessionClient* client_;
  std::uint64_t session_id_ = 0;
  bool session_established_ = false;
  double initial_mbps_ = 0.0;
  double last_forecast_ = 0.0;
  bool has_observed_ = false;
  std::vector<double> history_;  ///< observed samples, feeds the fallback
  mutable bool degraded_ = false;
  mutable std::uint8_t last_server_flags_ = 0;
  mutable std::uint64_t remote_failures_ = 0;
  mutable std::uint64_t fallback_predictions_ = 0;
};

}  // namespace cs2p
