// PredictionClient: the player-side stub of the prediction service.
//
// RemoteSessionPredictor implements the SessionPredictor interface over the
// wire, so the player simulator can be pointed at a live PredictionServer
// unchanged — this is how the pilot-deployment bench (§7.5) drives CS2P+MPC
// through a real TCP round-trip per chunk, like the dash.js player posting
// to the Node.js server in §6.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "net/socket.h"
#include "net/wire.h"
#include "predictors/predictor.h"

namespace cs2p {

/// One TCP connection to a PredictionServer. Thread-safe (per-call lock).
class PredictionClient {
 public:
  /// Connects to 127.0.0.1:`port`.
  explicit PredictionClient(std::uint16_t port);

  /// Registers a session; returns the server's session handle + initial
  /// prediction. Throws std::runtime_error on server-reported errors.
  SessionResponse hello(const SessionFeatures& features, double start_hour);

  /// Reports a measurement; returns the next-epoch forecast.
  double observe(std::uint64_t session_id, double throughput_mbps);

  /// Requests an h-step-ahead forecast without new data.
  double predict(std::uint64_t session_id, unsigned steps_ahead);

  /// Ends a session server-side.
  void bye(std::uint64_t session_id);

  /// Downloads the compact per-session model for local execution (§5.3's
  /// client-side solution): no per-epoch round trips afterwards. Throws
  /// std::runtime_error when the server's model family cannot export one.
  DownloadableModel download_model(const SessionFeatures& features,
                                   double start_hour);

 private:
  Response round_trip(const Request& request);

  std::mutex mutex_;
  FdHandle connection_;
};

/// SessionPredictor adapter over a PredictionClient. The client must
/// outlive the predictor.
class RemoteSessionPredictor final : public SessionPredictor {
 public:
  RemoteSessionPredictor(PredictionClient& client, const SessionFeatures& features,
                         double start_hour);
  ~RemoteSessionPredictor() override;

  RemoteSessionPredictor(const RemoteSessionPredictor&) = delete;
  RemoteSessionPredictor& operator=(const RemoteSessionPredictor&) = delete;

  std::optional<double> predict_initial() const override { return initial_mbps_; }
  double predict(unsigned steps_ahead) const override;
  void observe(double throughput_mbps) override;

 private:
  PredictionClient* client_;
  std::uint64_t session_id_ = 0;
  double initial_mbps_ = 0.0;
  double last_forecast_ = 0.0;
  bool has_observed_ = false;
};

}  // namespace cs2p
