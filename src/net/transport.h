// Byte-stream transport abstraction under the wire protocol.
//
// The prediction service originally talked to FdHandle directly; pulling the
// byte-stream operations behind Transport lets the client swap the real
// socket for a fault-injecting wrapper (net/fault_injection.h) and gives one
// place to enforce per-call deadlines. Failures surface as typed exceptions
// so callers can tell a deadline miss (retry) from a dead peer (reconnect):
//
//   TransportError            base of all transport-layer failures
//   ├── TimeoutError          send/recv deadline elapsed
//   └── ConnectionError       refused connect, peer reset, mid-message EOF
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>

#include "net/socket.h"

namespace cs2p {

/// Base class of transport-layer failures.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A send/recv deadline elapsed before the transfer completed.
class TimeoutError : public TransportError {
 public:
  using TransportError::TransportError;
};

/// The peer refused, reset, or closed the connection mid-message.
class ConnectionError : public TransportError {
 public:
  using TransportError::TransportError;
};

/// A reliable byte stream. Implementations must deliver whole buffers:
/// send() transmits all of `data` or throws; recv() fills all of `data`,
/// returns false on clean EOF at a message boundary (0 bytes read), and
/// throws on errors or mid-buffer EOF — the same contract as
/// send_all/recv_all in net/socket.h.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual void send(std::span<const std::byte> data) = 0;
  virtual bool recv(std::span<std::byte> data) = 0;

  /// Forcibly tears the stream down (both directions), waking any thread
  /// blocked on it. Subsequent operations fail with ConnectionError.
  virtual void shutdown() noexcept {}
};

/// Per-call deadlines in milliseconds; 0 = block indefinitely.
struct TransportDeadlines {
  int recv_timeout_ms = 0;
  int send_timeout_ms = 0;
};

/// Transport over an owned TCP socket with optional poll-based deadlines
/// (the descriptor is switched to non-blocking; every wait goes through
/// poll(2) so a deadline miss raises TimeoutError instead of hanging).
class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(FdHandle fd, TransportDeadlines deadlines = {});

  void send(std::span<const std::byte> data) override;
  bool recv(std::span<std::byte> data) override;
  void shutdown() noexcept override;

  const FdHandle& fd() const noexcept { return fd_; }

 private:
  FdHandle fd_;
  TransportDeadlines deadlines_;
};

/// Opens a fresh transport to a peer; invoked by PredictionClient on every
/// (re)connect. Throws ConnectionError (or std::system_error) on failure.
using TransportFactory = std::function<std::unique_ptr<Transport>()>;

/// Factory for deadline-guarded TCP transports to 127.0.0.1:`port`.
TransportFactory loopback_connector(std::uint16_t port,
                                    TransportDeadlines deadlines = {});

}  // namespace cs2p
