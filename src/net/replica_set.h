// ReplicaSet: client-side failover across a replicated serving tier
// (DESIGN.md §13, ROADMAP item 2).
//
// The paper's pilot (§6–§7) runs prediction as one always-on service; at
// million-user scale that service is N replicas, and the client is where
// failover must live — the prediction service sits on the ABR critical
// path, so a dead replica must cost one migration, not a dropped session.
//
// Placement: rendezvous (highest-random-weight) hashing. Each session draws
// a key from its features + start hour + a local nonce and scores every
// replica against that key; sorting the scores yields a per-session
// preference list that every client computes identically with no
// coordination, and removing a replica only moves the sessions that
// preferred it (the minimal-disruption property consistent hashing is used
// for).
//
// Failover: a session sticks to its current replica until an operation
// fails with a failover signal — transport failure after the retry budget
// (connect refusal, deadline), a desynced stream, or an OVERLOADED /
// SHUTTING_DOWN reply (the replica is shedding load; hammering the same
// socket makes it worse). The session then migrates down its preference
// list: replay HELLO on the next replica (the same re-establishment path
// PredictionClient uses for UNKNOWN_SESSION), re-issue the operation, and
// carry on. The server-side filter restarts from the cluster prior — a
// forecast-quality hiccup, never a player-visible failure.
//
// Health: per-replica HEALTHY → SUSPECT (first failure) → DOWN (failure
// streak) with hysteresis, mirroring predictors/guardrail.h's
// SurpriseMonitor — one failure must not banish a replica, and recovery
// requires a success streak so a flapping replica cannot oscillate. DOWN
// replicas are skipped when placing sessions until a probe interval
// elapses; a successful probe walks the replica back to HEALTHY and records
// the outage duration (time-to-recover) in the obs registry.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/client.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace cs2p {

/// Per-replica availability as seen from this client. Numeric values are
/// what the cs2p_client_replica_health gauge exports.
enum class ReplicaHealth : std::uint8_t {
  kHealthy = 0,  ///< serving normally
  kSuspect = 1,  ///< failed recently; still tried, watched closely
  kDown = 2,     ///< failure streak exhausted; skipped except for probes
};

std::string_view replica_health_name(ReplicaHealth health) noexcept;

/// Failover and hysteresis knobs of one ReplicaSet.
struct ReplicaSetConfig {
  /// Per-replica client policy (deadlines, retry budget, jitter). Each
  /// replica gets its own PredictionClient; backoff seeds are derived per
  /// replica so their jitter streams differ.
  ClientConfig client;
  /// Consecutive failed operations before SUSPECT becomes DOWN.
  int down_after_failures = 2;
  /// Consecutive successes before a SUSPECT/DOWN replica is HEALTHY again.
  int recover_after_successes = 2;
  /// How long a DOWN replica rests before new sessions probe it.
  int down_probe_after_ms = 500;
  /// When a whole candidate pass fails and at least one replica answered
  /// OVERLOADED/SHUTTING_DOWN with a retry-after hint, sleep that hint
  /// (jittered, capped below) and sweep again — up to this many passes in
  /// total. 1 disables the backoff (one pass, then the error surfaces).
  /// This is what turns a briefly all-shedding tier into a short stall
  /// instead of a hot-spin of HELLO replays.
  int overload_retry_passes = 2;
  /// Upper bound honored for a server-supplied retry-after hint; a
  /// misconfigured server cannot park clients for minutes.
  int max_retry_after_ms = 2'000;
  /// Telemetry sink shared by the set and its per-replica clients
  /// (failovers, per-replica health/failures, time-to-recover). Null: a
  /// private registry.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

/// Deterministic rendezvous key of one session: mixes the feature tuple,
/// the start hour, and a caller-supplied nonce (distinct sessions with
/// identical features must not all land on one replica).
std::uint64_t make_session_key(const SessionFeatures& features,
                               double start_hour, std::uint64_t nonce) noexcept;

/// Rendezvous score of `key` on the replica named `name`; the preference
/// list is replicas sorted by this, descending. Pure and stable — every
/// client ranks identically.
std::uint64_t rendezvous_score(std::uint64_t key, std::string_view name) noexcept;

/// SessionClient over N replicas with rendezvous placement and automatic
/// failover. Thread-safe: concurrent sessions migrate independently (no
/// lock is ever held across a network call).
class ReplicaSet final : public SessionClient {
 public:
  /// One serving replica: a stable name (the rendezvous identity — keep it
  /// stable across restarts or every session re-ranks) and the transport
  /// factory its client (re)connects through.
  struct Endpoint {
    std::string name;
    TransportFactory connector;
  };

  ReplicaSet(std::vector<Endpoint> endpoints, ReplicaSetConfig config = {});

  /// Convenience: loopback replicas on `ports`, named "127.0.0.1:<port>".
  explicit ReplicaSet(const std::vector<std::uint16_t>& ports,
                      ReplicaSetConfig config = {});

  // SessionClient surface. hello() places the session on its preference
  // list; the session_id returned is a ReplicaSet-local handle that stays
  // valid across any number of migrations.
  SessionResponse hello(const SessionFeatures& features,
                        double start_hour) override;
  PredictionResponse observe_response(std::uint64_t session_id,
                                      double throughput_mbps) override;
  PredictionResponse predict_response(std::uint64_t session_id,
                                      unsigned steps_ahead) override;
  /// Best-effort: a replica that died still forgets the session via TTL.
  void bye(std::uint64_t session_id) override;

  std::size_t replica_count() const noexcept { return replicas_.size(); }

  /// The preference list (replica indices, best first) this set computes
  /// for `key` — exposed so tests can assert placement determinism.
  std::vector<std::size_t> preference_order(std::uint64_t key) const;

  /// Health of replica `index` as currently believed.
  ReplicaHealth health(std::size_t index) const;

  /// Sessions successfully migrated to another replica.
  std::uint64_t failovers() const noexcept { return failovers_->value(); }

  /// Sessions moved off a replica that hinted kDraining on a reply — the
  /// proactive half of a zero-drop rolling restart (the session migrates
  /// while the old replica is still answering, not after it dies).
  std::uint64_t planned_migrations() const noexcept {
    return planned_migrations_->value();
  }

  /// Whether replica `index` is currently believed to be draining.
  bool replica_draining(std::size_t index) const;

  /// The replica `session_id` is currently served by.
  std::size_t session_replica(std::uint64_t session_id) const;

  /// The per-replica client (test introspection: reconnects, overloaded
  /// replies). Index must be < replica_count().
  PredictionClient& replica_client(std::size_t index) {
    return *replicas_[index]->client;
  }

  /// The registry this set reports into (config metrics or the private one).
  obs::MetricsRegistry& metrics() const noexcept { return *metrics_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Replica {
    std::string name;
    std::unique_ptr<PredictionClient> client;
    // Health state below is guarded by ReplicaSet::health_mutex_.
    ReplicaHealth health = ReplicaHealth::kHealthy;
    int failure_streak = 0;
    int success_streak = 0;
    /// Replica hinted kDraining (or refused with SHUTTING_DOWN): new and
    /// migrating sessions prefer any non-draining replica, and served
    /// sessions proactively move off it. Cleared on the first reply without
    /// the hint (the replica restarted).
    bool draining = false;
    Clock::time_point down_since{};
    Clock::time_point last_probe{};
    obs::Counter* failures = nullptr;
    obs::Gauge* health_gauge = nullptr;
    obs::Gauge* draining_gauge = nullptr;
  };

  struct SessionRecord {
    HelloRequest hello;          ///< replayed on every migration
    std::uint64_t key = 0;       ///< rendezvous key (fixed at HELLO)
    std::size_t replica = 0;     ///< index currently serving the session
    std::uint64_t remote_id = 0; ///< that replica's client-local handle
  };

  /// Candidate replicas for (re)placing a session with rendezvous key
  /// `key`: usable replicas (non-DOWN, or DOWN past the probe interval) in
  /// preference order, then the remaining DOWN replicas as a last resort —
  /// an all-replicas-down set still tries everything before giving up.
  std::vector<std::size_t> candidates(std::uint64_t key,
                                      bool include_resting_down);

  /// Runs `op` against the session's current replica, migrating down the
  /// preference list on failover signals. Returns the op's response.
  template <typename Op>
  PredictionResponse session_op(std::uint64_t session_id, Op&& op);

  SessionRecord record_copy(std::uint64_t session_id) const;
  void record_failure(std::size_t index);
  void record_success(std::size_t index);
  void set_draining(std::size_t index, bool draining);
  /// Best-effort move of a session off a draining replica onto the best
  /// non-draining candidate: HELLO there, BYE here (so the old replica's
  /// drain completes without waiting out the TTL), update the record. The
  /// session stays put if there is nowhere better to go.
  void migrate_off_draining(std::uint64_t session_id, SessionRecord record);
  /// Jittered sleep honoring a server-supplied retry-after hint (capped at
  /// max_retry_after_ms).
  void overload_backoff(std::uint32_t retry_after_ms);
  static bool is_failover_signal(const ServerError& error) noexcept;

  ReplicaSetConfig config_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  mutable std::mutex health_mutex_;

  mutable std::mutex sessions_mutex_;
  std::unordered_map<std::uint64_t, SessionRecord> sessions_;
  std::uint64_t next_session_id_ = 1;
  std::uint64_t next_nonce_ = 0;

  mutable std::mutex backoff_mutex_;  ///< guards backoff_rng_
  Rng backoff_rng_{0x5eedc0dec52bULL};

  obs::Counter* failovers_ = nullptr;
  obs::Counter* planned_migrations_ = nullptr;
  obs::Histogram* failover_seconds_ = nullptr;
  obs::Histogram* recovery_seconds_ = nullptr;
};

}  // namespace cs2p
