// PredictionServer: the deployed Prediction Engine (paper §6).
//
// Holds a trained PredictorModel (normally Cs2pPredictorModel) and serves
// the wire protocol of net/wire.h over loopback TCP.
//
// Serving core (DESIGN.md §12): a fixed pool of event-driven I/O workers.
// The accept thread hands each connection to one of `io_threads` workers;
// every worker runs a poll(2) loop over its connections with non-blocking
// sockets, buffering partial frames through a per-connection state machine
// (READING_HEADER → READING_BODY, replies pipelining through a bounded
// per-connection write queue). The server's thread count is
// io_threads + 1 (accept) regardless of connection count — no
// thread-per-connection, no thread churn. Per-session predictor state lives
// in a sharded SessionTable (net/session_table.h) so a session can migrate
// between connections and N workers touching N sessions take N different
// locks; TTL eviction is amortized into the worker loops (bounded scans,
// never a full-table sweep under one lock).
//
// Batched inference (DESIGN.md §16): after each poll wakeup the worker
// drains its readable connections in rounds — one complete frame per
// connection per round (per-connection reply order is untouched; a session
// driven over two connections at once is routed scalar). Each round's
// OBSERVE/PREDICT frames lock their shards once through
// SessionTable::with_sessions and run through Cs2pEngine::observe_batch /
// predict_batch, which group kernel-sharing sessions into one SoA
// state-matrix walk (hmm/batch_filter.h). Everything else about a frame's
// life — validation order, serve flags, degraded accounting, backpressure,
// the budget + one-frame write-queue bound — is identical to the scalar
// path, and the scalar path remains the fallback for every frame the batch
// cannot take (HELLO/BYE/SYNC/STATS, brownout, shutdown, duplicates).
//
// Fault discipline (ROADMAP north star: degrade, don't die):
//   - connection cap with a typed OVERLOADED rejection frame,
//   - per-connection idle deadline enforced by the worker loop (a hung or
//     silent peer cannot pin a worker — workers are never blocked on any
//     single connection),
//   - request validation (NaN/negative/absurd throughput samples answer
//     INVALID_SAMPLE instead of poisoning the HMM filter),
//   - TTL eviction of session entries abandoned without BYE (a crashed
//     client leaks nothing permanently).
//
// Overload control & drain (DESIGN.md §14):
//   - write backpressure: replies queue in a bounded per-connection write
//     buffer; a connection whose queue exceeds write_budget_bytes stops
//     being read (so a slow reader throttles itself, not the worker), and
//     one whose queue makes no progress past write_stall_timeout_ms is
//     closed — the unbounded-buffer OOM hole is shut by construction,
//   - admission control: each worker tracks a utilization EWMA and its
//     queued-reply depth; past the shed thresholds new HELLOs answer
//     OVERLOADED with a retry-after hint while existing sessions keep
//     being served — latency sheds before it collapses,
//   - brownout: under sustained shed pressure predictions step down to the
//     predictors' cheap fallback path (predict_brownout), SUSPECT-tier
//     sessions first, so goodput degrades smoothly instead of cliffing,
//   - graceful drain: begin_drain() stops accepting, answers new HELLOs
//     with SHUTTING_DOWN + retry-after, stamps kDraining on every PRED so
//     ReplicaSet migrates sessions proactively, and shrinks the session TTL
//     so abandoned entries cannot hold the drain open — a SIGTERM becomes a
//     zero-drop rolling restart.
//
// Model lifecycle (DESIGN.md §9): the served model sits behind an RCU-style
// shared_ptr. swap_model() atomically publishes a retrained model; sessions
// opened before the swap pin their creating model (each session entry holds
// a reference) and keep predicting on it until BYE/eviction, while new
// HELLOs land on the fresh model. No session is ever dropped by a swap.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/session_table.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "predictors/predictor.h"

namespace cs2p {

/// Everything a finished session leaves behind, whichever way it ended.
/// Handed to ServerConfig::on_session_complete so the continuous-training
/// pipeline (DESIGN.md §15) sees the full observation stream — a session
/// that times out carries exactly as much training signal as one that says
/// BYE politely.
struct CompletedSession {
  std::uint64_t session_id = 0;
  SessionFeatures features;
  double start_hour = 0.0;
  std::vector<double> observations;  ///< validated OBSERVE samples, in order
  std::string_view reason;           ///< "bye" or "evict"
};

/// Robustness and scaling knobs of the service; the defaults suit tests and
/// the pilot bench, cs2p_serve exposes them as flags.
struct ServerConfig {
  std::size_t max_connections = 64;  ///< concurrent connections before OVERLOADED
  int idle_timeout_ms = 30'000;      ///< close a connection idle this long
  int session_ttl_ms = 120'000;      ///< evict sessions untouched this long
  double max_sample_mbps = 10'000.0; ///< OBSERVE samples above this are absurd
  /// Event-loop worker count. 0 = hardware concurrency. The server's total
  /// thread count is io_threads + 1 (accept), independent of connections.
  std::size_t io_threads = 0;
  /// Session-table shards (rounded up to a power of two). 0 = 16.
  std::size_t session_shards = 0;
  /// Max session entries examined per shard per TTL eviction tick.
  std::size_t evict_scan_budget = 64;
  /// Telemetry sink (DESIGN.md §11). Null: the server creates a private
  /// registry (hermetic per-server counters, like the engine); cs2p_serve
  /// injects the same registry it hands the engine so one STATS scrape
  /// covers the whole process.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Per-session prediction trace (DESIGN.md §11). Null: tracing off.
  std::shared_ptr<obs::TraceLog> trace;
  /// Decodes a SYNC-shipped snapshot into a servable model (DESIGN.md §13).
  /// The server core is model-format-agnostic: cs2p_serve wires this to
  /// core/model_store's restore path. Returning null or throwing answers
  /// SYNC_REJECTED and keeps the current model. Null function: this replica
  /// refuses SYNCBEGIN outright (serving-only, no trainer trust).
  std::function<std::shared_ptr<const PredictorModel>(const std::string&)>
      sync_apply;
  /// Largest snapshot a SYNCBEGIN may declare; guards the staging buffer.
  std::size_t max_sync_bytes = 256 * 1024 * 1024;
  /// Unified session-teardown hook (DESIGN.md §15): called exactly once per
  /// session, outside every shard lock, whether the session ended by BYE or
  /// by TTL/drain eviction. When set, the server records each session's
  /// features and validated OBSERVE samples so the hook receives the full
  /// training signal; when null, no history is kept (zero steady-state
  /// cost). Exceptions are swallowed and counted — a broken trainer must
  /// not take the serve path down.
  std::function<void(CompletedSession&&)> on_session_complete;
  /// Cap on the per-session observation history kept for the hook; samples
  /// past it are dropped oldest-last (the filter state is unaffected).
  std::size_t session_history_cap = 512;

  // -- Overload control & drain (DESIGN.md §14) ------------------------------

  /// Queued reply bytes a connection may hold before the worker stops
  /// reading more requests from it (read-throttle). The queue itself never
  /// exceeds this by more than one encoded frame — the bound the slow-reader
  /// test asserts. 0 restores the default (256 KB).
  std::size_t write_budget_bytes = 256 * 1024;
  /// A connection with queued replies whose flush made zero progress for
  /// this long is a slow reader and is closed. <= 0 disables the kick.
  int write_stall_timeout_ms = 10'000;
  /// Shed new HELLOs when the handling worker's utilization EWMA (busy
  /// fraction of its event loop) is at or above this. <= 0 disables.
  double shed_utilization = 0.0;
  /// Shed new HELLOs when the handling worker has at least this many
  /// replies queued across its connections (the pending-work depth signal).
  /// 0 disables.
  std::size_t shed_pending_replies = 0;
  /// Backoff hint stamped on OVERLOADED/SHUTTING_DOWN replies (protocol
  /// v5); what ReplicaSet sleeps when the whole tier is shedding.
  int retry_after_ms = 250;
  /// Consecutive 20 ms pressure ticks before brownout level 1 engages
  /// (level 2 at 3x). Pressure = any worker past a shed threshold. 0
  /// disables the automatic controller (set_brownout_level still works).
  int brownout_enter_ticks = 0;
  /// Session TTL while draining: begin_drain() re-arms the table to
  /// min(session_ttl_ms, this) so abandoned sessions cannot hold the drain
  /// open for the steady-state TTL. <= 0 keeps the serving TTL.
  int drain_session_ttl_ms = 1'000;
  /// SO_SNDBUF for accepted connections (0 = kernel default). Shrinking it
  /// makes write backpressure observable at small scales — tests and the
  /// overload bench use it; production normally leaves the default.
  int so_sndbuf = 0;
};

class PredictionServer {
 public:
  /// Starts serving immediately on 127.0.0.1:`port` (0 = ephemeral).
  /// The server shares ownership of the model (and of every model later
  /// published via swap_model) for as long as any session uses it.
  PredictionServer(std::shared_ptr<const PredictorModel> model,
                   std::uint16_t port = 0);
  PredictionServer(std::shared_ptr<const PredictorModel> model,
                   ServerConfig config, std::uint16_t port = 0);

  /// Stops accepting, closes connections, joins all threads.
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Resolved configuration: io_threads and session_shards report the
  /// values actually in effect (defaults substituted, shards rounded).
  const ServerConfig& config() const noexcept { return config_; }

  /// Served-request counter (for the throughput microbench). Since the
  /// telemetry layer, these accessors read the metrics registry — the
  /// registry is the single source of truth, the methods are the
  /// test-friendly view.
  std::uint64_t requests_handled() const noexcept { return m_.requests->value(); }

  /// Fully written replies; trails requests_handled() by the in-flight count
  /// (the wire-visible requests >= replies invariant).
  std::uint64_t replies_sent() const noexcept { return m_.replies->value(); }

  /// Live entries in the session table (for leak checks in tests).
  std::size_t session_count() const { return sessions_.size(); }

  /// Sessions reaped by the TTL sweeper because no BYE ever arrived.
  std::uint64_t sessions_evicted() const noexcept { return m_.evicted->value(); }

  /// Connections refused at the cap with an OVERLOADED frame.
  std::uint64_t connections_rejected() const noexcept {
    return m_.rejected->value();
  }

  /// PRED replies whose serve_flags were non-primary (guardrail fallback,
  /// drifted cluster, global model) — the service-level health signal the
  /// guardrail layer surfaces.
  std::uint64_t degraded_replies() const noexcept {
    return m_.degraded_replies->value();
  }

  /// The registry this server reports into (config().metrics, or the
  /// server's private one). What the STATS verb scrapes.
  obs::MetricsRegistry& metrics() const noexcept { return *metrics_; }

  /// The session table backing the serve path (shard/contention/eviction
  /// introspection for tests and benches).
  const SessionTable& session_table() const noexcept { return sessions_; }

  /// Atomically publishes a new model (hot-swap retraining). In-flight
  /// sessions keep the model that created them; sessions opened after the
  /// swap use `model`. Throws std::invalid_argument on null. Safe to call
  /// from any thread while serving.
  void swap_model(std::shared_ptr<const PredictorModel> model);

  /// The currently published model (what the next HELLO will use).
  std::shared_ptr<const PredictorModel> current_model() const;

  /// Number of successful swap_model() calls.
  std::uint64_t models_swapped() const noexcept { return m_.swaps->value(); }

  /// Publishes snapshot bytes for SYNCFETCH pulls (a fresh replica
  /// bootstrapping from this node). Also called internally after a SYNC
  /// commit so a replica chain re-serves what it accepted. Empty clears.
  void publish_snapshot(std::string snapshot_bytes);

  /// The currently published snapshot (null when none).
  std::shared_ptr<const std::string> published_snapshot() const;

  /// SYNC commits that passed verification and hot-swapped the model.
  std::uint64_t syncs_applied() const noexcept { return m_.syncs_applied->value(); }

  /// SYNC attempts refused (checksum/byte-count mismatch, decode failure,
  /// out-of-order verbs, or SYNC disabled). The served model is unchanged.
  std::uint64_t syncs_rejected() const noexcept {
    return m_.syncs_rejected->value();
  }

  // -- Overload control & drain (DESIGN.md §14) ------------------------------

  /// New HELLOs answered OVERLOADED by admission control (existing sessions
  /// kept being served).
  std::uint64_t hellos_shed() const noexcept { return m_.hellos_shed->value(); }

  /// Connections closed because their queued replies made no flush progress
  /// past write_stall_timeout_ms.
  std::uint64_t slow_reader_kicks() const noexcept {
    return m_.slow_reader_kicks->value();
  }

  /// PRED replies served from the predictors' cheap brownout path.
  std::uint64_t brownout_replies() const noexcept {
    return m_.brownout_replies->value();
  }

  /// Predictions served through the batched SoA kernel (DESIGN.md §16) —
  /// the observable proof the per-poll batching path is actually engaged.
  std::uint64_t batched_predicts() const noexcept {
    return m_.batched_predicts->value();
  }

  /// High-water mark of any connection's queued reply bytes — the
  /// observable guarantee that write backpressure bounds the queue (stays
  /// within write_budget_bytes + one frame no matter how slow a reader is).
  std::size_t max_write_queue_bytes() const noexcept {
    return max_write_queue_.load(std::memory_order_relaxed);
  }

  /// Forces admission control on/off regardless of the utilization and
  /// queue-depth thresholds — deterministic shed for tests and operator
  /// tooling ("stop taking new sessions, keep serving current ones").
  void set_shedding(bool shed) noexcept {
    shed_override_.store(shed, std::memory_order_relaxed);
  }

  /// Brownout ladder position: 0 = off, 1 = SUSPECT-tier sessions serve the
  /// cheap path, 2 = every session with a brownout path does.
  int brownout_level() const noexcept;

  /// Pins the brownout level (overriding the automatic controller); pass -1
  /// to hand control back to the controller.
  void set_brownout_level(int level) noexcept;

  /// Starts a graceful drain: stop accepting, answer new HELLOs with
  /// SHUTTING_DOWN + retry-after, stamp kDraining on in-flight sessions'
  /// replies so the client tier migrates them, shrink the session TTL.
  /// In-flight sessions keep being served until they BYE, migrate, or
  /// expire. Idempotent; irreversible for this server instance.
  void begin_drain();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Drain complete: draining and the session table is empty. The caller
  /// (cs2p_serve's SIGTERM path, ChaosReplica::drain_and_restart) may then
  /// stop() with zero session loss.
  bool drained() const { return draining() && sessions_.size() == 0; }

  /// Blocks until drained() or `timeout_ms` elapses; returns drained().
  bool wait_drained(int timeout_ms);

  /// Safe to call repeatedly and from multiple threads concurrently.
  void stop();

 private:
  using Clock = std::chrono::steady_clock;

  /// What handle() learned about the request, for the trace record the
  /// worker emits after the reply is on the wire.
  struct RequestInfo {
    std::string_view event = "invalid";  ///< lifecycle stage / verb name
    std::uint64_t session_id = 0;
    bool traced = false;
    std::uint64_t flags = 0;         ///< serve_flags of a PRED reply
    double mbps = 0.0;               ///< predicted (or initial) throughput
    std::optional<double> log_likelihood;
    std::string cluster_label;       ///< HELLO only
  };

  /// Per-connection frame state machine (the read side). Requests pipeline:
  /// replies append to the bounded write queue and input keeps being
  /// consumed until the queue reaches write_budget_bytes, at which point
  /// the worker stops polling the connection for reads (backpressure)
  /// until the queue flushes back under budget.
  enum class ConnState : std::uint8_t {
    kReadingHeader,
    kReadingBody,
  };

  /// One queued reply's telemetry context, finished (counted, timed,
  /// traced) when write_pos passes end_offset — i.e. when the reply's last
  /// byte has been handed to the kernel.
  struct PendingReply {
    std::size_t end_offset = 0;  ///< write_buffer offset one past the reply
    Clock::time_point t_recv{};
    std::uint64_t parse_us = 0;
    std::uint64_t handle_us = 0;
    RequestInfo info;
    bool is_error = false;
    std::string_view error_code;  ///< wire_error_code_name of an ERR reply
  };

  /// In-progress SYNC shipment on one connection. Staging is per-connection
  /// by design: a dropped trainer connection discards its partial snapshot
  /// with the fd, and concurrent trainers cannot interleave chunks.
  struct SyncStaging {
    bool active = false;
    std::uint64_t expected_bytes = 0;
    std::uint64_t expected_checksum = 0;
    std::string buffer;
  };

  struct Connection {
    FdHandle fd;
    ConnState state = ConnState::kReadingHeader;
    std::string read_buffer;    ///< unconsumed inbound bytes
    std::uint32_t body_size = 0;
    /// The bounded write queue: encoded replies append here, flush_write
    /// drains from write_pos, and the buffer is compacted once fully
    /// flushed. pending tracks each reply's end offset + telemetry.
    std::string write_buffer;
    std::size_t write_pos = 0;
    std::deque<PendingReply> pending;
    Clock::time_point opened_at{};
    /// Progress clock for the idle sweep: refreshed only when a *complete*
    /// frame is consumed or a reply flushes — a peer trickling header bytes
    /// is as idle as a silent one (slow-header folding, DESIGN.md §14).
    Clock::time_point last_activity{};
    /// Last time flush_write moved write_pos forward; a connection with
    /// queued replies and no progress past write_stall_timeout_ms is a slow
    /// reader and is kicked.
    Clock::time_point last_write_progress{};
    SyncStaging sync;             ///< SYNC shipment staged on this connection
  };

  /// One event-loop worker: a poll(2) loop over the connections it owns
  /// plus a wake pipe the accept thread (and stop()) signals. `connections`
  /// is touched only by the worker's own thread; the inbox is the
  /// cross-thread handoff point.
  struct Worker {
    std::thread thread;
    FdHandle wake_read;
    FdHandle wake_write;
    std::mutex inbox_mutex;
    std::vector<Connection> inbox;
    std::unordered_map<int, Connection> connections;
    /// Busy-fraction EWMA of the event loop (1 - poll_wait/iteration),
    /// admission control's load signal. Written by the owning worker,
    /// read by should_shed() from any worker.
    std::atomic<double> utilization{0.0};
    /// Replies queued across this worker's connections (pending-work
    /// depth, the other shed signal).
    std::atomic<std::size_t> queued_replies{0};
    obs::Gauge* utilization_gauge = nullptr;
  };

  /// Registry handles cached at construction: the serving path increments
  /// through these pointers lock-free (obs/metrics.h rule 1).
  struct MetricHandles {
    obs::Counter* requests = nullptr;
    obs::Counter* replies = nullptr;
    obs::Counter* error_replies = nullptr;
    obs::Counter* degraded_replies = nullptr;
    obs::Counter* verb_hello = nullptr;
    obs::Counter* verb_observe = nullptr;
    obs::Counter* verb_predict = nullptr;
    obs::Counter* verb_bye = nullptr;
    obs::Counter* verb_model = nullptr;
    obs::Counter* verb_stats = nullptr;
    obs::Counter* verb_sync = nullptr;
    obs::Counter* verb_invalid = nullptr;
    obs::Counter* connections = nullptr;
    obs::Counter* idle_timeouts = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* evicted = nullptr;
    obs::Counter* swaps = nullptr;
    obs::Counter* syncs_applied = nullptr;
    obs::Counter* syncs_rejected = nullptr;
    obs::Counter* loop_iterations = nullptr;
    obs::Counter* hellos_shed = nullptr;
    obs::Counter* slow_reader_kicks = nullptr;
    obs::Counter* brownout_replies = nullptr;
    obs::Counter* drain_rejections = nullptr;
    obs::Counter* completion_hook_errors = nullptr;
    /// Predictions served by the batched kernel path (cs2p_stats-visible).
    obs::Counter* batched_predicts = nullptr;
    obs::Gauge* active_connections = nullptr;
    obs::Gauge* live_sessions = nullptr;
    obs::Gauge* draining = nullptr;
    obs::Gauge* brownout_level = nullptr;
    obs::Gauge* last_drain_seconds = nullptr;
    obs::Gauge* max_write_queue = nullptr;
    obs::Histogram* request_seconds = nullptr;
    obs::Histogram* connection_seconds = nullptr;
    /// Session lifetime from HELLO to teardown, observed on BOTH completion
    /// paths (BYE and eviction) — eviction used to bypass all duration
    /// accounting.
    obs::Histogram* session_seconds = nullptr;
    /// Width of each batched round submitted to the engine (how much
    /// per-poll frame batching actually coalesces under real traffic).
    obs::Histogram* batch_size = nullptr;

    static MetricHandles create(obs::MetricsRegistry& registry);
  };

  /// One extracted frame moving through a batch round (defined in
  /// server.cpp; workers keep a reused thread_local round buffer of these).
  struct RoundFrame;

  void accept_loop();
  void dispatch_connection(FdHandle connection);
  void worker_loop(Worker& worker);
  void adopt_inbox(Worker& worker);
  /// Returns false when the connection must be closed.
  bool handle_io(Worker& worker, Connection& conn, short revents);
  /// Pops one complete frame off the connection's read buffer into
  /// `payload` (counting the request and refreshing the idle clock, exactly
  /// like the old inline path). Returns false when no complete frame is
  /// buffered; throws ProtocolError on a malformed header (stream desync —
  /// the caller closes the connection).
  bool extract_frame(Connection& conn, std::string& payload);
  /// Drains every readable connection in rounds: one frame per connection
  /// per round (preserving per-connection order and the backpressure
  /// budget), each round handled as a batch until no frames remain.
  void run_batch_rounds(Worker& worker);
  /// Parses, dispatches (scalar verbs inline, OBSERVE/PREDICT through the
  /// engine's batch API under one multi-shard session lock), and emits every
  /// reply of one round.
  void handle_round(Worker& worker, std::vector<RoundFrame>& round);
  bool flush_write(Worker& worker, Connection& conn);
  /// Counts/times/traces every pending reply whose bytes are fully on the
  /// wire (end_offset <= write_pos).
  void complete_flushed_replies(Worker& worker, Connection& conn);
  /// The single close path: churn histogram, active-connection gauge, idle
  /// accounting, fd teardown — a connection that dies mid-reply goes
  /// through here exactly like any other.
  void close_connection(Worker& worker, Connection& conn, bool idle_timed_out);
  Response handle(const Request& request, Worker& worker, Connection& conn,
                  RequestInfo& info);
  Response handle_sync(const Request& request, SyncStaging& staging);
  PredictionResponse make_prediction_response(const SessionPredictor& predictor,
                                              unsigned steps_ahead);
  void reject_connection(const FdHandle& connection, WireErrorCode code,
                         const std::string& message);
  obs::Counter* verb_counter(const Request& request) const noexcept;
  /// Admission verdict for a new HELLO landing on `worker`.
  bool should_shed(const Worker& worker) const noexcept;
  /// Ticks the automatic brownout controller (worker 0, every evict tick).
  void brownout_tick();
  /// Publishes the drain-duration gauge once the table first reaches empty.
  void note_drain_progress();
  /// The single teardown tail shared by BYE and eviction: session-duration
  /// histogram, then the on_session_complete hook. Runs outside shard locks
  /// (the entry has already been moved out of the table).
  void complete_session(std::uint64_t id, SessionTable::Entry& entry,
                        std::string_view reason);
  void record_write_queue_depth(std::size_t bytes) noexcept;

  mutable std::mutex model_mutex_;  ///< guards model_ (reads copy the ptr)
  std::shared_ptr<const PredictorModel> model_;
  mutable std::mutex snapshot_mutex_;  ///< guards snapshot_ (reads copy)
  std::shared_ptr<const std::string> snapshot_;  ///< served to SYNCFETCH
  std::uint64_t snapshot_checksum_ = 0;  ///< cached sync_checksum(*snapshot_)
  ServerConfig config_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  MetricHandles m_;
  std::shared_ptr<obs::TraceLog> trace_;
  FdHandle listener_;
  std::uint16_t port_ = 0;

  SessionTable sessions_;

  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> active_connections_{0};
  std::atomic<std::size_t> next_worker_{0};  ///< round-robin dispatch
  std::mutex stop_mutex_;  ///< serializes concurrent stop() callers

  // -- Overload control & drain state (DESIGN.md §14) ------------------------
  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_recorded_{false};
  /// begin_drain() timestamp (us since epoch of Clock); stored before the
  /// draining_ release-store so note_drain_progress always sees it.
  std::atomic<std::int64_t> drain_started_us_{0};
  std::atomic<bool> shed_override_{false};
  /// Pressure integrator of the automatic brownout controller.
  std::atomic<int> brownout_score_{0};
  /// Operator/test pin; -1 = controller-driven.
  std::atomic<int> brownout_override_{-1};
  std::atomic<std::size_t> max_write_queue_{0};

  std::thread accept_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace cs2p
