// PredictionServer: the deployed Prediction Engine (paper §6).
//
// Holds a trained PredictorModel (normally Cs2pPredictorModel) and serves
// the wire protocol of net/wire.h over loopback TCP. One thread per
// connection; per-session predictor state lives in a shared table so a
// session can in principle migrate between connections (the paper's
// server-side solution keeps all per-session state at the server).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "predictors/predictor.h"

namespace cs2p {

class PredictionServer {
 public:
  /// Starts serving immediately on 127.0.0.1:`port` (0 = ephemeral).
  /// The model must outlive the server.
  PredictionServer(std::shared_ptr<const PredictorModel> model,
                   std::uint16_t port = 0);

  /// Stops accepting, closes connections, joins all threads.
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Served-request counter (for the throughput microbench).
  std::uint64_t requests_handled() const noexcept { return requests_.load(); }

  void stop();

 private:
  void accept_loop();
  void serve_connection(FdHandle connection);
  Response handle(const Request& request);

  std::shared_ptr<const PredictorModel> model_;
  FdHandle listener_;
  std::uint16_t port_ = 0;

  std::mutex sessions_mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<SessionPredictor>> sessions_;
  std::uint64_t next_session_id_ = 1;

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
  std::vector<int> live_connection_fds_;  ///< shut down on stop() to wake recv
};

}  // namespace cs2p
