// PredictionServer: the deployed Prediction Engine (paper §6).
//
// Holds a trained PredictorModel (normally Cs2pPredictorModel) and serves
// the wire protocol of net/wire.h over loopback TCP. One thread per
// connection; per-session predictor state lives in a shared table so a
// session can in principle migrate between connections (the paper's
// server-side solution keeps all per-session state at the server).
//
// Fault discipline (ROADMAP north star: degrade, don't die):
//   - connection cap with a typed OVERLOADED rejection frame,
//   - per-connection idle timeout (a hung or silent peer cannot pin a
//     worker thread forever),
//   - request validation (NaN/negative/absurd throughput samples answer
//     INVALID_SAMPLE instead of poisoning the HMM filter),
//   - TTL eviction of session entries abandoned without BYE (a crashed
//     client leaks nothing permanently).
//
// Model lifecycle (DESIGN.md §9): the served model sits behind an RCU-style
// shared_ptr. swap_model() atomically publishes a retrained model; sessions
// opened before the swap pin their creating model (each session entry holds
// a reference) and keep predicting on it until BYE/eviction, while new
// HELLOs land on the fresh model. No session is ever dropped by a swap.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "predictors/predictor.h"

namespace cs2p {

/// Robustness knobs of the service; the defaults suit tests and the pilot
/// bench, cs2p_serve exposes them as flags.
struct ServerConfig {
  std::size_t max_connections = 64;  ///< concurrent connections before OVERLOADED
  int idle_timeout_ms = 30'000;      ///< close a connection idle this long
  int session_ttl_ms = 120'000;      ///< evict sessions untouched this long
  double max_sample_mbps = 10'000.0; ///< OBSERVE samples above this are absurd
};

class PredictionServer {
 public:
  /// Starts serving immediately on 127.0.0.1:`port` (0 = ephemeral).
  /// The server shares ownership of the model (and of every model later
  /// published via swap_model) for as long as any session uses it.
  PredictionServer(std::shared_ptr<const PredictorModel> model,
                   std::uint16_t port = 0);
  PredictionServer(std::shared_ptr<const PredictorModel> model,
                   ServerConfig config, std::uint16_t port = 0);

  /// Stops accepting, closes connections, joins all threads.
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  const ServerConfig& config() const noexcept { return config_; }

  /// Served-request counter (for the throughput microbench).
  std::uint64_t requests_handled() const noexcept { return requests_.load(); }

  /// Live entries in the session table (for leak checks in tests).
  std::size_t session_count() const;

  /// Sessions reaped by the TTL sweeper because no BYE ever arrived.
  std::uint64_t sessions_evicted() const noexcept { return evicted_.load(); }

  /// Connections refused at the cap with an OVERLOADED frame.
  std::uint64_t connections_rejected() const noexcept { return rejected_.load(); }

  /// PRED replies whose serve_flags were non-primary (guardrail fallback,
  /// drifted cluster, global model) — the service-level health signal the
  /// guardrail layer surfaces.
  std::uint64_t degraded_replies() const noexcept { return degraded_replies_.load(); }

  /// Atomically publishes a new model (hot-swap retraining). In-flight
  /// sessions keep the model that created them; sessions opened after the
  /// swap use `model`. Throws std::invalid_argument on null. Safe to call
  /// from any thread while serving.
  void swap_model(std::shared_ptr<const PredictorModel> model);

  /// The currently published model (what the next HELLO will use).
  std::shared_ptr<const PredictorModel> current_model() const;

  /// Number of successful swap_model() calls.
  std::uint64_t models_swapped() const noexcept { return swaps_.load(); }

  /// Safe to call repeatedly and from multiple threads concurrently.
  void stop();

 private:
  using Clock = std::chrono::steady_clock;

  struct SessionEntry {
    std::unique_ptr<SessionPredictor> predictor;
    /// Pins the model that created the predictor: HmmSessionPredictor holds
    /// references into its engine, so the engine must outlive the session
    /// even if swap_model() has already published a successor.
    std::shared_ptr<const PredictorModel> owner;
    Clock::time_point last_used;
  };

  void accept_loop();
  void serve_connection(FdHandle connection);
  Response handle(const Request& request);
  PredictionResponse make_prediction_response(const SessionPredictor& predictor,
                                              unsigned steps_ahead);
  void evict_expired_sessions();
  void reject_connection(const FdHandle& connection);

  mutable std::mutex model_mutex_;  ///< guards model_ (reads copy the ptr)
  std::shared_ptr<const PredictorModel> model_;
  ServerConfig config_;
  FdHandle listener_;
  std::uint16_t port_ = 0;

  mutable std::mutex sessions_mutex_;
  std::unordered_map<std::uint64_t, SessionEntry> sessions_;
  std::uint64_t next_session_id_ = 1;

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> degraded_replies_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::size_t> active_connections_{0};
  std::mutex stop_mutex_;  ///< serializes concurrent stop() callers
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
  std::vector<int> live_connection_fds_;  ///< shut down on stop() to wake recv
};

}  // namespace cs2p
