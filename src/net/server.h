// PredictionServer: the deployed Prediction Engine (paper §6).
//
// Holds a trained PredictorModel (normally Cs2pPredictorModel) and serves
// the wire protocol of net/wire.h over loopback TCP. One thread per
// connection; per-session predictor state lives in a shared table so a
// session can in principle migrate between connections (the paper's
// server-side solution keeps all per-session state at the server).
//
// Fault discipline (ROADMAP north star: degrade, don't die):
//   - connection cap with a typed OVERLOADED rejection frame,
//   - per-connection idle timeout (a hung or silent peer cannot pin a
//     worker thread forever),
//   - request validation (NaN/negative/absurd throughput samples answer
//     INVALID_SAMPLE instead of poisoning the HMM filter),
//   - TTL eviction of session entries abandoned without BYE (a crashed
//     client leaks nothing permanently).
//
// Model lifecycle (DESIGN.md §9): the served model sits behind an RCU-style
// shared_ptr. swap_model() atomically publishes a retrained model; sessions
// opened before the swap pin their creating model (each session entry holds
// a reference) and keep predicting on it until BYE/eviction, while new
// HELLOs land on the fresh model. No session is ever dropped by a swap.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "predictors/predictor.h"

namespace cs2p {

/// Robustness knobs of the service; the defaults suit tests and the pilot
/// bench, cs2p_serve exposes them as flags.
struct ServerConfig {
  std::size_t max_connections = 64;  ///< concurrent connections before OVERLOADED
  int idle_timeout_ms = 30'000;      ///< close a connection idle this long
  int session_ttl_ms = 120'000;      ///< evict sessions untouched this long
  double max_sample_mbps = 10'000.0; ///< OBSERVE samples above this are absurd
  /// Telemetry sink (DESIGN.md §11). Null: the server creates a private
  /// registry (hermetic per-server counters, like the engine); cs2p_serve
  /// injects the same registry it hands the engine so one STATS scrape
  /// covers the whole process.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Per-session prediction trace (DESIGN.md §11). Null: tracing off.
  std::shared_ptr<obs::TraceLog> trace;
};

class PredictionServer {
 public:
  /// Starts serving immediately on 127.0.0.1:`port` (0 = ephemeral).
  /// The server shares ownership of the model (and of every model later
  /// published via swap_model) for as long as any session uses it.
  PredictionServer(std::shared_ptr<const PredictorModel> model,
                   std::uint16_t port = 0);
  PredictionServer(std::shared_ptr<const PredictorModel> model,
                   ServerConfig config, std::uint16_t port = 0);

  /// Stops accepting, closes connections, joins all threads.
  ~PredictionServer();

  PredictionServer(const PredictionServer&) = delete;
  PredictionServer& operator=(const PredictionServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  const ServerConfig& config() const noexcept { return config_; }

  /// Served-request counter (for the throughput microbench). Since the
  /// telemetry layer, these accessors read the metrics registry — the
  /// registry is the single source of truth, the methods are the
  /// test-friendly view.
  std::uint64_t requests_handled() const noexcept { return m_.requests->value(); }

  /// Live entries in the session table (for leak checks in tests).
  std::size_t session_count() const;

  /// Sessions reaped by the TTL sweeper because no BYE ever arrived.
  std::uint64_t sessions_evicted() const noexcept { return m_.evicted->value(); }

  /// Connections refused at the cap with an OVERLOADED frame.
  std::uint64_t connections_rejected() const noexcept {
    return m_.rejected->value();
  }

  /// PRED replies whose serve_flags were non-primary (guardrail fallback,
  /// drifted cluster, global model) — the service-level health signal the
  /// guardrail layer surfaces.
  std::uint64_t degraded_replies() const noexcept {
    return m_.degraded_replies->value();
  }

  /// The registry this server reports into (config().metrics, or the
  /// server's private one). What the STATS verb scrapes.
  obs::MetricsRegistry& metrics() const noexcept { return *metrics_; }

  /// Atomically publishes a new model (hot-swap retraining). In-flight
  /// sessions keep the model that created them; sessions opened after the
  /// swap use `model`. Throws std::invalid_argument on null. Safe to call
  /// from any thread while serving.
  void swap_model(std::shared_ptr<const PredictorModel> model);

  /// The currently published model (what the next HELLO will use).
  std::shared_ptr<const PredictorModel> current_model() const;

  /// Number of successful swap_model() calls.
  std::uint64_t models_swapped() const noexcept { return m_.swaps->value(); }

  /// Safe to call repeatedly and from multiple threads concurrently.
  void stop();

 private:
  using Clock = std::chrono::steady_clock;

  struct SessionEntry {
    std::unique_ptr<SessionPredictor> predictor;
    /// Pins the model that created the predictor: HmmSessionPredictor holds
    /// references into its engine, so the engine must outlive the session
    /// even if swap_model() has already published a successor.
    std::shared_ptr<const PredictorModel> owner;
    Clock::time_point last_used;
    /// Sampling decision made once at HELLO (obs/trace.h): every record of
    /// a traced session is kept, none of an untraced one.
    bool traced = false;
  };

  /// What handle() learned about the request, for the trace record the
  /// connection loop emits after the reply is on the wire.
  struct RequestInfo {
    std::string_view event = "invalid";  ///< lifecycle stage / verb name
    std::uint64_t session_id = 0;
    bool traced = false;
    std::uint64_t flags = 0;         ///< serve_flags of a PRED reply
    double mbps = 0.0;               ///< predicted (or initial) throughput
    std::optional<double> log_likelihood;
    std::string cluster_label;       ///< HELLO only
  };

  /// Registry handles cached at construction: the serving path increments
  /// through these pointers lock-free (obs/metrics.h rule 1).
  struct MetricHandles {
    obs::Counter* requests = nullptr;
    obs::Counter* replies = nullptr;
    obs::Counter* error_replies = nullptr;
    obs::Counter* degraded_replies = nullptr;
    obs::Counter* verb_hello = nullptr;
    obs::Counter* verb_observe = nullptr;
    obs::Counter* verb_predict = nullptr;
    obs::Counter* verb_bye = nullptr;
    obs::Counter* verb_model = nullptr;
    obs::Counter* verb_stats = nullptr;
    obs::Counter* verb_invalid = nullptr;
    obs::Counter* connections = nullptr;
    obs::Counter* idle_timeouts = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* evicted = nullptr;
    obs::Counter* swaps = nullptr;
    obs::Gauge* active_connections = nullptr;
    obs::Gauge* live_sessions = nullptr;
    obs::Histogram* request_seconds = nullptr;

    static MetricHandles create(obs::MetricsRegistry& registry);
  };

  void accept_loop();
  void serve_connection(FdHandle connection);
  Response handle(const Request& request, RequestInfo& info);
  PredictionResponse make_prediction_response(const SessionPredictor& predictor,
                                              unsigned steps_ahead);
  void evict_expired_sessions();
  void reject_connection(const FdHandle& connection);
  obs::Counter* verb_counter(const Request& request) const noexcept;

  mutable std::mutex model_mutex_;  ///< guards model_ (reads copy the ptr)
  std::shared_ptr<const PredictorModel> model_;
  ServerConfig config_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  MetricHandles m_;
  std::shared_ptr<obs::TraceLog> trace_;
  FdHandle listener_;
  std::uint16_t port_ = 0;

  mutable std::mutex sessions_mutex_;
  std::unordered_map<std::uint64_t, SessionEntry> sessions_;
  std::uint64_t next_session_id_ = 1;

  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> active_connections_{0};
  std::mutex stop_mutex_;  ///< serializes concurrent stop() callers
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
  std::vector<int> live_connection_fds_;  ///< shut down on stop() to wake recv
};

}  // namespace cs2p
