#include "net/wire.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace cs2p {
namespace {

constexpr bool is_wire_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}

// Whitespace split without streams: requests ride the serve hot path, and an
// istringstream round-trip costs more than the rest of the parse combined.
// Views alias `payload`, which outlives every parse_* call that uses them.
std::vector<std::string_view> tokenize(std::string_view payload) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < payload.size()) {
    while (i < payload.size() && is_wire_space(payload[i])) ++i;
    const std::size_t start = i;
    while (i < payload.size() && !is_wire_space(payload[i])) ++i;
    if (i > start) tokens.push_back(payload.substr(start, i - start));
  }
  return tokens;
}

double parse_double(std::string_view token, const char* what) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    throw ProtocolError(std::string("wire: bad number for ") + what);
  return value;
}

std::uint64_t parse_u64(std::string_view token, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    throw ProtocolError(std::string("wire: bad integer for ") + what);
  return value;
}

void require_token(std::string_view value, const char* what) {
  if (value.empty() ||
      value.find_first_of(" \t\r\n") != std::string_view::npos) {
    throw ProtocolError(std::string("wire: feature value for ") + what +
                        " must be a non-empty whitespace-free token");
  }
}

/// Frame header: [version][len-hi][len-mid][len-lo].
std::array<std::byte, 4> encode_frame_header(std::uint32_t size) {
  return {
      static_cast<std::byte>(kProtocolVersion),
      static_cast<std::byte>((size >> 16) & 0xff),
      static_cast<std::byte>((size >> 8) & 0xff),
      static_cast<std::byte>(size & 0xff),
  };
}

std::uint32_t decode_frame_header(const std::array<std::byte, 4>& header) {
  const auto version = std::to_integer<std::uint8_t>(header[0]);
  if (version != kProtocolVersion)
    throw ProtocolError("wire: unsupported protocol version " +
                        std::to_string(version));
  const std::uint32_t size = (std::to_integer<std::uint32_t>(header[1]) << 16) |
                             (std::to_integer<std::uint32_t>(header[2]) << 8) |
                             std::to_integer<std::uint32_t>(header[3]);
  if (size > kMaxFrameBytes) throw ProtocolError("wire: oversized frame");
  return size;
}

// Shortest round-trip formatting (to_chars default): decodes to the exact
// same double, and at a fraction of an ostringstream's cost. 32 chars covers
// the longest shortest-form double ("-2.2250738585072014e-308" is 24).
void append_double(std::string& out, double v) {
  std::array<char, 32> buf;
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc{}) throw ProtocolError("wire: unformattable number");
  out.append(buf.data(), static_cast<std::size_t>(ptr - buf.data()));
}

void append_u64(std::string& out, std::uint64_t v) {
  std::array<char, 20> buf;
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc{}) throw ProtocolError("wire: unformattable number");
  out.append(buf.data(), static_cast<std::size_t>(ptr - buf.data()));
}

/// Fixed-width 16-hex checksum, matching the snapshot store's footer format.
void append_hex16(std::string& out, std::uint64_t v) {
  constexpr char digits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    out += digits[(v >> shift) & 0xf];
}

std::uint64_t parse_hex64(std::string_view token, const char* what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value, 16);
  if (ec != std::errc{} || ptr != token.data() + token.size())
    throw ProtocolError(std::string("wire: bad hex value for ") + what);
  return value;
}

}  // namespace

std::uint64_t sync_checksum(std::string_view data) noexcept {
  // FNV-1a 64, identical to core/model_store's snapshot footer hash.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string_view wire_error_code_name(WireErrorCode code) noexcept {
  switch (code) {
    case WireErrorCode::kBadRequest: return "BAD_REQUEST";
    case WireErrorCode::kUnknownSession: return "UNKNOWN_SESSION";
    case WireErrorCode::kInvalidSample: return "INVALID_SAMPLE";
    case WireErrorCode::kOverloaded: return "OVERLOADED";
    case WireErrorCode::kShuttingDown: return "SHUTTING_DOWN";
    case WireErrorCode::kUnsupported: return "UNSUPPORTED";
    case WireErrorCode::kInternal: return "INTERNAL";
    case WireErrorCode::kSyncRejected: return "SYNC_REJECTED";
  }
  return "INTERNAL";
}

std::optional<WireErrorCode> wire_error_code_from_name(
    std::string_view name) noexcept {
  for (const WireErrorCode code :
       {WireErrorCode::kBadRequest, WireErrorCode::kUnknownSession,
        WireErrorCode::kInvalidSample, WireErrorCode::kOverloaded,
        WireErrorCode::kShuttingDown, WireErrorCode::kUnsupported,
        WireErrorCode::kInternal, WireErrorCode::kSyncRejected}) {
    if (name == wire_error_code_name(code)) return code;
  }
  return std::nullopt;
}

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFrameBytes)
    throw ProtocolError("wire: frame too large");
  const auto header =
      encode_frame_header(static_cast<std::uint32_t>(payload.size()));
  std::string frame;
  frame.reserve(header.size() + payload.size());
  frame.append(reinterpret_cast<const char*>(header.data()), header.size());
  frame.append(payload);
  return frame;
}

std::uint32_t parse_frame_header(std::string_view header) {
  if (header.size() < kFrameHeaderBytes)
    throw ProtocolError("wire: short frame header");
  std::array<std::byte, 4> bytes{};
  std::memcpy(bytes.data(), header.data(), bytes.size());
  return decode_frame_header(bytes);
}

// Both senders emit header + payload as ONE buffer/syscall: with TCP_NODELAY
// set, split sends can leave the 4-byte header in its own segment and cost
// the peer an extra wakeup per frame.
void send_frame(const FdHandle& socket, std::string_view payload) {
  const std::string frame = encode_frame(payload);
  send_all(socket, std::as_bytes(std::span(frame.data(), frame.size())));
}

void send_frame(Transport& transport, std::string_view payload) {
  const std::string frame = encode_frame(payload);
  transport.send(std::as_bytes(std::span(frame.data(), frame.size())));
}

std::optional<std::string> recv_frame(const FdHandle& socket) {
  std::array<std::byte, 4> header{};
  if (!recv_all(socket, header)) return std::nullopt;
  const std::uint32_t size = decode_frame_header(header);
  std::string payload(size, '\0');
  if (size > 0 &&
      !recv_all(socket, std::as_writable_bytes(std::span(payload.data(), size))))
    throw ProtocolError("wire: connection closed mid-frame");
  return payload;
}

std::optional<std::string> recv_frame(Transport& transport) {
  std::array<std::byte, 4> header{};
  if (!transport.recv(header)) return std::nullopt;
  const std::uint32_t size = decode_frame_header(header);
  std::string payload(size, '\0');
  if (size > 0 &&
      !transport.recv(std::as_writable_bytes(std::span(payload.data(), size))))
    throw ProtocolError("wire: connection closed mid-frame");
  return payload;
}

std::string serialize_request(const Request& request) {
  std::string out;
  out.reserve(96);
  if (const auto* hello = std::get_if<HelloRequest>(&request)) {
    const auto& f = hello->features;
    for (FeatureId id : all_features()) require_token(f.value(id), "HELLO");
    out += "HELLO ";
    out += f.isp;
    out += ' ';
    out += f.as_number;
    out += ' ';
    out += f.province;
    out += ' ';
    out += f.city;
    out += ' ';
    out += f.server;
    out += ' ';
    out += f.client_prefix;
    out += ' ';
    append_double(out, hello->start_hour);
  } else if (const auto* observe = std::get_if<ObserveRequest>(&request)) {
    out += "OBSERVE ";
    append_u64(out, observe->session_id);
    out += ' ';
    append_double(out, observe->throughput_mbps);
  } else if (const auto* predict = std::get_if<PredictRequest>(&request)) {
    out += "PREDICT ";
    append_u64(out, predict->session_id);
    out += ' ';
    append_u64(out, predict->steps_ahead);
  } else if (const auto* bye = std::get_if<ByeRequest>(&request)) {
    out += "BYE ";
    append_u64(out, bye->session_id);
  } else if (const auto* model = std::get_if<ModelRequest>(&request)) {
    const auto& f = model->features;
    for (FeatureId id : all_features()) require_token(f.value(id), "MODEL");
    out += "MODEL ";
    out += f.isp;
    out += ' ';
    out += f.as_number;
    out += ' ';
    out += f.province;
    out += ' ';
    out += f.city;
    out += ' ';
    out += f.server;
    out += ' ';
    out += f.client_prefix;
    out += ' ';
    append_double(out, model->start_hour);
  } else if (std::holds_alternative<StatsRequest>(request)) {
    out += "STATS";
  } else if (const auto* begin = std::get_if<SyncBeginRequest>(&request)) {
    out += "SYNCBEGIN ";
    append_u64(out, begin->total_bytes);
    out += ' ';
    append_hex16(out, begin->checksum);
  } else if (const auto* chunk = std::get_if<SyncChunkRequest>(&request)) {
    // Raw bytes after the header line, the body-after-header shape of MODEL.
    out += "SYNCDATA\n";
    out += chunk->data;
  } else if (std::holds_alternative<SyncCommitRequest>(request)) {
    out += "SYNCCOMMIT";
  } else if (const auto* fetch = std::get_if<SyncFetchRequest>(&request)) {
    out += "SYNCFETCH ";
    append_u64(out, fetch->offset);
  }
  return out;
}

Request parse_request(std::string_view payload) {
  // SYNCDATA carries raw snapshot bytes after its header line; handle it
  // before whitespace tokenization (snapshot bytes may contain anything).
  if (payload.starts_with("SYNCDATA\n")) {
    SyncChunkRequest chunk;
    chunk.data = std::string(payload.substr(9));
    return chunk;
  }
  const auto tokens = tokenize(payload);
  if (tokens.empty()) throw ProtocolError("wire: empty request");
  const std::string_view verb = tokens[0];
  if (verb == "HELLO") {
    if (tokens.size() != 8) throw ProtocolError("wire: HELLO wants 7 fields");
    HelloRequest hello;
    hello.features.isp = tokens[1];
    hello.features.as_number = tokens[2];
    hello.features.province = tokens[3];
    hello.features.city = tokens[4];
    hello.features.server = tokens[5];
    hello.features.client_prefix = tokens[6];
    hello.start_hour = parse_double(tokens[7], "start_hour");
    return hello;
  }
  if (verb == "OBSERVE") {
    if (tokens.size() != 3) throw ProtocolError("wire: OBSERVE wants 2 fields");
    return ObserveRequest{parse_u64(tokens[1], "session_id"),
                          parse_double(tokens[2], "throughput")};
  }
  if (verb == "PREDICT") {
    if (tokens.size() != 3) throw ProtocolError("wire: PREDICT wants 2 fields");
    return PredictRequest{
        parse_u64(tokens[1], "session_id"),
        static_cast<unsigned>(parse_u64(tokens[2], "steps_ahead"))};
  }
  if (verb == "BYE") {
    if (tokens.size() != 2) throw ProtocolError("wire: BYE wants 1 field");
    return ByeRequest{parse_u64(tokens[1], "session_id")};
  }
  if (verb == "STATS") {
    if (tokens.size() != 1) throw ProtocolError("wire: STATS wants no fields");
    return StatsRequest{};
  }
  if (verb == "SYNCBEGIN") {
    if (tokens.size() != 3)
      throw ProtocolError("wire: SYNCBEGIN wants 2 fields");
    return SyncBeginRequest{parse_u64(tokens[1], "total_bytes"),
                            parse_hex64(tokens[2], "checksum")};
  }
  if (verb == "SYNCCOMMIT") {
    if (tokens.size() != 1)
      throw ProtocolError("wire: SYNCCOMMIT wants no fields");
    return SyncCommitRequest{};
  }
  if (verb == "SYNCFETCH") {
    if (tokens.size() != 2) throw ProtocolError("wire: SYNCFETCH wants 1 field");
    return SyncFetchRequest{parse_u64(tokens[1], "offset")};
  }
  if (verb == "MODEL") {
    if (tokens.size() != 8) throw ProtocolError("wire: MODEL wants 7 fields");
    ModelRequest model;
    model.features.isp = tokens[1];
    model.features.as_number = tokens[2];
    model.features.province = tokens[3];
    model.features.city = tokens[4];
    model.features.server = tokens[5];
    model.features.client_prefix = tokens[6];
    model.start_hour = parse_double(tokens[7], "start_hour");
    return model;
  }
  throw ProtocolError("wire: unknown request verb " + std::string(verb));
}

std::string serialize_response(const Response& response) {
  std::string out;
  out.reserve(64);
  if (const auto* session = std::get_if<SessionResponse>(&response)) {
    out += "SESSION ";
    append_u64(out, session->session_id);
    out += ' ';
    append_double(out, session->initial_mbps);
    out += session->used_global_model ? " 1 " : " 0 ";
    out += session->cluster_label.empty() ? "-" : session->cluster_label;
  } else if (const auto* pred = std::get_if<PredictionResponse>(&response)) {
    out += "PRED ";
    append_double(out, pred->mbps);
    out += ' ';
    append_u64(out, pred->flags);
  } else if (std::holds_alternative<OkResponse>(response)) {
    out += "OK";
  } else if (const auto* err = std::get_if<ErrorResponse>(&response)) {
    // v5: the retry-after hint always travels (0 = none), so the field count
    // is fixed and the free-form message stays last.
    out += "ERR ";
    out += wire_error_code_name(err->code);
    out += ' ';
    append_u64(out, err->retry_after_ms);
    out += ' ';
    out += err->message;
  } else if (const auto* model = std::get_if<ModelResponse>(&response)) {
    // Header line, then the serialized model verbatim.
    out += "MODEL ";
    append_double(out, model->initial_mbps);
    out += model->used_global_model ? " 1\n" : " 0\n";
    out += model->serialized_hmm;
  } else if (const auto* stats = std::get_if<StatsResponse>(&response)) {
    // Header line, then the text exposition verbatim (same body-after-header
    // shape as MODEL).
    out += "STATS ";
    append_u64(out, static_cast<std::uint64_t>(stats->exposition_version));
    out += '\n';
    out += stats->exposition;
  } else if (const auto* snap = std::get_if<SnapshotChunkResponse>(&response)) {
    out += "SNAPSHOT ";
    append_u64(out, snap->total_bytes);
    out += ' ';
    append_hex16(out, snap->checksum);
    out += ' ';
    append_u64(out, snap->offset);
    out += '\n';
    out += snap->data;
  }
  return out;
}

Response parse_response(std::string_view payload) {
  // STATS responses carry the raw exposition after the header line; handle
  // them before whitespace tokenization.
  if (payload.starts_with("STATS ")) {
    const auto newline = payload.find('\n');
    if (newline == std::string_view::npos)
      throw ProtocolError("wire: STATS response missing body");
    const auto header = tokenize(payload.substr(0, newline));
    if (header.size() != 2)
      throw ProtocolError("wire: STATS header wants 1 field");
    StatsResponse stats;
    stats.exposition_version =
        static_cast<int>(parse_u64(header[1], "exposition_version"));
    stats.exposition = std::string(payload.substr(newline + 1));
    return stats;
  }
  // SNAPSHOT chunks carry raw snapshot bytes after the header line.
  if (payload.starts_with("SNAPSHOT ")) {
    const auto newline = payload.find('\n');
    if (newline == std::string_view::npos)
      throw ProtocolError("wire: SNAPSHOT response missing body");
    const auto header = tokenize(payload.substr(0, newline));
    if (header.size() != 4)
      throw ProtocolError("wire: SNAPSHOT header wants 3 fields");
    SnapshotChunkResponse snap;
    snap.total_bytes = parse_u64(header[1], "total_bytes");
    snap.checksum = parse_hex64(header[2], "checksum");
    snap.offset = parse_u64(header[3], "offset");
    snap.data = std::string(payload.substr(newline + 1));
    return snap;
  }
  // MODEL responses carry a raw body after the header line; handle them
  // before whitespace tokenization.
  if (payload.starts_with("MODEL ")) {
    const auto newline = payload.find('\n');
    if (newline == std::string_view::npos)
      throw ProtocolError("wire: MODEL response missing body");
    const auto header = tokenize(payload.substr(0, newline));
    if (header.size() != 3)
      throw ProtocolError("wire: MODEL header wants 2 fields");
    ModelResponse model;
    model.initial_mbps = parse_double(header[1], "initial_mbps");
    model.used_global_model = parse_u64(header[2], "global_flag") != 0;
    model.serialized_hmm = std::string(payload.substr(newline + 1));
    return model;
  }
  const auto tokens = tokenize(payload);
  if (tokens.empty()) throw ProtocolError("wire: empty response");
  const std::string_view verb = tokens[0];
  if (verb == "SESSION") {
    if (tokens.size() != 5) throw ProtocolError("wire: SESSION wants 4 fields");
    SessionResponse session;
    session.session_id = parse_u64(tokens[1], "session_id");
    session.initial_mbps = parse_double(tokens[2], "initial_mbps");
    session.used_global_model = parse_u64(tokens[3], "global_flag") != 0;
    session.cluster_label =
        tokens[4] == "-" ? std::string{} : std::string(tokens[4]);
    return session;
  }
  if (verb == "PRED") {
    // v1 sent "PRED <mbps>"; v2 appends the serve-flags byte. Accept both so
    // a v2 client decodes a v1 capture (flags default to primary).
    if (tokens.size() != 2 && tokens.size() != 3)
      throw ProtocolError("wire: PRED wants 1 or 2 fields");
    PredictionResponse pred{parse_double(tokens[1], "mbps")};
    if (tokens.size() == 3) {
      const std::uint64_t flags = parse_u64(tokens[2], "serve_flags");
      if (flags > 0xff) throw ProtocolError("wire: serve_flags out of range");
      pred.flags = static_cast<std::uint8_t>(flags);
    }
    return pred;
  }
  if (verb == "OK") return OkResponse{};
  if (verb == "ERR") {
    const auto pos = payload.find("ERR") + 3;
    std::string rest;
    if (payload.size() > pos + 1) rest = std::string(payload.substr(pos + 1));
    // "ERR <code> <retry-after-ms> <message>"; tolerate a missing/unknown
    // code token (treat the whole remainder as the message) and a missing
    // retry-after field (a v4 capture) so older peers still decode. The
    // hint is a bare digit token — a v4 message starting with digits is
    // indistinguishable, which is why v5 always serializes the field.
    ErrorResponse error;
    const auto space = rest.find(' ');
    const std::string head = rest.substr(0, space);
    if (const auto code = wire_error_code_from_name(head)) {
      error.code = *code;
      std::string tail = space == std::string::npos ? std::string{}
                                                    : rest.substr(space + 1);
      const auto tail_space = tail.find(' ');
      const std::string hint = tail.substr(0, tail_space);
      if (!hint.empty() &&
          hint.find_first_not_of("0123456789") == std::string::npos &&
          hint.size() <= 10) {
        const std::uint64_t parsed = parse_u64(hint, "retry_after_ms");
        error.retry_after_ms = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(parsed, 0xffffffffULL));
        tail = tail_space == std::string::npos ? std::string{}
                                               : tail.substr(tail_space + 1);
      }
      error.message = std::move(tail);
    } else {
      error.code = WireErrorCode::kInternal;
      error.message = std::move(rest);
    }
    return error;
  }
  throw ProtocolError("wire: unknown response verb " + std::string(verb));
}

}  // namespace cs2p
