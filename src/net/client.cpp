#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace cs2p {
namespace {

/// Server errors worth another attempt: a BAD_REQUEST is most likely our
/// frame arriving corrupted (the request we built is well-formed by
/// construction). Everything else reflects real state — retrying the same
/// bytes cannot change UNKNOWN_SESSION or INVALID_SAMPLE.
bool retryable(WireErrorCode code) {
  return code == WireErrorCode::kBadRequest;
}

}  // namespace

int jittered_backoff_ms(int backoff_ms, double jitter, Rng& rng) noexcept {
  if (backoff_ms <= 0) return 0;
  const double j = std::clamp(jitter, 0.0, 1.0);
  if (j <= 0.0) return backoff_ms;
  // Uniform in ((1 - j) * b, b]: full jitter at j = 1 decorrelates the retry
  // storms of every client that lost the same replica at the same instant.
  const double scaled =
      static_cast<double>(backoff_ms) * (1.0 - j * rng.uniform());
  return std::max(j >= 1.0 ? 0 : 1, static_cast<int>(scaled));
}

PredictionClient::PredictionClient(std::uint16_t port, ClientConfig config)
    : PredictionClient(
          loopback_connector(port, TransportDeadlines{config.recv_timeout_ms,
                                                      config.send_timeout_ms}),
          config) {}

PredictionClient::PredictionClient(TransportFactory connector, ClientConfig config)
    : connector_(std::move(connector)),
      config_(config),
      backoff_rng_(config.backoff_seed) {
  if (!connector_)
    throw std::invalid_argument("PredictionClient: null connector");
  if (config_.metrics) {
    overloaded_counter_ =
        &config_.metrics->counter("cs2p_client_overloaded_replies_total");
    retries_counter_ = &config_.metrics->counter("cs2p_client_retries_total");
  }
}

void PredictionClient::ensure_connected() {
  if (!transport_) transport_ = connector_();
}

Response PredictionClient::locked_round_trip(const Request& request) {
  const std::string payload = serialize_request(request);
  int backoff_ms = std::max(1, config_.backoff_initial_ms);
  for (int attempt = 0;; ++attempt) {
    const bool last_attempt = attempt >= config_.max_retries;
    try {
      ensure_connected();
      send_frame(*transport_, payload);
      const auto frame = recv_frame(*transport_);
      if (!frame)
        throw ConnectionError("PredictionClient: server closed connection");
      Response response = parse_response(*frame);
      const auto* err = std::get_if<ErrorResponse>(&response);
      if (err == nullptr) return response;
      if (err->code == WireErrorCode::kOverloaded) {
        // The replica is shedding load: record it (ReplicaSet treats this
        // as a failover signal, not a retry-this-socket signal).
        overloaded_.fetch_add(1, std::memory_order_relaxed);
        if (overloaded_counter_ != nullptr) overloaded_counter_->inc();
      }
      if (last_attempt || !retryable(err->code))
        throw ServerError(err->code, err->message, err->retry_after_ms);
      // Retryable server error: same connection, backoff below.
    } catch (const ServerError&) {
      throw;
    } catch (const std::exception&) {
      // Transport fault, desynced framing, or failed connect: the stream is
      // unusable — tear it down and reconnect on the next attempt.
      transport_.reset();
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      if (last_attempt) throw;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (retries_counter_ != nullptr) retries_counter_->inc();
    std::this_thread::sleep_for(std::chrono::milliseconds(
        jittered_backoff_ms(backoff_ms, config_.backoff_jitter, backoff_rng_)));
    backoff_ms = std::min(
        config_.backoff_max_ms,
        static_cast<int>(backoff_ms * std::max(1.0, config_.backoff_multiplier)));
  }
}

template <typename MakeRequest>
Response PredictionClient::locked_session_round_trip(std::uint64_t local_id,
                                                     MakeRequest&& make) {
  const auto it = sessions_.find(local_id);
  // Unregistered handle (caller-supplied raw id): single pass-through so
  // probing an unknown session still surfaces the server's typed error.
  if (it == sessions_.end()) return locked_round_trip(make(local_id));
  try {
    return locked_round_trip(make(it->second.remote_id));
  } catch (const ServerError& e) {
    if (e.code() != WireErrorCode::kUnknownSession) throw;
  }
  // The server lost our session (restart or TTL eviction): replay the
  // stored HELLO to re-establish, then retry the original request once.
  // The server-side filter state restarts from the cluster prior — a
  // forecast-quality hiccup, not a player-visible failure.
  Response hello_response = locked_round_trip(it->second.hello);
  const auto* session = std::get_if<SessionResponse>(&hello_response);
  if (session == nullptr)
    throw std::runtime_error(
        "PredictionClient: unexpected response replaying HELLO");
  it->second.remote_id = session->session_id;
  rehellos_.fetch_add(1, std::memory_order_relaxed);
  return locked_round_trip(make(it->second.remote_id));
}

SessionResponse PredictionClient::hello(const SessionFeatures& features,
                                        double start_hour) {
  const HelloRequest request{features, start_hour};
  std::scoped_lock lock(mutex_);
  const Response response = locked_round_trip(request);
  const auto* session = std::get_if<SessionResponse>(&response);
  if (session == nullptr)
    throw std::runtime_error("PredictionClient: unexpected response to HELLO");
  SessionResponse out = *session;
  const std::uint64_t local_id = next_local_id_++;
  sessions_[local_id] = SessionRecord{request, out.session_id};
  out.session_id = local_id;
  return out;
}

double PredictionClient::observe(std::uint64_t session_id, double throughput_mbps) {
  return observe_response(session_id, throughput_mbps).mbps;
}

double PredictionClient::predict(std::uint64_t session_id, unsigned steps_ahead) {
  return predict_response(session_id, steps_ahead).mbps;
}

PredictionResponse PredictionClient::observe_response(std::uint64_t session_id,
                                                      double throughput_mbps) {
  std::scoped_lock lock(mutex_);
  const Response response =
      locked_session_round_trip(session_id, [&](std::uint64_t remote) {
        return Request(ObserveRequest{remote, throughput_mbps});
      });
  if (const auto* pred = std::get_if<PredictionResponse>(&response)) return *pred;
  throw std::runtime_error("PredictionClient: unexpected response to OBSERVE");
}

PredictionResponse PredictionClient::predict_response(std::uint64_t session_id,
                                                      unsigned steps_ahead) {
  std::scoped_lock lock(mutex_);
  const Response response =
      locked_session_round_trip(session_id, [&](std::uint64_t remote) {
        return Request(PredictRequest{remote, steps_ahead});
      });
  if (const auto* pred = std::get_if<PredictionResponse>(&response)) return *pred;
  throw std::runtime_error("PredictionClient: unexpected response to PREDICT");
}

DownloadableModel PredictionClient::download_model(const SessionFeatures& features,
                                                   double start_hour) {
  std::scoped_lock lock(mutex_);
  const Response response = locked_round_trip(ModelRequest{features, start_hour});
  if (const auto* model = std::get_if<ModelResponse>(&response)) {
    DownloadableModel out;
    out.initial_mbps = model->initial_mbps;
    out.used_global_model = model->used_global_model;
    out.hmm = deserialize_hmm(model->serialized_hmm);
    return out;
  }
  throw std::runtime_error("PredictionClient: unexpected response to MODEL");
}

StatsResponse PredictionClient::stats() {
  std::scoped_lock lock(mutex_);
  const Response response = locked_round_trip(StatsRequest{});
  if (const auto* stats = std::get_if<StatsResponse>(&response)) return *stats;
  throw std::runtime_error("PredictionClient: unexpected response to STATS");
}

void PredictionClient::push_snapshot(const std::string& snapshot_bytes) {
  if (snapshot_bytes.empty())
    throw std::invalid_argument("PredictionClient: empty snapshot");
  std::scoped_lock lock(mutex_);
  const std::uint64_t checksum = sync_checksum(snapshot_bytes);
  const auto expect_ok = [this](const Request& request) {
    const Response response = locked_round_trip(request);
    if (std::holds_alternative<OkResponse>(response)) return;
    if (const auto* err = std::get_if<ErrorResponse>(&response))
      throw ServerError(err->code, err->message, err->retry_after_ms);
    throw std::runtime_error("PredictionClient: unexpected response to SYNC");
  };
  for (int attempt = 0;; ++attempt) {
    try {
      expect_ok(SyncBeginRequest{snapshot_bytes.size(), checksum});
      for (std::size_t offset = 0; offset < snapshot_bytes.size();
           offset += kSyncChunkBytes) {
        expect_ok(SyncChunkRequest{
            snapshot_bytes.substr(offset, kSyncChunkBytes)});
      }
      expect_ok(SyncCommitRequest{});
      return;
    } catch (const ServerError& e) {
      // The staging buffer lives on one server connection: a mid-push
      // reconnect orphans it and the next frame answers SYNC_REJECTED.
      // One clean restart of the whole sequence covers that race; a second
      // rejection is a real refusal (corrupt or mismatched snapshot).
      if (e.code() != WireErrorCode::kSyncRejected || attempt > 0) throw;
    }
  }
}

std::string PredictionClient::fetch_snapshot() {
  std::scoped_lock lock(mutex_);
  // A republish mid-fetch changes the declared (total, checksum): restart.
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::string bytes;
    std::uint64_t total = 0;
    std::uint64_t checksum = 0;
    bool restart = false;
    while (true) {
      // locked_round_trip surfaces ERR replies (e.g. UNSUPPORTED when no
      // snapshot is published) as ServerError before we get here.
      const Response response =
          locked_round_trip(SyncFetchRequest{bytes.size()});
      const auto* chunk = std::get_if<SnapshotChunkResponse>(&response);
      if (chunk == nullptr)
        throw std::runtime_error(
            "PredictionClient: unexpected response to SYNCFETCH");
      if (bytes.empty()) {
        total = chunk->total_bytes;
        checksum = chunk->checksum;
      } else if (chunk->total_bytes != total || chunk->checksum != checksum) {
        restart = true;
        break;
      }
      if (chunk->offset != bytes.size())
        throw ProtocolError("wire: SNAPSHOT chunk at wrong offset");
      bytes += chunk->data;
      if (bytes.size() >= total) break;
      if (chunk->data.empty())
        throw ProtocolError("wire: empty SNAPSHOT chunk before end");
    }
    if (restart) continue;
    if (sync_checksum(bytes) != checksum)
      throw ProtocolError(
          "wire: fetched snapshot does not match its declared checksum");
    return bytes;
  }
  throw ProtocolError("wire: snapshot kept changing during fetch");
}

void PredictionClient::bye(std::uint64_t session_id) {
  std::scoped_lock lock(mutex_);
  std::uint64_t remote_id = session_id;
  if (const auto it = sessions_.find(session_id); it != sessions_.end()) {
    remote_id = it->second.remote_id;
    sessions_.erase(it);
  }
  const Response response = locked_round_trip(ByeRequest{remote_id});
  if (!std::holds_alternative<OkResponse>(response))
    throw std::runtime_error("PredictionClient: unexpected response to BYE");
}

// -- RemoteSessionPredictor --------------------------------------------------

RemoteSessionPredictor::RemoteSessionPredictor(SessionClient& client,
                                               const SessionFeatures& features,
                                               double start_hour)
    : client_(&client) {
  try {
    const SessionResponse session = client_->hello(features, start_hour);
    session_id_ = session.session_id;
    session_established_ = true;
    initial_mbps_ = session.initial_mbps;
    last_forecast_ = session.initial_mbps;
  } catch (const std::exception&) {
    // Service unreachable at session start: run the whole session on the
    // local fallback rather than failing the player.
    degrade();
  }
}

RemoteSessionPredictor::~RemoteSessionPredictor() {
  if (!session_established_ || degraded_) return;
  try {
    client_->bye(session_id_);
  } catch (const std::exception&) {
    // Destructor must not throw; the server's TTL sweeper reaps the entry.
  }
}

void RemoteSessionPredictor::degrade() const noexcept {
  degraded_ = true;
  ++remote_failures_;
}

double RemoteSessionPredictor::fallback_forecast() const {
  // Harmonic mean of the session's own samples — the paper's §3 HM
  // baseline, robust to throughput outliers.
  double inverse_sum = 0.0;
  std::size_t n = 0;
  for (double w : history_) {
    if (w > 0.0) {
      inverse_sum += 1.0 / w;
      ++n;
    }
  }
  if (n > 0) return static_cast<double>(n) / inverse_sum;
  // No usable history yet (e.g. HELLO failed before the first chunk): the
  // last known forecast, which is the initial prediction when we have one.
  return last_forecast_;
}

std::optional<double> RemoteSessionPredictor::predict_initial() const {
  if (!session_established_) return std::nullopt;
  return initial_mbps_;
}

double RemoteSessionPredictor::predict(unsigned steps_ahead) const {
  if (degraded_) {
    ++fallback_predictions_;
    return fallback_forecast();
  }
  if (!has_observed_) return initial_mbps_;
  if (steps_ahead <= 1) return last_forecast_;
  try {
    const PredictionResponse reply =
        client_->predict_response(session_id_, steps_ahead);
    last_server_flags_ = reply.flags;
    return reply.mbps;
  } catch (const std::exception&) {
    degrade();
    ++fallback_predictions_;
    return fallback_forecast();
  }
}

void RemoteSessionPredictor::observe(double throughput_mbps) {
  history_.push_back(throughput_mbps);
  has_observed_ = true;
  if (!degraded_) {
    try {
      const PredictionResponse reply =
          client_->observe_response(session_id_, throughput_mbps);
      last_forecast_ = reply.mbps;
      last_server_flags_ = reply.flags;
      return;
    } catch (const std::exception&) {
      degrade();
    }
  }
  last_forecast_ = fallback_forecast();
}

std::uint8_t RemoteSessionPredictor::serve_flags() const {
  if (degraded_)
    return static_cast<std::uint8_t>(last_server_flags_ |
                                     serve_flags::kRemoteFallback |
                                     serve_flags::kDegraded);
  return last_server_flags_;
}

}  // namespace cs2p
