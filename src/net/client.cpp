#include "net/client.h"

#include <stdexcept>

namespace cs2p {

PredictionClient::PredictionClient(std::uint16_t port)
    : connection_(connect_loopback(port)) {}

Response PredictionClient::round_trip(const Request& request) {
  std::scoped_lock lock(mutex_);
  send_frame(connection_, serialize_request(request));
  const auto frame = recv_frame(connection_);
  if (!frame) throw std::runtime_error("PredictionClient: server closed connection");
  Response response = parse_response(*frame);
  if (const auto* err = std::get_if<ErrorResponse>(&response))
    throw std::runtime_error("PredictionClient: server error: " + err->message);
  return response;
}

SessionResponse PredictionClient::hello(const SessionFeatures& features,
                                        double start_hour) {
  const Response response = round_trip(HelloRequest{features, start_hour});
  if (const auto* session = std::get_if<SessionResponse>(&response)) return *session;
  throw std::runtime_error("PredictionClient: unexpected response to HELLO");
}

double PredictionClient::observe(std::uint64_t session_id, double throughput_mbps) {
  const Response response = round_trip(ObserveRequest{session_id, throughput_mbps});
  if (const auto* pred = std::get_if<PredictionResponse>(&response)) return pred->mbps;
  throw std::runtime_error("PredictionClient: unexpected response to OBSERVE");
}

double PredictionClient::predict(std::uint64_t session_id, unsigned steps_ahead) {
  const Response response = round_trip(PredictRequest{session_id, steps_ahead});
  if (const auto* pred = std::get_if<PredictionResponse>(&response)) return pred->mbps;
  throw std::runtime_error("PredictionClient: unexpected response to PREDICT");
}

DownloadableModel PredictionClient::download_model(const SessionFeatures& features,
                                                   double start_hour) {
  const Response response = round_trip(ModelRequest{features, start_hour});
  if (const auto* model = std::get_if<ModelResponse>(&response)) {
    DownloadableModel out;
    out.initial_mbps = model->initial_mbps;
    out.used_global_model = model->used_global_model;
    out.hmm = deserialize_hmm(model->serialized_hmm);
    return out;
  }
  throw std::runtime_error("PredictionClient: unexpected response to MODEL");
}

void PredictionClient::bye(std::uint64_t session_id) {
  const Response response = round_trip(ByeRequest{session_id});
  if (!std::holds_alternative<OkResponse>(response))
    throw std::runtime_error("PredictionClient: unexpected response to BYE");
}

RemoteSessionPredictor::RemoteSessionPredictor(PredictionClient& client,
                                               const SessionFeatures& features,
                                               double start_hour)
    : client_(&client) {
  const SessionResponse session = client_->hello(features, start_hour);
  session_id_ = session.session_id;
  initial_mbps_ = session.initial_mbps;
  last_forecast_ = session.initial_mbps;
}

RemoteSessionPredictor::~RemoteSessionPredictor() {
  try {
    client_->bye(session_id_);
  } catch (const std::exception&) {
    // Destructor must not throw; a dead server just leaks the remote entry.
  }
}

double RemoteSessionPredictor::predict(unsigned steps_ahead) const {
  if (!has_observed_) return initial_mbps_;
  if (steps_ahead <= 1) return last_forecast_;
  return client_->predict(session_id_, steps_ahead);
}

void RemoteSessionPredictor::observe(double throughput_mbps) {
  last_forecast_ = client_->observe(session_id_, throughput_mbps);
  has_observed_ = true;
}

}  // namespace cs2p
