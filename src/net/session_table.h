// SessionTable: sharded per-session predictor state of the serving core
// (DESIGN.md §12).
//
// The paper's deployed engine (§6) keeps every session's HMM filter state
// server-side, so serving capacity is bounded by how cheaply the server can
// hold and touch millions of concurrent entries. This module owns that
// state: a power-of-two array of shards, each a mutex + hash map, with the
// owning shard picked by a splitmix64 hash of the session id. N serving
// threads touching N different sessions take N different locks.
//
// Contracts the server relies on:
//   - Entries pin their creating model (RCU hot-swap, DESIGN.md §9): the
//     `owner` reference keeps a swapped-out engine alive until the last
//     session created from it says BYE or expires.
//   - TTL eviction is incremental and amortized: one evict_tick() examines
//     at most `evict_scan_budget` arena slots per shard (resuming from a
//     per-shard slot cursor), so no lock is ever held for a scan of the
//     whole table — the full-table sweep the old accept loop ran under one
//     global mutex is gone by construction.
//   - with_session() runs the caller's closure under the owning shard's
//     lock, so a session touched from several connections (HELLO on one,
//     OBSERVE on another — sessions migrate freely between connections)
//     always sees one coherent filter state. with_sessions() is the batch
//     variant: it locks every owning shard (in shard-index order, so
//     concurrent batches never deadlock) and exposes the whole group at
//     once — what lets the server advance a poll round's sessions through
//     one batched engine call.
//
// Storage (DESIGN.md §16): entries live in per-shard slab arenas — fixed
// 64-slot slabs, index-stable for the table's lifetime, with a freelist
// recycling slots on erase/evict. The hash map per shard holds only
// id -> slot index. A batch therefore touches a handful of contiguous slabs
// instead of pointer-chasing one heap node per session, and long-running
// servers stop exercising the allocator on session churn. A released slot's
// Entry is reset to a default-constructed Entry immediately (predictor and
// model pin freed, history cleared) — reuse can never leak a previous
// session's belief state.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "predictors/predictor.h"

namespace cs2p {

struct SessionTableConfig {
  /// Shard count; rounded up to a power of two, minimum 1; 0 picks the
  /// default (16). More shards = less lock contention, slightly costlier
  /// eviction sweeps.
  std::size_t shards = 16;
  /// Entries untouched this long are eligible for eviction; <= 0 disables
  /// TTL eviction entirely.
  int ttl_ms = 120'000;
  /// Maximum entries examined per shard per evict_tick() — the amortization
  /// knob bounding every eviction lock hold.
  std::size_t evict_scan_budget = 64;
};

class SessionTable {
 public:
  using Clock = std::chrono::steady_clock;

  /// One live session. The table never dereferences `predictor` itself —
  /// callers use it under with_session() — so tests may store nullptr.
  struct Entry {
    std::unique_ptr<SessionPredictor> predictor;
    /// Pins the model that created the predictor (HmmSessionPredictor holds
    /// references into its engine); released on erase/eviction.
    std::shared_ptr<const PredictorModel> owner;
    Clock::time_point last_used{};
    /// Trace-sampling decision made once at creation (obs/trace.h).
    bool traced = false;
    /// Session identity + observation history for the completion hook
    /// (DESIGN.md §15): the server fills these at HELLO/OBSERVE when a
    /// ServerConfig::on_session_complete consumer exists, so BOTH teardown
    /// paths (BYE and TTL/drain eviction) can hand the full training signal
    /// to the continuous trainer instead of silently dropping it.
    Clock::time_point created_at{};
    SessionFeatures features;
    double start_hour = 0.0;
    std::vector<double> observations;
  };

  struct EvictStats {
    std::size_t scanned = 0;
    std::size_t evicted = 0;
  };

  /// Called for each removed entry. Invoked OUTSIDE the owning shard's lock,
  /// on the entry already moved out of the table — the callback may be
  /// arbitrarily expensive (it feeds the training pipeline) and may take
  /// other locks, but the session is already gone when it runs, so it must
  /// not expect to find `id` in the table.
  using EvictCallback = std::function<void(std::uint64_t id, Entry& entry)>;

  /// `registry` (optional) receives per-shard contention counters
  /// (cs2p_server_session_shard_contention_total{shard="i"}); it must
  /// outlive the table.
  explicit SessionTable(SessionTableConfig config,
                        obs::MetricsRegistry* registry = nullptr);

  SessionTable(const SessionTable&) = delete;
  SessionTable& operator=(const SessionTable&) = delete;

  /// Allocates the next session id (ids start at 1 and never repeat),
  /// builds the entry via `make(id)` outside any lock, and inserts it under
  /// the owning shard's lock. Returns the id.
  template <typename Make>
  std::uint64_t emplace(Make&& make) {
    const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    Entry entry = make(id);
    Shard& shard = shard_for(id);
    const auto lock = lock_shard(shard);
    const std::uint32_t slot_index = shard.acquire_slot();
    Slot& slot = shard.slot(slot_index);
    slot.id = id;
    slot.live = true;
    slot.entry = std::move(entry);
    shard.index.emplace(id, slot_index);
    size_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }

  /// Runs `fn(entry)` under the owning shard's lock. Returns false when the
  /// session is unknown (expired, BYEd, or never created). `fn` is
  /// responsible for refreshing entry.last_used if the touch should count
  /// against the TTL.
  template <typename Fn>
  bool with_session(std::uint64_t id, Fn&& fn) {
    Shard& shard = shard_for(id);
    const auto lock = lock_shard(shard);
    const auto it = shard.index.find(id);
    if (it == shard.index.end()) return false;
    fn(shard.slot(it->second).entry);
    return true;
  }

  /// Batch lookup (DESIGN.md §16): locks every shard owning one of `ids`
  /// (in ascending shard-index order — concurrent batches cannot deadlock,
  /// and single-shard operations still take one lock at a time underneath),
  /// then runs `fn(entries)` with entries[k] pointing at the session of
  /// ids[k], or nullptr when unknown. Pointers are valid only inside `fn`.
  /// `ids` must not contain duplicates (the batch kernel's sequential-
  /// dependence rule; callers route duplicates through with_session).
  template <typename Fn>
  void with_sessions(std::span<const std::uint64_t> ids, Fn&& fn) {
    std::vector<std::size_t> order;
    order.reserve(ids.size());
    for (const std::uint64_t id : ids) order.push_back(shard_index(id));
    std::sort(order.begin(), order.end());
    order.erase(std::unique(order.begin(), order.end()), order.end());
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(order.size());
    for (const std::size_t s : order) locks.push_back(lock_shard(*shards_[s]));
    std::vector<Entry*> entries(ids.size(), nullptr);
    for (std::size_t k = 0; k < ids.size(); ++k) {
      Shard& shard = *shards_[shard_index(ids[k])];
      const auto it = shard.index.find(ids[k]);
      if (it != shard.index.end()) entries[k] = &shard.slot(it->second).entry;
    }
    fn(std::span<Entry* const>(entries.data(), entries.size()));
  }

  /// Removes the session. Returns true if it existed; `*traced` (optional)
  /// reports the entry's trace flag for the caller's BYE trace record.
  bool erase(std::uint64_t id, bool* traced = nullptr);

  /// Removes the session and hands the moved-out entry to `on_erase`
  /// (invoked outside the shard lock, like eviction callbacks) — the BYE
  /// leg of the unified session-completion teardown. Returns true if the
  /// session existed.
  bool erase(std::uint64_t id, const EvictCallback& on_erase, bool* traced);

  /// Live entries across all shards. Lock-free (a relaxed counter), may be
  /// momentarily stale relative to concurrent mutators.
  std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// One amortized TTL sweep step: examines at most `evict_scan_budget`
  /// entries in each shard (separate lock holds), resuming where the last
  /// tick left off, and evicts the expired ones it saw. Call it often (the
  /// I/O workers tick it between poll waits); repeated ticks visit every
  /// entry. No-op when ttl_ms <= 0.
  EvictStats evict_tick(Clock::time_point now,
                        const EvictCallback& on_evict = {});

  /// The TTL currently in force (may differ from the constructed config
  /// after set_ttl_ms).
  int ttl_ms() const noexcept { return ttl_ms_.load(std::memory_order_relaxed); }

  /// Re-arms the eviction TTL while serving — the drain path (DESIGN.md
  /// §14) shrinks it so abandoned sessions stop holding a draining server
  /// open for the full steady-state TTL. Safe to call concurrently with
  /// evict_tick and every accessor; takes effect on the next tick.
  void set_ttl_ms(int ttl_ms) noexcept {
    ttl_ms_.store(ttl_ms, std::memory_order_relaxed);
  }

  /// Times a shard lock was already held by another thread when requested.
  std::uint64_t lock_contentions() const noexcept {
    return contentions_.load(std::memory_order_relaxed);
  }

  /// Largest number of arena slots ever examined under one eviction lock
  /// hold — the observable guarantee that eviction is incremental (stays
  /// around evict_scan_budget no matter how large the table grows).
  std::size_t max_scanned_in_one_hold() const noexcept {
    return max_scanned_.load(std::memory_order_relaxed);
  }

  /// Arena slots allocated across all shards (the high-water session count,
  /// rounded up to slab granularity). Slabs never shrink; erase/evict
  /// recycles slots through per-shard freelists — a stable value under
  /// session churn is the observable proof of slot reuse.
  std::size_t arena_slots() const;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  /// Slots per slab: 64 entries per allocation keeps slab bookkeeping
  /// negligible while capping the largest single arena allocation.
  static constexpr std::size_t kSlabSlots = 64;

  struct Slot {
    std::uint64_t id = 0;
    std::uint32_t next_free = kNoSlot;
    bool live = false;
    Entry entry;
  };
  struct Slab {
    std::array<Slot, kSlabSlots> slots;
  };

  struct alignas(64) Shard {
    mutable std::mutex mutex;
    /// id -> arena slot index; the slot holds the Entry itself.
    std::unordered_map<std::uint64_t, std::uint32_t> index;
    /// Index-stable slab arena (slabs are never freed or moved).
    std::vector<std::unique_ptr<Slab>> slabs;
    std::uint32_t free_head = kNoSlot;
    /// Slots ever handed out; the eviction scan's upper bound.
    std::uint32_t allocated = 0;
    /// Slot index where the next evict_tick resumes scanning.
    std::uint32_t cursor = 0;
    /// Contention counter of this shard (null without a registry).
    obs::Counter* contention = nullptr;

    Slot& slot(std::uint32_t i) noexcept {
      return slabs[i / kSlabSlots]->slots[i % kSlabSlots];
    }
    /// Pops the freelist, or carves a fresh slot (growing by one slab when
    /// the arena is full). Caller holds the shard lock.
    std::uint32_t acquire_slot();
    /// Resets the slot's Entry to default (dropping the predictor, model
    /// pin, and history — no state survives into the next tenant) and
    /// pushes it onto the freelist. Caller holds the shard lock.
    void release_slot(std::uint32_t i);
  };

  Shard& shard_for(std::uint64_t id) noexcept;
  std::size_t shard_index(std::uint64_t id) const noexcept;
  std::unique_lock<std::mutex> lock_shard(Shard& shard) noexcept;

  SessionTableConfig config_;
  /// Live TTL; seeded from config_.ttl_ms, re-armed by set_ttl_ms (drain).
  std::atomic<int> ttl_ms_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t shard_mask_ = 0;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> contentions_{0};
  std::atomic<std::size_t> max_scanned_{0};
};

}  // namespace cs2p
