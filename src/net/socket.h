// Thin RAII layer over POSIX TCP sockets (loopback prediction service).
//
// Only what the prediction service needs: an owning fd handle, a listening
// socket bound to 127.0.0.1, connect, and robust full-buffer send/recv that
// handle partial transfers and EINTR. Errors surface as std::system_error
// with the relevant errno.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>

namespace cs2p {

/// Owning file-descriptor handle (move-only).
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle();

  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  FdHandle& operator=(FdHandle&& other) noexcept;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void reset() noexcept;
  int release() noexcept { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

/// Creates a TCP socket listening on 127.0.0.1:`port` (0 = ephemeral).
/// Returns the socket and the actual bound port.
std::pair<FdHandle, std::uint16_t> listen_loopback(std::uint16_t port, int backlog = 16);

/// Accepts one connection (blocking). Throws std::system_error on failure;
/// returns an invalid handle if the listener was shut down.
FdHandle accept_connection(const FdHandle& listener);

/// Waits until `fd` is readable or `timeout_ms` elapses. Returns true when
/// readable. Closing a listening socket does not wake a thread blocked in
/// accept(2) on Linux, so accept loops must poll with this and re-check
/// their stop flag between waits.
bool wait_readable(const FdHandle& fd, int timeout_ms);

/// Puts the descriptor into non-blocking mode.
void set_nonblocking(const FdHandle& fd);

/// Non-blocking accept: returns an invalid handle when no connection is
/// pending (EAGAIN) or the listener is gone; throws on other errors.
FdHandle try_accept(const FdHandle& listener);

/// Connects to 127.0.0.1:`port` (blocking).
FdHandle connect_loopback(std::uint16_t port);

/// Sends the whole buffer; throws std::system_error on error or peer close.
void send_all(const FdHandle& socket, std::span<const std::byte> data);

/// Receives exactly data.size() bytes. Returns false on clean EOF at a
/// message boundary (0 bytes read so far); throws on errors or mid-buffer
/// EOF.
bool recv_all(const FdHandle& socket, std::span<std::byte> data);

// -- Non-blocking primitives (event-driven serving core) ---------------------

/// Single non-blocking read. Returns the byte count read (> 0), 0 when the
/// socket has no data right now (EAGAIN — poll again), or nullopt on orderly
/// peer shutdown (EOF). Throws std::system_error on hard errors (reset).
std::optional<std::size_t> recv_some(const FdHandle& socket,
                                     std::span<std::byte> data);

/// Single non-blocking write. Returns the byte count the kernel accepted
/// (0 when the send buffer is full — poll for writability). Throws
/// std::system_error on hard errors (EPIPE, reset).
std::size_t send_some(const FdHandle& socket, std::span<const std::byte> data);

/// Self-pipe for waking a poll(2) loop from another thread: returns
/// {read_end, write_end}, both non-blocking. Poll the read end; write one
/// byte to the write end to wake (wake_pipe_signal), drain on wakeup
/// (wake_pipe_drain).
std::pair<FdHandle, FdHandle> make_wake_pipe();

/// Best-effort single-byte write to a wake pipe; a full pipe already means a
/// wakeup is pending, so EAGAIN is silently fine.
void wake_pipe_signal(const FdHandle& write_end) noexcept;

/// Drains every pending wakeup byte.
void wake_pipe_drain(const FdHandle& read_end) noexcept;

}  // namespace cs2p
