#include "net/server.h"

#include <sys/socket.h>

#include <stdexcept>

namespace cs2p {

PredictionServer::PredictionServer(std::shared_ptr<const PredictorModel> model,
                                   std::uint16_t port)
    : model_(std::move(model)) {
  if (!model_) throw std::invalid_argument("PredictionServer: null model");
  auto [listener, bound_port] = listen_loopback(port);
  listener_ = std::move(listener);
  port_ = bound_port;
  // Non-blocking + poll: closing a listening fd does not wake a blocked
  // accept(2), so the accept loop must poll and re-check the stop flag.
  set_nonblocking(listener_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

PredictionServer::~PredictionServer() { stop(); }

void PredictionServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.reset();
  std::vector<std::thread> workers;
  {
    std::scoped_lock lock(workers_mutex_);
    workers = std::move(workers_);
    // shutdown(2) DOES wake a blocked recv(2); close alone would not free
    // workers waiting on idle client connections.
    for (int fd : live_connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& worker : workers)
    if (worker.joinable()) worker.join();
}

void PredictionServer::accept_loop() {
  while (!stopping_.load()) {
    try {
      if (!wait_readable(listener_, /*timeout_ms=*/100)) continue;
    } catch (const std::exception&) {
      break;  // listener torn down
    }
    FdHandle connection = try_accept(listener_);
    if (!connection.valid()) continue;  // spurious wakeup or shutdown
    std::scoped_lock lock(workers_mutex_);
    live_connection_fds_.push_back(connection.get());
    workers_.emplace_back(
        [this, conn = std::move(connection)]() mutable {
          serve_connection(std::move(conn));
        });
  }
}

void PredictionServer::serve_connection(FdHandle connection) {
  try {
    while (!stopping_.load()) {
      const auto frame = recv_frame(connection);
      if (!frame) break;  // client hung up
      Response response;
      try {
        response = handle(parse_request(*frame));
      } catch (const std::exception& e) {
        response = ErrorResponse{e.what()};
      }
      // Count before replying: once the client sees the response, the
      // request must already be visible in requests_handled().
      requests_.fetch_add(1, std::memory_order_relaxed);
      send_frame(connection, serialize_response(response));
    }
  } catch (const std::exception&) {
    // Connection-level failure: drop the connection, keep serving others.
  }
  std::scoped_lock lock(workers_mutex_);
  std::erase(live_connection_fds_, connection.get());
}

Response PredictionServer::handle(const Request& request) {
  if (const auto* hello = std::get_if<HelloRequest>(&request)) {
    SessionContext context;
    context.features = hello->features;
    context.start_hour = hello->start_hour;
    auto predictor = model_->make_session(context);

    SessionResponse response;
    response.initial_mbps = predictor->predict_initial().value_or(0.0);
    // Cluster metadata is predictor-specific; expose what we can.
    response.cluster_label = model_->name();

    std::scoped_lock lock(sessions_mutex_);
    response.session_id = next_session_id_++;
    sessions_.emplace(response.session_id, std::move(predictor));
    return response;
  }

  if (const auto* observe = std::get_if<ObserveRequest>(&request)) {
    std::scoped_lock lock(sessions_mutex_);
    const auto it = sessions_.find(observe->session_id);
    if (it == sessions_.end()) return ErrorResponse{"unknown session"};
    it->second->observe(observe->throughput_mbps);
    return PredictionResponse{it->second->predict(1)};
  }

  if (const auto* predict = std::get_if<PredictRequest>(&request)) {
    std::scoped_lock lock(sessions_mutex_);
    const auto it = sessions_.find(predict->session_id);
    if (it == sessions_.end()) return ErrorResponse{"unknown session"};
    if (predict->steps_ahead == 0) return ErrorResponse{"steps_ahead must be >= 1"};
    return PredictionResponse{it->second->predict(predict->steps_ahead)};
  }

  if (const auto* bye = std::get_if<ByeRequest>(&request)) {
    std::scoped_lock lock(sessions_mutex_);
    sessions_.erase(bye->session_id);
    return OkResponse{};
  }

  if (const auto* model = std::get_if<ModelRequest>(&request)) {
    SessionContext context;
    context.features = model->features;
    context.start_hour = model->start_hour;
    const auto downloadable = model_->downloadable_model(context);
    if (!downloadable)
      return ErrorResponse{"model download unsupported by " + model_->name()};
    ModelResponse response;
    response.initial_mbps = downloadable->initial_mbps;
    response.used_global_model = downloadable->used_global_model;
    response.serialized_hmm = serialize_hmm(downloadable->hmm);
    return response;
  }
  return ErrorResponse{"unhandled request"};
}

}  // namespace cs2p
