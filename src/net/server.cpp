#include "net/server.h"

#include <sys/socket.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cs2p {
namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count());
}

}  // namespace

PredictionServer::MetricHandles PredictionServer::MetricHandles::create(
    obs::MetricsRegistry& registry) {
  MetricHandles m;
  m.requests = &registry.counter("cs2p_server_requests_total");
  m.replies = &registry.counter("cs2p_server_replies_total");
  m.error_replies = &registry.counter("cs2p_server_error_replies_total");
  m.degraded_replies = &registry.counter("cs2p_server_degraded_replies_total");
  const auto verb = [&registry](const char* name) {
    return &registry.counter("cs2p_server_verb_requests_total",
                             {{"verb", name}});
  };
  m.verb_hello = verb("hello");
  m.verb_observe = verb("observe");
  m.verb_predict = verb("predict");
  m.verb_bye = verb("bye");
  m.verb_model = verb("model");
  m.verb_stats = verb("stats");
  m.verb_invalid = verb("invalid");
  m.connections = &registry.counter("cs2p_server_connections_total");
  m.idle_timeouts = &registry.counter("cs2p_server_idle_timeouts_total");
  m.rejected = &registry.counter("cs2p_server_connections_rejected_total");
  m.evicted = &registry.counter("cs2p_server_sessions_evicted_total");
  m.swaps = &registry.counter("cs2p_server_model_swaps_total");
  m.active_connections = &registry.gauge("cs2p_server_active_connections");
  m.live_sessions = &registry.gauge("cs2p_server_live_sessions");
  m.request_seconds =
      &registry.histogram("cs2p_server_request_seconds",
                          obs::default_latency_buckets_seconds());
  return m;
}

obs::Counter* PredictionServer::verb_counter(
    const Request& request) const noexcept {
  if (std::holds_alternative<HelloRequest>(request)) return m_.verb_hello;
  if (std::holds_alternative<ObserveRequest>(request)) return m_.verb_observe;
  if (std::holds_alternative<PredictRequest>(request)) return m_.verb_predict;
  if (std::holds_alternative<ByeRequest>(request)) return m_.verb_bye;
  if (std::holds_alternative<ModelRequest>(request)) return m_.verb_model;
  if (std::holds_alternative<StatsRequest>(request)) return m_.verb_stats;
  return m_.verb_invalid;
}

PredictionServer::PredictionServer(std::shared_ptr<const PredictorModel> model,
                                   std::uint16_t port)
    : PredictionServer(std::move(model), ServerConfig{}, port) {}

PredictionServer::PredictionServer(std::shared_ptr<const PredictorModel> model,
                                   ServerConfig config, std::uint16_t port)
    : model_(std::move(model)),
      config_(std::move(config)),
      metrics_(config_.metrics ? config_.metrics
                               : std::make_shared<obs::MetricsRegistry>()),
      m_(MetricHandles::create(*metrics_)),
      trace_(config_.trace) {
  if (!model_) throw std::invalid_argument("PredictionServer: null model");
  if (config_.max_connections == 0)
    throw std::invalid_argument("PredictionServer: max_connections must be > 0");
  auto [listener, bound_port] = listen_loopback(port);
  listener_ = std::move(listener);
  port_ = bound_port;
  // Non-blocking + poll: closing a listening fd does not wake a blocked
  // accept(2), so the accept loop must poll and re-check the stop flag.
  set_nonblocking(listener_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

PredictionServer::~PredictionServer() { stop(); }

void PredictionServer::stop() {
  stopping_.store(true);
  // Serialize the teardown: std::thread::join from two threads racing each
  // other is undefined behaviour, so the whole shutdown runs under a lock
  // and every step is idempotent.
  std::scoped_lock stop_lock(stop_mutex_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.reset();
  std::vector<std::thread> workers;
  {
    std::scoped_lock lock(workers_mutex_);
    workers = std::move(workers_);
    workers_.clear();
    // shutdown(2) DOES wake a blocked recv(2); close alone would not free
    // workers waiting on idle client connections.
    for (int fd : live_connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& worker : workers)
    if (worker.joinable()) worker.join();
}

std::size_t PredictionServer::session_count() const {
  std::scoped_lock lock(sessions_mutex_);
  return sessions_.size();
}

void PredictionServer::swap_model(std::shared_ptr<const PredictorModel> model) {
  if (!model) throw std::invalid_argument("PredictionServer: null model in swap");
  {
    std::scoped_lock lock(model_mutex_);
    model_ = std::move(model);
  }
  m_.swaps->inc();
  // The old model is NOT torn down here: any session entry created from it
  // still holds a reference, and releases it on BYE or TTL eviction.
}

std::shared_ptr<const PredictorModel> PredictionServer::current_model() const {
  std::scoped_lock lock(model_mutex_);
  return model_;
}

void PredictionServer::evict_expired_sessions() {
  if (config_.session_ttl_ms <= 0) return;
  const auto deadline =
      Clock::now() - std::chrono::milliseconds(config_.session_ttl_ms);
  std::scoped_lock lock(sessions_mutex_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.last_used < deadline) {
      if (trace_ && it->second.traced)
        trace_->emit("evict", it->first,
                     {{"ttl_ms", static_cast<std::int64_t>(config_.session_ttl_ms)}});
      it = sessions_.erase(it);
      m_.evicted->inc();
    } else {
      ++it;
    }
  }
  m_.live_sessions->set(static_cast<double>(sessions_.size()));
}

void PredictionServer::reject_connection(const FdHandle& connection) {
  m_.rejected->inc();
  try {
    send_frame(connection,
               serialize_response(ErrorResponse{
                   WireErrorCode::kOverloaded,
                   "connection limit reached, try again later"}));
    // The client's request is sitting unread in our receive buffer, and
    // close(2) with unread data sends RST — which can destroy the rejection
    // frame before the peer reads it. Half-close our side, then drain the
    // socket for a bounded moment so the close is a clean FIN.
    ::shutdown(connection.get(), SHUT_WR);
    std::byte sink[256];
    for (int i = 0; i < 10 && wait_readable(connection, 10); ++i) {
      if (::recv(connection.get(), sink, sizeof(sink), 0) <= 0) break;
    }
  } catch (const std::exception&) {
    // Best-effort courtesy frame; the close below is the real rejection.
  }
}

void PredictionServer::accept_loop() {
  while (!stopping_.load()) {
    evict_expired_sessions();
    try {
      if (!wait_readable(listener_, /*timeout_ms=*/100)) continue;
    } catch (const std::exception&) {
      break;  // listener torn down
    }
    FdHandle connection = try_accept(listener_);
    if (!connection.valid()) continue;  // spurious wakeup or shutdown
    if (active_connections_.load() >= config_.max_connections) {
      reject_connection(connection);
      continue;  // FdHandle destructor closes it
    }
    m_.connections->inc();
    m_.active_connections->set(
        static_cast<double>(active_connections_.fetch_add(1) + 1));
    std::scoped_lock lock(workers_mutex_);
    live_connection_fds_.push_back(connection.get());
    workers_.emplace_back(
        [this, conn = std::move(connection)]() mutable {
          serve_connection(std::move(conn));
        });
  }
}

void PredictionServer::serve_connection(FdHandle connection) {
  try {
    while (!stopping_.load()) {
      // Idle timeout: a silent peer gets its connection reclaimed instead of
      // pinning this worker forever. stop() still wakes the poll via
      // shutdown(2) (POLLHUP counts as readable).
      if (!wait_readable(connection, config_.idle_timeout_ms)) {
        m_.idle_timeouts->inc();
        break;
      }
      const auto frame = recv_frame(connection);
      if (!frame) break;  // client hung up
      // Count before replying: once the client sees the response, the
      // request must already be visible in requests_handled() — and a reply
      // can never outrun its request (the scrape invariant of §11).
      m_.requests->inc();
      const auto t_recv = Clock::now();
      Response response;
      RequestInfo info;
      std::uint64_t parse_us = 0;
      std::uint64_t handle_us = 0;
      try {
        const Request request = parse_request(*frame);
        const auto t_parsed = Clock::now();
        parse_us = elapsed_us(t_recv, t_parsed);
        verb_counter(request)->inc();
        response = handle(request, info);
        handle_us = elapsed_us(t_parsed, Clock::now());
      } catch (const ProtocolError& e) {
        m_.verb_invalid->inc();
        response = ErrorResponse{WireErrorCode::kBadRequest, e.what()};
      } catch (const std::exception& e) {
        response = ErrorResponse{WireErrorCode::kInternal, e.what()};
      }
      if (std::holds_alternative<ErrorResponse>(response))
        m_.error_replies->inc();
      const auto t_send = Clock::now();
      send_frame(connection, serialize_response(response));
      m_.replies->inc();
      const auto t_done = Clock::now();
      m_.request_seconds->observe(
          std::chrono::duration<double>(t_done - t_recv).count());
      if (trace_ && info.traced) {
        const std::uint64_t send_us = elapsed_us(t_send, t_done);
        if (const auto* err = std::get_if<ErrorResponse>(&response)) {
          trace_->emit("reply-error", info.session_id,
                       {{"verb", info.event},
                        {"code", wire_error_code_name(err->code)},
                        {"parse_us", parse_us},
                        {"handle_us", handle_us},
                        {"send_us", send_us}});
        } else if (info.event == "hello") {
          trace_->emit("hello", info.session_id,
                       {{"cluster", std::string_view(info.cluster_label)},
                        {"initial_mbps", info.mbps},
                        {"parse_us", parse_us},
                        {"handle_us", handle_us},
                        {"send_us", send_us}});
        } else {
          // observe / predict / bye: flags + prediction + the filter's
          // predictive log-likelihood (NaN serializes as null when absent).
          trace_->emit(
              info.event, info.session_id,
              {{"flags", info.flags},
               {"mbps", info.mbps},
               {"ll", info.log_likelihood.value_or(
                          std::numeric_limits<double>::quiet_NaN())},
               {"parse_us", parse_us},
               {"handle_us", handle_us},
               {"send_us", send_us}});
        }
      }
    }
  } catch (const std::exception&) {
    // Connection-level failure (reset, desynced framing): drop the
    // connection, keep serving others.
  }
  m_.active_connections->set(
      static_cast<double>(active_connections_.fetch_sub(1) - 1));
  std::scoped_lock lock(workers_mutex_);
  std::erase(live_connection_fds_, connection.get());
}

PredictionResponse PredictionServer::make_prediction_response(
    const SessionPredictor& predictor, unsigned steps_ahead) {
  // Read the flags before predicting: serve_flags() describes why the *next*
  // prediction will be served the way it is, and must match the value on the
  // same reply.
  PredictionResponse response;
  response.flags = predictor.serve_flags();
  response.mbps = predictor.predict(steps_ahead);
  if (response.flags != serve_flags::kPrimary) m_.degraded_replies->inc();
  return response;
}

Response PredictionServer::handle(const Request& request, RequestInfo& info) {
  if (stopping_.load())
    return ErrorResponse{WireErrorCode::kShuttingDown, "server is stopping"};

  if (const auto* hello = std::get_if<HelloRequest>(&request)) {
    info.event = "hello";
    if (!std::isfinite(hello->start_hour))
      return ErrorResponse{WireErrorCode::kBadRequest,
                           "start_hour must be finite"};
    SessionContext context;
    context.features = hello->features;
    context.start_hour = hello->start_hour;
    // Snapshot the published model once: the session is created from it and
    // pins it, so a concurrent swap_model() cannot pull the engine out from
    // under the predictor's internal references.
    auto model = current_model();
    auto predictor = model->make_session(context);

    SessionResponse response;
    response.initial_mbps = predictor->predict_initial().value_or(0.0);
    // Cluster metadata is predictor-specific; expose what we can.
    response.cluster_label = model->name();

    std::scoped_lock lock(sessions_mutex_);
    response.session_id = next_session_id_++;
    info.session_id = response.session_id;
    info.traced = trace_ && trace_->should_sample(response.session_id);
    info.mbps = response.initial_mbps;
    info.cluster_label = response.cluster_label;
    SessionEntry entry{std::move(predictor), std::move(model), Clock::now(),
                       info.traced};
    sessions_.emplace(response.session_id, std::move(entry));
    m_.live_sessions->set(static_cast<double>(sessions_.size()));
    return response;
  }

  if (const auto* observe = std::get_if<ObserveRequest>(&request)) {
    info.event = "observe";
    info.session_id = observe->session_id;
    const double w = observe->throughput_mbps;
    std::scoped_lock lock(sessions_mutex_);
    const auto it = sessions_.find(observe->session_id);
    if (it != sessions_.end()) info.traced = it->second.traced;
    // Validate before touching the predictor: one NaN in the forward filter
    // poisons every belief state after it.
    // Zero is allowed: a fully stalled epoch is a real measurement (and the
    // dataset loader accepts it too).
    if (!std::isfinite(w) || w < 0.0 || w > config_.max_sample_mbps)
      return ErrorResponse{WireErrorCode::kInvalidSample,
                           "throughput sample must be finite, non-negative and <= " +
                               std::to_string(config_.max_sample_mbps)};
    if (it == sessions_.end())
      return ErrorResponse{WireErrorCode::kUnknownSession, "unknown session"};
    it->second.last_used = Clock::now();
    it->second.predictor->observe(w);
    const PredictionResponse response =
        make_prediction_response(*it->second.predictor, 1);
    info.flags = response.flags;
    info.mbps = response.mbps;
    info.log_likelihood = it->second.predictor->last_log_likelihood();
    return response;
  }

  if (const auto* predict = std::get_if<PredictRequest>(&request)) {
    info.event = "predict";
    info.session_id = predict->session_id;
    std::scoped_lock lock(sessions_mutex_);
    const auto it = sessions_.find(predict->session_id);
    if (it == sessions_.end())
      return ErrorResponse{WireErrorCode::kUnknownSession, "unknown session"};
    info.traced = it->second.traced;
    if (predict->steps_ahead == 0)
      return ErrorResponse{WireErrorCode::kBadRequest,
                           "steps_ahead must be >= 1"};
    it->second.last_used = Clock::now();
    const PredictionResponse response =
        make_prediction_response(*it->second.predictor, predict->steps_ahead);
    info.flags = response.flags;
    info.mbps = response.mbps;
    info.log_likelihood = it->second.predictor->last_log_likelihood();
    return response;
  }

  if (const auto* bye = std::get_if<ByeRequest>(&request)) {
    info.event = "bye";
    info.session_id = bye->session_id;
    std::scoped_lock lock(sessions_mutex_);
    const auto it = sessions_.find(bye->session_id);
    if (it != sessions_.end()) {
      info.traced = it->second.traced;
      sessions_.erase(it);
    }
    m_.live_sessions->set(static_cast<double>(sessions_.size()));
    return OkResponse{};
  }

  if (std::holds_alternative<StatsRequest>(request)) {
    info.event = "stats";
    // Refresh the point-in-time gauge before scraping so a scrape during a
    // quiet period still reports the live table, not the last mutation.
    {
      std::scoped_lock lock(sessions_mutex_);
      m_.live_sessions->set(static_cast<double>(sessions_.size()));
    }
    StatsResponse response;
    response.exposition_version = obs::kMetricsExpositionVersion;
    response.exposition = metrics_->scrape();
    // The exposition must fit one frame. Cut at a line boundary and mark the
    // cut, so a truncated scrape still parses and is visibly partial.
    constexpr std::string_view kTruncated = "# cs2p_scrape_truncated 1\n";
    const std::size_t budget = kMaxFrameBytes - 64;  // frame + STATS header
    if (response.exposition.size() > budget) {
      const std::size_t cut =
          response.exposition.rfind('\n', budget - kTruncated.size());
      response.exposition.resize(cut == std::string::npos ? 0 : cut + 1);
      response.exposition += kTruncated;
    }
    return response;
  }

  if (const auto* model = std::get_if<ModelRequest>(&request)) {
    info.event = "model";
    SessionContext context;
    context.features = model->features;
    context.start_hour = model->start_hour;
    const auto served = current_model();
    const auto downloadable = served->downloadable_model(context);
    if (!downloadable)
      return ErrorResponse{WireErrorCode::kUnsupported,
                           "model download unsupported by " + served->name()};
    ModelResponse response;
    response.initial_mbps = downloadable->initial_mbps;
    response.used_global_model = downloadable->used_global_model;
    response.serialized_hmm = serialize_hmm(downloadable->hmm);
    return response;
  }
  return ErrorResponse{WireErrorCode::kBadRequest, "unhandled request"};
}

}  // namespace cs2p
