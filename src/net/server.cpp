#include "net/server.h"

#include <sys/socket.h>

#include <cmath>
#include <stdexcept>

namespace cs2p {

PredictionServer::PredictionServer(std::shared_ptr<const PredictorModel> model,
                                   std::uint16_t port)
    : PredictionServer(std::move(model), ServerConfig{}, port) {}

PredictionServer::PredictionServer(std::shared_ptr<const PredictorModel> model,
                                   ServerConfig config, std::uint16_t port)
    : model_(std::move(model)), config_(config) {
  if (!model_) throw std::invalid_argument("PredictionServer: null model");
  if (config_.max_connections == 0)
    throw std::invalid_argument("PredictionServer: max_connections must be > 0");
  auto [listener, bound_port] = listen_loopback(port);
  listener_ = std::move(listener);
  port_ = bound_port;
  // Non-blocking + poll: closing a listening fd does not wake a blocked
  // accept(2), so the accept loop must poll and re-check the stop flag.
  set_nonblocking(listener_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

PredictionServer::~PredictionServer() { stop(); }

void PredictionServer::stop() {
  stopping_.store(true);
  // Serialize the teardown: std::thread::join from two threads racing each
  // other is undefined behaviour, so the whole shutdown runs under a lock
  // and every step is idempotent.
  std::scoped_lock stop_lock(stop_mutex_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.reset();
  std::vector<std::thread> workers;
  {
    std::scoped_lock lock(workers_mutex_);
    workers = std::move(workers_);
    workers_.clear();
    // shutdown(2) DOES wake a blocked recv(2); close alone would not free
    // workers waiting on idle client connections.
    for (int fd : live_connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& worker : workers)
    if (worker.joinable()) worker.join();
}

std::size_t PredictionServer::session_count() const {
  std::scoped_lock lock(sessions_mutex_);
  return sessions_.size();
}

void PredictionServer::swap_model(std::shared_ptr<const PredictorModel> model) {
  if (!model) throw std::invalid_argument("PredictionServer: null model in swap");
  {
    std::scoped_lock lock(model_mutex_);
    model_ = std::move(model);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  // The old model is NOT torn down here: any session entry created from it
  // still holds a reference, and releases it on BYE or TTL eviction.
}

std::shared_ptr<const PredictorModel> PredictionServer::current_model() const {
  std::scoped_lock lock(model_mutex_);
  return model_;
}

void PredictionServer::evict_expired_sessions() {
  if (config_.session_ttl_ms <= 0) return;
  const auto deadline =
      Clock::now() - std::chrono::milliseconds(config_.session_ttl_ms);
  std::scoped_lock lock(sessions_mutex_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.last_used < deadline) {
      it = sessions_.erase(it);
      evicted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
}

void PredictionServer::reject_connection(const FdHandle& connection) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  try {
    send_frame(connection,
               serialize_response(ErrorResponse{
                   WireErrorCode::kOverloaded,
                   "connection limit reached, try again later"}));
    // The client's request is sitting unread in our receive buffer, and
    // close(2) with unread data sends RST — which can destroy the rejection
    // frame before the peer reads it. Half-close our side, then drain the
    // socket for a bounded moment so the close is a clean FIN.
    ::shutdown(connection.get(), SHUT_WR);
    std::byte sink[256];
    for (int i = 0; i < 10 && wait_readable(connection, 10); ++i) {
      if (::recv(connection.get(), sink, sizeof(sink), 0) <= 0) break;
    }
  } catch (const std::exception&) {
    // Best-effort courtesy frame; the close below is the real rejection.
  }
}

void PredictionServer::accept_loop() {
  while (!stopping_.load()) {
    evict_expired_sessions();
    try {
      if (!wait_readable(listener_, /*timeout_ms=*/100)) continue;
    } catch (const std::exception&) {
      break;  // listener torn down
    }
    FdHandle connection = try_accept(listener_);
    if (!connection.valid()) continue;  // spurious wakeup or shutdown
    if (active_connections_.load() >= config_.max_connections) {
      reject_connection(connection);
      continue;  // FdHandle destructor closes it
    }
    active_connections_.fetch_add(1);
    std::scoped_lock lock(workers_mutex_);
    live_connection_fds_.push_back(connection.get());
    workers_.emplace_back(
        [this, conn = std::move(connection)]() mutable {
          serve_connection(std::move(conn));
        });
  }
}

void PredictionServer::serve_connection(FdHandle connection) {
  try {
    while (!stopping_.load()) {
      // Idle timeout: a silent peer gets its connection reclaimed instead of
      // pinning this worker forever. stop() still wakes the poll via
      // shutdown(2) (POLLHUP counts as readable).
      if (!wait_readable(connection, config_.idle_timeout_ms)) break;
      const auto frame = recv_frame(connection);
      if (!frame) break;  // client hung up
      Response response;
      try {
        response = handle(parse_request(*frame));
      } catch (const ProtocolError& e) {
        response = ErrorResponse{WireErrorCode::kBadRequest, e.what()};
      } catch (const std::exception& e) {
        response = ErrorResponse{WireErrorCode::kInternal, e.what()};
      }
      // Count before replying: once the client sees the response, the
      // request must already be visible in requests_handled().
      requests_.fetch_add(1, std::memory_order_relaxed);
      send_frame(connection, serialize_response(response));
    }
  } catch (const std::exception&) {
    // Connection-level failure (reset, desynced framing): drop the
    // connection, keep serving others.
  }
  active_connections_.fetch_sub(1);
  std::scoped_lock lock(workers_mutex_);
  std::erase(live_connection_fds_, connection.get());
}

PredictionResponse PredictionServer::make_prediction_response(
    const SessionPredictor& predictor, unsigned steps_ahead) {
  // Read the flags before predicting: serve_flags() describes why the *next*
  // prediction will be served the way it is, and must match the value on the
  // same reply.
  PredictionResponse response;
  response.flags = predictor.serve_flags();
  response.mbps = predictor.predict(steps_ahead);
  if (response.flags != serve_flags::kPrimary)
    degraded_replies_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

Response PredictionServer::handle(const Request& request) {
  if (stopping_.load())
    return ErrorResponse{WireErrorCode::kShuttingDown, "server is stopping"};

  if (const auto* hello = std::get_if<HelloRequest>(&request)) {
    if (!std::isfinite(hello->start_hour))
      return ErrorResponse{WireErrorCode::kBadRequest,
                           "start_hour must be finite"};
    SessionContext context;
    context.features = hello->features;
    context.start_hour = hello->start_hour;
    // Snapshot the published model once: the session is created from it and
    // pins it, so a concurrent swap_model() cannot pull the engine out from
    // under the predictor's internal references.
    auto model = current_model();
    auto predictor = model->make_session(context);

    SessionResponse response;
    response.initial_mbps = predictor->predict_initial().value_or(0.0);
    // Cluster metadata is predictor-specific; expose what we can.
    response.cluster_label = model->name();

    std::scoped_lock lock(sessions_mutex_);
    response.session_id = next_session_id_++;
    sessions_.emplace(
        response.session_id,
        SessionEntry{std::move(predictor), std::move(model), Clock::now()});
    return response;
  }

  if (const auto* observe = std::get_if<ObserveRequest>(&request)) {
    const double w = observe->throughput_mbps;
    // Validate before touching the predictor: one NaN in the forward filter
    // poisons every belief state after it.
    // Zero is allowed: a fully stalled epoch is a real measurement (and the
    // dataset loader accepts it too).
    if (!std::isfinite(w) || w < 0.0 || w > config_.max_sample_mbps)
      return ErrorResponse{WireErrorCode::kInvalidSample,
                           "throughput sample must be finite, non-negative and <= " +
                               std::to_string(config_.max_sample_mbps)};
    std::scoped_lock lock(sessions_mutex_);
    const auto it = sessions_.find(observe->session_id);
    if (it == sessions_.end())
      return ErrorResponse{WireErrorCode::kUnknownSession, "unknown session"};
    it->second.last_used = Clock::now();
    it->second.predictor->observe(w);
    return make_prediction_response(*it->second.predictor, 1);
  }

  if (const auto* predict = std::get_if<PredictRequest>(&request)) {
    std::scoped_lock lock(sessions_mutex_);
    const auto it = sessions_.find(predict->session_id);
    if (it == sessions_.end())
      return ErrorResponse{WireErrorCode::kUnknownSession, "unknown session"};
    if (predict->steps_ahead == 0)
      return ErrorResponse{WireErrorCode::kBadRequest,
                           "steps_ahead must be >= 1"};
    it->second.last_used = Clock::now();
    return make_prediction_response(*it->second.predictor, predict->steps_ahead);
  }

  if (const auto* bye = std::get_if<ByeRequest>(&request)) {
    std::scoped_lock lock(sessions_mutex_);
    sessions_.erase(bye->session_id);
    return OkResponse{};
  }

  if (const auto* model = std::get_if<ModelRequest>(&request)) {
    SessionContext context;
    context.features = model->features;
    context.start_hour = model->start_hour;
    const auto served = current_model();
    const auto downloadable = served->downloadable_model(context);
    if (!downloadable)
      return ErrorResponse{WireErrorCode::kUnsupported,
                           "model download unsupported by " + served->name()};
    ModelResponse response;
    response.initial_mbps = downloadable->initial_mbps;
    response.used_global_model = downloadable->used_global_model;
    response.serialized_hmm = serialize_hmm(downloadable->hmm);
    return response;
  }
  return ErrorResponse{WireErrorCode::kBadRequest, "unhandled request"};
}

}  // namespace cs2p
