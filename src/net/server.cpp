#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

#include "core/engine.h"

namespace cs2p {
namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count());
}

/// Fills in the runtime defaults so config() reports what is actually in
/// effect: io_threads = hardware concurrency, session_shards = 16 (the
/// table rounds to a power of two itself).
ServerConfig resolve_config(ServerConfig config) {
  if (config.io_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    config.io_threads = hw == 0 ? 1 : hw;
  }
  if (config.session_shards == 0) config.session_shards = 16;
  if (config.evict_scan_budget == 0) config.evict_scan_budget = 64;
  if (config.write_budget_bytes == 0) config.write_budget_bytes = 256 * 1024;
  if (config.retry_after_ms <= 0) config.retry_after_ms = 250;
  return config;
}

/// Smoothing factor of the per-worker utilization EWMA. One loop iteration
/// is at most ~kMaxPollWaitMs, so the window is a few hundred ms — fast
/// enough to track an overload ramp, slow enough not to shed on one
/// expensive request.
constexpr double kUtilizationAlpha = 0.2;

/// Eviction cadence per worker: often enough that TTLs in the tens of
/// milliseconds (tests) are honored promptly, rare enough to stay amortized.
constexpr auto kEvictTickInterval = std::chrono::milliseconds(20);

/// Upper bound on a worker's poll wait; keeps eviction ticking and the stop
/// flag checked even when the wake pipe is never signaled.
constexpr int kMaxPollWaitMs = 50;

constexpr std::size_t kReadChunkBytes = 16 * 1024;

}  // namespace

/// One frame moving through a batch round (DESIGN.md §16). Extracted off its
/// connection's read buffer, parsed, dispatched either scalar or through the
/// engine's batch API, and finally emitted back onto the connection — the
/// fd, not a Connection*, is the link, because a connection can be closed by
/// an earlier frame's flush failure within the same round.
struct PredictionServer::RoundFrame {
  int fd = -1;
  std::string payload;
  PendingReply reply;     ///< t_recv stamped at extraction
  Request request;
  bool parsed = false;
  Response response;
  bool handled = false;
  /// 0 = scalar path, 1 = batched OBSERVE, 2 = batched PREDICT.
  int batch_kind = 0;
  std::uint64_t batch_session = 0;
};

PredictionServer::MetricHandles PredictionServer::MetricHandles::create(
    obs::MetricsRegistry& registry) {
  MetricHandles m;
  m.requests = &registry.counter("cs2p_server_requests_total");
  m.replies = &registry.counter("cs2p_server_replies_total");
  m.error_replies = &registry.counter("cs2p_server_error_replies_total");
  m.degraded_replies = &registry.counter("cs2p_server_degraded_replies_total");
  const auto verb = [&registry](const char* name) {
    return &registry.counter("cs2p_server_verb_requests_total",
                             {{"verb", name}});
  };
  m.verb_hello = verb("hello");
  m.verb_observe = verb("observe");
  m.verb_predict = verb("predict");
  m.verb_bye = verb("bye");
  m.verb_model = verb("model");
  m.verb_stats = verb("stats");
  m.verb_sync = verb("sync");
  m.verb_invalid = verb("invalid");
  m.connections = &registry.counter("cs2p_server_connections_total");
  m.idle_timeouts = &registry.counter("cs2p_server_idle_timeouts_total");
  m.rejected = &registry.counter("cs2p_server_connections_rejected_total");
  m.evicted = &registry.counter("cs2p_server_sessions_evicted_total");
  m.swaps = &registry.counter("cs2p_server_model_swaps_total");
  m.syncs_applied = &registry.counter("cs2p_server_syncs_applied_total");
  m.syncs_rejected = &registry.counter("cs2p_server_syncs_rejected_total");
  m.loop_iterations = &registry.counter("cs2p_server_loop_iterations_total");
  m.hellos_shed = &registry.counter("cs2p_server_hellos_shed_total");
  m.slow_reader_kicks =
      &registry.counter("cs2p_server_slow_reader_kicks_total");
  m.brownout_replies = &registry.counter("cs2p_server_brownout_replies_total");
  m.drain_rejections = &registry.counter("cs2p_server_drain_rejections_total");
  m.completion_hook_errors =
      &registry.counter("cs2p_server_completion_hook_errors_total");
  m.batched_predicts =
      &registry.counter("cs2p_server_batched_predicts_total");
  m.active_connections = &registry.gauge("cs2p_server_active_connections");
  m.live_sessions = &registry.gauge("cs2p_server_live_sessions");
  m.draining = &registry.gauge("cs2p_server_draining");
  m.brownout_level = &registry.gauge("cs2p_server_brownout_level");
  m.last_drain_seconds = &registry.gauge("cs2p_server_last_drain_seconds");
  m.max_write_queue = &registry.gauge("cs2p_server_max_write_queue_bytes");
  m.request_seconds =
      &registry.histogram("cs2p_server_request_seconds",
                          obs::default_latency_buckets_seconds());
  m.connection_seconds =
      &registry.histogram("cs2p_server_connection_seconds",
                          obs::default_duration_buckets_seconds());
  m.session_seconds =
      &registry.histogram("cs2p_server_session_seconds",
                          obs::default_duration_buckets_seconds());
  m.batch_size = &registry.histogram(
      "cs2p_server_batch_size",
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
  return m;
}

obs::Counter* PredictionServer::verb_counter(
    const Request& request) const noexcept {
  if (std::holds_alternative<HelloRequest>(request)) return m_.verb_hello;
  if (std::holds_alternative<ObserveRequest>(request)) return m_.verb_observe;
  if (std::holds_alternative<PredictRequest>(request)) return m_.verb_predict;
  if (std::holds_alternative<ByeRequest>(request)) return m_.verb_bye;
  if (std::holds_alternative<ModelRequest>(request)) return m_.verb_model;
  if (std::holds_alternative<StatsRequest>(request)) return m_.verb_stats;
  if (std::holds_alternative<SyncBeginRequest>(request) ||
      std::holds_alternative<SyncChunkRequest>(request) ||
      std::holds_alternative<SyncCommitRequest>(request) ||
      std::holds_alternative<SyncFetchRequest>(request))
    return m_.verb_sync;
  return m_.verb_invalid;
}

PredictionServer::PredictionServer(std::shared_ptr<const PredictorModel> model,
                                   std::uint16_t port)
    : PredictionServer(std::move(model), ServerConfig{}, port) {}

PredictionServer::PredictionServer(std::shared_ptr<const PredictorModel> model,
                                   ServerConfig config, std::uint16_t port)
    : model_(std::move(model)),
      config_(resolve_config(std::move(config))),
      metrics_(config_.metrics ? config_.metrics
                               : std::make_shared<obs::MetricsRegistry>()),
      m_(MetricHandles::create(*metrics_)),
      trace_(config_.trace),
      sessions_(SessionTableConfig{config_.session_shards,
                                   config_.session_ttl_ms,
                                   config_.evict_scan_budget},
                metrics_.get()) {
  if (!model_) throw std::invalid_argument("PredictionServer: null model");
  if (config_.max_connections == 0)
    throw std::invalid_argument("PredictionServer: max_connections must be > 0");
  auto [listener, bound_port] = listen_loopback(port);
  listener_ = std::move(listener);
  port_ = bound_port;
  // Non-blocking + poll: closing a listening fd does not wake a blocked
  // accept(2), so the accept loop must poll and re-check the stop flag.
  set_nonblocking(listener_);
  workers_.reserve(config_.io_threads);
  for (std::size_t i = 0; i < config_.io_threads; ++i) {
    auto worker = std::make_unique<Worker>();
    auto [wake_read, wake_write] = make_wake_pipe();
    worker->wake_read = std::move(wake_read);
    worker->wake_write = std::move(wake_write);
    worker->utilization_gauge = &metrics_->gauge(
        "cs2p_server_worker_utilization", {{"worker", std::to_string(i)}});
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_)
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

PredictionServer::~PredictionServer() { stop(); }

void PredictionServer::stop() {
  stopping_.store(true);
  // Serialize the teardown: std::thread::join from two threads racing each
  // other is undefined behaviour, so the whole shutdown runs under a lock
  // and every step is idempotent.
  std::scoped_lock stop_lock(stop_mutex_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.reset();
  // Workers notice stopping_ on their next wakeup and close every
  // connection they own (including undrained inbox handoffs) through the
  // one close path before exiting.
  for (auto& worker : workers_) wake_pipe_signal(worker->wake_write);
  for (auto& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
}

void PredictionServer::swap_model(std::shared_ptr<const PredictorModel> model) {
  if (!model) throw std::invalid_argument("PredictionServer: null model in swap");
  {
    std::scoped_lock lock(model_mutex_);
    model_ = std::move(model);
  }
  m_.swaps->inc();
  // The old model is NOT torn down here: any session entry created from it
  // still holds a reference, and releases it on BYE or TTL eviction.
}

std::shared_ptr<const PredictorModel> PredictionServer::current_model() const {
  std::scoped_lock lock(model_mutex_);
  return model_;
}

void PredictionServer::publish_snapshot(std::string snapshot_bytes) {
  std::shared_ptr<const std::string> published;
  std::uint64_t checksum = 0;
  if (!snapshot_bytes.empty()) {
    published = std::make_shared<const std::string>(std::move(snapshot_bytes));
    checksum = sync_checksum(*published);  // hashed once, served many times
  }
  std::scoped_lock lock(snapshot_mutex_);
  snapshot_ = std::move(published);
  snapshot_checksum_ = checksum;
}

std::shared_ptr<const std::string> PredictionServer::published_snapshot() const {
  std::scoped_lock lock(snapshot_mutex_);
  return snapshot_;
}

bool PredictionServer::should_shed(const Worker& worker) const noexcept {
  if (shed_override_.load(std::memory_order_relaxed)) return true;
  if (config_.shed_pending_replies > 0 &&
      worker.queued_replies.load(std::memory_order_relaxed) >=
          config_.shed_pending_replies)
    return true;
  if (config_.shed_utilization > 0.0 &&
      worker.utilization.load(std::memory_order_relaxed) >=
          config_.shed_utilization)
    return true;
  return false;
}

int PredictionServer::brownout_level() const noexcept {
  const int pinned = brownout_override_.load(std::memory_order_relaxed);
  if (pinned >= 0) return pinned;
  if (config_.brownout_enter_ticks <= 0) return 0;
  const int score = brownout_score_.load(std::memory_order_relaxed);
  if (score >= 3 * config_.brownout_enter_ticks) return 2;
  if (score >= config_.brownout_enter_ticks) return 1;
  return 0;
}

void PredictionServer::set_brownout_level(int level) noexcept {
  brownout_override_.store(level, std::memory_order_relaxed);
  m_.brownout_level->set(static_cast<double>(brownout_level()));
}

void PredictionServer::brownout_tick() {
  if (config_.brownout_enter_ticks <= 0 &&
      brownout_override_.load(std::memory_order_relaxed) < 0)
    return;
  bool pressure = false;
  for (const auto& worker : workers_)
    if (should_shed(*worker)) {
      pressure = true;
      break;
    }
  // Leaky integrator: pressure must be *sustained* to climb the ladder, and
  // one quiet tick starts climbing back down — brownout recovers as smoothly
  // as it engages.
  const int ceiling = std::max(1, 4 * config_.brownout_enter_ticks);
  int score = brownout_score_.load(std::memory_order_relaxed);
  int next;
  do {
    next = pressure ? std::min(score + 1, ceiling) : std::max(score - 1, 0);
  } while (!brownout_score_.compare_exchange_weak(score, next,
                                                  std::memory_order_relaxed));
  m_.brownout_level->set(static_cast<double>(brownout_level()));
}

void PredictionServer::begin_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  const auto now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          Clock::now().time_since_epoch())
                          .count();
  drain_started_us_.store(now_us, std::memory_order_release);
  m_.draining->set(1.0);
  if (config_.drain_session_ttl_ms > 0)
    sessions_.set_ttl_ms(
        std::min(config_.session_ttl_ms, config_.drain_session_ttl_ms));
  // Wake every worker: the drain TTL and the kDraining reply stamping take
  // effect on their next iteration, not at their next natural wakeup.
  for (auto& worker : workers_) wake_pipe_signal(worker->wake_write);
}

void PredictionServer::note_drain_progress() {
  if (!draining() || sessions_.size() != 0) return;
  if (drain_recorded_.exchange(true, std::memory_order_acq_rel)) return;
  const auto now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          Clock::now().time_since_epoch())
                          .count();
  const auto started = drain_started_us_.load(std::memory_order_acquire);
  m_.last_drain_seconds->set(static_cast<double>(now_us - started) / 1e6);
}

void PredictionServer::complete_session(std::uint64_t id,
                                        SessionTable::Entry& entry,
                                        std::string_view reason) {
  if (entry.created_at != Clock::time_point{}) {
    m_.session_seconds->observe(
        std::chrono::duration<double>(Clock::now() - entry.created_at)
            .count());
  }
  if (!config_.on_session_complete) return;
  CompletedSession completed;
  completed.session_id = id;
  completed.features = std::move(entry.features);
  completed.start_hour = entry.start_hour;
  completed.observations = std::move(entry.observations);
  completed.reason = reason;
  try {
    config_.on_session_complete(std::move(completed));
  } catch (const std::exception&) {
    // The trainer's problem stays the trainer's problem: the session is
    // already gone, the serve path moves on.
    m_.completion_hook_errors->inc();
  }
}

bool PredictionServer::wait_drained(int timeout_ms) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(std::max(0, timeout_ms));
  while (!drained()) {
    if (Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  note_drain_progress();
  return drained();
}

void PredictionServer::record_write_queue_depth(std::size_t bytes) noexcept {
  std::size_t seen = max_write_queue_.load(std::memory_order_relaxed);
  while (bytes > seen && !max_write_queue_.compare_exchange_weak(
                             seen, bytes, std::memory_order_relaxed)) {
  }
  if (bytes > seen) m_.max_write_queue->set(static_cast<double>(bytes));
}

void PredictionServer::reject_connection(const FdHandle& connection,
                                         WireErrorCode code,
                                         const std::string& message) {
  m_.rejected->inc();
  try {
    send_frame(connection,
               serialize_response(ErrorResponse{
                   code, message,
                   static_cast<std::uint32_t>(config_.retry_after_ms)}));
    // The client's request is sitting unread in our receive buffer, and
    // close(2) with unread data sends RST — which can destroy the rejection
    // frame before the peer reads it. Half-close our side, then drain the
    // socket for a bounded moment so the close is a clean FIN.
    ::shutdown(connection.get(), SHUT_WR);
    std::byte sink[256];
    for (int i = 0; i < 10 && wait_readable(connection, 10); ++i) {
      if (::recv(connection.get(), sink, sizeof(sink), 0) <= 0) break;
    }
  } catch (const std::exception&) {
    // Best-effort courtesy frame; the close below is the real rejection.
  }
}

void PredictionServer::accept_loop() {
  while (!stopping_.load()) {
    try {
      if (!wait_readable(listener_, /*timeout_ms=*/100)) continue;
    } catch (const std::exception&) {
      break;  // listener torn down
    }
    FdHandle connection = try_accept(listener_);
    if (!connection.valid()) continue;  // spurious wakeup or shutdown
    if (draining()) {
      // A draining replica takes no new connections at all: the rejection
      // frame carries the retry-after hint so the client tier lands the
      // session elsewhere immediately.
      m_.drain_rejections->inc();
      reject_connection(connection, WireErrorCode::kShuttingDown,
                        "server is draining, connect to another replica");
      continue;
    }
    if (active_connections_.load() >= config_.max_connections) {
      reject_connection(connection, WireErrorCode::kOverloaded,
                        "connection limit reached, try again later");
      continue;  // FdHandle destructor closes it
    }
    dispatch_connection(std::move(connection));
  }
}

void PredictionServer::dispatch_connection(FdHandle connection) {
  m_.connections->inc();
  m_.active_connections->set(
      static_cast<double>(active_connections_.fetch_add(1) + 1));
  try {
    set_nonblocking(connection);
  } catch (const std::exception&) {
    // Raced a peer reset between accept and fcntl: undo the accounting and
    // drop it — never hand a dead fd to a worker.
    m_.active_connections->set(
        static_cast<double>(active_connections_.fetch_sub(1) - 1));
    return;
  }
  if (config_.so_sndbuf > 0) {
    // Best-effort: a small kernel send buffer makes the user-space write
    // queue (and so the backpressure machinery) observable at test scales.
    const int size = config_.so_sndbuf;
    ::setsockopt(connection.get(), SOL_SOCKET, SO_SNDBUF, &size, sizeof(size));
  }
  Connection conn;
  conn.fd = std::move(connection);
  conn.opened_at = Clock::now();
  conn.last_activity = conn.opened_at;
  conn.last_write_progress = conn.opened_at;
  Worker& worker =
      *workers_[next_worker_.fetch_add(1, std::memory_order_relaxed) %
                workers_.size()];
  {
    std::scoped_lock lock(worker.inbox_mutex);
    worker.inbox.push_back(std::move(conn));
  }
  wake_pipe_signal(worker.wake_write);
}

void PredictionServer::adopt_inbox(Worker& worker) {
  std::vector<Connection> adopted;
  {
    std::scoped_lock lock(worker.inbox_mutex);
    adopted.swap(worker.inbox);
  }
  for (auto& conn : adopted) {
    const int fd = conn.fd.get();
    worker.connections.emplace(fd, std::move(conn));
  }
}

void PredictionServer::close_connection(Worker& worker, Connection& conn,
                                        bool idle_timed_out) {
  if (idle_timed_out) m_.idle_timeouts->inc();
  // Replies queued on a dying connection will never flush; release their
  // contribution to the worker's pending-work depth.
  if (!conn.pending.empty())
    worker.queued_replies.fetch_sub(conn.pending.size(),
                                    std::memory_order_relaxed);
  conn.pending.clear();
  m_.connection_seconds->observe(
      std::chrono::duration<double>(Clock::now() - conn.opened_at).count());
  m_.active_connections->set(
      static_cast<double>(active_connections_.fetch_sub(1) - 1));
  conn.fd.reset();
}

void PredictionServer::worker_loop(Worker& worker) {
  std::vector<pollfd> pollfds;
  std::vector<std::pair<int, short>> ready;  // fd + revents this iteration
  std::vector<int> expired;   // fds past their idle or stall deadline
  auto next_evict = Clock::now();
  auto iter_start = Clock::now();
  const bool leads_ticks = !workers_.empty() && workers_[0].get() == &worker;
  while (true) {
    adopt_inbox(worker);
    const bool stopping = stopping_.load();
    if (stopping) {
      for (auto& [fd, conn] : worker.connections)
        close_connection(worker, conn, /*idle_timed_out=*/false);
      worker.connections.clear();
      // One last inbox sweep: a connection dispatched after our previous
      // adopt still gets the close-path accounting.
      adopt_inbox(worker);
      if (worker.connections.empty()) break;
      continue;
    }

    pollfds.clear();
    pollfds.push_back({worker.wake_read.get(), POLLIN, 0});
    for (const auto& [fd, conn] : worker.connections) {
      // Backpressure lives here: a connection with queued reply bytes wants
      // POLLOUT; one whose queue is over budget stops being read until the
      // flush brings it back under (the slow reader throttles itself).
      short events = 0;
      const std::size_t queued = conn.write_buffer.size() - conn.write_pos;
      if (queued > 0) events |= POLLOUT;
      if (queued <= config_.write_budget_bytes) events |= POLLIN;
      pollfds.push_back({fd, events, 0});
    }

    int wait_ms = kMaxPollWaitMs;
    if (config_.idle_timeout_ms > 0 && !worker.connections.empty()) {
      auto nearest = Clock::time_point::max();
      for (const auto& [fd, conn] : worker.connections)
        nearest = std::min(nearest, conn.last_activity);
      const auto deadline =
          nearest + std::chrono::milliseconds(config_.idle_timeout_ms);
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      wait_ms = std::clamp(static_cast<int>(remaining.count()), 0,
                           kMaxPollWaitMs);
    }
    const auto poll_start = Clock::now();
    const int rc = ::poll(pollfds.data(), pollfds.size(), wait_ms);
    const auto poll_end = Clock::now();
    m_.loop_iterations->inc();
    if (rc < 0 && errno != EINTR && errno != EAGAIN) break;  // should not happen

    // Utilization EWMA: the busy fraction of this loop iteration (everything
    // that was not waiting inside poll). Admission control reads it.
    {
      const auto total = poll_end - iter_start;
      const auto waited = poll_end - poll_start;
      double busy = 0.0;
      if (total.count() > 0) {
        busy = 1.0 - std::chrono::duration<double>(waited).count() /
                         std::chrono::duration<double>(total).count();
        busy = std::clamp(busy, 0.0, 1.0);
      }
      const double prev = worker.utilization.load(std::memory_order_relaxed);
      worker.utilization.store(
          prev + kUtilizationAlpha * (busy - prev), std::memory_order_relaxed);
      iter_start = poll_end;
    }

    if (pollfds[0].revents != 0) wake_pipe_drain(worker.wake_read);
    ready.clear();
    for (std::size_t i = 1; i < pollfds.size(); ++i)
      if (pollfds[i].revents != 0)
        ready.emplace_back(pollfds[i].fd, pollfds[i].revents);
    for (const auto& [fd, revents] : ready) {
      const auto it = worker.connections.find(fd);
      if (it == worker.connections.end()) continue;
      bool keep = false;
      try {
        keep = handle_io(worker, it->second, revents);
      } catch (const std::exception&) {
        // Connection-level failure (reset, desynced framing): drop the
        // connection, keep serving others.
        keep = false;
      }
      if (!keep) {
        close_connection(worker, it->second, /*idle_timed_out=*/false);
        worker.connections.erase(it);
      }
    }

    // Everything readable this wakeup has been pulled into read buffers;
    // drain the complete frames in batched rounds (DESIGN.md §16).
    run_batch_rounds(worker);

    if (config_.idle_timeout_ms > 0) {
      const auto now = Clock::now();
      const auto deadline =
          now - std::chrono::milliseconds(config_.idle_timeout_ms);
      expired.clear();
      for (const auto& [fd, conn] : worker.connections)
        if (conn.last_activity < deadline) expired.push_back(fd);
      for (const int fd : expired) {
        const auto it = worker.connections.find(fd);
        close_connection(worker, it->second, /*idle_timed_out=*/true);
        worker.connections.erase(it);
      }
    }

    if (config_.write_stall_timeout_ms > 0) {
      // Slow-reader kick: queued replies whose flush made zero progress past
      // the stall deadline mean the peer stopped reading — reclaim the
      // buffer and the slot instead of carrying the connection forever.
      const auto now = Clock::now();
      const auto stall_deadline =
          now - std::chrono::milliseconds(config_.write_stall_timeout_ms);
      expired.clear();
      for (const auto& [fd, conn] : worker.connections)
        if (conn.write_pos < conn.write_buffer.size() &&
            conn.last_write_progress < stall_deadline)
          expired.push_back(fd);
      for (const int fd : expired) {
        const auto it = worker.connections.find(fd);
        m_.slow_reader_kicks->inc();
        close_connection(worker, it->second, /*idle_timed_out=*/false);
        worker.connections.erase(it);
      }
    }

    const auto now = Clock::now();
    if (now >= next_evict) {
      next_evict = now + kEvictTickInterval;
      const auto stats = sessions_.evict_tick(
          now, [this](std::uint64_t id, SessionTable::Entry& entry) {
            if (trace_ && entry.traced)
              trace_->emit("evict", id,
                           {{"ttl_ms", static_cast<std::int64_t>(
                                           sessions_.ttl_ms())}});
            m_.evicted->inc();
            complete_session(id, entry, "evict");
          });
      if (stats.evicted > 0)
        m_.live_sessions->set(static_cast<double>(sessions_.size()));
      if (leads_ticks) {
        // One worker owns the process-wide control ticks so the brownout
        // integrator steps once per interval, not once per worker.
        brownout_tick();
        for (auto& w : workers_)
          if (w->utilization_gauge != nullptr)
            w->utilization_gauge->set(
                w->utilization.load(std::memory_order_relaxed));
      }
      if (draining()) note_drain_progress();
    }
  }
}

bool PredictionServer::handle_io(Worker& worker, Connection& conn,
                                 short revents) {
  if ((revents & POLLOUT) != 0) {
    if (!flush_write(worker, conn)) return false;  // peer gone mid-reply
    // The flush may have pulled the queue back under budget; frames read
    // before backpressure engaged are still sitting in read_buffer and get
    // no further POLLIN (the kernel side is already drained). The batch
    // rounds after the ready sweep re-scan every connection, so they resume
    // automatically — a slow-then-recovering reader cannot wedge.
  }
  if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
    // Respect backpressure even when poll raced a flush: no reads while the
    // queue is over budget.
    const std::size_t queued = conn.write_buffer.size() - conn.write_pos;
    if (queued > config_.write_budget_bytes) return true;
    std::byte chunk[kReadChunkBytes];
    const auto n = recv_some(conn.fd, chunk);
    if (!n.has_value()) return false;  // clean EOF
    if (*n == 0) return true;          // spurious wakeup
    conn.read_buffer.append(reinterpret_cast<const char*>(chunk), *n);
    // Frames are consumed by run_batch_rounds after the ready sweep, in the
    // same loop iteration — reading and handling are decoupled so frames
    // arriving on many connections in one poll wakeup batch together.
  }
  return true;
}

bool PredictionServer::extract_frame(Connection& conn, std::string& payload) {
  if (conn.state == ConnState::kReadingHeader) {
    if (conn.read_buffer.size() < kFrameHeaderBytes) return false;
    // A malformed header (wrong version, absurd length) desyncs the
    // stream: drop the connection, exactly like the blocking server did.
    conn.body_size = parse_frame_header(conn.read_buffer);
    conn.read_buffer.erase(0, kFrameHeaderBytes);
    conn.state = ConnState::kReadingBody;
  }
  if (conn.read_buffer.size() < conn.body_size) return false;
  payload = conn.read_buffer.substr(0, conn.body_size);
  conn.read_buffer.erase(0, conn.body_size);
  conn.state = ConnState::kReadingHeader;
  // A complete frame is the activity signal for the idle sweep — a peer
  // trickling header bytes never refreshes its deadline (slow-header
  // folding, DESIGN.md §14).
  conn.last_activity = Clock::now();
  // Count before replying: once the client sees the response, the request
  // must already be visible in requests_handled() — and a reply can never
  // outrun its request (the scrape invariant of §11).
  m_.requests->inc();
  return true;
}

void PredictionServer::run_batch_rounds(Worker& worker) {
  // Reused round scratch: one worker per thread, so thread_local is exactly
  // per-worker state, and the steady-state serve path allocates nothing.
  thread_local std::vector<RoundFrame> round;
  thread_local std::vector<int> dead;
  while (!worker.connections.empty()) {
    round.clear();
    dead.clear();
    for (auto& [fd, conn] : worker.connections) {
      if (conn.read_buffer.empty() && conn.state == ConnState::kReadingHeader)
        continue;
      // Pipelined serving with backpressure: a connection stops contributing
      // frames once its write queue crosses the budget, so the queue can
      // exceed it by at most the one reply that crossed — the bound
      // max_write_queue_bytes() certifies, unchanged by batching.
      if (conn.write_buffer.size() - conn.write_pos >
          config_.write_budget_bytes)
        continue;
      RoundFrame frame;
      frame.fd = fd;
      try {
        if (!extract_frame(conn, frame.payload)) continue;
      } catch (const std::exception&) {
        dead.push_back(fd);  // desynced framing: drop the connection
        continue;
      }
      frame.reply.t_recv = Clock::now();
      round.push_back(std::move(frame));
    }
    for (const int fd : dead) {
      const auto it = worker.connections.find(fd);
      if (it == worker.connections.end()) continue;
      close_connection(worker, it->second, /*idle_timed_out=*/false);
      worker.connections.erase(it);
    }
    if (round.empty()) break;
    handle_round(worker, round);
  }
}

void PredictionServer::handle_round(Worker& worker,
                                    std::vector<RoundFrame>& round) {
  // Phase 1: parse every frame. Errors short-circuit to a reply here; the
  // accounting (verb counters, parse_us timing) matches the old inline path
  // exactly.
  for (RoundFrame& frame : round) {
    try {
      frame.request = parse_request(frame.payload);
      frame.reply.parse_us = elapsed_us(frame.reply.t_recv, Clock::now());
      verb_counter(frame.request)->inc();
      frame.parsed = true;
    } catch (const ProtocolError& e) {
      m_.verb_invalid->inc();
      frame.response = ErrorResponse{WireErrorCode::kBadRequest, e.what()};
      frame.handled = true;
    } catch (const std::exception& e) {
      frame.response = ErrorResponse{WireErrorCode::kInternal, e.what()};
      frame.handled = true;
    }
  }

  // Phase 2: classify. OBSERVE and PREDICT are batchable when the server is
  // in its primary serving mode; under brownout, shutdown, or for a session
  // id appearing twice in one round (sequential dependence — core/batch.cpp)
  // the frame takes the scalar path, which is always semantically complete.
  thread_local std::vector<std::uint64_t> batch_ids;
  batch_ids.clear();
  const bool can_batch = !stopping_.load() && brownout_level() == 0;
  if (can_batch) {
    for (RoundFrame& frame : round) {
      if (!frame.parsed || frame.handled) continue;
      std::uint64_t session = 0;
      int kind = 0;
      if (const auto* observe = std::get_if<ObserveRequest>(&frame.request)) {
        session = observe->session_id;
        kind = 1;
      } else if (const auto* predict =
                     std::get_if<PredictRequest>(&frame.request)) {
        session = predict->session_id;
        kind = 2;
      } else {
        continue;
      }
      if (std::find(batch_ids.begin(), batch_ids.end(), session) !=
          batch_ids.end())
        continue;  // duplicate in this round: scalar keeps the chaining
      batch_ids.push_back(session);
      frame.batch_kind = kind;
      frame.batch_session = session;
    }
  }

  // Phase 3: scalar frames through the unchanged handle() path (HELLO, BYE,
  // SYNC, STATS, MODEL, plus any OBSERVE/PREDICT the batch declined).
  for (RoundFrame& frame : round) {
    if (frame.handled || frame.batch_kind != 0) continue;
    const auto it = worker.connections.find(frame.fd);
    if (it == worker.connections.end()) continue;
    const auto t_handle = Clock::now();
    try {
      frame.response = handle(frame.request, worker, it->second, frame.reply.info);
    } catch (const ProtocolError& e) {
      m_.verb_invalid->inc();
      frame.response = ErrorResponse{WireErrorCode::kBadRequest, e.what()};
    } catch (const std::exception& e) {
      frame.response = ErrorResponse{WireErrorCode::kInternal, e.what()};
    }
    frame.reply.handle_us = elapsed_us(t_handle, Clock::now());
    frame.handled = true;
  }

  // Phase 4: the batched frames. One multi-shard lock acquisition covers
  // lookup, validation, the engine's batch advance/predict, and reply
  // composition — the per-frame semantics (validation order, last_used
  // refresh, history capture, serve flags read after the advance, degraded
  // accounting) replicate handle()'s scalar OBSERVE/PREDICT exactly.
  if (!batch_ids.empty()) {
    thread_local std::vector<RoundFrame*> batch_frames;
    thread_local std::vector<ObserveBatchItem> observe_items;
    thread_local std::vector<std::size_t> observe_frames;
    thread_local std::vector<SessionTable::Entry*> observe_entries;
    thread_local std::vector<PredictBatchItem> predict_items;
    thread_local std::vector<std::size_t> predict_frames;
    thread_local std::vector<SessionTable::Entry*> predict_entries;
    batch_frames.clear();
    for (RoundFrame& frame : round)
      if (frame.batch_kind != 0) batch_frames.push_back(&frame);

    const auto t_batch = Clock::now();
    BatchStats stats;
    sessions_.with_sessions(
        batch_ids, [&](std::span<SessionTable::Entry* const> entries) {
          observe_items.clear();
          observe_frames.clear();
          observe_entries.clear();
          predict_items.clear();
          predict_frames.clear();
          predict_entries.clear();
          const auto now = Clock::now();
          for (std::size_t i = 0; i < batch_frames.size(); ++i) {
            RoundFrame& frame = *batch_frames[i];
            SessionTable::Entry* entry = entries[i];
            RequestInfo& info = frame.reply.info;
            info.session_id = frame.batch_session;
            if (entry != nullptr) info.traced = entry->traced;
            if (frame.batch_kind == 1) {
              info.event = "observe";
              const auto& observe = std::get<ObserveRequest>(frame.request);
              const double w = observe.throughput_mbps;
              // Validate before touching the predictor (one NaN poisons the
              // forward filter); an invalid sample outranks an unknown
              // session, and leaves last_used alone — both exactly as the
              // scalar path decides.
              if (!(std::isfinite(w) && w >= 0.0 &&
                    w <= config_.max_sample_mbps)) {
                frame.response = ErrorResponse{
                    WireErrorCode::kInvalidSample,
                    "throughput sample must be finite, non-negative and <= " +
                        std::to_string(config_.max_sample_mbps)};
                frame.handled = true;
                continue;
              }
              if (entry == nullptr) {
                frame.response = ErrorResponse{WireErrorCode::kUnknownSession,
                                               "unknown session"};
                frame.handled = true;
                continue;
              }
              entry->last_used = now;
              if (config_.on_session_complete &&
                  entry->observations.size() < config_.session_history_cap)
                entry->observations.push_back(w);
              observe_items.push_back({entry->predictor.get(), w, 0.0, false});
              observe_frames.push_back(i);
              observe_entries.push_back(entry);
            } else {
              info.event = "predict";
              const auto& predict = std::get<PredictRequest>(frame.request);
              if (entry == nullptr) {
                frame.response = ErrorResponse{WireErrorCode::kUnknownSession,
                                               "unknown session"};
                frame.handled = true;
                continue;
              }
              if (predict.steps_ahead == 0) {
                frame.response = ErrorResponse{WireErrorCode::kBadRequest,
                                               "steps_ahead must be >= 1"};
                frame.handled = true;
                continue;
              }
              entry->last_used = now;
              predict_items.push_back(
                  {entry->predictor.get(), predict.steps_ahead, 0.0, false});
              predict_frames.push_back(i);
              predict_entries.push_back(entry);
            }
          }
          if (!observe_items.empty()) {
            const BatchStats s = Cs2pEngine::observe_batch(observe_items);
            stats.batched += s.batched;
            stats.scalar += s.scalar;
          }
          if (!predict_items.empty()) {
            const BatchStats s = Cs2pEngine::predict_batch(predict_items);
            stats.batched += s.batched;
            stats.scalar += s.scalar;
          }
          const auto compose = [&](RoundFrame& frame,
                                   const SessionTable::Entry& entry,
                                   double mbps) {
            PredictionResponse response;
            // serve_flags() after the advance, before this reply — the same
            // point in the session's life the scalar path reads it.
            response.flags = entry.predictor->serve_flags();
            response.mbps = mbps;
            if (draining()) response.flags |= serve_flags::kDraining;
            if ((response.flags & ~serve_flags::kDraining) !=
                serve_flags::kPrimary)
              m_.degraded_replies->inc();
            RequestInfo& info = frame.reply.info;
            info.flags = response.flags;
            info.mbps = response.mbps;
            info.log_likelihood = entry.predictor->last_log_likelihood();
            frame.response = response;
            frame.handled = true;
          };
          for (std::size_t k = 0; k < observe_items.size(); ++k)
            compose(*batch_frames[observe_frames[k]], *observe_entries[k],
                    observe_items[k].prediction);
          for (std::size_t k = 0; k < predict_items.size(); ++k)
            compose(*batch_frames[predict_frames[k]], *predict_entries[k],
                    predict_items[k].prediction);
        });
    const std::size_t width = observe_items.size() + predict_items.size();
    if (width > 0) {
      m_.batch_size->observe(static_cast<double>(width));
      m_.batched_predicts->inc(stats.batched);
      // Attribute the batch's wall time evenly: per-reply handle_us stays
      // meaningful in traces without per-frame clock reads inside the lock.
      const std::uint64_t per_frame =
          elapsed_us(t_batch, Clock::now()) / width;
      for (const std::size_t i : observe_frames)
        batch_frames[i]->reply.handle_us = per_frame;
      for (const std::size_t i : predict_frames)
        batch_frames[i]->reply.handle_us = per_frame;
    }
  }

  // Phase 5: emit, in round order. Reply framing, error accounting, write
  // backpressure, and the opportunistic flush are the old per-frame tail.
  for (RoundFrame& frame : round) {
    const auto it = worker.connections.find(frame.fd);
    if (it == worker.connections.end()) continue;  // closed earlier this round
    Connection& conn = it->second;
    const auto* err = std::get_if<ErrorResponse>(&frame.response);
    frame.reply.is_error = err != nullptr;
    frame.reply.error_code = err != nullptr ? wire_error_code_name(err->code)
                                            : std::string_view{};
    if (frame.reply.is_error) m_.error_replies->inc();
    if (conn.pending.empty()) conn.last_write_progress = Clock::now();
    conn.write_buffer += encode_frame(serialize_response(frame.response));
    frame.reply.end_offset = conn.write_buffer.size();
    conn.pending.push_back(std::move(frame.reply));
    worker.queued_replies.fetch_add(1, std::memory_order_relaxed);
    record_write_queue_depth(conn.write_buffer.size() - conn.write_pos);
    // Opportunistic flush: most replies go straight to the kernel without a
    // POLLOUT round-trip, and the queue only builds when the peer is slow.
    bool keep = false;
    try {
      keep = flush_write(worker, conn);
    } catch (const std::exception&) {
      keep = false;
    }
    if (!keep) {
      close_connection(worker, conn, /*idle_timed_out=*/false);
      worker.connections.erase(it);
    }
  }
}

bool PredictionServer::flush_write(Worker& worker, Connection& conn) {
  while (conn.write_pos < conn.write_buffer.size()) {
    const auto remaining = std::span(conn.write_buffer).subspan(conn.write_pos);
    const std::size_t n = send_some(conn.fd, std::as_bytes(remaining));
    if (n == 0) break;  // kernel buffer full; wait for POLLOUT
    conn.write_pos += n;
    conn.last_write_progress = Clock::now();
  }
  complete_flushed_replies(worker, conn);
  if (conn.write_pos >= conn.write_buffer.size()) {
    // Fully flushed: reclaim the buffer instead of letting offsets grow
    // without bound over the connection's lifetime.
    conn.write_buffer.clear();
    conn.write_pos = 0;
  }
  return true;
}

void PredictionServer::complete_flushed_replies(Worker& worker,
                                                Connection& conn) {
  while (!conn.pending.empty() &&
         conn.pending.front().end_offset <= conn.write_pos) {
    const PendingReply reply = std::move(conn.pending.front());
    conn.pending.pop_front();
    worker.queued_replies.fetch_sub(1, std::memory_order_relaxed);
    m_.replies->inc();
    const auto t_done = Clock::now();
    conn.last_activity = t_done;
    m_.request_seconds->observe(
        std::chrono::duration<double>(t_done - reply.t_recv).count());
    const RequestInfo& info = reply.info;
    if (trace_ && info.traced) {
      const std::uint64_t send_us = elapsed_us(reply.t_recv, t_done) -
                                    reply.parse_us - reply.handle_us;
      if (reply.is_error) {
        trace_->emit("reply-error", info.session_id,
                     {{"verb", info.event},
                      {"code", reply.error_code},
                      {"parse_us", reply.parse_us},
                      {"handle_us", reply.handle_us},
                      {"send_us", send_us}});
      } else if (info.event == "hello") {
        trace_->emit("hello", info.session_id,
                     {{"cluster", std::string_view(info.cluster_label)},
                      {"initial_mbps", info.mbps},
                      {"parse_us", reply.parse_us},
                      {"handle_us", reply.handle_us},
                      {"send_us", send_us}});
      } else {
        // observe / predict / bye: flags + prediction + the filter's
        // predictive log-likelihood (NaN serializes as null when absent).
        trace_->emit(
            info.event, info.session_id,
            {{"flags", info.flags},
             {"mbps", info.mbps},
             {"ll", info.log_likelihood.value_or(
                        std::numeric_limits<double>::quiet_NaN())},
             {"parse_us", reply.parse_us},
             {"handle_us", reply.handle_us},
             {"send_us", send_us}});
      }
    }
  }
}

PredictionResponse PredictionServer::make_prediction_response(
    const SessionPredictor& predictor, unsigned steps_ahead) {
  // Read the flags before predicting: serve_flags() describes why the *next*
  // prediction will be served the way it is, and must match the value on the
  // same reply.
  PredictionResponse response;
  response.flags = predictor.serve_flags();
  // Brownout ladder (DESIGN.md §14): level 1 degrades sessions the
  // guardrails already doubt (SUSPECT tier), level 2 degrades every session
  // with a cheap path. Predictors without one keep serving primary.
  const int level = brownout_level();
  std::optional<double> cheap;
  if (level >= 2 || (level >= 1 && predictor.suspect()))
    cheap = predictor.predict_brownout(steps_ahead);
  if (cheap.has_value()) {
    response.mbps = *cheap;
    response.flags |= serve_flags::kBrownout | serve_flags::kDegraded;
    m_.brownout_replies->inc();
  } else {
    response.mbps = predictor.predict(steps_ahead);
  }
  if (draining()) response.flags |= serve_flags::kDraining;
  // kDraining alone is planned-migration housekeeping, not a degraded
  // answer — the health signal counts everything else.
  if ((response.flags & ~serve_flags::kDraining) != serve_flags::kPrimary)
    m_.degraded_replies->inc();
  return response;
}

Response PredictionServer::handle(const Request& request, Worker& worker,
                                  Connection& conn, RequestInfo& info) {
  if (stopping_.load())
    return ErrorResponse{WireErrorCode::kShuttingDown, "server is stopping"};

  if (std::holds_alternative<SyncBeginRequest>(request) ||
      std::holds_alternative<SyncChunkRequest>(request) ||
      std::holds_alternative<SyncCommitRequest>(request) ||
      std::holds_alternative<SyncFetchRequest>(request)) {
    info.event = "sync";
    return handle_sync(request, conn.sync);
  }

  if (const auto* hello = std::get_if<HelloRequest>(&request)) {
    info.event = "hello";
    // Admission control gates session creation, not the verbs of sessions
    // already admitted: a draining or shedding server keeps serving what it
    // owns and turns away only new work, with a retry-after hint so the
    // client tier backs off instead of hot-spinning replays.
    if (draining()) {
      m_.drain_rejections->inc();
      return ErrorResponse{WireErrorCode::kShuttingDown,
                           "server is draining, connect to another replica",
                           static_cast<std::uint32_t>(config_.retry_after_ms)};
    }
    if (should_shed(worker)) {
      m_.hellos_shed->inc();
      return ErrorResponse{WireErrorCode::kOverloaded,
                           "server is shedding new sessions, retry later",
                           static_cast<std::uint32_t>(config_.retry_after_ms)};
    }
    if (!std::isfinite(hello->start_hour))
      return ErrorResponse{WireErrorCode::kBadRequest,
                           "start_hour must be finite"};
    SessionContext context;
    context.features = hello->features;
    context.start_hour = hello->start_hour;
    // Snapshot the published model once: the session is created from it and
    // pins it, so a concurrent swap_model() cannot pull the engine out from
    // under the predictor's internal references.
    auto model = current_model();
    auto predictor = model->make_session(context);

    SessionResponse response;
    response.initial_mbps = predictor->predict_initial().value_or(0.0);
    // Cluster metadata is predictor-specific; expose what we can.
    response.cluster_label = model->name();

    const auto now = Clock::now();
    response.session_id = sessions_.emplace([&](std::uint64_t id) {
      info.session_id = id;
      info.traced = trace_ && trace_->should_sample(id);
      SessionTable::Entry entry;
      entry.predictor = std::move(predictor);
      entry.owner = std::move(model);
      entry.last_used = now;
      entry.traced = info.traced;
      entry.created_at = now;
      if (config_.on_session_complete) {
        // Keep the identity + history the completion hook will need; when
        // no hook is installed the entry stays as lean as before.
        entry.features = context.features;
        entry.start_hour = context.start_hour;
      }
      return entry;
    });
    info.mbps = response.initial_mbps;
    info.cluster_label = response.cluster_label;
    m_.live_sessions->set(static_cast<double>(sessions_.size()));
    return response;
  }

  if (const auto* observe = std::get_if<ObserveRequest>(&request)) {
    info.event = "observe";
    info.session_id = observe->session_id;
    const double w = observe->throughput_mbps;
    // Validate before touching the predictor: one NaN in the forward filter
    // poisons every belief state after it.
    // Zero is allowed: a fully stalled epoch is a real measurement (and the
    // dataset loader accepts it too).
    const bool valid =
        std::isfinite(w) && w >= 0.0 && w <= config_.max_sample_mbps;
    Response out = ErrorResponse{WireErrorCode::kUnknownSession,
                                 "unknown session"};
    sessions_.with_session(observe->session_id, [&](SessionTable::Entry& entry) {
      info.traced = entry.traced;
      if (!valid) return;  // leave last_used alone; the error wins below
      entry.last_used = Clock::now();
      entry.predictor->observe(w);
      if (config_.on_session_complete &&
          entry.observations.size() < config_.session_history_cap)
        entry.observations.push_back(w);
      const PredictionResponse response =
          make_prediction_response(*entry.predictor, 1);
      info.flags = response.flags;
      info.mbps = response.mbps;
      info.log_likelihood = entry.predictor->last_log_likelihood();
      out = response;
    });
    if (!valid)
      return ErrorResponse{WireErrorCode::kInvalidSample,
                           "throughput sample must be finite, non-negative and <= " +
                               std::to_string(config_.max_sample_mbps)};
    return out;
  }

  if (const auto* predict = std::get_if<PredictRequest>(&request)) {
    info.event = "predict";
    info.session_id = predict->session_id;
    Response out = ErrorResponse{WireErrorCode::kUnknownSession,
                                 "unknown session"};
    sessions_.with_session(predict->session_id, [&](SessionTable::Entry& entry) {
      info.traced = entry.traced;
      if (predict->steps_ahead == 0) {
        out = ErrorResponse{WireErrorCode::kBadRequest,
                            "steps_ahead must be >= 1"};
        return;
      }
      entry.last_used = Clock::now();
      const PredictionResponse response =
          make_prediction_response(*entry.predictor, predict->steps_ahead);
      info.flags = response.flags;
      info.mbps = response.mbps;
      info.log_likelihood = entry.predictor->last_log_likelihood();
      out = response;
    });
    return out;
  }

  if (const auto* bye = std::get_if<ByeRequest>(&request)) {
    info.event = "bye";
    info.session_id = bye->session_id;
    bool traced = false;
    // Same teardown tail as eviction (complete_session): BYE is just the
    // polite way into the unified completion path.
    if (sessions_.erase(
            bye->session_id,
            [this](std::uint64_t id, SessionTable::Entry& entry) {
              complete_session(id, entry, "bye");
            },
            &traced))
      info.traced = traced;
    m_.live_sessions->set(static_cast<double>(sessions_.size()));
    // The last BYE is usually what completes a drain — record it now rather
    // than waiting for the next evict tick.
    if (draining()) note_drain_progress();
    return OkResponse{};
  }

  if (std::holds_alternative<StatsRequest>(request)) {
    info.event = "stats";
    // Refresh the point-in-time gauge before scraping so a scrape during a
    // quiet period still reports the live table, not the last mutation.
    m_.live_sessions->set(static_cast<double>(sessions_.size()));
    StatsResponse response;
    response.exposition_version = obs::kMetricsExpositionVersion;
    response.exposition = metrics_->scrape();
    // The exposition must fit one frame. Cut at a line boundary and mark the
    // cut, so a truncated scrape still parses and is visibly partial.
    constexpr std::string_view kTruncated = "# cs2p_scrape_truncated 1\n";
    const std::size_t budget = kMaxFrameBytes - 64;  // frame + STATS header
    if (response.exposition.size() > budget) {
      const std::size_t cut =
          response.exposition.rfind('\n', budget - kTruncated.size());
      response.exposition.resize(cut == std::string::npos ? 0 : cut + 1);
      response.exposition += kTruncated;
    }
    return response;
  }

  if (const auto* model = std::get_if<ModelRequest>(&request)) {
    info.event = "model";
    SessionContext context;
    context.features = model->features;
    context.start_hour = model->start_hour;
    const auto served = current_model();
    const auto downloadable = served->downloadable_model(context);
    if (!downloadable)
      return ErrorResponse{WireErrorCode::kUnsupported,
                           "model download unsupported by " + served->name()};
    ModelResponse response;
    response.initial_mbps = downloadable->initial_mbps;
    response.used_global_model = downloadable->used_global_model;
    response.serialized_hmm = serialize_hmm(downloadable->hmm);
    return response;
  }
  return ErrorResponse{WireErrorCode::kBadRequest, "unhandled request"};
}

Response PredictionServer::handle_sync(const Request& request,
                                       SyncStaging& staging) {
  const auto reject = [&](const std::string& why) -> Response {
    staging = SyncStaging{};
    m_.syncs_rejected->inc();
    return ErrorResponse{WireErrorCode::kSyncRejected, why};
  };

  if (const auto* begin = std::get_if<SyncBeginRequest>(&request)) {
    if (!config_.sync_apply)
      return reject("this replica does not accept SYNC");
    // A draining replica is on its way out: starting a shipment it may die
    // in the middle of helps nobody, so new pushes are cleanly refused. A
    // shipment staged BEFORE the drain began may still commit — the commit
    // path below is atomic (verify, decode, swap) so the accepted model is
    // never torn, drained or not.
    if (draining()) {
      m_.drain_rejections->inc();
      return reject("replica is draining, push to another replica");
    }
    if (begin->total_bytes == 0)
      return reject("snapshot must not be empty");
    if (begin->total_bytes > config_.max_sync_bytes)
      return reject("snapshot exceeds max_sync_bytes (" +
                    std::to_string(config_.max_sync_bytes) + ")");
    // A BEGIN while a shipment is staged restarts it — this is how a trainer
    // recovers from its own mid-push reconnect without a new connection.
    staging = SyncStaging{};
    staging.active = true;
    staging.expected_bytes = begin->total_bytes;
    staging.expected_checksum = begin->checksum;
    staging.buffer.reserve(begin->total_bytes);
    return OkResponse{};
  }

  if (const auto* chunk = std::get_if<SyncChunkRequest>(&request)) {
    if (!staging.active) return reject("no SYNC in progress");
    if (staging.buffer.size() + chunk->data.size() > staging.expected_bytes)
      return reject("more bytes than SYNCBEGIN declared");
    staging.buffer += chunk->data;
    return OkResponse{};
  }

  if (std::holds_alternative<SyncCommitRequest>(request)) {
    if (!staging.active) return reject("no SYNC in progress");
    if (staging.buffer.size() != staging.expected_bytes)
      return reject("staged " + std::to_string(staging.buffer.size()) +
                    " bytes, SYNCBEGIN declared " +
                    std::to_string(staging.expected_bytes));
    // Byte-for-byte verification against the declared checksum before the
    // decode ever runs: a corrupt snapshot never reaches the swap.
    if (sync_checksum(staging.buffer) != staging.expected_checksum)
      return reject("snapshot checksum mismatch");
    std::shared_ptr<const PredictorModel> model;
    try {
      model = config_.sync_apply(staging.buffer);
    } catch (const std::exception& e) {
      return reject(std::string("snapshot rejected: ") + e.what());
    }
    if (!model) return reject("snapshot rejected by this replica");
    swap_model(std::move(model));
    publish_snapshot(staging.buffer);  // re-serve what we accepted
    staging = SyncStaging{};
    m_.syncs_applied->inc();
    return OkResponse{};
  }

  if (const auto* fetch = std::get_if<SyncFetchRequest>(&request)) {
    std::shared_ptr<const std::string> snapshot;
    std::uint64_t checksum = 0;
    {
      std::scoped_lock lock(snapshot_mutex_);
      snapshot = snapshot_;
      checksum = snapshot_checksum_;
    }
    if (!snapshot)
      return ErrorResponse{WireErrorCode::kUnsupported,
                           "no snapshot published on this replica"};
    if (fetch->offset >= snapshot->size())
      return ErrorResponse{WireErrorCode::kBadRequest,
                           "offset past end of snapshot"};
    SnapshotChunkResponse response;
    response.total_bytes = snapshot->size();
    response.checksum = checksum;
    response.offset = fetch->offset;
    response.data = snapshot->substr(fetch->offset, kSyncChunkBytes);
    return response;
  }
  return ErrorResponse{WireErrorCode::kBadRequest, "unhandled SYNC request"};
}

}  // namespace cs2p
