#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>

namespace cs2p {
namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count());
}

/// Fills in the runtime defaults so config() reports what is actually in
/// effect: io_threads = hardware concurrency, session_shards = 16 (the
/// table rounds to a power of two itself).
ServerConfig resolve_config(ServerConfig config) {
  if (config.io_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    config.io_threads = hw == 0 ? 1 : hw;
  }
  if (config.session_shards == 0) config.session_shards = 16;
  if (config.evict_scan_budget == 0) config.evict_scan_budget = 64;
  return config;
}

/// Eviction cadence per worker: often enough that TTLs in the tens of
/// milliseconds (tests) are honored promptly, rare enough to stay amortized.
constexpr auto kEvictTickInterval = std::chrono::milliseconds(20);

/// Upper bound on a worker's poll wait; keeps eviction ticking and the stop
/// flag checked even when the wake pipe is never signaled.
constexpr int kMaxPollWaitMs = 50;

constexpr std::size_t kReadChunkBytes = 16 * 1024;

}  // namespace

PredictionServer::MetricHandles PredictionServer::MetricHandles::create(
    obs::MetricsRegistry& registry) {
  MetricHandles m;
  m.requests = &registry.counter("cs2p_server_requests_total");
  m.replies = &registry.counter("cs2p_server_replies_total");
  m.error_replies = &registry.counter("cs2p_server_error_replies_total");
  m.degraded_replies = &registry.counter("cs2p_server_degraded_replies_total");
  const auto verb = [&registry](const char* name) {
    return &registry.counter("cs2p_server_verb_requests_total",
                             {{"verb", name}});
  };
  m.verb_hello = verb("hello");
  m.verb_observe = verb("observe");
  m.verb_predict = verb("predict");
  m.verb_bye = verb("bye");
  m.verb_model = verb("model");
  m.verb_stats = verb("stats");
  m.verb_sync = verb("sync");
  m.verb_invalid = verb("invalid");
  m.connections = &registry.counter("cs2p_server_connections_total");
  m.idle_timeouts = &registry.counter("cs2p_server_idle_timeouts_total");
  m.rejected = &registry.counter("cs2p_server_connections_rejected_total");
  m.evicted = &registry.counter("cs2p_server_sessions_evicted_total");
  m.swaps = &registry.counter("cs2p_server_model_swaps_total");
  m.syncs_applied = &registry.counter("cs2p_server_syncs_applied_total");
  m.syncs_rejected = &registry.counter("cs2p_server_syncs_rejected_total");
  m.loop_iterations = &registry.counter("cs2p_server_loop_iterations_total");
  m.active_connections = &registry.gauge("cs2p_server_active_connections");
  m.live_sessions = &registry.gauge("cs2p_server_live_sessions");
  m.request_seconds =
      &registry.histogram("cs2p_server_request_seconds",
                          obs::default_latency_buckets_seconds());
  m.connection_seconds =
      &registry.histogram("cs2p_server_connection_seconds",
                          obs::default_duration_buckets_seconds());
  return m;
}

obs::Counter* PredictionServer::verb_counter(
    const Request& request) const noexcept {
  if (std::holds_alternative<HelloRequest>(request)) return m_.verb_hello;
  if (std::holds_alternative<ObserveRequest>(request)) return m_.verb_observe;
  if (std::holds_alternative<PredictRequest>(request)) return m_.verb_predict;
  if (std::holds_alternative<ByeRequest>(request)) return m_.verb_bye;
  if (std::holds_alternative<ModelRequest>(request)) return m_.verb_model;
  if (std::holds_alternative<StatsRequest>(request)) return m_.verb_stats;
  if (std::holds_alternative<SyncBeginRequest>(request) ||
      std::holds_alternative<SyncChunkRequest>(request) ||
      std::holds_alternative<SyncCommitRequest>(request) ||
      std::holds_alternative<SyncFetchRequest>(request))
    return m_.verb_sync;
  return m_.verb_invalid;
}

PredictionServer::PredictionServer(std::shared_ptr<const PredictorModel> model,
                                   std::uint16_t port)
    : PredictionServer(std::move(model), ServerConfig{}, port) {}

PredictionServer::PredictionServer(std::shared_ptr<const PredictorModel> model,
                                   ServerConfig config, std::uint16_t port)
    : model_(std::move(model)),
      config_(resolve_config(std::move(config))),
      metrics_(config_.metrics ? config_.metrics
                               : std::make_shared<obs::MetricsRegistry>()),
      m_(MetricHandles::create(*metrics_)),
      trace_(config_.trace),
      sessions_(SessionTableConfig{config_.session_shards,
                                   config_.session_ttl_ms,
                                   config_.evict_scan_budget},
                metrics_.get()) {
  if (!model_) throw std::invalid_argument("PredictionServer: null model");
  if (config_.max_connections == 0)
    throw std::invalid_argument("PredictionServer: max_connections must be > 0");
  auto [listener, bound_port] = listen_loopback(port);
  listener_ = std::move(listener);
  port_ = bound_port;
  // Non-blocking + poll: closing a listening fd does not wake a blocked
  // accept(2), so the accept loop must poll and re-check the stop flag.
  set_nonblocking(listener_);
  workers_.reserve(config_.io_threads);
  for (std::size_t i = 0; i < config_.io_threads; ++i) {
    auto worker = std::make_unique<Worker>();
    auto [wake_read, wake_write] = make_wake_pipe();
    worker->wake_read = std::move(wake_read);
    worker->wake_write = std::move(wake_write);
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_)
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

PredictionServer::~PredictionServer() { stop(); }

void PredictionServer::stop() {
  stopping_.store(true);
  // Serialize the teardown: std::thread::join from two threads racing each
  // other is undefined behaviour, so the whole shutdown runs under a lock
  // and every step is idempotent.
  std::scoped_lock stop_lock(stop_mutex_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.reset();
  // Workers notice stopping_ on their next wakeup and close every
  // connection they own (including undrained inbox handoffs) through the
  // one close path before exiting.
  for (auto& worker : workers_) wake_pipe_signal(worker->wake_write);
  for (auto& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
}

void PredictionServer::swap_model(std::shared_ptr<const PredictorModel> model) {
  if (!model) throw std::invalid_argument("PredictionServer: null model in swap");
  {
    std::scoped_lock lock(model_mutex_);
    model_ = std::move(model);
  }
  m_.swaps->inc();
  // The old model is NOT torn down here: any session entry created from it
  // still holds a reference, and releases it on BYE or TTL eviction.
}

std::shared_ptr<const PredictorModel> PredictionServer::current_model() const {
  std::scoped_lock lock(model_mutex_);
  return model_;
}

void PredictionServer::publish_snapshot(std::string snapshot_bytes) {
  std::shared_ptr<const std::string> published;
  std::uint64_t checksum = 0;
  if (!snapshot_bytes.empty()) {
    published = std::make_shared<const std::string>(std::move(snapshot_bytes));
    checksum = sync_checksum(*published);  // hashed once, served many times
  }
  std::scoped_lock lock(snapshot_mutex_);
  snapshot_ = std::move(published);
  snapshot_checksum_ = checksum;
}

std::shared_ptr<const std::string> PredictionServer::published_snapshot() const {
  std::scoped_lock lock(snapshot_mutex_);
  return snapshot_;
}

void PredictionServer::reject_connection(const FdHandle& connection) {
  m_.rejected->inc();
  try {
    send_frame(connection,
               serialize_response(ErrorResponse{
                   WireErrorCode::kOverloaded,
                   "connection limit reached, try again later"}));
    // The client's request is sitting unread in our receive buffer, and
    // close(2) with unread data sends RST — which can destroy the rejection
    // frame before the peer reads it. Half-close our side, then drain the
    // socket for a bounded moment so the close is a clean FIN.
    ::shutdown(connection.get(), SHUT_WR);
    std::byte sink[256];
    for (int i = 0; i < 10 && wait_readable(connection, 10); ++i) {
      if (::recv(connection.get(), sink, sizeof(sink), 0) <= 0) break;
    }
  } catch (const std::exception&) {
    // Best-effort courtesy frame; the close below is the real rejection.
  }
}

void PredictionServer::accept_loop() {
  while (!stopping_.load()) {
    try {
      if (!wait_readable(listener_, /*timeout_ms=*/100)) continue;
    } catch (const std::exception&) {
      break;  // listener torn down
    }
    FdHandle connection = try_accept(listener_);
    if (!connection.valid()) continue;  // spurious wakeup or shutdown
    if (active_connections_.load() >= config_.max_connections) {
      reject_connection(connection);
      continue;  // FdHandle destructor closes it
    }
    dispatch_connection(std::move(connection));
  }
}

void PredictionServer::dispatch_connection(FdHandle connection) {
  m_.connections->inc();
  m_.active_connections->set(
      static_cast<double>(active_connections_.fetch_add(1) + 1));
  try {
    set_nonblocking(connection);
  } catch (const std::exception&) {
    // Raced a peer reset between accept and fcntl: undo the accounting and
    // drop it — never hand a dead fd to a worker.
    m_.active_connections->set(
        static_cast<double>(active_connections_.fetch_sub(1) - 1));
    return;
  }
  Connection conn;
  conn.fd = std::move(connection);
  conn.opened_at = Clock::now();
  conn.last_activity = conn.opened_at;
  Worker& worker =
      *workers_[next_worker_.fetch_add(1, std::memory_order_relaxed) %
                workers_.size()];
  {
    std::scoped_lock lock(worker.inbox_mutex);
    worker.inbox.push_back(std::move(conn));
  }
  wake_pipe_signal(worker.wake_write);
}

void PredictionServer::adopt_inbox(Worker& worker) {
  std::vector<Connection> adopted;
  {
    std::scoped_lock lock(worker.inbox_mutex);
    adopted.swap(worker.inbox);
  }
  for (auto& conn : adopted) {
    const int fd = conn.fd.get();
    worker.connections.emplace(fd, std::move(conn));
  }
}

void PredictionServer::close_connection(Connection& conn, bool idle_timed_out) {
  if (idle_timed_out) m_.idle_timeouts->inc();
  m_.connection_seconds->observe(
      std::chrono::duration<double>(Clock::now() - conn.opened_at).count());
  m_.active_connections->set(
      static_cast<double>(active_connections_.fetch_sub(1) - 1));
  conn.fd.reset();
}

void PredictionServer::worker_loop(Worker& worker) {
  std::vector<pollfd> pollfds;
  std::vector<int> ready;     // fds with events this iteration
  std::vector<int> expired;   // fds past their idle deadline
  auto next_evict = Clock::now();
  while (true) {
    adopt_inbox(worker);
    const bool stopping = stopping_.load();
    if (stopping) {
      for (auto& [fd, conn] : worker.connections)
        close_connection(conn, /*idle_timed_out=*/false);
      worker.connections.clear();
      // One last inbox sweep: a connection dispatched after our previous
      // adopt still gets the close-path accounting.
      adopt_inbox(worker);
      if (worker.connections.empty()) break;
      continue;
    }

    pollfds.clear();
    pollfds.push_back({worker.wake_read.get(), POLLIN, 0});
    for (const auto& [fd, conn] : worker.connections) {
      const short events =
          conn.state == ConnState::kWriting ? POLLOUT : POLLIN;
      pollfds.push_back({fd, events, 0});
    }

    int wait_ms = kMaxPollWaitMs;
    if (config_.idle_timeout_ms > 0 && !worker.connections.empty()) {
      auto nearest = Clock::time_point::max();
      for (const auto& [fd, conn] : worker.connections)
        nearest = std::min(nearest, conn.last_activity);
      const auto deadline =
          nearest + std::chrono::milliseconds(config_.idle_timeout_ms);
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      wait_ms = std::clamp(static_cast<int>(remaining.count()), 0,
                           kMaxPollWaitMs);
    }
    const int rc = ::poll(pollfds.data(), pollfds.size(), wait_ms);
    m_.loop_iterations->inc();
    if (rc < 0 && errno != EINTR && errno != EAGAIN) break;  // should not happen

    if (pollfds[0].revents != 0) wake_pipe_drain(worker.wake_read);
    ready.clear();
    for (std::size_t i = 1; i < pollfds.size(); ++i)
      if (pollfds[i].revents != 0) ready.push_back(pollfds[i].fd);
    for (const int fd : ready) {
      const auto it = worker.connections.find(fd);
      if (it == worker.connections.end()) continue;
      bool keep = false;
      try {
        keep = handle_io(it->second);
      } catch (const std::exception&) {
        // Connection-level failure (reset, desynced framing): drop the
        // connection, keep serving others.
        keep = false;
      }
      if (!keep) {
        close_connection(it->second, /*idle_timed_out=*/false);
        worker.connections.erase(it);
      }
    }

    if (config_.idle_timeout_ms > 0) {
      const auto now = Clock::now();
      const auto deadline =
          now - std::chrono::milliseconds(config_.idle_timeout_ms);
      expired.clear();
      for (const auto& [fd, conn] : worker.connections)
        if (conn.last_activity < deadline) expired.push_back(fd);
      for (const int fd : expired) {
        const auto it = worker.connections.find(fd);
        close_connection(it->second, /*idle_timed_out=*/true);
        worker.connections.erase(it);
      }
    }

    const auto now = Clock::now();
    if (now >= next_evict) {
      next_evict = now + kEvictTickInterval;
      const auto stats = sessions_.evict_tick(
          now, [this](std::uint64_t id, const SessionTable::Entry& entry) {
            if (trace_ && entry.traced)
              trace_->emit("evict", id,
                           {{"ttl_ms", static_cast<std::int64_t>(
                                           config_.session_ttl_ms)}});
            m_.evicted->inc();
          });
      if (stats.evicted > 0)
        m_.live_sessions->set(static_cast<double>(sessions_.size()));
    }
  }
}

bool PredictionServer::handle_io(Connection& conn) {
  if (conn.state == ConnState::kWriting) {
    conn.last_activity = Clock::now();
    if (!flush_write(conn)) return true;  // still blocked on POLLOUT
    // Reply done; buffered pipelined input may already hold the next frame.
    return process_read_buffer(conn);
  }
  std::byte chunk[kReadChunkBytes];
  const auto n = recv_some(conn.fd, chunk);
  if (!n.has_value()) return false;  // clean EOF
  if (*n == 0) return true;          // spurious wakeup
  conn.last_activity = Clock::now();
  conn.read_buffer.append(reinterpret_cast<const char*>(chunk), *n);
  return process_read_buffer(conn);
}

bool PredictionServer::process_read_buffer(Connection& conn) {
  while (conn.state != ConnState::kWriting) {
    if (conn.state == ConnState::kReadingHeader) {
      if (conn.read_buffer.size() < kFrameHeaderBytes) return true;
      // A malformed header (wrong version, absurd length) desyncs the
      // stream: drop the connection, exactly like the blocking server did.
      conn.body_size = parse_frame_header(conn.read_buffer);
      conn.read_buffer.erase(0, kFrameHeaderBytes);
      conn.state = ConnState::kReadingBody;
    }
    if (conn.read_buffer.size() < conn.body_size) return true;
    const std::string payload = conn.read_buffer.substr(0, conn.body_size);
    conn.read_buffer.erase(0, conn.body_size);
    conn.state = ConnState::kReadingHeader;

    // Count before replying: once the client sees the response, the
    // request must already be visible in requests_handled() — and a reply
    // can never outrun its request (the scrape invariant of §11).
    m_.requests->inc();
    conn.t_recv = Clock::now();
    Response response;
    conn.info = RequestInfo{};
    conn.parse_us = 0;
    conn.handle_us = 0;
    try {
      const Request request = parse_request(payload);
      const auto t_parsed = Clock::now();
      conn.parse_us = elapsed_us(conn.t_recv, t_parsed);
      verb_counter(request)->inc();
      response = handle(request, conn);
      conn.handle_us = elapsed_us(t_parsed, Clock::now());
    } catch (const ProtocolError& e) {
      m_.verb_invalid->inc();
      response = ErrorResponse{WireErrorCode::kBadRequest, e.what()};
    } catch (const std::exception& e) {
      response = ErrorResponse{WireErrorCode::kInternal, e.what()};
    }
    const auto* err = std::get_if<ErrorResponse>(&response);
    conn.reply_is_error = err != nullptr;
    conn.error_code = err != nullptr ? wire_error_code_name(err->code)
                                     : std::string_view{};
    if (conn.reply_is_error) m_.error_replies->inc();
    conn.write_buffer = encode_frame(serialize_response(response));
    conn.write_pos = 0;
    conn.state = ConnState::kWriting;
    conn.t_send = Clock::now();
    if (!flush_write(conn)) return true;  // wait for POLLOUT
  }
  return true;
}

bool PredictionServer::flush_write(Connection& conn) {
  while (conn.write_pos < conn.write_buffer.size()) {
    const auto remaining = std::span(conn.write_buffer).subspan(conn.write_pos);
    const std::size_t n = send_some(conn.fd, std::as_bytes(remaining));
    if (n == 0) return false;  // kernel buffer full
    conn.write_pos += n;
  }
  finish_reply(conn);
  return true;
}

void PredictionServer::finish_reply(Connection& conn) {
  m_.replies->inc();
  const auto t_done = Clock::now();
  conn.last_activity = t_done;
  m_.request_seconds->observe(
      std::chrono::duration<double>(t_done - conn.t_recv).count());
  conn.write_buffer.clear();
  conn.write_pos = 0;
  conn.state = ConnState::kReadingHeader;
  const RequestInfo& info = conn.info;
  if (trace_ && info.traced) {
    const std::uint64_t send_us = elapsed_us(conn.t_send, t_done);
    if (conn.reply_is_error) {
      trace_->emit("reply-error", info.session_id,
                   {{"verb", info.event},
                    {"code", conn.error_code},
                    {"parse_us", conn.parse_us},
                    {"handle_us", conn.handle_us},
                    {"send_us", send_us}});
    } else if (info.event == "hello") {
      trace_->emit("hello", info.session_id,
                   {{"cluster", std::string_view(info.cluster_label)},
                    {"initial_mbps", info.mbps},
                    {"parse_us", conn.parse_us},
                    {"handle_us", conn.handle_us},
                    {"send_us", send_us}});
    } else {
      // observe / predict / bye: flags + prediction + the filter's
      // predictive log-likelihood (NaN serializes as null when absent).
      trace_->emit(
          info.event, info.session_id,
          {{"flags", info.flags},
           {"mbps", info.mbps},
           {"ll", info.log_likelihood.value_or(
                      std::numeric_limits<double>::quiet_NaN())},
           {"parse_us", conn.parse_us},
           {"handle_us", conn.handle_us},
           {"send_us", send_us}});
    }
  }
}

PredictionResponse PredictionServer::make_prediction_response(
    const SessionPredictor& predictor, unsigned steps_ahead) {
  // Read the flags before predicting: serve_flags() describes why the *next*
  // prediction will be served the way it is, and must match the value on the
  // same reply.
  PredictionResponse response;
  response.flags = predictor.serve_flags();
  response.mbps = predictor.predict(steps_ahead);
  if (response.flags != serve_flags::kPrimary) m_.degraded_replies->inc();
  return response;
}

Response PredictionServer::handle(const Request& request, Connection& conn) {
  RequestInfo& info = conn.info;
  if (stopping_.load())
    return ErrorResponse{WireErrorCode::kShuttingDown, "server is stopping"};

  if (std::holds_alternative<SyncBeginRequest>(request) ||
      std::holds_alternative<SyncChunkRequest>(request) ||
      std::holds_alternative<SyncCommitRequest>(request) ||
      std::holds_alternative<SyncFetchRequest>(request)) {
    info.event = "sync";
    return handle_sync(request, conn.sync);
  }

  if (const auto* hello = std::get_if<HelloRequest>(&request)) {
    info.event = "hello";
    if (!std::isfinite(hello->start_hour))
      return ErrorResponse{WireErrorCode::kBadRequest,
                           "start_hour must be finite"};
    SessionContext context;
    context.features = hello->features;
    context.start_hour = hello->start_hour;
    // Snapshot the published model once: the session is created from it and
    // pins it, so a concurrent swap_model() cannot pull the engine out from
    // under the predictor's internal references.
    auto model = current_model();
    auto predictor = model->make_session(context);

    SessionResponse response;
    response.initial_mbps = predictor->predict_initial().value_or(0.0);
    // Cluster metadata is predictor-specific; expose what we can.
    response.cluster_label = model->name();

    const auto now = Clock::now();
    response.session_id = sessions_.emplace([&](std::uint64_t id) {
      info.session_id = id;
      info.traced = trace_ && trace_->should_sample(id);
      SessionTable::Entry entry;
      entry.predictor = std::move(predictor);
      entry.owner = std::move(model);
      entry.last_used = now;
      entry.traced = info.traced;
      return entry;
    });
    info.mbps = response.initial_mbps;
    info.cluster_label = response.cluster_label;
    m_.live_sessions->set(static_cast<double>(sessions_.size()));
    return response;
  }

  if (const auto* observe = std::get_if<ObserveRequest>(&request)) {
    info.event = "observe";
    info.session_id = observe->session_id;
    const double w = observe->throughput_mbps;
    // Validate before touching the predictor: one NaN in the forward filter
    // poisons every belief state after it.
    // Zero is allowed: a fully stalled epoch is a real measurement (and the
    // dataset loader accepts it too).
    const bool valid =
        std::isfinite(w) && w >= 0.0 && w <= config_.max_sample_mbps;
    Response out = ErrorResponse{WireErrorCode::kUnknownSession,
                                 "unknown session"};
    sessions_.with_session(observe->session_id, [&](SessionTable::Entry& entry) {
      info.traced = entry.traced;
      if (!valid) return;  // leave last_used alone; the error wins below
      entry.last_used = Clock::now();
      entry.predictor->observe(w);
      const PredictionResponse response =
          make_prediction_response(*entry.predictor, 1);
      info.flags = response.flags;
      info.mbps = response.mbps;
      info.log_likelihood = entry.predictor->last_log_likelihood();
      out = response;
    });
    if (!valid)
      return ErrorResponse{WireErrorCode::kInvalidSample,
                           "throughput sample must be finite, non-negative and <= " +
                               std::to_string(config_.max_sample_mbps)};
    return out;
  }

  if (const auto* predict = std::get_if<PredictRequest>(&request)) {
    info.event = "predict";
    info.session_id = predict->session_id;
    Response out = ErrorResponse{WireErrorCode::kUnknownSession,
                                 "unknown session"};
    sessions_.with_session(predict->session_id, [&](SessionTable::Entry& entry) {
      info.traced = entry.traced;
      if (predict->steps_ahead == 0) {
        out = ErrorResponse{WireErrorCode::kBadRequest,
                            "steps_ahead must be >= 1"};
        return;
      }
      entry.last_used = Clock::now();
      const PredictionResponse response =
          make_prediction_response(*entry.predictor, predict->steps_ahead);
      info.flags = response.flags;
      info.mbps = response.mbps;
      info.log_likelihood = entry.predictor->last_log_likelihood();
      out = response;
    });
    return out;
  }

  if (const auto* bye = std::get_if<ByeRequest>(&request)) {
    info.event = "bye";
    info.session_id = bye->session_id;
    bool traced = false;
    if (sessions_.erase(bye->session_id, &traced)) info.traced = traced;
    m_.live_sessions->set(static_cast<double>(sessions_.size()));
    return OkResponse{};
  }

  if (std::holds_alternative<StatsRequest>(request)) {
    info.event = "stats";
    // Refresh the point-in-time gauge before scraping so a scrape during a
    // quiet period still reports the live table, not the last mutation.
    m_.live_sessions->set(static_cast<double>(sessions_.size()));
    StatsResponse response;
    response.exposition_version = obs::kMetricsExpositionVersion;
    response.exposition = metrics_->scrape();
    // The exposition must fit one frame. Cut at a line boundary and mark the
    // cut, so a truncated scrape still parses and is visibly partial.
    constexpr std::string_view kTruncated = "# cs2p_scrape_truncated 1\n";
    const std::size_t budget = kMaxFrameBytes - 64;  // frame + STATS header
    if (response.exposition.size() > budget) {
      const std::size_t cut =
          response.exposition.rfind('\n', budget - kTruncated.size());
      response.exposition.resize(cut == std::string::npos ? 0 : cut + 1);
      response.exposition += kTruncated;
    }
    return response;
  }

  if (const auto* model = std::get_if<ModelRequest>(&request)) {
    info.event = "model";
    SessionContext context;
    context.features = model->features;
    context.start_hour = model->start_hour;
    const auto served = current_model();
    const auto downloadable = served->downloadable_model(context);
    if (!downloadable)
      return ErrorResponse{WireErrorCode::kUnsupported,
                           "model download unsupported by " + served->name()};
    ModelResponse response;
    response.initial_mbps = downloadable->initial_mbps;
    response.used_global_model = downloadable->used_global_model;
    response.serialized_hmm = serialize_hmm(downloadable->hmm);
    return response;
  }
  return ErrorResponse{WireErrorCode::kBadRequest, "unhandled request"};
}

Response PredictionServer::handle_sync(const Request& request,
                                       SyncStaging& staging) {
  const auto reject = [&](const std::string& why) -> Response {
    staging = SyncStaging{};
    m_.syncs_rejected->inc();
    return ErrorResponse{WireErrorCode::kSyncRejected, why};
  };

  if (const auto* begin = std::get_if<SyncBeginRequest>(&request)) {
    if (!config_.sync_apply)
      return reject("this replica does not accept SYNC");
    if (begin->total_bytes == 0)
      return reject("snapshot must not be empty");
    if (begin->total_bytes > config_.max_sync_bytes)
      return reject("snapshot exceeds max_sync_bytes (" +
                    std::to_string(config_.max_sync_bytes) + ")");
    // A BEGIN while a shipment is staged restarts it — this is how a trainer
    // recovers from its own mid-push reconnect without a new connection.
    staging = SyncStaging{};
    staging.active = true;
    staging.expected_bytes = begin->total_bytes;
    staging.expected_checksum = begin->checksum;
    staging.buffer.reserve(begin->total_bytes);
    return OkResponse{};
  }

  if (const auto* chunk = std::get_if<SyncChunkRequest>(&request)) {
    if (!staging.active) return reject("no SYNC in progress");
    if (staging.buffer.size() + chunk->data.size() > staging.expected_bytes)
      return reject("more bytes than SYNCBEGIN declared");
    staging.buffer += chunk->data;
    return OkResponse{};
  }

  if (std::holds_alternative<SyncCommitRequest>(request)) {
    if (!staging.active) return reject("no SYNC in progress");
    if (staging.buffer.size() != staging.expected_bytes)
      return reject("staged " + std::to_string(staging.buffer.size()) +
                    " bytes, SYNCBEGIN declared " +
                    std::to_string(staging.expected_bytes));
    // Byte-for-byte verification against the declared checksum before the
    // decode ever runs: a corrupt snapshot never reaches the swap.
    if (sync_checksum(staging.buffer) != staging.expected_checksum)
      return reject("snapshot checksum mismatch");
    std::shared_ptr<const PredictorModel> model;
    try {
      model = config_.sync_apply(staging.buffer);
    } catch (const std::exception& e) {
      return reject(std::string("snapshot rejected: ") + e.what());
    }
    if (!model) return reject("snapshot rejected by this replica");
    swap_model(std::move(model));
    publish_snapshot(staging.buffer);  // re-serve what we accepted
    staging = SyncStaging{};
    m_.syncs_applied->inc();
    return OkResponse{};
  }

  if (const auto* fetch = std::get_if<SyncFetchRequest>(&request)) {
    std::shared_ptr<const std::string> snapshot;
    std::uint64_t checksum = 0;
    {
      std::scoped_lock lock(snapshot_mutex_);
      snapshot = snapshot_;
      checksum = snapshot_checksum_;
    }
    if (!snapshot)
      return ErrorResponse{WireErrorCode::kUnsupported,
                           "no snapshot published on this replica"};
    if (fetch->offset >= snapshot->size())
      return ErrorResponse{WireErrorCode::kBadRequest,
                           "offset past end of snapshot"};
    SnapshotChunkResponse response;
    response.total_bytes = snapshot->size();
    response.checksum = checksum;
    response.offset = fetch->offset;
    response.data = snapshot->substr(fetch->offset, kSyncChunkBytes);
    return response;
  }
  return ErrorResponse{WireErrorCode::kBadRequest, "unhandled SYNC request"};
}

}  // namespace cs2p
