// Deterministic fault injection for the prediction-service transport.
//
// FaultInjectingTransport wraps any Transport and, driven by a seeded
// cs2p::Rng, injects the failure modes a real deployment sees: refused
// connects, mid-message resets, short (chunked) reads and writes, added
// latency, and single-byte corruption. The same seed always yields the same
// fault schedule, so chaos tests are reproducible. Counters record what was
// actually injected so tests can assert the run exercised faults at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "net/transport.h"
#include "util/rng.h"

namespace cs2p {

/// Per-operation fault probabilities (each sampled independently).
struct FaultSpec {
  double refuse_connect = 0.0;   ///< connector throws ConnectionError
  double reset_on_send = 0.0;    ///< tear down the stream instead of sending
  double reset_on_recv = 0.0;    ///< tear down the stream instead of reading
  double corrupt_on_send = 0.0;  ///< flip one byte of the outgoing buffer
  double delay = 0.0;            ///< sleep delay_ms before the operation
  int delay_ms = 0;
  /// When > 0, deliver every transfer to the inner transport in chunks of at
  /// most this many bytes — exercises the peer's partial-read reassembly.
  std::size_t max_io_chunk = 0;
};

/// What the injector actually did (shared across reconnects).
struct FaultCounters {
  std::atomic<std::uint64_t> sends{0};
  std::atomic<std::uint64_t> recvs{0};
  std::atomic<std::uint64_t> connects_refused{0};
  std::atomic<std::uint64_t> resets_injected{0};
  std::atomic<std::uint64_t> corruptions_injected{0};
  std::atomic<std::uint64_t> delays_injected{0};

  std::uint64_t total_faults() const noexcept {
    return connects_refused.load() + resets_injected.load() +
           corruptions_injected.load();
  }
};

/// Transport decorator injecting the faults of `spec`. Not thread-safe (the
/// client serializes all transport use behind its own lock).
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultSpec spec,
                          std::uint64_t seed,
                          std::shared_ptr<FaultCounters> counters = nullptr);

  void send(std::span<const std::byte> data) override;
  bool recv(std::span<std::byte> data) override;
  void shutdown() noexcept override;

 private:
  void maybe_delay();
  [[noreturn]] void inject_reset(const char* where);

  std::unique_ptr<Transport> inner_;
  FaultSpec spec_;
  Rng rng_;
  std::shared_ptr<FaultCounters> counters_;
};

/// Wraps `inner` so every produced transport injects faults from `spec`.
/// Each connect draws an independent RNG stream from `seed`, and
/// `spec.refuse_connect` is applied at connect time. All transports made by
/// the returned factory share `counters` (allocated when null).
TransportFactory fault_injecting_connector(
    TransportFactory inner, FaultSpec spec, std::uint64_t seed,
    std::shared_ptr<FaultCounters> counters);

}  // namespace cs2p
