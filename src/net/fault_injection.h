// Deterministic fault injection for the prediction-service transport.
//
// FaultInjectingTransport wraps any Transport and, driven by a seeded
// cs2p::Rng, injects the failure modes a real deployment sees: refused
// connects, mid-message resets, short (chunked) reads and writes, added
// latency, and single-byte corruption. The same seed always yields the same
// fault schedule, so chaos tests are reproducible. Counters record what was
// actually injected so tests can assert the run exercised faults at all.
//
// ChaosReplica raises the blast radius from one transport to one replica:
// it runs a real PredictionServer on a stable port and kills the whole
// process-equivalent (listener, workers, sessions) after a request quota,
// leaves the port refusing connections for a dwell, then resurrects a fresh
// server on the same port — the failure mode the ReplicaSet failover layer
// (net/replica_set.h) exists to absorb.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "net/server.h"
#include "net/transport.h"
#include "util/rng.h"

namespace cs2p {

/// Per-operation fault probabilities (each sampled independently).
struct FaultSpec {
  double refuse_connect = 0.0;   ///< connector throws ConnectionError
  double reset_on_send = 0.0;    ///< tear down the stream instead of sending
  double reset_on_recv = 0.0;    ///< tear down the stream instead of reading
  double corrupt_on_send = 0.0;  ///< flip one byte of the outgoing buffer
  double delay = 0.0;            ///< sleep delay_ms before the operation
  int delay_ms = 0;
  /// When > 0, deliver every transfer to the inner transport in chunks of at
  /// most this many bytes — exercises the peer's partial-read reassembly.
  std::size_t max_io_chunk = 0;
};

/// What the injector actually did (shared across reconnects).
struct FaultCounters {
  std::atomic<std::uint64_t> sends{0};
  std::atomic<std::uint64_t> recvs{0};
  std::atomic<std::uint64_t> connects_refused{0};
  std::atomic<std::uint64_t> resets_injected{0};
  std::atomic<std::uint64_t> corruptions_injected{0};
  std::atomic<std::uint64_t> delays_injected{0};

  std::uint64_t total_faults() const noexcept {
    return connects_refused.load() + resets_injected.load() +
           corruptions_injected.load();
  }
};

/// Transport decorator injecting the faults of `spec`. Not thread-safe (the
/// client serializes all transport use behind its own lock).
class FaultInjectingTransport final : public Transport {
 public:
  FaultInjectingTransport(std::unique_ptr<Transport> inner, FaultSpec spec,
                          std::uint64_t seed,
                          std::shared_ptr<FaultCounters> counters = nullptr);

  void send(std::span<const std::byte> data) override;
  bool recv(std::span<std::byte> data) override;
  void shutdown() noexcept override;

 private:
  void maybe_delay();
  [[noreturn]] void inject_reset(const char* where);

  std::unique_ptr<Transport> inner_;
  FaultSpec spec_;
  Rng rng_;
  std::shared_ptr<FaultCounters> counters_;
};

/// Wraps `inner` so every produced transport injects faults from `spec`.
/// Each connect draws an independent RNG stream from `seed`, and
/// `spec.refuse_connect` is applied at connect time. All transports made by
/// the returned factory share `counters` (allocated when null).
TransportFactory fault_injecting_connector(
    TransportFactory inner, FaultSpec spec, std::uint64_t seed,
    std::shared_ptr<FaultCounters> counters);

/// A deterministically slow reader: sleeps `recv_delay_ms` before every
/// recv (sends pass straight through). Models the congested or throttled
/// player that drains replies slower than the server produces them — the
/// client the server's write-backpressure machinery exists for.
class SlowClientTransport final : public Transport {
 public:
  SlowClientTransport(std::unique_ptr<Transport> inner, int recv_delay_ms);

  void send(std::span<const std::byte> data) override;
  bool recv(std::span<std::byte> data) override;
  void shutdown() noexcept override;

 private:
  std::unique_ptr<Transport> inner_;
  int recv_delay_ms_ = 0;
};

/// Wraps `inner` so every produced transport reads slowly (see
/// SlowClientTransport).
TransportFactory slow_client_connector(TransportFactory inner,
                                       int recv_delay_ms);

/// Whole-replica fault schedule.
struct ReplicaFaultSpec {
  /// Kill the replica once its current incarnation has handled this many
  /// requests (frames). 0 = never auto-kill; use kill_now().
  std::uint64_t die_after_requests = 0;
  /// How long the port refuses connections before resurrection.
  int dead_for_ms = 200;
  /// Bring a fresh server back on the same port after the dwell. When
  /// false the replica stays dead until resurrect_now().
  bool resurrect = true;
};

/// A PredictionServer under whole-replica chaos: dies (full teardown —
/// listener closed, in-flight connections dropped, all sessions lost),
/// refuses connections for a dwell, resurrects on the same port with a
/// fresh model instance from the factory. The schedule advances on poll()
/// — call it from the test loop, or start_monitor() to self-drive.
class ChaosReplica {
 public:
  /// `make_model` is invoked per incarnation. `config.metrics` may be a
  /// shared registry; the request quota is tracked per incarnation either
  /// way. Starts alive on an ephemeral port (fixed for the object's life).
  ChaosReplica(std::function<std::shared_ptr<const PredictorModel>()> make_model,
               ServerConfig config, ReplicaFaultSpec fault);
  ~ChaosReplica();

  ChaosReplica(const ChaosReplica&) = delete;
  ChaosReplica& operator=(const ChaosReplica&) = delete;

  /// The stable port; refuses connections while dead.
  std::uint16_t port() const noexcept { return port_; }

  /// Advances the kill/resurrect schedule; cheap, safe from any thread.
  void poll();

  /// Background thread calling poll() every few milliseconds.
  void start_monitor();

  bool alive() const;
  void kill_now();
  void resurrect_now();

  /// Rolling-restart step (DESIGN.md §14): begin_drain() on the live
  /// server, wait for the drain to complete (sessions BYEd, migrated by the
  /// client tier, or TTL-reaped under the shrunk drain TTL) up to
  /// `drain_deadline_ms`, then tear down and resurrect on the same port.
  /// Returns true when the drain completed before the deadline (a clean,
  /// zero-drop restart); false when the deadline forced the kill or the
  /// replica was already dead.
  bool drain_and_restart(int drain_deadline_ms);

  std::uint64_t kills() const noexcept { return kills_.load(); }
  std::uint64_t resurrections() const noexcept { return resurrections_.load(); }

  /// Drains initiated via drain_and_restart.
  std::uint64_t drains() const noexcept { return drains_.load(); }

  /// The live server (STATS scraping, introspection); null while dead.
  /// The pointer is invalidated by the next kill — use only while the
  /// schedule is quiescent or from the thread driving poll().
  PredictionServer* server();

 private:
  using Clock = std::chrono::steady_clock;

  void locked_resurrect();

  std::function<std::shared_ptr<const PredictorModel>()> make_model_;
  ServerConfig config_;
  ReplicaFaultSpec fault_;
  std::uint16_t port_ = 0;

  mutable std::mutex mutex_;
  std::unique_ptr<PredictionServer> server_;
  std::uint64_t requests_at_birth_ = 0;
  Clock::time_point died_at_{};

  std::atomic<std::uint64_t> kills_{0};
  std::atomic<std::uint64_t> resurrections_{0};
  std::atomic<std::uint64_t> drains_{0};
  std::atomic<bool> stopping_{false};
  std::thread monitor_;
};

}  // namespace cs2p
