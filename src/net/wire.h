// Wire protocol of the prediction service (paper §6).
//
// The paper's player sends an HTTP POST with the last epoch's measured
// throughput and receives the next prediction in ~5 ms. We use the same
// request/response shape over a persistent TCP connection with 4-byte
// big-endian length framing and a line-oriented payload:
//
//   client -> server
//     HELLO <isp> <as> <province> <city> <server> <prefix> <hour>
//     OBSERVE <session-id> <mbps>          (report measurement, get forecast)
//     PREDICT <session-id> <steps-ahead>   (extra forecast, no new data)
//     MODEL <isp> <as> <province> <city> <server> <prefix> <hour>
//                                          (download the compact per-session
//                                           model for client-side execution,
//                                           the paper's decentralized mode)
//     BYE <session-id>
//   server -> client
//     SESSION <session-id> <initial-mbps> <global 0|1> <cluster-label>
//     PRED <mbps>
//     MODEL <initial-mbps> <global 0|1> \n <serialized hmm ...>
//     OK
//     ERR <message>
//
// Feature values must be whitespace-free tokens (true for every dataset this
// library produces); HELLO validates this instead of escaping.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "dataset/session.h"
#include "net/socket.h"

namespace cs2p {

/// Maximum accepted frame payload; guards against malformed length prefixes.
inline constexpr std::uint32_t kMaxFrameBytes = 64 * 1024;

/// Sends one length-prefixed frame.
void send_frame(const FdHandle& socket, std::string_view payload);

/// Receives one frame; nullopt on clean EOF. Throws on oversized/bad frames.
std::optional<std::string> recv_frame(const FdHandle& socket);

// -- Typed messages ---------------------------------------------------------

struct HelloRequest {
  SessionFeatures features;
  double start_hour = 0.0;
};
struct ObserveRequest {
  std::uint64_t session_id = 0;
  double throughput_mbps = 0.0;
};
struct PredictRequest {
  std::uint64_t session_id = 0;
  unsigned steps_ahead = 1;
};
struct ByeRequest {
  std::uint64_t session_id = 0;
};
struct ModelRequest {
  SessionFeatures features;
  double start_hour = 0.0;
};
using Request = std::variant<HelloRequest, ObserveRequest, PredictRequest,
                             ByeRequest, ModelRequest>;

struct SessionResponse {
  std::uint64_t session_id = 0;
  double initial_mbps = 0.0;
  bool used_global_model = false;
  std::string cluster_label;
};
struct PredictionResponse {
  double mbps = 0.0;
};
struct OkResponse {};
struct ErrorResponse {
  std::string message;
};
struct ModelResponse {
  double initial_mbps = 0.0;
  bool used_global_model = false;
  std::string serialized_hmm;  ///< text form (see hmm/model.h)
};
using Response = std::variant<SessionResponse, PredictionResponse, OkResponse,
                              ErrorResponse, ModelResponse>;

/// Parse/serialize. parse_* throws std::runtime_error on malformed payloads.
std::string serialize_request(const Request& request);
Request parse_request(std::string_view payload);
std::string serialize_response(const Response& response);
Response parse_response(std::string_view payload);

}  // namespace cs2p
