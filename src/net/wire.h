// Wire protocol of the prediction service (paper §6).
//
// The paper's player sends an HTTP POST with the last epoch's measured
// throughput and receives the next prediction in ~5 ms. We use the same
// request/response shape over a persistent TCP connection with 4-byte
// big-endian framing — one protocol-version byte followed by a 24-bit
// payload length — and a line-oriented payload:
//
//   client -> server
//     HELLO <isp> <as> <province> <city> <server> <prefix> <hour>
//     OBSERVE <session-id> <mbps>          (report measurement, get forecast)
//     PREDICT <session-id> <steps-ahead>   (extra forecast, no new data)
//     MODEL <isp> <as> <province> <city> <server> <prefix> <hour>
//                                          (download the compact per-session
//                                           model for client-side execution,
//                                           the paper's decentralized mode)
//     STATS                                (scrape the server's metrics
//                                           registry, DESIGN.md §11)
//     BYE <session-id>
//     SYNCBEGIN <total-bytes> <fnv64-hex>  (start shipping a model_store
//                                           snapshot to this replica,
//                                           DESIGN.md §13)
//     SYNCDATA \n <raw snapshot chunk>     (append bytes to the staged
//                                           snapshot; one frame per chunk)
//     SYNCCOMMIT                           (verify byte count + checksum,
//                                           then hot-swap the decoded model)
//     SYNCFETCH <offset>                   (pull a chunk of the replica's
//                                           published snapshot)
//   server -> client
//     SESSION <session-id> <initial-mbps> <global 0|1> <cluster-label>
//     PRED <mbps> <flags>         (flags: serve_flags:: bits — why this
//                                  prediction was served the way it was;
//                                  v1 peers omitted the field, parse
//                                  tolerates both)
//     MODEL <initial-mbps> <global 0|1> \n <serialized hmm ...>
//     STATS <exposition-version> \n <metrics text exposition ...>
//     SNAPSHOT <total-bytes> <fnv64-hex> <offset> \n <raw snapshot chunk>
//     OK
//     ERR <code> <retry-after-ms> <message>
//                                 (code: see WireErrorCode below; the
//                                  retry-after field is the server's backoff
//                                  hint in milliseconds, 0 = none — v4 peers
//                                  omitted it, parse tolerates both)
//
// Feature values must be whitespace-free tokens (true for every dataset this
// library produces); HELLO validates this instead of escaping.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>

#include "dataset/session.h"
#include "net/socket.h"
#include "net/transport.h"

namespace cs2p {

/// Version stamped into byte 0 of every frame header; a peer speaking a
/// different framing is rejected with ProtocolError instead of desyncing.
/// v2 added the serve-flags field to PRED responses; v3 added the STATS
/// scrape verb; v4 added the SYNC snapshot-shipping verbs; v5 added the
/// retry-after-ms field to ERR responses (overload shedding + graceful
/// drain, DESIGN.md §14) and the kDraining/kBrownout serve-flag bits (a
/// v1–v4 client is rejected at the frame header, before any verb parsing).
inline constexpr std::uint8_t kProtocolVersion = 5;

/// Maximum accepted frame payload; guards against malformed length prefixes.
/// Must fit the 24-bit length field of the frame header.
inline constexpr std::uint32_t kMaxFrameBytes = 64 * 1024;

/// Size of the frame header ([version][len-hi][len-mid][len-lo]).
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Raw snapshot bytes carried per SYNCDATA/SNAPSHOT frame. Leaves headroom
/// inside kMaxFrameBytes for the verb header line.
inline constexpr std::size_t kSyncChunkBytes = 48 * 1024;

/// FNV-1a 64 over `data` — the wire-level snapshot checksum declared by
/// SYNCBEGIN and verified byte-for-byte before a replica commits a shipped
/// snapshot (the same algorithm core/model_store uses for its footer, so a
/// trainer can checksum once). Stable across platforms.
std::uint64_t sync_checksum(std::string_view data) noexcept;

/// A malformed frame or payload (bad version byte, oversized length,
/// unparseable message). Distinct from TransportError: the bytes arrived but
/// do not decode, so the stream may be desynced and should be reconnected.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Machine-readable error classes carried by ERR responses, so clients can
/// decide what is retryable without parsing prose.
enum class WireErrorCode : std::uint8_t {
  kBadRequest = 0,   ///< unparseable or semantically invalid request
  kUnknownSession,   ///< session id not in the server's table (expired/lost)
  kInvalidSample,    ///< NaN/negative/absurd throughput sample rejected
  kOverloaded,       ///< connection cap reached; try later
  kShuttingDown,     ///< server is stopping
  kUnsupported,      ///< operation not supported by this model family
  kInternal,         ///< unexpected server-side failure
  kSyncRejected,     ///< shipped snapshot refused (corrupt, mismatched, or
                     ///< no SYNC in progress); the served model is unchanged
};

/// Stable token used on the wire ("BAD_REQUEST", "UNKNOWN_SESSION", ...).
std::string_view wire_error_code_name(WireErrorCode code) noexcept;

/// Inverse of wire_error_code_name; nullopt for unknown tokens.
std::optional<WireErrorCode> wire_error_code_from_name(std::string_view name) noexcept;

/// A server-reported error (an ERR response), thrown by PredictionClient.
/// Unlike TransportError, the round trip itself succeeded.
class ServerError : public std::runtime_error {
 public:
  ServerError(WireErrorCode code, const std::string& message,
              std::uint32_t retry_after_ms = 0)
      : std::runtime_error("prediction server: [" +
                           std::string(wire_error_code_name(code)) + "] " +
                           message),
        code_(code),
        retry_after_ms_(retry_after_ms) {}

  WireErrorCode code() const noexcept { return code_; }

  /// The server's backoff hint (protocol v5): how long it suggests waiting
  /// before retrying anywhere in the tier. 0 = no hint. ReplicaSet honors
  /// this when every replica is shedding (DESIGN.md §14).
  std::uint32_t retry_after_ms() const noexcept { return retry_after_ms_; }

 private:
  WireErrorCode code_;
  std::uint32_t retry_after_ms_;
};

/// Encodes one length-prefixed frame (header + payload) into a contiguous
/// buffer — the form buffered non-blocking writers queue. send_frame() is
/// equivalent to sending this in one piece. Throws ProtocolError on
/// oversized payloads.
std::string encode_frame(std::string_view payload);

/// Decodes a frame header (first kFrameHeaderBytes of `header`), validating
/// the version byte and the length field; returns the payload size. Throws
/// ProtocolError on a version mismatch or oversized length — the stream is
/// desynced and must be dropped.
std::uint32_t parse_frame_header(std::string_view header);

/// Sends one length-prefixed frame.
void send_frame(const FdHandle& socket, std::string_view payload);
void send_frame(Transport& transport, std::string_view payload);

/// Receives one frame; nullopt on clean EOF. Throws ProtocolError on
/// version-mismatched or oversized frames.
std::optional<std::string> recv_frame(const FdHandle& socket);
std::optional<std::string> recv_frame(Transport& transport);

// -- Typed messages ---------------------------------------------------------

struct HelloRequest {
  SessionFeatures features;
  double start_hour = 0.0;
};
struct ObserveRequest {
  std::uint64_t session_id = 0;
  double throughput_mbps = 0.0;
};
struct PredictRequest {
  std::uint64_t session_id = 0;
  unsigned steps_ahead = 1;
};
struct ByeRequest {
  std::uint64_t session_id = 0;
};
struct ModelRequest {
  SessionFeatures features;
  double start_hour = 0.0;
};
/// Scrape the server's metrics registry (protocol v3). No arguments: the
/// registry is a process-wide singleton root, and keeping the verb static
/// lets any operator tool speak it without knowing what is registered.
struct StatsRequest {};
/// Start shipping a model_store snapshot to this replica (protocol v4,
/// DESIGN.md §13). Declares the byte count and checksum up front so the
/// receiver can verify byte-for-byte before the RCU hot-swap ever runs.
struct SyncBeginRequest {
  std::uint64_t total_bytes = 0;
  std::uint64_t checksum = 0;  ///< sync_checksum() of the full snapshot
};
/// One chunk of snapshot bytes; appended to the connection's staging buffer
/// in order. Rejected with SYNC_REJECTED when no SYNCBEGIN is in progress.
struct SyncChunkRequest {
  std::string data;
};
/// Finish the shipment: the server verifies the staged byte count and
/// checksum against SYNCBEGIN's declaration, decodes the snapshot, and
/// hot-swaps the model — or answers SYNC_REJECTED and keeps serving the
/// current model. Never a partial swap.
struct SyncCommitRequest {};
/// Pull one chunk of the replica's published snapshot starting at `offset`
/// (the pull direction of SYNC: a fresh replica bootstraps from a trainer).
struct SyncFetchRequest {
  std::uint64_t offset = 0;
};
using Request = std::variant<HelloRequest, ObserveRequest, PredictRequest,
                             ByeRequest, ModelRequest, StatsRequest,
                             SyncBeginRequest, SyncChunkRequest,
                             SyncCommitRequest, SyncFetchRequest>;

struct SessionResponse {
  std::uint64_t session_id = 0;
  double initial_mbps = 0.0;
  bool used_global_model = false;
  std::string cluster_label;
};
struct PredictionResponse {
  double mbps = 0.0;
  /// serve_flags:: bits (predictors/predictor.h): why the server answered
  /// from the path it did (primary model, guardrail fallback, drifted
  /// cluster, global model). 0 = primary.
  std::uint8_t flags = 0;
};
struct OkResponse {};
struct ErrorResponse {
  WireErrorCode code = WireErrorCode::kInternal;
  std::string message;
  /// Backoff hint in milliseconds (protocol v5), 0 = none. Stamped by the
  /// server on OVERLOADED/SHUTTING_DOWN replies so a shedding or draining
  /// tier tells clients how long to wait instead of absorbing a hot-spin of
  /// HELLO replays.
  std::uint32_t retry_after_ms = 0;
};
struct ModelResponse {
  double initial_mbps = 0.0;
  bool used_global_model = false;
  std::string serialized_hmm;  ///< text form (see hmm/model.h)
};
/// Reply to STATS: the registry's versioned text exposition, carried
/// verbatim (obs/metrics.h documents the grammar). `exposition_version`
/// mirrors the `# cs2p_metrics_version` header so a scraper can reject a
/// grammar it does not understand without parsing the body.
struct StatsResponse {
  int exposition_version = 0;
  std::string exposition;
};
/// Reply to SYNCFETCH: one chunk of the published snapshot. `total_bytes`
/// and `checksum` describe the whole snapshot (repeated on every chunk so a
/// puller detects a republish mid-fetch and restarts cleanly).
struct SnapshotChunkResponse {
  std::uint64_t total_bytes = 0;
  std::uint64_t checksum = 0;
  std::uint64_t offset = 0;
  std::string data;
};
using Response = std::variant<SessionResponse, PredictionResponse, OkResponse,
                              ErrorResponse, ModelResponse, StatsResponse,
                              SnapshotChunkResponse>;

/// Parse/serialize. parse_* throws ProtocolError on malformed payloads.
std::string serialize_request(const Request& request);
Request parse_request(std::string_view payload);
std::string serialize_response(const Response& response);
Response parse_response(std::string_view payload);

}  // namespace cs2p
