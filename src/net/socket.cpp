#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace cs2p {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

FdHandle::~FdHandle() { reset(); }

FdHandle& FdHandle::operator=(FdHandle&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void FdHandle::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<FdHandle, std::uint16_t> listen_loopback(std::uint16_t port, int backlog) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");

  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0)
    throw_errno("setsockopt(SO_REUSEADDR)");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("bind");
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  return {std::move(fd), ntohs(addr.sin_port)};
}

FdHandle accept_connection(const FdHandle& listener) {
  while (true) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return FdHandle(fd);
    }
    if (errno == EINTR) continue;
    // Listener closed by another thread during shutdown.
    if (errno == EBADF || errno == EINVAL) return FdHandle{};
    throw_errno("accept");
  }
}

bool wait_readable(const FdHandle& fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd.get();
  pfd.events = POLLIN;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return (pfd.revents & (POLLIN | POLLERR | POLLHUP)) != 0;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

void set_nonblocking(const FdHandle& fd) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

FdHandle try_accept(const FdHandle& listener) {
  while (true) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return FdHandle(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED ||
        errno == EBADF || errno == EINVAL) {
      return FdHandle{};
    }
    throw_errno("accept");
  }
}

FdHandle connect_loopback(std::uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void send_all(const FdHandle& socket, std::span<const std::byte> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(socket.get(), data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool recv_all(const FdHandle& socket, std::span<std::byte> data) {
  std::size_t received = 0;
  while (received < data.size()) {
    const ssize_t n =
        ::recv(socket.get(), data.data() + received, data.size() - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (received == 0) return false;  // clean EOF between messages
      throw std::runtime_error("recv: connection closed mid-message");
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::size_t> recv_some(const FdHandle& socket,
                                     std::span<std::byte> data) {
  while (true) {
    const ssize_t n = ::recv(socket.get(), data.data(), data.size(), 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return std::nullopt;  // orderly shutdown
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    throw_errno("recv");
  }
}

std::size_t send_some(const FdHandle& socket, std::span<const std::byte> data) {
  while (true) {
    const ssize_t n =
        ::send(socket.get(), data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    throw_errno("send");
  }
}

std::pair<FdHandle, FdHandle> make_wake_pipe() {
  int fds[2];
  if (::pipe(fds) != 0) throw_errno("pipe");
  FdHandle read_end(fds[0]), write_end(fds[1]);
  set_nonblocking(read_end);
  set_nonblocking(write_end);
  return {std::move(read_end), std::move(write_end)};
}

void wake_pipe_signal(const FdHandle& write_end) noexcept {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(write_end.get(), &byte, 1);
}

void wake_pipe_drain(const FdHandle& read_end) noexcept {
  char sink[64];
  while (::read(read_end.get(), sink, sizeof(sink)) > 0) {
  }
}

}  // namespace cs2p
