#include "net/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace cs2p {

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner, FaultSpec spec, std::uint64_t seed,
    std::shared_ptr<FaultCounters> counters)
    : inner_(std::move(inner)),
      spec_(spec),
      rng_(seed),
      counters_(std::move(counters)) {
  if (!counters_) counters_ = std::make_shared<FaultCounters>();
}

void FaultInjectingTransport::maybe_delay() {
  if (spec_.delay_ms > 0 && rng_.bernoulli(spec_.delay)) {
    counters_->delays_injected.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(spec_.delay_ms));
  }
}

void FaultInjectingTransport::inject_reset(const char* where) {
  counters_->resets_injected.fetch_add(1, std::memory_order_relaxed);
  inner_->shutdown();
  throw ConnectionError(std::string("fault injection: reset on ") + where);
}

void FaultInjectingTransport::send(std::span<const std::byte> data) {
  counters_->sends.fetch_add(1, std::memory_order_relaxed);
  maybe_delay();
  if (rng_.bernoulli(spec_.reset_on_send)) inject_reset("send");

  std::vector<std::byte> corrupted;
  if (!data.empty() && rng_.bernoulli(spec_.corrupt_on_send)) {
    counters_->corruptions_injected.fetch_add(1, std::memory_order_relaxed);
    corrupted.assign(data.begin(), data.end());
    const std::size_t index = rng_.uniform_index(corrupted.size());
    corrupted[index] ^= static_cast<std::byte>(1 + rng_.uniform_index(255));
    data = corrupted;
  }

  if (spec_.max_io_chunk == 0) {
    inner_->send(data);
    return;
  }
  // Short writes: hand the stream to the inner transport piecemeal so the
  // receiver's reassembly loop sees genuinely partial transfers.
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t n =
        std::min(spec_.max_io_chunk, data.size() - offset);
    inner_->send(data.subspan(offset, n));
    offset += n;
  }
}

bool FaultInjectingTransport::recv(std::span<std::byte> data) {
  counters_->recvs.fetch_add(1, std::memory_order_relaxed);
  maybe_delay();
  if (rng_.bernoulli(spec_.reset_on_recv)) inject_reset("recv");

  if (spec_.max_io_chunk == 0) return inner_->recv(data);
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t n = std::min(spec_.max_io_chunk, data.size() - offset);
    if (!inner_->recv(data.subspan(offset, n))) {
      if (offset == 0) return false;
      throw ConnectionError("fault injection: EOF mid-message");
    }
    offset += n;
  }
  return true;
}

void FaultInjectingTransport::shutdown() noexcept { inner_->shutdown(); }

TransportFactory fault_injecting_connector(
    TransportFactory inner, FaultSpec spec, std::uint64_t seed,
    std::shared_ptr<FaultCounters> counters) {
  if (!counters) counters = std::make_shared<FaultCounters>();
  // The factory is called under the client's lock, but guard the shared RNG
  // anyway so multiple clients can share one connector.
  auto rng = std::make_shared<Rng>(seed);
  auto rng_mutex = std::make_shared<std::mutex>();
  return [inner = std::move(inner), spec, counters, rng,
          rng_mutex]() -> std::unique_ptr<Transport> {
    std::uint64_t child_seed = 0;
    bool refuse = false;
    {
      std::scoped_lock lock(*rng_mutex);
      refuse = rng->bernoulli(spec.refuse_connect);
      child_seed = (*rng)();
    }
    if (refuse) {
      counters->connects_refused.fetch_add(1, std::memory_order_relaxed);
      throw ConnectionError("fault injection: connect refused");
    }
    return std::make_unique<FaultInjectingTransport>(inner(), spec, child_seed,
                                                     counters);
  };
}

}  // namespace cs2p
