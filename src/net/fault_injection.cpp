#include "net/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace cs2p {

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> inner, FaultSpec spec, std::uint64_t seed,
    std::shared_ptr<FaultCounters> counters)
    : inner_(std::move(inner)),
      spec_(spec),
      rng_(seed),
      counters_(std::move(counters)) {
  if (!counters_) counters_ = std::make_shared<FaultCounters>();
}

void FaultInjectingTransport::maybe_delay() {
  if (spec_.delay_ms > 0 && rng_.bernoulli(spec_.delay)) {
    counters_->delays_injected.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(spec_.delay_ms));
  }
}

void FaultInjectingTransport::inject_reset(const char* where) {
  counters_->resets_injected.fetch_add(1, std::memory_order_relaxed);
  inner_->shutdown();
  throw ConnectionError(std::string("fault injection: reset on ") + where);
}

void FaultInjectingTransport::send(std::span<const std::byte> data) {
  counters_->sends.fetch_add(1, std::memory_order_relaxed);
  maybe_delay();
  if (rng_.bernoulli(spec_.reset_on_send)) inject_reset("send");

  std::vector<std::byte> corrupted;
  if (!data.empty() && rng_.bernoulli(spec_.corrupt_on_send)) {
    counters_->corruptions_injected.fetch_add(1, std::memory_order_relaxed);
    corrupted.assign(data.begin(), data.end());
    const std::size_t index = rng_.uniform_index(corrupted.size());
    corrupted[index] ^= static_cast<std::byte>(1 + rng_.uniform_index(255));
    data = corrupted;
  }

  if (spec_.max_io_chunk == 0) {
    inner_->send(data);
    return;
  }
  // Short writes: hand the stream to the inner transport piecemeal so the
  // receiver's reassembly loop sees genuinely partial transfers.
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t n =
        std::min(spec_.max_io_chunk, data.size() - offset);
    inner_->send(data.subspan(offset, n));
    offset += n;
  }
}

bool FaultInjectingTransport::recv(std::span<std::byte> data) {
  counters_->recvs.fetch_add(1, std::memory_order_relaxed);
  maybe_delay();
  if (rng_.bernoulli(spec_.reset_on_recv)) inject_reset("recv");

  if (spec_.max_io_chunk == 0) return inner_->recv(data);
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t n = std::min(spec_.max_io_chunk, data.size() - offset);
    if (!inner_->recv(data.subspan(offset, n))) {
      if (offset == 0) return false;
      throw ConnectionError("fault injection: EOF mid-message");
    }
    offset += n;
  }
  return true;
}

void FaultInjectingTransport::shutdown() noexcept { inner_->shutdown(); }

TransportFactory fault_injecting_connector(
    TransportFactory inner, FaultSpec spec, std::uint64_t seed,
    std::shared_ptr<FaultCounters> counters) {
  if (!counters) counters = std::make_shared<FaultCounters>();
  // The factory is called under the client's lock, but guard the shared RNG
  // anyway so multiple clients can share one connector.
  auto rng = std::make_shared<Rng>(seed);
  auto rng_mutex = std::make_shared<std::mutex>();
  return [inner = std::move(inner), spec, counters, rng,
          rng_mutex]() -> std::unique_ptr<Transport> {
    std::uint64_t child_seed = 0;
    bool refuse = false;
    {
      std::scoped_lock lock(*rng_mutex);
      refuse = rng->bernoulli(spec.refuse_connect);
      child_seed = (*rng)();
    }
    if (refuse) {
      counters->connects_refused.fetch_add(1, std::memory_order_relaxed);
      throw ConnectionError("fault injection: connect refused");
    }
    return std::make_unique<FaultInjectingTransport>(inner(), spec, child_seed,
                                                     counters);
  };
}

SlowClientTransport::SlowClientTransport(std::unique_ptr<Transport> inner,
                                         int recv_delay_ms)
    : inner_(std::move(inner)), recv_delay_ms_(recv_delay_ms) {}

void SlowClientTransport::send(std::span<const std::byte> data) {
  inner_->send(data);
}

bool SlowClientTransport::recv(std::span<std::byte> data) {
  if (recv_delay_ms_ > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(recv_delay_ms_));
  return inner_->recv(data);
}

void SlowClientTransport::shutdown() noexcept { inner_->shutdown(); }

TransportFactory slow_client_connector(TransportFactory inner,
                                       int recv_delay_ms) {
  return [inner = std::move(inner),
          recv_delay_ms]() -> std::unique_ptr<Transport> {
    return std::make_unique<SlowClientTransport>(inner(), recv_delay_ms);
  };
}

ChaosReplica::ChaosReplica(
    std::function<std::shared_ptr<const PredictorModel>()> make_model,
    ServerConfig config, ReplicaFaultSpec fault)
    : make_model_(std::move(make_model)),
      config_(std::move(config)),
      fault_(fault) {
  if (!make_model_)
    throw std::invalid_argument("ChaosReplica: null model factory");
  std::scoped_lock lock(mutex_);
  // First incarnation binds an ephemeral port; every resurrection reuses it
  // (listen_loopback sets SO_REUSEADDR, so the rebind is immediate).
  server_ = std::make_unique<PredictionServer>(make_model_(), config_);
  port_ = server_->port();
  requests_at_birth_ = server_->requests_handled();
}

ChaosReplica::~ChaosReplica() {
  stopping_.store(true);
  if (monitor_.joinable()) monitor_.join();
}

void ChaosReplica::poll() {
  std::scoped_lock lock(mutex_);
  if (server_) {
    if (fault_.die_after_requests == 0) return;
    const std::uint64_t served =
        server_->requests_handled() - requests_at_birth_;
    if (served < fault_.die_after_requests) return;
    server_.reset();
    died_at_ = Clock::now();
    kills_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!fault_.resurrect) return;
  if (Clock::now() - died_at_ < std::chrono::milliseconds(fault_.dead_for_ms))
    return;
  locked_resurrect();
}

void ChaosReplica::start_monitor() {
  if (monitor_.joinable()) return;
  monitor_ = std::thread([this] {
    while (!stopping_.load()) {
      poll();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
}

bool ChaosReplica::alive() const {
  std::scoped_lock lock(mutex_);
  return server_ != nullptr;
}

void ChaosReplica::kill_now() {
  std::scoped_lock lock(mutex_);
  if (!server_) return;
  server_.reset();
  died_at_ = Clock::now();
  kills_.fetch_add(1, std::memory_order_relaxed);
}

void ChaosReplica::resurrect_now() {
  std::scoped_lock lock(mutex_);
  if (server_) return;
  locked_resurrect();
}

bool ChaosReplica::drain_and_restart(int drain_deadline_ms) {
  {
    std::scoped_lock lock(mutex_);
    if (!server_) return false;
    server_->begin_drain();
  }
  drains_.fetch_add(1, std::memory_order_relaxed);
  // Wait in short lock grabs: alive()/poll()/server() callers (and the
  // monitor thread) must not stall behind a multi-second drain.
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(std::max(0, drain_deadline_ms));
  bool clean = false;
  while (true) {
    {
      std::scoped_lock lock(mutex_);
      if (!server_) return false;  // killed concurrently; nothing to restart
      if (server_->drained()) clean = true;
    }
    if (clean || Clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::scoped_lock lock(mutex_);
  if (!server_) return false;
  // Publish the drain-duration gauge before teardown (wait_drained(0) is a
  // non-blocking metrics flush once drained).
  server_->wait_drained(0);
  server_.reset();
  died_at_ = Clock::now();
  kills_.fetch_add(1, std::memory_order_relaxed);
  locked_resurrect();
  return clean;
}

void ChaosReplica::locked_resurrect() {
  server_ = std::make_unique<PredictionServer>(make_model_(), config_, port_);
  requests_at_birth_ = server_->requests_handled();
  resurrections_.fetch_add(1, std::memory_order_relaxed);
}

PredictionServer* ChaosReplica::server() {
  std::scoped_lock lock(mutex_);
  return server_.get();
}

}  // namespace cs2p
