// Trace-driven video player simulator (paper §7.1: "a custom simulator
// simulating the video download and playback process and the buffer
// dynamics; the throughput changes according to previously recorded
// traces").
//
// Time model: one chunk per epoch, matching the paper's setup ("the chunk
// size is equal to the epoch length"). Chunk k downloads at the trace's
// epoch-k throughput, held constant within the epoch; past the end of the
// trace the last value holds. This chunk-indexed model keeps the simulator,
// FastMPC's lookahead and the offline-optimal DP on identical dynamics, so
// n-QoE comparisons are apples-to-apples.
//
// Buffer dynamics per chunk k with buffer b_k (seconds of video):
//   download time  d_k = bits(R_k) / throughput_k
//   rebuffer_k     = max(0, d_k - b_k)          (0 for k = 0: startup)
//   b_{k+1}        = max(b_k - d_k, 0) + chunk_seconds, capped at capacity
//                    (the player idles before the next request when full).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "predictors/predictor.h"
#include "qoe/qoe.h"

namespace cs2p {

/// The encoded video (defaults mirror §7.1: the 260-s Envivio DASH test
/// clip, bitrate ladder {350, 600, 1000, 2000, 3000} kbps, 6-s chunks,
/// 30-s buffer).
struct VideoSpec {
  std::vector<double> bitrates_kbps = {350, 600, 1000, 2000, 3000};
  double chunk_seconds = 6.0;
  std::size_t num_chunks = 44;  ///< ~260 s
  double buffer_capacity_seconds = 30.0;

  double max_bitrate() const noexcept {
    return bitrates_kbps.empty() ? 0.0 : bitrates_kbps.back();
  }
};

/// What an ABR controller sees at each decision point.
struct AbrState {
  std::size_t chunk_index = 0;         ///< chunk being decided (0 = first)
  double buffer_seconds = 0.0;         ///< current buffer occupancy
  int last_bitrate_index = -1;         ///< -1 before the first chunk
  double last_throughput_mbps = 0.0;   ///< measured during previous chunk
  const SessionPredictor* predictor = nullptr;  ///< may be null (e.g. BB)
};

/// Bitrate-adaptation policy. Implementations live in src/abr.
class AbrController {
 public:
  virtual ~AbrController() = default;
  virtual std::string name() const = 0;

  /// Returns the bitrate-ladder index for the chunk described by `state`.
  /// Must be < video.bitrates_kbps.size().
  virtual std::size_t select_bitrate(const AbrState& state,
                                     const VideoSpec& video) = 0;

  /// Called when a new session starts (controllers may keep state).
  virtual void reset() {}
};

/// Throughput trace with hold-last-value extension.
class ThroughputTrace {
 public:
  explicit ThroughputTrace(std::vector<double> epochs_mbps);

  /// Throughput (Mbps) governing chunk `k`'s download.
  double at(std::size_t k) const noexcept;
  std::size_t length() const noexcept { return epochs_mbps_.size(); }
  const std::vector<double>& samples() const noexcept { return epochs_mbps_; }

 private:
  std::vector<double> epochs_mbps_;
};

/// Simulates one playback. `predictor` may be null for predictor-free
/// controllers; when present, it is fed the measured per-chunk throughput
/// after each download, exactly like a real player integration (§5.3).
PlaybackResult simulate_playback(const VideoSpec& video, const ThroughputTrace& trace,
                                 AbrController& controller,
                                 SessionPredictor* predictor);

}  // namespace cs2p
