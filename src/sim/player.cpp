#include "sim/player.h"

#include <algorithm>
#include <stdexcept>

namespace cs2p {

ThroughputTrace::ThroughputTrace(std::vector<double> epochs_mbps)
    : epochs_mbps_(std::move(epochs_mbps)) {
  if (epochs_mbps_.empty())
    throw std::invalid_argument("ThroughputTrace: empty trace");
  for (double w : epochs_mbps_)
    if (!(w > 0.0))
      throw std::invalid_argument("ThroughputTrace: non-positive throughput sample");
}

double ThroughputTrace::at(std::size_t k) const noexcept {
  return epochs_mbps_[std::min(k, epochs_mbps_.size() - 1)];
}

PlaybackResult simulate_playback(const VideoSpec& video, const ThroughputTrace& trace,
                                 AbrController& controller,
                                 SessionPredictor* predictor) {
  if (video.bitrates_kbps.empty() || video.num_chunks == 0 ||
      video.chunk_seconds <= 0.0) {
    throw std::invalid_argument("simulate_playback: malformed video spec");
  }

  controller.reset();
  PlaybackResult result;
  result.chunks.reserve(video.num_chunks);

  double buffer = 0.0;
  int last_bitrate_index = -1;
  double last_throughput = 0.0;

  for (std::size_t k = 0; k < video.num_chunks; ++k) {
    AbrState state;
    state.chunk_index = k;
    state.buffer_seconds = buffer;
    state.last_bitrate_index = last_bitrate_index;
    state.last_throughput_mbps = last_throughput;
    state.predictor = predictor;

    const std::size_t choice = controller.select_bitrate(state, video);
    if (choice >= video.bitrates_kbps.size())
      throw std::out_of_range("simulate_playback: controller chose invalid bitrate");

    const double bitrate_kbps = video.bitrates_kbps[choice];
    const double throughput_mbps = trace.at(k);
    const double chunk_megabits = bitrate_kbps * video.chunk_seconds / 1000.0;
    const double download_seconds = chunk_megabits / throughput_mbps;

    ChunkRecord record;
    record.bitrate_kbps = bitrate_kbps;
    record.download_seconds = download_seconds;
    record.actual_throughput_mbps = throughput_mbps;
    if (predictor != nullptr) {
      record.predicted_throughput_mbps =
          k == 0 ? predictor->predict_initial().value_or(0.0) : predictor->predict(1);
      record.serve_flags = predictor->serve_flags();
      if (record.serve_flags != 0) ++result.degraded_chunks;
    }

    if (k == 0) {
      // First chunk: the wait is startup delay, not rebuffering.
      result.startup_delay_seconds = download_seconds;
      buffer = video.chunk_seconds;
    } else {
      record.rebuffer_seconds = std::max(0.0, download_seconds - buffer);
      buffer = std::max(buffer - download_seconds, 0.0) + video.chunk_seconds;
    }
    buffer = std::min(buffer, video.buffer_capacity_seconds);

    // Feed the measured throughput to the predictor, as the real player
    // reports the last epoch's throughput to the prediction engine (§6).
    if (predictor != nullptr) predictor->observe(throughput_mbps);

    last_bitrate_index = static_cast<int>(choice);
    last_throughput = throughput_mbps;
    result.chunks.push_back(record);
  }
  if (predictor != nullptr) result.predictor_degraded = predictor->degraded();
  return result;
}

}  // namespace cs2p
