// Batched HMM inference: advance/predict many sessions sharing one model in
// a single state-matrix walk (DESIGN.md §16).
//
// The scalar filter's per-session cost is dominated by walking P once per
// session. When B sessions share a kernel, staging their beliefs column-major
// (buf[state * B + session]) turns propagation into one pass over P whose
// inner loop is a contiguous span of B lanes — each transition entry is
// loaded once per batch instead of once per session, and the lane loop
// auto-vectorizes.
//
// Numerical contract: observe() is bit-identical to OnlineHmmFilter — the
// per-(session, state) accumulation runs in the same i-ascending order as
// the scalar propagate, emissions use the same expression tree, and the
// degenerate-likelihood boundary (sum <= 0 or non-finite -> uniform reset +
// counted update) is the same branch on the same double. predict() extracts
// from the unnormalized projected mass (normalization is a positive per-lane
// scale): the MLE-state rule is exactly the scalar argmax, and the posterior
// mean divides once at the end, landing within a couple of ulp of the scalar
// result. The equivalence property test (tests/test_batch_filter.cpp) holds
// every observable to 1e-9.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "hmm/kernel.h"
#include "hmm/online_filter.h"

namespace cs2p {

/// Reusable batch workspace. Not thread-safe: one instance per worker
/// thread; scratch buffers grow to the high-water batch width and are
/// reused across calls.
class BatchHmmFilter {
 public:
  BatchHmmFilter() = default;

  /// Advances every filter by one forward step on its observation —
  /// equivalent to filters[b]->observe(observations[b]) for all b, with the
  /// belief/log-likelihood/degenerate-count/observation-count side effects.
  /// Every filter must run on `kernel` (share the same kernel pointer), and
  /// a filter must appear at most once per call (a repeated session has a
  /// sequential dependence a gather/scatter batch cannot honor — callers
  /// route duplicates through the scalar path).
  void observe(const HmmKernel& kernel,
               std::span<OnlineHmmFilter* const> filters,
               std::span<const double> observations);

  /// out[b] = filters[b]->predict(steps_ahead) without mutating any filter.
  /// Same sharing/uniqueness requirements as observe(); steps_ahead >= 1.
  void predict(const HmmKernel& kernel,
               std::span<const OnlineHmmFilter* const> filters,
               unsigned steps_ahead, std::span<double> out);

 private:
  struct AlignedFree {
    void operator()(double* p) const noexcept;
  };

  /// Ensures the scratch block holds `doubles` and returns its (64-byte
  /// aligned) base. Contents are not preserved across growth — pure scratch.
  double* ensure_scratch(std::size_t doubles);

  /// One cache-line-aligned allocation, carved per call into column-major
  /// staging (element (state x, lane b) at [x * padded_width + b]) plus the
  /// lane-indexed tail scratch (sums / posterior-mean / argmax-value rows).
  /// The lane count is padded to a multiple of 8 so every row starts on a
  /// cache line and the lane loops run whole vectors with no tail.
  std::unique_ptr<double[], AlignedFree> block_;
  std::size_t block_capacity_ = 0;
  std::vector<std::size_t> best_idx_;
};

}  // namespace cs2p
