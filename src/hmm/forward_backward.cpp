#include "hmm/forward_backward.h"

#include <cmath>
#include <stdexcept>

namespace cs2p {

ForwardResult forward(const GaussianHmm& model, std::span<const double> obs) {
  if (obs.empty()) throw std::invalid_argument("forward: empty observation sequence");
  const std::size_t n = model.num_states();
  const std::size_t t_len = obs.size();

  ForwardResult out;
  out.alpha = Matrix(t_len, n);
  out.scale.resize(t_len);

  // t = 0: alpha_0 = pi .* e(w_0), normalised.
  Vec e = model.emission_probabilities(obs[0]);
  Vec alpha = hadamard(model.initial, e);
  double c = normalize_in_place(alpha);
  // A zero normaliser means the first observation is impossible under every
  // state; normalize_in_place already reset alpha to uniform. Use a tiny
  // scale so the log-likelihood reflects the surprise without being -inf.
  out.scale[0] = c > 0.0 ? c : 1e-300;
  for (std::size_t i = 0; i < n; ++i) out.alpha(0, i) = alpha[i];

  for (std::size_t t = 1; t < t_len; ++t) {
    Vec propagated = vec_mat(alpha, model.transition);
    e = model.emission_probabilities(obs[t]);
    alpha = hadamard(propagated, e);
    c = normalize_in_place(alpha);
    out.scale[t] = c > 0.0 ? c : 1e-300;
    for (std::size_t i = 0; i < n; ++i) out.alpha(t, i) = alpha[i];
  }

  out.log_likelihood = 0.0;
  for (double s : out.scale) out.log_likelihood += std::log(s);
  return out;
}

BackwardResult backward(const GaussianHmm& model, std::span<const double> obs,
                        std::span<const double> scale) {
  if (obs.empty()) throw std::invalid_argument("backward: empty observation sequence");
  if (scale.size() != obs.size())
    throw std::invalid_argument("backward: scale length mismatch");
  const std::size_t n = model.num_states();
  const std::size_t t_len = obs.size();

  BackwardResult out;
  out.beta = Matrix(t_len, n);
  for (std::size_t i = 0; i < n; ++i) out.beta(t_len - 1, i) = 1.0;

  for (std::size_t t = t_len - 1; t-- > 0;) {
    const Vec e = model.emission_probabilities(obs[t + 1]);
    const double c = scale[t + 1] > 0.0 ? scale[t + 1] : 1e-300;
    for (std::size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        sum += model.transition(i, j) * e[j] * out.beta(t + 1, j);
      out.beta(t, i) = sum / c;
    }
  }
  return out;
}

double log_likelihood(const GaussianHmm& model, std::span<const double> obs) {
  return forward(model, obs).log_likelihood;
}

Matrix posterior_marginals(const GaussianHmm& model, std::span<const double> obs) {
  const ForwardResult fwd = forward(model, obs);
  const BackwardResult bwd = backward(model, obs, fwd.scale);
  const std::size_t n = model.num_states();
  Matrix gamma(obs.size(), n);
  for (std::size_t t = 0; t < obs.size(); ++t) {
    Vec g(n);
    for (std::size_t i = 0; i < n; ++i) g[i] = fwd.alpha(t, i) * bwd.beta(t, i);
    normalize_in_place(g);
    for (std::size_t i = 0; i < n; ++i) gamma(t, i) = g[i];
  }
  return gamma;
}

}  // namespace cs2p
