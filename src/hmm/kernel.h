// Contiguous SoA inference kernel for a frozen GaussianHmm (DESIGN.md §16).
//
// The paper's deployment argument (§6) is that HMM prediction is "two matrix
// multiplications" per epoch — cheap enough for the request path. Making that
// true at >1M predictions/s requires the per-model constants to live in one
// contiguous, cache-line-aligned block instead of scattered heap nodes:
//
//   mu[n] | sigma[n] | log_sigma[n] | initial[n] | P^1 | P^2 | ... | P^k
//
// so belief propagation (pi · P^tau) and Gaussian emission evaluation are
// tight auto-vectorizable loops over flat arrays. One kernel is built per
// model and shared (read-only) by every session pinned to that model — the
// natural unit for BatchHmmFilter, which walks the state matrix once for a
// whole batch of sessions.
//
// Numerical contract: every kernel operation reproduces the historical
// Vec/Matrix scalar path bit-for-bit. Powers are computed with Matrix::pow
// (the same repeated-squaring the scalar filter used), the emission formula
// mirrors gaussian_log_pdf's expression tree exactly, and propagation keeps
// vec_mat's i-outer/j-inner accumulation order. The kernel sources compile
// with -ffp-contract=off (see src/hmm/CMakeLists.txt) so FMA contraction
// cannot silently split the scalar and batched paths.
#pragma once

#include <cstddef>
#include <memory>

#include "hmm/model.h"

namespace cs2p {

class HmmKernel {
 public:
  /// Horizon powers P^1..P^kMaxCachedPowers are precomputed at build time
  /// (subject to the memory cap below); longer horizons fall back to an
  /// on-demand Matrix::pow with identical results.
  static constexpr unsigned kMaxCachedPowers = 16;
  /// Upper bound on the bytes spent caching powers per kernel — a 256-state
  /// model caches fewer horizons rather than megabytes of matrices.
  static constexpr std::size_t kMaxPowerCacheBytes = 256 * 1024;

  /// Validates `model` (same 1e-3 tolerance the filter constructor enforced)
  /// and freezes it into the SoA block. Throws std::invalid_argument on an
  /// invalid model. The result is immutable and safe to share across
  /// threads without synchronization.
  static std::shared_ptr<const HmmKernel> create(GaussianHmm model);

  std::size_t num_states() const noexcept { return n_; }
  const GaussianHmm& model() const noexcept { return model_; }
  unsigned cached_powers() const noexcept { return cached_powers_; }

  const double* mu() const noexcept { return mu_; }
  /// Emission sigmas, floored at kMinEmissionSigma (util/gaussian.h).
  const double* sigma() const noexcept { return sigma_; }
  /// log(sigma()) — the per-state constant of the log-density.
  const double* log_sigma() const noexcept { return log_sigma_; }
  /// 0.5 * log(2 pi), hoisted out of the emission loop.
  double half_log_2pi() const noexcept { return half_log_2pi_; }
  const double* initial() const noexcept { return initial_; }

  /// Row-major P^steps for 1 <= steps <= cached_powers(); nullptr beyond
  /// the cache (callers fall back to propagate_steps / Matrix::pow).
  const double* power(unsigned steps) const noexcept {
    if (steps == 0 || steps > cached_powers_) return nullptr;
    return powers_ + (static_cast<std::size_t>(steps) - 1) * power_stride_;
  }

  /// out[j] = sum_i in[i] * p[i*n + j] — vec_mat's accumulation order, with
  /// `p` one of the cached powers (or any row-major n x n matrix).
  void propagate(const double* in, const double* p, double* out) const noexcept;

  /// out = in · P^steps, served from the power cache when possible and
  /// Matrix::pow beyond it. Requires steps >= 1.
  void propagate_steps(const double* in, unsigned steps, double* out) const;

  /// e[i] = N(w; mu_i, sigma_i^2), bit-identical to gaussian_pdf.
  void emissions(double w, double* e) const noexcept;

 private:
  HmmKernel() = default;

  struct AlignedFree {
    void operator()(double* p) const noexcept;
  };

  GaussianHmm model_;
  std::size_t n_ = 0;
  std::size_t power_stride_ = 0;  ///< doubles per cached power (n*n padded)
  unsigned cached_powers_ = 0;
  double half_log_2pi_ = 0.0;
  /// One 64-byte-aligned allocation carved into the sections below.
  std::unique_ptr<double[], AlignedFree> block_;
  const double* mu_ = nullptr;
  const double* sigma_ = nullptr;
  const double* log_sigma_ = nullptr;
  const double* initial_ = nullptr;
  const double* powers_ = nullptr;
};

}  // namespace cs2p
