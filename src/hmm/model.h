// Gaussian-emission Hidden Markov Model (paper §5.2).
//
// The throughput W_t of a session is modelled as emitted from a hidden state
// X_t in {x_1..x_N} that evolves as a Markov chain: intuitively, the state is
// "how many flows share the bottleneck" and the emission is the share of
// capacity the session observes, W_t | X_t = x ~ N(mu_x, sigma_x^2).
//
// The model is deliberately tiny: the paper stresses a trained HMM occupies
// < 5 KB and a prediction costs two matrix multiplications, so that clients
// can run their own copies (§5.3).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/matrix.h"

namespace cs2p {

/// Serialized model text that does not decode into a valid GaussianHmm:
/// bad header, truncation, NaN/Inf parameters, non-stochastic rows,
/// non-positive sigmas, or an absurd state count. Derives from
/// std::runtime_error so pre-existing catch sites keep working; new code
/// should catch this type to distinguish "bytes are bad" from other
/// failures (a corrupt snapshot must never construct a model).
class ModelParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Upper bound on the deserialized state count. The paper's models use
/// N = 6; anything near this limit is a corrupt or hostile payload, and
/// rejecting early prevents multi-GB allocations from a flipped length.
inline constexpr std::size_t kMaxHmmStates = 256;

/// One hidden state's Gaussian emission parameters, in Mbps.
struct EmissionState {
  double mean = 0.0;
  double sigma = 1.0;
};

/// A fully-parameterised HMM: theta = {pi_0, P, {(mu_x, sigma_x)}}.
struct GaussianHmm {
  Vec initial;                        ///< pi_0, length N, sums to 1
  Matrix transition;                  ///< P, N x N, rows sum to 1
  std::vector<EmissionState> states;  ///< length N

  std::size_t num_states() const noexcept { return states.size(); }

  /// Emission probability vector e(w) = (f(w | x_1), ..., f(w | x_N)).
  Vec emission_probabilities(double w) const;

  /// Same in log space (used by forward-backward for numerical work).
  Vec emission_log_probabilities(double w) const;

  /// Verifies structural invariants: matching sizes, every parameter finite
  /// (NaN/Inf anywhere is rejected — NaN compares false, so it would
  /// otherwise slip through stochasticity sums), stochastic rows/initial
  /// (within `tol`), positive sigmas. Throws std::invalid_argument otherwise.
  void validate(double tol = 1e-6) const;

  /// Serialized size in bytes (the <5 KB footprint claim of §5.3).
  std::size_t byte_size() const noexcept;

  /// Stationary distribution of P (power iteration). Useful as a fallback
  /// prior when a session starts with no observations.
  Vec stationary_distribution(int iterations = 200) const;
};

/// Text serialization (versioned, line oriented). Round-trips exactly enough
/// precision for prediction equality in tests.
std::string serialize_hmm(const GaussianHmm& model);

/// Inverse of serialize_hmm. Throws ModelParseError on any malformed input:
/// bad magic/version, truncation, state count of 0 or > kMaxHmmStates, and
/// any parameter set that fails GaussianHmm::validate (NaN/Inf entries,
/// non-stochastic rows, sigma <= 0). Never constructs an invalid model.
GaussianHmm deserialize_hmm(const std::string& text);

}  // namespace cs2p
