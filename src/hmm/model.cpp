#include "hmm/model.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/gaussian.h"

namespace cs2p {

Vec GaussianHmm::emission_probabilities(double w) const {
  Vec e(states.size());
  for (std::size_t i = 0; i < states.size(); ++i)
    e[i] = gaussian_pdf(w, states[i].mean, states[i].sigma);
  return e;
}

Vec GaussianHmm::emission_log_probabilities(double w) const {
  Vec e(states.size());
  for (std::size_t i = 0; i < states.size(); ++i)
    e[i] = gaussian_log_pdf(w, states[i].mean, states[i].sigma);
  return e;
}

void GaussianHmm::validate(double tol) const {
  const std::size_t n = states.size();
  if (n == 0) throw std::invalid_argument("GaussianHmm: no states");
  if (initial.size() != n)
    throw std::invalid_argument("GaussianHmm: initial size != num states");
  if (transition.rows() != n || transition.cols() != n)
    throw std::invalid_argument("GaussianHmm: transition shape mismatch");

  // Finiteness first: NaN compares false against every threshold below, so
  // a NaN entry would otherwise sail through the stochasticity checks.
  double pi_sum = 0.0;
  for (double p : initial) {
    if (!std::isfinite(p))
      throw std::invalid_argument("GaussianHmm: non-finite initial prob");
    if (p < -tol) throw std::invalid_argument("GaussianHmm: negative initial prob");
    pi_sum += p;
  }
  if (std::abs(pi_sum - 1.0) > tol)
    throw std::invalid_argument("GaussianHmm: initial distribution not stochastic");

  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!std::isfinite(transition(i, j)))
        throw std::invalid_argument("GaussianHmm: non-finite transition prob");
      if (transition(i, j) < -tol)
        throw std::invalid_argument("GaussianHmm: negative transition prob");
      row_sum += transition(i, j);
    }
    if (std::abs(row_sum - 1.0) > tol)
      throw std::invalid_argument("GaussianHmm: transition row not stochastic");
  }

  for (const auto& s : states) {
    if (!(s.sigma > 0.0) || !std::isfinite(s.sigma) || !std::isfinite(s.mean))
      throw std::invalid_argument("GaussianHmm: bad emission parameters");
  }
}

std::size_t GaussianHmm::byte_size() const noexcept {
  const std::size_t n = states.size();
  // pi (N) + P (N^2) + (mu, sigma) per state, all doubles.
  return sizeof(double) * (n + n * n + 2 * n);
}

Vec GaussianHmm::stationary_distribution(int iterations) const {
  Vec pi(states.size(), 1.0 / static_cast<double>(states.size()));
  for (int it = 0; it < iterations; ++it) {
    Vec next = vec_mat(pi, transition);
    normalize_in_place(next);
    double diff = 0.0;
    for (std::size_t i = 0; i < pi.size(); ++i)
      diff = std::max(diff, std::abs(next[i] - pi[i]));
    pi = std::move(next);
    if (diff < 1e-12) break;
  }
  return pi;
}

std::string serialize_hmm(const GaussianHmm& model) {
  std::ostringstream os;
  os.precision(17);
  const std::size_t n = model.num_states();
  os << "cs2p-hmm-v1 " << n << "\n";
  os << "initial";
  for (double p : model.initial) os << ' ' << p;
  os << "\n";
  for (std::size_t i = 0; i < n; ++i) {
    os << "row";
    for (std::size_t j = 0; j < n; ++j) os << ' ' << model.transition(i, j);
    os << "\n";
  }
  for (const auto& s : model.states) os << "state " << s.mean << ' ' << s.sigma << "\n";
  return os.str();
}

GaussianHmm deserialize_hmm(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  std::size_t n = 0;
  if (!(is >> magic >> n) || magic != "cs2p-hmm-v1" || n == 0)
    throw ModelParseError("deserialize_hmm: bad header");
  if (n > kMaxHmmStates)
    throw ModelParseError("deserialize_hmm: absurd state count " +
                          std::to_string(n));

  GaussianHmm model;
  model.initial.resize(n);
  model.transition = Matrix(n, n);
  model.states.resize(n);

  std::string tag;
  if (!(is >> tag) || tag != "initial")
    throw ModelParseError("deserialize_hmm: expected initial");
  for (double& p : model.initial)
    if (!(is >> p)) throw ModelParseError("deserialize_hmm: truncated initial");

  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> tag) || tag != "row")
      throw ModelParseError("deserialize_hmm: expected row");
    for (std::size_t j = 0; j < n; ++j)
      if (!(is >> model.transition(i, j)))
        throw ModelParseError("deserialize_hmm: truncated row");
  }
  for (auto& s : model.states) {
    if (!(is >> tag) || tag != "state")
      throw ModelParseError("deserialize_hmm: expected state");
    if (!(is >> s.mean >> s.sigma))
      throw ModelParseError("deserialize_hmm: truncated state");
  }
  try {
    model.validate(1e-3);
  } catch (const std::invalid_argument& e) {
    throw ModelParseError(std::string("deserialize_hmm: ") + e.what());
  }
  return model;
}

}  // namespace cs2p
