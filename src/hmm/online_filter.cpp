#include "hmm/online_filter.h"

#include <cmath>
#include <stdexcept>

namespace cs2p {

OnlineHmmFilter::OnlineHmmFilter(GaussianHmm model, PredictionRule rule)
    : model_(std::move(model)), rule_(rule) {
  model_.validate(1e-3);
  belief_ = model_.initial;
}

double OnlineHmmFilter::predict(unsigned steps_ahead) const {
  if (steps_ahead == 0)
    throw std::invalid_argument("OnlineHmmFilter::predict: steps_ahead must be >= 1");
  // pi_{t+tau|t} = pi_{t|t} P^tau. For tau == 1 this is a single
  // vector-matrix product; the generic path uses repeated squaring.
  Vec projected = steps_ahead == 1
                      ? vec_mat(belief_, model_.transition)
                      : vec_mat(belief_, model_.transition.pow(steps_ahead));
  normalize_in_place(projected);
  if (rule_ == PredictionRule::kMleState) {
    return model_.states[argmax(projected)].mean;
  }
  double expectation = 0.0;
  for (std::size_t i = 0; i < projected.size(); ++i)
    expectation += projected[i] * model_.states[i].mean;
  return expectation;
}

OnlineHmmFilter::Forecast OnlineHmmFilter::predict_distribution(
    unsigned steps_ahead) const {
  if (steps_ahead == 0)
    throw std::invalid_argument(
        "OnlineHmmFilter::predict_distribution: steps_ahead must be >= 1");
  Vec projected = steps_ahead == 1
                      ? vec_mat(belief_, model_.transition)
                      : vec_mat(belief_, model_.transition.pow(steps_ahead));
  normalize_in_place(projected);

  // Mixture moments: E[W] = sum p_x mu_x;
  // Var[W] = sum p_x (sigma_x^2 + mu_x^2) - E[W]^2.
  Forecast out;
  double second_moment = 0.0;
  for (std::size_t i = 0; i < projected.size(); ++i) {
    const auto& state = model_.states[i];
    out.mean += projected[i] * state.mean;
    second_moment +=
        projected[i] * (state.sigma * state.sigma + state.mean * state.mean);
  }
  const double variance = std::max(0.0, second_moment - out.mean * out.mean);
  out.std_dev = std::sqrt(variance);
  return out;
}

void OnlineHmmFilter::observe(double throughput) {
  Vec propagated = observations_ == 0 ? belief_ : vec_mat(belief_, model_.transition);
  Vec corrected = hadamard(propagated, model_.emission_probabilities(throughput));
  // The un-normalized mass sum_x pi_{t|t-1}(x) e_x(w_t) IS the one-step
  // predictive likelihood p(w_t | w_1..t-1): record it before normalizing
  // so guardrails can score how surprising this observation was.
  const double likelihood = vec_sum(corrected);
  if (likelihood > 0.0 && std::isfinite(likelihood)) {
    last_log_likelihood_ = std::log(likelihood);
  } else {
    // Every emission probability underflowed (observation many sigmas from
    // all states). normalize_in_place resets to uniform — the historical
    // behavior — but the event is no longer silent.
    last_log_likelihood_ = -std::numeric_limits<double>::infinity();
    ++degenerate_updates_;
  }
  normalize_in_place(corrected);  // degenerate likelihood -> uniform belief
  belief_ = std::move(corrected);
  ++observations_;
}

void OnlineHmmFilter::reset() {
  belief_ = model_.initial;
  observations_ = 0;
  last_log_likelihood_ = std::numeric_limits<double>::quiet_NaN();
  degenerate_updates_ = 0;
}

std::size_t OnlineHmmFilter::mle_state() const { return argmax(belief_); }

}  // namespace cs2p
