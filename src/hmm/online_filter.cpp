#include "hmm/online_filter.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cs2p {

namespace {

/// normalize_in_place's semantics on a flat buffer: scale to sum 1, or fill
/// uniform on a degenerate (non-positive / non-finite) sum.
void normalize_buffer(double* v, std::size_t n) noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += v[i];
  if (sum <= 0.0 || !std::isfinite(sum)) {
    const double uniform = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = uniform;
    return;
  }
  for (std::size_t i = 0; i < n; ++i) v[i] /= sum;
}

std::size_t argmax_buffer(const double* v, std::size_t n) noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i)
    if (v[i] > v[best]) best = i;
  return best;
}

}  // namespace

OnlineHmmFilter::OnlineHmmFilter(GaussianHmm model, PredictionRule rule)
    : OnlineHmmFilter(HmmKernel::create(std::move(model)), rule) {}

OnlineHmmFilter::OnlineHmmFilter(std::shared_ptr<const HmmKernel> kernel,
                                 PredictionRule rule)
    : kernel_(std::move(kernel)), rule_(rule) {
  belief_ = kernel_->model().initial;
}

double OnlineHmmFilter::predict(unsigned steps_ahead) const {
  if (steps_ahead == 0)
    throw std::invalid_argument("OnlineHmmFilter::predict: steps_ahead must be >= 1");
  const std::size_t n = kernel_->num_states();
  // pi_{t+tau|t} = pi_{t|t} P^tau, served from the kernel's cached powers.
  // Stack scratch: the filter never allocates on the predict path.
  double projected[kMaxHmmStates];
  kernel_->propagate_steps(belief_.data(), steps_ahead, projected);
  normalize_buffer(projected, n);
  const double* mu = kernel_->mu();
  if (rule_ == PredictionRule::kMleState) {
    return mu[argmax_buffer(projected, n)];
  }
  double expectation = 0.0;
  for (std::size_t i = 0; i < n; ++i) expectation += projected[i] * mu[i];
  return expectation;
}

OnlineHmmFilter::Forecast OnlineHmmFilter::predict_distribution(
    unsigned steps_ahead) const {
  if (steps_ahead == 0)
    throw std::invalid_argument(
        "OnlineHmmFilter::predict_distribution: steps_ahead must be >= 1");
  const std::size_t n = kernel_->num_states();
  double projected[kMaxHmmStates];
  kernel_->propagate_steps(belief_.data(), steps_ahead, projected);
  normalize_buffer(projected, n);

  // Mixture moments: E[W] = sum p_x mu_x;
  // Var[W] = sum p_x (sigma_x^2 + mu_x^2) - E[W]^2.
  // Uses the model's raw sigmas (the emission floor is a density-evaluation
  // concern, not a moment of the mixture).
  const auto& states = kernel_->model().states;
  Forecast out;
  double second_moment = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& state = states[i];
    out.mean += projected[i] * state.mean;
    second_moment +=
        projected[i] * (state.sigma * state.sigma + state.mean * state.mean);
  }
  const double variance = std::max(0.0, second_moment - out.mean * out.mean);
  out.std_dev = std::sqrt(variance);
  return out;
}

void OnlineHmmFilter::observe(double throughput) {
  const std::size_t n = kernel_->num_states();
  double corrected[kMaxHmmStates];
  if (observations_ == 0) {
    // First epoch: condition the prior directly, no propagation.
    std::copy(belief_.begin(), belief_.end(), corrected);
  } else {
    kernel_->propagate(belief_.data(), kernel_->power(1), corrected);
  }
  double emission[kMaxHmmStates];
  kernel_->emissions(throughput, emission);
  for (std::size_t i = 0; i < n; ++i) corrected[i] *= emission[i];
  // The un-normalized mass sum_x pi_{t|t-1}(x) e_x(w_t) IS the one-step
  // predictive likelihood p(w_t | w_1..t-1): record it before normalizing
  // so guardrails can score how surprising this observation was.
  double likelihood = 0.0;
  for (std::size_t i = 0; i < n; ++i) likelihood += corrected[i];
  if (likelihood > 0.0 && std::isfinite(likelihood)) {
    last_log_likelihood_ = std::log(likelihood);
    for (std::size_t i = 0; i < n; ++i) belief_[i] = corrected[i] / likelihood;
  } else {
    // Every emission probability underflowed (observation many sigmas from
    // all states). The belief resets to uniform — the historical behavior —
    // but the event is no longer silent.
    last_log_likelihood_ = -std::numeric_limits<double>::infinity();
    ++degenerate_updates_;
    const double uniform = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) belief_[i] = uniform;
  }
  ++observations_;
}

void OnlineHmmFilter::reset() {
  belief_ = kernel_->model().initial;
  observations_ = 0;
  last_log_likelihood_ = std::numeric_limits<double>::quiet_NaN();
  degenerate_updates_ = 0;
}

std::size_t OnlineHmmFilter::mle_state() const { return argmax(belief_); }

}  // namespace cs2p
