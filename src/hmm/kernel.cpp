#include "hmm/kernel.h"

#include <algorithm>
#include <cmath>
#include <new>
#include <numbers>
#include <stdexcept>

#include "util/gaussian.h"

namespace cs2p {

namespace {

constexpr std::size_t kAlignDoubles = 8;  // 64 bytes / sizeof(double)

std::size_t round_up(std::size_t n) {
  return (n + kAlignDoubles - 1) / kAlignDoubles * kAlignDoubles;
}

}  // namespace

void HmmKernel::AlignedFree::operator()(double* p) const noexcept {
  ::operator delete[](p, std::align_val_t{64});
}

std::shared_ptr<const HmmKernel> HmmKernel::create(GaussianHmm model) {
  model.validate(1e-3);

  // shared_ptr<HmmKernel> first so the private constructor stays private.
  std::shared_ptr<HmmKernel> kernel(new HmmKernel());
  kernel->model_ = std::move(model);
  const GaussianHmm& m = kernel->model_;
  const std::size_t n = m.states.size();
  kernel->n_ = n;
  kernel->power_stride_ = round_up(n * n);
  // Same expression as gaussian_log_pdf's constant term, evaluated once.
  kernel->half_log_2pi_ = 0.5 * std::log(2.0 * std::numbers::pi);

  // Cache as many horizon powers as the byte budget allows; always at least
  // P^1 (a verbatim copy of the transition matrix).
  const std::size_t per_power_bytes = kernel->power_stride_ * sizeof(double);
  std::size_t affordable = kMaxPowerCacheBytes / std::max<std::size_t>(per_power_bytes, 1);
  kernel->cached_powers_ = static_cast<unsigned>(std::clamp<std::size_t>(
      affordable, 1, kMaxCachedPowers));

  const std::size_t vec_section = round_up(n);
  const std::size_t total = 4 * vec_section +
                            static_cast<std::size_t>(kernel->cached_powers_) *
                                kernel->power_stride_;
  double* block = static_cast<double*>(
      ::operator new[](total * sizeof(double), std::align_val_t{64}));
  kernel->block_.reset(block);
  std::fill(block, block + total, 0.0);

  double* mu = block;
  double* sigma = mu + vec_section;
  double* log_sigma = sigma + vec_section;
  double* initial = log_sigma + vec_section;
  double* powers = initial + vec_section;
  kernel->mu_ = mu;
  kernel->sigma_ = sigma;
  kernel->log_sigma_ = log_sigma;
  kernel->initial_ = initial;
  kernel->powers_ = powers;

  for (std::size_t i = 0; i < n; ++i) {
    mu[i] = m.states[i].mean;
    // The same floor gaussian_log_pdf applies per call, hoisted to build
    // time — log(s) is then a per-state constant.
    const double s = std::max(m.states[i].sigma, kMinEmissionSigma);
    sigma[i] = s;
    log_sigma[i] = std::log(s);
    initial[i] = m.initial[i];
  }

  // Matrix::pow (repeated squaring) for every cached horizon, so a cached
  // P^tau is the exact double-for-double matrix the scalar filter used to
  // compute per call.
  for (unsigned tau = 1; tau <= kernel->cached_powers_; ++tau) {
    const Matrix p = m.transition.pow(tau);
    double* dst = powers + (static_cast<std::size_t>(tau) - 1) * kernel->power_stride_;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) dst[i * n + j] = p(i, j);
  }
  return kernel;
}

void HmmKernel::propagate(const double* in, const double* p,
                          double* out) const noexcept {
  const std::size_t n = n_;
  for (std::size_t j = 0; j < n; ++j) out[j] = 0.0;
  // vec_mat's i-outer/j-inner walk. vec_mat skips in[i] == 0.0 rows; adding
  // the +0.0 products back is bit-identical (belief entries are >= +0.0 and
  // accumulators stay >= +0.0, so x + 0.0*row == x exactly), and the
  // branchless form is what auto-vectorizes.
  for (std::size_t i = 0; i < n; ++i) {
    const double vi = in[i];
    const double* row = p + i * n;
    for (std::size_t j = 0; j < n; ++j) out[j] += vi * row[j];
  }
}

void HmmKernel::propagate_steps(const double* in, unsigned steps,
                                double* out) const {
  if (steps == 0)
    throw std::invalid_argument("HmmKernel::propagate_steps: steps must be >= 1");
  if (const double* p = power(steps)) {
    propagate(in, p, out);
    return;
  }
  const Matrix p = model_.transition.pow(steps);
  propagate(in, p.data().data(), out);
}

void HmmKernel::emissions(double w, double* e) const noexcept {
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) {
    // gaussian_log_pdf's expression tree with the logs precomputed:
    //   -0.5*z*z - log(s) - 0.5*log(2 pi), then exp — same doubles.
    const double z = (w - mu_[i]) / sigma_[i];
    e[i] = std::exp(-0.5 * z * z - log_sigma_[i] - half_log_2pi_);
  }
}

}  // namespace cs2p
