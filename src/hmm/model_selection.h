// Cross-validated selection of the HMM state count (paper §5.2, §7.1).
//
// "Smaller N yields simpler models, but may be inadequate ... a large N
// leads to overfitting. We use cross-validation to learn this critical
// parameter." The paper uses 4-fold CV and lands on N = 6. The CV criterion
// here is the mean one-step-ahead absolute normalized prediction error on
// held-out sequences — the quantity the system actually optimises for.
#pragma once

#include <cstddef>
#include <vector>

#include "hmm/baum_welch.h"

namespace cs2p {

/// Per-candidate CV outcome.
struct StateCountScore {
  std::size_t num_states = 0;
  double cv_error = 0.0;  ///< mean held-out one-step prediction error
};

/// Result of the model-selection sweep.
struct ModelSelectionResult {
  std::size_t best_num_states = 0;
  std::vector<StateCountScore> scores;  ///< one entry per candidate, in order
};

/// Evaluates mean one-step-ahead prediction error of `model` on sequences
/// (each sequence replayed through a fresh online filter).
double one_step_cv_error(const GaussianHmm& model,
                         const std::vector<std::vector<double>>& sequences);

/// k-fold cross-validation over `candidate_states`. Sequences are split into
/// `folds` groups round-robin; for each candidate N the reported score is
/// the mean held-out error across folds. Ties break toward the smaller N.
/// Throws std::invalid_argument on empty inputs or folds < 2.
ModelSelectionResult select_state_count(
    const std::vector<std::vector<double>>& sequences,
    const std::vector<std::size_t>& candidate_states, int folds,
    const BaumWelchConfig& base_config);

}  // namespace cs2p
