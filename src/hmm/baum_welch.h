// Baum-Welch (EM) training for Gaussian HMMs over multiple sequences.
//
// The paper trains one HMM per session cluster on all throughput sequences
// of the cluster's sessions (§5.2, "Offline training"). This implementation
// supports multi-sequence EM with Rabiner scaling, k-means++ initialisation
// of emission means, and sigma flooring to avoid variance collapse.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "hmm/model.h"
#include "util/rng.h"

namespace cs2p {

/// EM failed to produce a valid model: non-finite observations reached the
/// E step, the log-likelihood diverged to NaN/Inf (numerical collapse), or
/// the fitted parameters do not validate. Distinct from std::invalid_argument
/// (caller misuse: empty input, bad config) so callers can quarantine a bad
/// training *run* without masking programming errors.
class TrainingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Training configuration.
struct BaumWelchConfig {
  std::size_t num_states = 6;     ///< N (paper uses 6 after cross-validation)
  int max_iterations = 60;        ///< EM iteration cap
  double tolerance = 1e-4;        ///< stop when log-likelihood gain/obs < tol
  double min_sigma = 0.05;        ///< variance floor: emission sigma >= this (Mbps), must be > 0
  double transition_prior = 1e-2; ///< Dirichlet-like smoothing of P rows
  std::uint64_t seed = 7;         ///< k-means init seed
};

/// Training result: the model plus convergence diagnostics.
struct BaumWelchResult {
  GaussianHmm model;
  double final_log_likelihood = 0.0;
  int iterations_run = 0;
  bool converged = false;
};

/// Trains a Gaussian HMM on `sequences` (each a session's per-epoch
/// throughput series). Sequences shorter than 2 observations are ignored for
/// transition statistics but still inform emissions. Throws
/// std::invalid_argument on caller misuse (no observations,
/// config.num_states == 0, non-positive/non-finite sigma floor) and
/// TrainingError when EM itself fails (non-finite observation, diverged
/// log-likelihood, invalid fitted parameters) — the result is always a
/// model that passes GaussianHmm::validate.
BaumWelchResult train_hmm(const std::vector<std::vector<double>>& sequences,
                          const BaumWelchConfig& config);

/// k-means++ clustering of scalar observations; exposed for tests and for
/// initialising state means. Returns exactly `k` ascending centroids
/// (duplicated observations allowed). Throws on empty input or k == 0.
std::vector<double> kmeans_1d(std::span<const double> xs, std::size_t k, Rng& rng,
                              int iterations = 25);

}  // namespace cs2p
