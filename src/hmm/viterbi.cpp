#include "hmm/viterbi.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cs2p {

ViterbiResult viterbi(const GaussianHmm& model, std::span<const double> obs) {
  if (obs.empty()) throw std::invalid_argument("viterbi: empty observation sequence");
  const std::size_t n = model.num_states();
  const std::size_t t_len = obs.size();
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  auto log_or_neg_inf = [](double p) { return p > 0.0 ? std::log(p) : kNegInf; };

  Matrix delta(t_len, n, kNegInf);
  std::vector<std::vector<std::size_t>> backpointer(
      t_len, std::vector<std::size_t>(n, 0));

  Vec log_e = model.emission_log_probabilities(obs[0]);
  for (std::size_t i = 0; i < n; ++i)
    delta(0, i) = log_or_neg_inf(model.initial[i]) + log_e[i];

  for (std::size_t t = 1; t < t_len; ++t) {
    log_e = model.emission_log_probabilities(obs[t]);
    for (std::size_t j = 0; j < n; ++j) {
      double best = kNegInf;
      std::size_t best_i = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double candidate = delta(t - 1, i) + log_or_neg_inf(model.transition(i, j));
        if (candidate > best) {
          best = candidate;
          best_i = i;
        }
      }
      delta(t, j) = best + log_e[j];
      backpointer[t][j] = best_i;
    }
  }

  ViterbiResult out;
  out.path.resize(t_len);
  std::size_t last = 0;
  for (std::size_t i = 1; i < n; ++i)
    if (delta(t_len - 1, i) > delta(t_len - 1, last)) last = i;
  out.log_probability = delta(t_len - 1, last);
  out.path[t_len - 1] = last;
  for (std::size_t t = t_len - 1; t-- > 0;) out.path[t] = backpointer[t + 1][out.path[t + 1]];
  return out;
}

}  // namespace cs2p
