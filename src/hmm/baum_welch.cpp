#include "hmm/baum_welch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "hmm/forward_backward.h"

namespace cs2p {
namespace {

/// Initialises the model from data: emission means by 1-D k-means++, sigmas
/// from within-cluster spread, near-diagonal transitions (persistence prior
/// matching the paper's observation that states are sticky), uniform pi.
GaussianHmm initialize_model(const std::vector<std::vector<double>>& sequences,
                             const BaumWelchConfig& config, Rng& rng) {
  std::vector<double> all;
  for (const auto& seq : sequences) all.insert(all.end(), seq.begin(), seq.end());

  const std::size_t n = config.num_states;
  const std::vector<double> centroids = kmeans_1d(all, n, rng);

  // Within-cluster standard deviations.
  std::vector<double> sum(n, 0.0), sum_sq(n, 0.0);
  std::vector<std::size_t> count(n, 0);
  for (double x : all) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < n; ++c)
      if (std::abs(x - centroids[c]) < std::abs(x - centroids[best])) best = c;
    sum[best] += x;
    sum_sq[best] += x * x;
    ++count[best];
  }

  GaussianHmm model;
  model.states.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    model.states[c].mean = centroids[c];
    double sigma = config.min_sigma;
    if (count[c] >= 2) {
      const double mu = sum[c] / static_cast<double>(count[c]);
      const double var =
          sum_sq[c] / static_cast<double>(count[c]) - mu * mu;
      sigma = std::sqrt(std::max(var, 0.0));
    }
    model.states[c].sigma = std::max(sigma, config.min_sigma);
  }

  model.initial.assign(n, 1.0 / static_cast<double>(n));
  model.transition = Matrix(n, n, 0.0);
  const double stay = 0.8;
  const double leave = n > 1 ? (1.0 - stay) / static_cast<double>(n - 1) : 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      model.transition(i, j) = (i == j) ? (n > 1 ? stay : 1.0) : leave;
  return model;
}

}  // namespace

std::vector<double> kmeans_1d(std::span<const double> xs, std::size_t k, Rng& rng,
                              int iterations) {
  if (xs.empty()) throw std::invalid_argument("kmeans_1d: empty input");
  if (k == 0) throw std::invalid_argument("kmeans_1d: k must be > 0");

  // k-means++ seeding.
  std::vector<double> centroids;
  centroids.reserve(k);
  centroids.push_back(xs[rng.uniform_index(xs.size())]);
  std::vector<double> dist2(xs.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (double c : centroids) best = std::min(best, (xs[i] - c) * (xs[i] - c));
      dist2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids; duplicate one.
      centroids.push_back(centroids.back());
      continue;
    }
    centroids.push_back(xs[rng.categorical(dist2)]);
  }

  // Lloyd iterations.
  std::vector<double> sum(k);
  std::vector<std::size_t> count(k);
  for (int it = 0; it < iterations; ++it) {
    std::fill(sum.begin(), sum.end(), 0.0);
    std::fill(count.begin(), count.end(), std::size_t{0});
    for (double x : xs) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < k; ++c)
        if (std::abs(x - centroids[c]) < std::abs(x - centroids[best])) best = c;
      sum[best] += x;
      ++count[best];
    }
    bool moved = false;
    for (std::size_t c = 0; c < k; ++c) {
      if (count[c] == 0) continue;  // keep empty clusters where they are
      const double next = sum[c] / static_cast<double>(count[c]);
      if (std::abs(next - centroids[c]) > 1e-12) moved = true;
      centroids[c] = next;
    }
    if (!moved) break;
  }
  std::sort(centroids.begin(), centroids.end());
  return centroids;
}

BaumWelchResult train_hmm(const std::vector<std::vector<double>>& sequences,
                          const BaumWelchConfig& config) {
  if (config.num_states == 0)
    throw std::invalid_argument("train_hmm: num_states must be > 0");
  if (config.num_states > kMaxHmmStates)
    throw std::invalid_argument("train_hmm: num_states exceeds kMaxHmmStates");
  if (!(config.min_sigma > 0.0) || !std::isfinite(config.min_sigma))
    throw std::invalid_argument(
        "train_hmm: min_sigma (variance floor) must be positive and finite");
  if (config.max_iterations <= 0)
    throw std::invalid_argument("train_hmm: max_iterations must be > 0");
  std::size_t total_obs = 0;
  for (const auto& seq : sequences) {
    for (double w : seq)
      if (!std::isfinite(w))
        throw TrainingError("train_hmm: non-finite observation in input");
    total_obs += seq.size();
  }
  if (total_obs == 0) throw std::invalid_argument("train_hmm: no observations");

  Rng rng(config.seed);
  const std::size_t n = config.num_states;

  BaumWelchResult result;
  result.model = initialize_model(sequences, config, rng);

  double prev_ll = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    // E step accumulators.
    Vec pi_acc(n, 0.0);
    Matrix xi_acc(n, n, config.transition_prior);  // smoothed
    Vec gamma_acc(n, 0.0);
    Vec weighted_sum(n, 0.0);
    Vec weighted_sq(n, 0.0);
    double total_ll = 0.0;
    std::size_t used_sequences = 0;

    for (const auto& seq : sequences) {
      if (seq.empty()) continue;
      ++used_sequences;
      const ForwardResult fwd = forward(result.model, seq);
      const BackwardResult bwd = backward(result.model, seq, fwd.scale);
      total_ll += fwd.log_likelihood;
      const std::size_t t_len = seq.size();

      // gamma_t and emission statistics.
      for (std::size_t t = 0; t < t_len; ++t) {
        Vec g(n);
        for (std::size_t i = 0; i < n; ++i) g[i] = fwd.alpha(t, i) * bwd.beta(t, i);
        normalize_in_place(g);
        for (std::size_t i = 0; i < n; ++i) {
          gamma_acc[i] += g[i];
          weighted_sum[i] += g[i] * seq[t];
          weighted_sq[i] += g[i] * seq[t] * seq[t];
          if (t == 0) pi_acc[i] += g[i];
        }
      }

      // xi_t(i, j) for transitions.
      for (std::size_t t = 0; t + 1 < t_len; ++t) {
        const Vec e_next = result.model.emission_probabilities(seq[t + 1]);
        Matrix xi(n, n);
        double norm = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            const double v = fwd.alpha(t, i) * result.model.transition(i, j) *
                             e_next[j] * bwd.beta(t + 1, j);
            xi(i, j) = v;
            norm += v;
          }
        }
        if (norm <= 0.0) continue;
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = 0; j < n; ++j) xi_acc(i, j) += xi(i, j) / norm;
      }
    }

    // M step.
    normalize_in_place(pi_acc);
    result.model.initial = pi_acc;
    for (std::size_t i = 0; i < n; ++i) {
      Vec row(n);
      for (std::size_t j = 0; j < n; ++j) row[j] = xi_acc(i, j);
      normalize_in_place(row);
      for (std::size_t j = 0; j < n; ++j) result.model.transition(i, j) = row[j];
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (gamma_acc[i] <= 1e-12) continue;  // starving state: keep parameters
      const double mu = weighted_sum[i] / gamma_acc[i];
      const double var = weighted_sq[i] / gamma_acc[i] - mu * mu;
      result.model.states[i].mean = mu;
      result.model.states[i].sigma =
          std::max(std::sqrt(std::max(var, 0.0)), config.min_sigma);
    }

    result.iterations_run = iter + 1;
    result.final_log_likelihood = total_ll;
    // Non-convergence handling: a NaN/Inf likelihood means the E step
    // collapsed (degenerate cluster, all-identical observations past the
    // variance floor). Stop here with a typed error instead of iterating on
    // — and eventually returning — poisoned sufficient statistics.
    if (!std::isfinite(total_ll))
      throw TrainingError(
          "train_hmm: log-likelihood diverged to non-finite (EM collapse)");
    const double gain = (total_ll - prev_ll) / static_cast<double>(total_obs);
    if (iter > 0 && gain < config.tolerance) {
      result.converged = true;
      break;
    }
    prev_ll = total_ll;
  }

  // Keep states sorted by mean so state indices are comparable across models
  // (helps tests and cluster introspection). Requires permuting pi and P.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.model.states[a].mean < result.model.states[b].mean;
  });
  GaussianHmm sorted;
  sorted.states.resize(n);
  sorted.initial.resize(n);
  sorted.transition = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted.states[i] = result.model.states[order[i]];
    sorted.initial[i] = result.model.initial[order[i]];
    for (std::size_t j = 0; j < n; ++j)
      sorted.transition(i, j) = result.model.transition(order[i], order[j]);
  }
  result.model = std::move(sorted);
  try {
    result.model.validate(1e-6);
  } catch (const std::invalid_argument& e) {
    throw TrainingError(std::string("train_hmm: fitted model invalid: ") +
                        e.what());
  }
  return result;
}

}  // namespace cs2p
