#include "hmm/model_selection.h"

#include <limits>
#include <stdexcept>

#include "hmm/online_filter.h"
#include "util/error_metrics.h"

namespace cs2p {

double one_step_cv_error(const GaussianHmm& model,
                         const std::vector<std::vector<double>>& sequences) {
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& seq : sequences) {
    if (seq.size() < 2) continue;
    OnlineHmmFilter filter(model);
    filter.observe(seq[0]);
    for (std::size_t t = 1; t < seq.size(); ++t) {
      total += absolute_normalized_error(filter.predict(), seq[t]);
      filter.observe(seq[t]);
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

ModelSelectionResult select_state_count(
    const std::vector<std::vector<double>>& sequences,
    const std::vector<std::size_t>& candidate_states, int folds,
    const BaumWelchConfig& base_config) {
  if (sequences.empty())
    throw std::invalid_argument("select_state_count: no sequences");
  if (candidate_states.empty())
    throw std::invalid_argument("select_state_count: no candidates");
  if (folds < 2) throw std::invalid_argument("select_state_count: folds must be >= 2");

  ModelSelectionResult result;
  double best_error = std::numeric_limits<double>::max();

  for (std::size_t n : candidate_states) {
    double fold_error_sum = 0.0;
    int usable_folds = 0;
    for (int f = 0; f < folds; ++f) {
      std::vector<std::vector<double>> train, held_out;
      for (std::size_t i = 0; i < sequences.size(); ++i) {
        if (static_cast<int>(i % static_cast<std::size_t>(folds)) == f)
          held_out.push_back(sequences[i]);
        else
          train.push_back(sequences[i]);
      }
      if (train.empty() || held_out.empty()) continue;
      BaumWelchConfig config = base_config;
      config.num_states = n;
      const BaumWelchResult trained = train_hmm(train, config);
      fold_error_sum += one_step_cv_error(trained.model, held_out);
      ++usable_folds;
    }
    const double score = usable_folds == 0
                             ? std::numeric_limits<double>::max()
                             : fold_error_sum / usable_folds;
    result.scores.push_back({n, score});
    if (score < best_error) {  // strict: ties keep the earlier (smaller) N
      best_error = score;
      result.best_num_states = n;
    }
  }
  return result;
}

}  // namespace cs2p
