#include "hmm/batch_filter.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <new>
#include <stdexcept>

namespace cs2p {

namespace {

constexpr std::size_t kLaneAlign = 8;  // doubles per cache line / zmm

constexpr std::size_t pad_lanes(std::size_t width) noexcept {
  return (width + kLaneAlign - 1) / kLaneAlign * kLaneAlign;
}

// The lane-inner kernels below take __restrict pointers: the staging rows,
// lane sums, and extraction scratch are distinct sections of one scratch
// block, and telling the compiler so is what lets it vectorize a
// symbolic-width inner loop without runtime alias versioning (without it GCC
// reports "complicated access pattern" and emits scalar code). Widths are
// pre-padded to kLaneAlign, and every row starts on a cache line, so the
// loops are whole aligned vectors with no scalar tail.

inline double* row_at(double* base, std::size_t offset) noexcept {
  return std::assume_aligned<64>(base + offset);
}
inline const double* row_at(const double* base, std::size_t offset) noexcept {
  return std::assume_aligned<64>(base + offset);
}

/// next = belief · P over every lane: one walk of the state matrix for the
/// whole batch. Per (lane, j) the accumulation visits i ascending — the
/// scalar vec_mat order, with P's row 0 writing the initial term — so each
/// lane's result is the scalar result.
void propagate_batch(const double* __restrict p, std::size_t n,
                     std::size_t width, const double* __restrict belief,
                     double* __restrict next) noexcept {
  {
    const double* __restrict in_row = row_at(belief, 0);
    for (std::size_t j = 0; j < n; ++j) {
      const double p0j = p[j];
      double* __restrict out_row = row_at(next, j * width);
      for (std::size_t b = 0; b < width; ++b) out_row[b] = in_row[b] * p0j;
    }
  }
  for (std::size_t i = 1; i < n; ++i) {
    const double* __restrict in_row = row_at(belief, i * width);
    const double* __restrict p_row = p + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double pij = p_row[j];
      double* __restrict out_row = row_at(next, j * width);
      for (std::size_t b = 0; b < width; ++b) out_row[b] += in_row[b] * pij;
    }
  }
}

/// sums[b] = sum over states of stage[x * width + b], x ascending — the
/// scalar mass-sum order per lane.
void sum_rows(const double* __restrict stage, std::size_t n, std::size_t width,
              double* __restrict sums) noexcept {
  {
    const double* __restrict row = row_at(stage, 0);
    for (std::size_t b = 0; b < width; ++b) sums[b] = row[b];
  }
  for (std::size_t x = 1; x < n; ++x) {
    const double* __restrict row = row_at(stage, x * width);
    for (std::size_t b = 0; b < width; ++b) sums[b] += row[b];
  }
}

/// stage[x * width + b] /= sums[b] — the scalar normalize division.
void divide_rows(double* __restrict stage, std::size_t n, std::size_t width,
                 const double* __restrict sums) noexcept {
  for (std::size_t x = 0; x < n; ++x) {
    double* __restrict row = row_at(stage, x * width);
    for (std::size_t b = 0; b < width; ++b) row[b] /= sums[b];
  }
}

/// Both extraction rules across all lanes in one pass: unnormalized
/// posterior-mean numerator into expect[], and the strict-greater first-wins
/// argmax (x ascending, the scalar order) into best_idx[].
void extract_rules(const double* __restrict stage,
                   const double* __restrict mu, std::size_t n,
                   std::size_t width, double* __restrict expect,
                   double* __restrict best_val,
                   std::size_t* __restrict best_idx) noexcept {
  {
    const double* __restrict row0 = row_at(stage, 0);
    const double mu0 = mu[0];
    for (std::size_t b = 0; b < width; ++b) {
      best_val[b] = row0[b];
      best_idx[b] = 0;
      expect[b] = row0[b] * mu0;
    }
  }
  for (std::size_t x = 1; x < n; ++x) {
    const double* __restrict row = row_at(stage, x * width);
    const double mux = mu[x];
    for (std::size_t b = 0; b < width; ++b) {
      expect[b] += row[b] * mux;
      const bool better = row[b] > best_val[b];
      best_val[b] = better ? row[b] : best_val[b];
      best_idx[b] = better ? x : best_idx[b];
    }
  }
}

}  // namespace

void BatchHmmFilter::AlignedFree::operator()(double* p) const noexcept {
  ::operator delete[](p, std::align_val_t{64});
}

double* BatchHmmFilter::ensure_scratch(std::size_t doubles) {
  if (doubles > block_capacity_) {
    block_.reset(static_cast<double*>(
        ::operator new[](doubles * sizeof(double), std::align_val_t{64})));
    block_capacity_ = doubles;
  }
  return std::assume_aligned<64>(block_.get());
}

void BatchHmmFilter::observe(const HmmKernel& kernel,
                             std::span<OnlineHmmFilter* const> filters,
                             std::span<const double> observations) {
  const std::size_t width = filters.size();
  assert(observations.size() == width);
  if (width == 0) return;
  const std::size_t n = kernel.num_states();
  const std::size_t wp = pad_lanes(width);
  double* block = ensure_scratch((2 * n + 1) * wp);
  double* belief_stage = block;
  double* next_stage = block + n * wp;
  double* sums = next_stage + n * wp;

  for (std::size_t b = 0; b < width; ++b) {
    assert(filters[b]->kernel().get() == &kernel);
    const Vec& belief = filters[b]->belief_;
    for (std::size_t x = 0; x < n; ++x) belief_stage[x * wp + b] = belief[x];
  }
  // Zero the padding lanes: they flow through the arithmetic below (that is
  // what keeps the vector loops tail-free) and must stay finite.
  for (std::size_t x = 0; x < n; ++x)
    for (std::size_t b = width; b < wp; ++b) belief_stage[x * wp + b] = 0.0;

  propagate_batch(kernel.power(1), n, wp, belief_stage, next_stage);

  // First-epoch sessions condition the prior directly: overwrite their lane
  // with the unpropagated belief (the scalar observations_ == 0 branch).
  for (std::size_t b = 0; b < width; ++b) {
    if (filters[b]->observations_ != 0) continue;
    for (std::size_t x = 0; x < n; ++x)
      next_stage[x * wp + b] = belief_stage[x * wp + b];
  }

  // Correction: multiply each lane by its observation's emission vector.
  // State-outer so mu/sigma/log_sigma load once per state; the same
  // expression tree as HmmKernel::emissions per (state, lane). The exp call
  // keeps this loop scalar — the price of bit-equal likelihoods — so it runs
  // the real lanes only.
  const double* mu = kernel.mu();
  const double* sigma = kernel.sigma();
  const double* log_sigma = kernel.log_sigma();
  const double half_log_2pi = kernel.half_log_2pi();
  for (std::size_t x = 0; x < n; ++x) {
    const double m = mu[x];
    const double s = sigma[x];
    const double ls = log_sigma[x];
    double* row = next_stage + x * wp;
    for (std::size_t b = 0; b < width; ++b) {
      const double z = (observations[b] - m) / s;
      row[b] *= std::exp(-0.5 * z * z - ls - half_log_2pi);
    }
  }

  // Likelihood per lane (x-ascending like the scalar sum), then normalize
  // the staging in place — the same `corrected[i] / likelihood` division the
  // scalar filter performs. Degenerate lanes (sum <= 0 or non-finite) divide
  // to garbage here and are overwritten with the uniform reset in the
  // scatter below, exactly the scalar branch.
  sum_rows(next_stage, n, wp, sums);
  divide_rows(next_stage, n, wp, sums);

  // Per-lane scatter + bookkeeping (the only remaining lane-strided walk).
  const double uniform = 1.0 / static_cast<double>(n);
  for (std::size_t b = 0; b < width; ++b) {
    OnlineHmmFilter& filter = *filters[b];
    const double likelihood = sums[b];
    if (likelihood > 0.0 && std::isfinite(likelihood)) {
      filter.last_log_likelihood_ = std::log(likelihood);
      for (std::size_t x = 0; x < n; ++x)
        filter.belief_[x] = next_stage[x * wp + b];
    } else {
      filter.last_log_likelihood_ = -std::numeric_limits<double>::infinity();
      ++filter.degenerate_updates_;
      for (std::size_t x = 0; x < n; ++x) filter.belief_[x] = uniform;
    }
    ++filter.observations_;
  }
}

void BatchHmmFilter::predict(const HmmKernel& kernel,
                             std::span<const OnlineHmmFilter* const> filters,
                             unsigned steps_ahead, std::span<double> out) {
  if (steps_ahead == 0)
    throw std::invalid_argument("BatchHmmFilter::predict: steps_ahead must be >= 1");
  const std::size_t width = filters.size();
  assert(out.size() == width);
  if (width == 0) return;
  const std::size_t n = kernel.num_states();
  const std::size_t wp = pad_lanes(width);
  double* block = ensure_scratch((2 * n + 3) * wp);
  double* belief_stage = block;
  double* next_stage = block + n * wp;
  double* sums = next_stage + n * wp;
  double* expect = sums + wp;
  double* best_val = expect + wp;
  best_idx_.resize(wp);

  for (std::size_t b = 0; b < width; ++b) {
    assert(filters[b]->kernel().get() == &kernel);
    const Vec& belief = filters[b]->belief_;
    for (std::size_t x = 0; x < n; ++x) belief_stage[x * wp + b] = belief[x];
  }
  for (std::size_t x = 0; x < n; ++x)
    for (std::size_t b = width; b < wp; ++b) belief_stage[x * wp + b] = 0.0;

  const double* p = kernel.power(steps_ahead);
  Matrix fallback;
  if (p == nullptr) {
    // Horizon beyond the cache: one Matrix::pow for the whole batch —
    // identical doubles to the scalar fallback.
    fallback = kernel.model().transition.pow(steps_ahead);
    p = fallback.data().data();
  }
  propagate_batch(p, n, wp, belief_stage, next_stage);

  // Scalar predict's tail is normalize-then-extract. Normalization is a
  // positive per-lane scale, so extraction runs on the raw projected mass:
  // the argmax is scale-invariant (same strict-> first-wins scan, x
  // ascending), and the posterior mean divides once per lane at the end —
  // (sum_x pi_x mu_x) / sum instead of sum_x (pi_x / sum) mu_x, equal to a
  // couple of ulp (the property test's 1e-9 holds either way).
  sum_rows(next_stage, n, wp, sums);
  const double* mu = kernel.mu();
  extract_rules(next_stage, mu, n, wp, expect, best_val, best_idx_.data());

  for (std::size_t b = 0; b < width; ++b) {
    if (sums[b] <= 0.0 || !std::isfinite(sums[b])) {
      // Degenerate lane: the scalar path fills uniform and extracts from
      // that — argmax lands on state 0, the mean is the uniform mixture,
      // accumulated in the scalar x-ascending order.
      const double uniform = 1.0 / static_cast<double>(n);
      if (filters[b]->rule_ == PredictionRule::kMleState) {
        out[b] = mu[0];
      } else {
        double expectation = 0.0;
        for (std::size_t x = 0; x < n; ++x) expectation += uniform * mu[x];
        out[b] = expectation;
      }
    } else {
      out[b] = filters[b]->rule_ == PredictionRule::kMleState
                   ? mu[best_idx_[b]]
                   : expect[b] / sums[b];
    }
  }
}

}  // namespace cs2p
