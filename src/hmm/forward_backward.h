// Scaled forward-backward recursion for Gaussian HMMs.
//
// Standard Rabiner-style scaling: at each step the forward variable alpha_t
// is normalised to sum to 1 and the scaling factor c_t is retained, so the
// sequence log-likelihood is sum_t log(c_t) and no underflow occurs on long
// sessions.
#pragma once

#include <span>
#include <vector>

#include "hmm/model.h"

namespace cs2p {

/// Output of the forward pass.
struct ForwardResult {
  Matrix alpha;            ///< T x N, alpha(t, i) = P(X_t = i | w_1..w_t)
  std::vector<double> scale;  ///< c_t, the per-step normalisers
  double log_likelihood = 0.0;
};

/// Output of the backward pass (uses the forward scales).
struct BackwardResult {
  Matrix beta;  ///< T x N, scaled backward variables
};

/// Runs the scaled forward recursion over an observation sequence.
/// Requires a validated model and a non-empty sequence.
ForwardResult forward(const GaussianHmm& model, std::span<const double> obs);

/// Runs the scaled backward recursion (needs the forward scales).
BackwardResult backward(const GaussianHmm& model, std::span<const double> obs,
                        std::span<const double> scale);

/// Sequence log-likelihood log P(w_1..w_T | theta).
double log_likelihood(const GaussianHmm& model, std::span<const double> obs);

/// Posterior state marginals gamma(t, i) = P(X_t = i | w_1..w_T).
Matrix posterior_marginals(const GaussianHmm& model, std::span<const double> obs);

}  // namespace cs2p
