// Online throughput prediction with a trained HMM (paper Algorithm 1).
//
// Per epoch t the player:
//   1. propagates the state belief,      pi_{t|t-1} = pi_{t-1|t-1} P
//   2. predicts via the MLE state,       W_hat_t = mu_{argmax pi_{t|t-1}}
//   3. selects a bitrate with W_hat_t,
//   4. measures the actual throughput w_t,
//   5. updates the belief (forward step) pi_{t|t} ∝ pi_{t|t-1} ∘ e(w_t).
//
// The filter runs on an immutable HmmKernel (hmm/kernel.h): the SoA block
// holding mu/sigma/P^tau constants. A session may own its kernel (the
// standalone-client mode §5.3 describes) or share one with every other
// session pinned to the same model — the serving tier's arrangement, and
// what lets BatchHmmFilter advance many sessions in one state-matrix walk.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>

#include "hmm/kernel.h"
#include "hmm/model.h"

namespace cs2p {

/// How the point prediction is extracted from the state belief.
/// The paper uses the MLE state's mean (Eq. 8); the posterior-mean variant is
/// kept for the ablation bench.
enum class PredictionRule {
  kMleState,      ///< mu of argmax-probability state (paper's choice)
  kPosteriorMean  ///< sum_x pi(x) * mu_x
};

/// Stateful per-session HMM filter.
class OnlineHmmFilter {
 public:
  /// Takes ownership of a validated model (builds a private kernel).
  /// Belief starts at model.initial.
  explicit OnlineHmmFilter(GaussianHmm model,
                           PredictionRule rule = PredictionRule::kMleState);

  /// Shares a prebuilt kernel — the serving tier's constructor: one kernel
  /// block serves every session pinned to the same model.
  explicit OnlineHmmFilter(std::shared_ptr<const HmmKernel> kernel,
                           PredictionRule rule = PredictionRule::kMleState);

  /// Predicts throughput `steps_ahead` epochs into the future from the
  /// current belief (steps_ahead = 1 is "next epoch"). Requires >= 1.
  /// Served from the kernel's cached P^tau powers; allocation-free.
  double predict(unsigned steps_ahead = 1) const;

  /// Moments of the full predictive distribution of W_{t+steps_ahead}:
  /// the Gaussian mixture sum_x pi(x) N(mu_x, sigma_x^2) under the
  /// propagated belief. Powers risk-aware consumers (e.g. predicting total
  /// rebuffer time at session start, §7.5) that a point forecast cannot.
  struct Forecast {
    double mean = 0.0;
    double std_dev = 0.0;
  };
  Forecast predict_distribution(unsigned steps_ahead = 1) const;

  /// Conditions the belief on an observed throughput and advances one epoch:
  /// performs the propagate-then-correct forward step.
  void observe(double throughput);

  /// Resets the belief to the model's initial distribution.
  void reset();

  /// Current belief pi_{t|t} (after the last observe()).
  const Vec& belief() const noexcept { return belief_; }

  /// One-step predictive log-likelihood log p(w_t | w_1..w_{t-1}) of the
  /// most recent observation — the surprise signal guardrails monitor.
  /// NaN before the first observe(); -infinity when the update was
  /// degenerate (every emission probability underflowed to zero).
  double last_log_likelihood() const noexcept { return last_log_likelihood_; }

  /// Updates whose likelihood vector underflowed to all-zero. Each such
  /// update resets the belief to uniform (the pre-existing behavior, now
  /// counted instead of silent).
  std::size_t degenerate_updates() const noexcept { return degenerate_updates_; }

  /// Most likely current state index under the belief.
  std::size_t mle_state() const;

  const GaussianHmm& model() const noexcept { return kernel_->model(); }

  /// The shared constants this filter runs on. BatchHmmFilter groups
  /// sessions by this pointer.
  const std::shared_ptr<const HmmKernel>& kernel() const noexcept {
    return kernel_;
  }

  /// Number of observations consumed since construction/reset.
  std::size_t observations() const noexcept { return observations_; }

 private:
  friend class BatchHmmFilter;

  std::shared_ptr<const HmmKernel> kernel_;
  PredictionRule rule_;
  Vec belief_;
  std::size_t observations_ = 0;
  double last_log_likelihood_ = std::numeric_limits<double>::quiet_NaN();
  std::size_t degenerate_updates_ = 0;
};

}  // namespace cs2p
