// Viterbi decoding: most likely hidden state path for a session trace.
//
// Not needed by the online predictor, but used to visualise the stateful
// structure of sessions (Fig 4a) and to sanity-check trained models in tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hmm/model.h"

namespace cs2p {

/// Result of Viterbi decoding.
struct ViterbiResult {
  std::vector<std::size_t> path;  ///< state index per epoch
  double log_probability = 0.0;   ///< log P(path, observations | theta)
};

/// Computes the MAP state path in log space. Requires a non-empty sequence.
ViterbiResult viterbi(const GaussianHmm& model, std::span<const double> obs);

}  // namespace cs2p
