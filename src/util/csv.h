// Minimal CSV reading/writing for trace import/export.
//
// Supports the subset of RFC 4180 the project needs: comma separation,
// double-quote quoting with embedded commas/quotes/newlines, and a header
// row. Sufficient to round-trip generated session traces and to import
// externally collected throughput logs.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cs2p {

/// One parsed CSV table: header + rows of string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index for `name`, or -1 if absent.
  int column(std::string_view name) const noexcept;
};

/// Parses CSV text. Throws std::runtime_error on unterminated quotes or rows
/// whose cell count differs from the header.
CsvTable parse_csv(std::string_view text);

/// Reads and parses a CSV file. Throws std::runtime_error if unreadable.
CsvTable read_csv_file(const std::string& path);

/// Escapes a cell if it contains a comma, quote or newline.
std::string csv_escape(std::string_view cell);

/// Writes header + rows; every row must match the header width.
void write_csv(std::ostream& out, const CsvTable& table);
void write_csv_file(const std::string& path, const CsvTable& table);

}  // namespace cs2p
