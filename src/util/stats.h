// Summary statistics used throughout the CS2P pipeline.
//
// These helpers operate on plain vectors of doubles (throughput samples in
// Mbps, per-session errors, ...). Quantiles use linear interpolation between
// order statistics (type-7, the default of R/NumPy) so that the CDF tables
// printed by the benchmark harness are directly comparable with the paper's
// figures.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace cs2p {

/// Arithmetic mean; returns 0 for an empty input.
double mean(std::span<const double> xs) noexcept;

/// Unbiased (n-1) sample standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs) noexcept;

/// Coefficient of variation: stddev / mean. 0 when the mean is 0.
/// The paper's Observation 1 reports "normalized stddev" per session.
double coefficient_of_variation(std::span<const double> xs) noexcept;

/// Harmonic mean over strictly positive samples; non-positive samples are
/// ignored (matches how video players compute HM over throughput samples).
double harmonic_mean(std::span<const double> xs) noexcept;

/// Median (type-7 quantile at q = 0.5); 0 for an empty input.
double median(std::span<const double> xs);

/// Type-7 quantile for q in [0, 1]; 0 for an empty input.
double quantile(std::span<const double> xs, double q);

/// In-place-free variant for callers that already hold sorted data.
double quantile_sorted(std::span<const double> sorted, double q) noexcept;

/// Empirical CDF evaluated at `value`: fraction of samples <= value.
double ecdf(std::span<const double> xs, double value) noexcept;

/// Points of the empirical CDF: (value, P[X <= value]) at every sample.
/// Useful for emitting figure series (Fig 3, 5, 9 of the paper).
std::vector<std::pair<double, double>> ecdf_points(std::span<const double> xs);

/// Evaluates the ECDF of `xs` at each of `at` (which need not be sorted).
std::vector<double> ecdf_at(std::span<const double> xs, std::span<const double> at);

/// Pearson correlation; 0 when either side has no variance. Sizes must match.
double correlation(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Shannon entropy (bits) of a discrete label distribution given by counts.
double entropy_from_counts(std::span<const std::size_t> counts) noexcept;

/// Relative information gain RIG(Y|X) = 1 - H(Y|X)/H(Y) for discretised
/// variables, as used in Observation 4 to measure how much a session feature
/// explains throughput. `labels_y` and `labels_x` are parallel arrays of
/// discrete category ids.
double relative_information_gain(std::span<const int> labels_y,
                                 std::span<const int> labels_x);

/// Discretises real values into `bins` equal-frequency bins, returning a
/// category id per sample (used to feed relative_information_gain).
std::vector<int> equal_frequency_bins(std::span<const double> xs, int bins);

}  // namespace cs2p
