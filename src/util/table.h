// Aligned plain-text table printer for the benchmark harness.
//
// Every bench binary prints the rows/series of one paper table or figure;
// this helper keeps their output uniform and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cs2p {

/// Collects rows of string cells and prints them column-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row; width may differ from the header (short rows are padded).
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  void add_row_numeric(const std::string& label, const std::vector<double>& values,
                       int precision = 3);

  void print(std::ostream& out) const;
  std::string to_string() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with fixed `precision` decimals.
std::string format_double(double v, int precision = 3);

}  // namespace cs2p
