// Small dense matrix/vector algebra for HMM filtering and training.
//
// The HMM online predictor needs exactly the operations below (row-vector x
// matrix products, Hadamard products, matrix powers for multi-step-ahead
// prediction), on matrices whose dimension is the number of hidden states
// (N <= ~16). A hand-rolled row-major container keeps the footprint tiny —
// the paper highlights that a trained model fits in < 5 KB and a prediction
// costs two matrix multiplications.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace cs2p {

using Vec = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer lists; all rows must be equally long.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) noexcept;
  std::span<const double> row(std::size_t r) const noexcept;

  /// Underlying contiguous storage (row-major), e.g. for serialization.
  std::span<const double> data() const noexcept { return data_; }
  std::span<double> data() noexcept { return data_; }

  Matrix operator*(const Matrix& rhs) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix operator+(const Matrix& rhs) const;
  Matrix& operator*=(double scalar) noexcept;

  /// Matrix power by repeated squaring; requires a square matrix, p >= 0.
  Matrix pow(unsigned p) const;

  Matrix transposed() const;

  /// Max |a_ij - b_ij|; matrices must have identical shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Row vector times matrix: out_j = sum_i v_i * m(i, j).
/// Requires v.size() == m.rows().
Vec vec_mat(std::span<const double> v, const Matrix& m);

/// Element-wise (Hadamard) product; sizes must match.
Vec hadamard(std::span<const double> a, std::span<const double> b);

/// Sum of elements.
double vec_sum(std::span<const double> v) noexcept;

/// Scales `v` so its elements sum to 1; returns the pre-normalisation sum.
/// A non-positive sum leaves a uniform distribution (degenerate input guard
/// for the forward filter when an observation has ~zero likelihood in every
/// state).
double normalize_in_place(Vec& v) noexcept;

/// Index of the maximum element; requires non-empty input.
std::size_t argmax(std::span<const double> v);

}  // namespace cs2p
