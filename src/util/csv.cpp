#include "util/csv.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cs2p {
namespace {

/// Splits one logical CSV record starting at `pos`; advances `pos` past the
/// record's trailing newline. Handles quoted cells spanning newlines.
std::vector<std::string> parse_record(std::string_view text, std::size_t& pos) {
  std::vector<std::string> cells;
  std::string cell;
  bool in_quotes = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          cell.push_back('"');
          ++pos;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        cells.push_back(std::move(cell));
        cell.clear();
      } else if (c == '\n') {
        ++pos;
        cells.push_back(std::move(cell));
        return cells;
      } else if (c != '\r') {
        cell.push_back(c);
      }
    }
    ++pos;
  }
  if (in_quotes) throw std::runtime_error("CSV: unterminated quoted cell");
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

int CsvTable::column(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return static_cast<int>(i);
  return -1;
}

CsvTable parse_csv(std::string_view text) {
  CsvTable table;
  std::size_t pos = 0;
  if (pos < text.size()) table.header = parse_record(text, pos);
  while (pos < text.size()) {
    auto row = parse_record(text, pos);
    if (row.size() == 1 && row[0].empty()) continue;  // blank trailing line
    if (row.size() != table.header.size())
      throw std::runtime_error("CSV: row width differs from header");
    table.rows.push_back(std::move(row));
  }
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("CSV: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str());
}

std::string csv_escape(std::string_view cell) {
  if (cell.find_first_of(",\"\n\r") == std::string_view::npos)
    return std::string(cell);
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void write_csv(std::ostream& out, const CsvTable& table) {
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  };
  write_row(table.header);
  for (const auto& row : table.rows) {
    if (row.size() != table.header.size())
      throw std::runtime_error("CSV: row width differs from header");
    write_row(row);
  }
}

void write_csv_file(const std::string& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("CSV: cannot open " + path + " for write");
  write_csv(out, table);
}

}  // namespace cs2p
