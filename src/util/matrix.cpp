#include "util/matrix.h"

#include <cmath>
#include <stdexcept>

namespace cs2p {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::span<double> Matrix::row(std::size_t r) noexcept {
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const noexcept {
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("Matrix multiply: inner dimension mismatch");
  Matrix out(rows_, rhs.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix add: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::pow(unsigned p) const {
  if (rows_ != cols_) throw std::invalid_argument("Matrix::pow: not square");
  Matrix result = Matrix::identity(rows_);
  Matrix base = *this;
  while (p > 0) {
    if (p & 1U) result = result * base;
    base = base * base;
    p >>= 1U;
  }
  return result;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_)
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    worst = std::max(worst, std::abs(a.data_[i] - b.data_[i]));
  return worst;
}

Vec vec_mat(std::span<const double> v, const Matrix& m) {
  if (v.size() != m.rows())
    throw std::invalid_argument("vec_mat: dimension mismatch");
  Vec out(m.cols(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    const auto row = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += vi * row[j];
  }
  return out;
}

Vec hadamard(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("hadamard: size mismatch");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

double vec_sum(std::span<const double> v) noexcept {
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum;
}

double normalize_in_place(Vec& v) noexcept {
  const double sum = vec_sum(v);
  if (sum <= 0.0 || !std::isfinite(sum)) {
    const double uniform = v.empty() ? 0.0 : 1.0 / static_cast<double>(v.size());
    for (double& x : v) x = uniform;
    return sum;
  }
  for (double& x : v) x /= sum;
  return sum;
}

std::size_t argmax(std::span<const double> v) {
  if (v.empty()) throw std::invalid_argument("argmax: empty input");
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i)
    if (v[i] > v[best]) best = i;
  return best;
}

}  // namespace cs2p
