#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace cs2p {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double coefficient_of_variation(std::span<const double> xs) noexcept {
  const double mu = mean(xs);
  if (mu == 0.0) return 0.0;
  return stddev(xs) / mu;
}

double harmonic_mean(std::span<const double> xs) noexcept {
  double inv_sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x > 0.0) {
      inv_sum += 1.0 / x;
      ++n;
    }
  }
  if (n == 0 || inv_sum == 0.0) return 0.0;
  return static_cast<double>(n) / inv_sum;
}

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double ecdf(std::span<const double> xs, double value) noexcept {
  if (xs.empty()) return 0.0;
  std::size_t count = 0;
  for (double x : xs)
    if (x <= value) ++count;
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

std::vector<std::pair<double, double>> ecdf_points(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<double, double>> points;
  points.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    points.emplace_back(sorted[i],
                        static_cast<double>(i + 1) / static_cast<double>(sorted.size()));
  }
  return points;
}

std::vector<double> ecdf_at(std::span<const double> xs, std::span<const double> at) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(at.size());
  for (double v : at) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), v);
    out.push_back(sorted.empty()
                      ? 0.0
                      : static_cast<double>(it - sorted.begin()) /
                            static_cast<double>(sorted.size()));
  }
  return out;
}

double correlation(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double entropy_from_counts(std::span<const std::size_t> counts) noexcept {
  double total = 0.0;
  for (std::size_t c : counts) total += static_cast<double>(c);
  if (total == 0.0) return 0.0;
  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / total;
    h -= p * std::log2(p);
  }
  return h;
}

double relative_information_gain(std::span<const int> labels_y,
                                 std::span<const int> labels_x) {
  if (labels_y.size() != labels_x.size())
    throw std::invalid_argument("relative_information_gain: size mismatch");
  if (labels_y.empty()) return 0.0;

  std::map<int, std::size_t> y_counts;
  std::map<int, std::map<int, std::size_t>> x_to_y_counts;
  std::map<int, std::size_t> x_counts;
  for (std::size_t i = 0; i < labels_y.size(); ++i) {
    ++y_counts[labels_y[i]];
    ++x_counts[labels_x[i]];
    ++x_to_y_counts[labels_x[i]][labels_y[i]];
  }

  std::vector<std::size_t> yc;
  yc.reserve(y_counts.size());
  for (const auto& [label, count] : y_counts) yc.push_back(count);
  const double h_y = entropy_from_counts(yc);
  if (h_y == 0.0) return 0.0;

  const auto n = static_cast<double>(labels_y.size());
  double h_y_given_x = 0.0;
  for (const auto& [x, ys] : x_to_y_counts) {
    std::vector<std::size_t> cond;
    cond.reserve(ys.size());
    for (const auto& [label, count] : ys) cond.push_back(count);
    const double weight = static_cast<double>(x_counts[x]) / n;
    h_y_given_x += weight * entropy_from_counts(cond);
  }
  return 1.0 - h_y_given_x / h_y;
}

std::vector<int> equal_frequency_bins(std::span<const double> xs, int bins) {
  if (bins <= 0) throw std::invalid_argument("equal_frequency_bins: bins must be > 0");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(bins) - 1);
  for (int b = 1; b < bins; ++b) {
    edges.push_back(quantile_sorted(sorted, static_cast<double>(b) / bins));
  }
  std::vector<int> labels;
  labels.reserve(xs.size());
  for (double x : xs) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), x);
    labels.push_back(static_cast<int>(it - edges.begin()));
  }
  return labels;
}

}  // namespace cs2p
