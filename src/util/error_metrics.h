// Prediction-error metrics (Eq. 1 of the paper) and cross-session summaries.
//
// The paper reports the *absolute normalized prediction error*
//   Err(pred, actual) = |pred - actual| / actual
// and summarises it within and across sessions several ways (median of
// per-session medians, 90th percentile of per-session medians, ...). The
// ErrorSummary helpers mirror those aggregations so bench binaries can print
// the same rows as the figures.
#pragma once

#include <span>
#include <vector>

namespace cs2p {

/// |pred - actual| / actual. Returns |pred| when actual == 0 (a session with
/// zero measured throughput contributes its absolute miss rather than inf).
double absolute_normalized_error(double predicted, double actual) noexcept;

/// Per-session error series -> one scalar per session.
struct SessionErrorSummary {
  double session_median = 0.0;
  double session_mean = 0.0;
  double session_p90 = 0.0;
};

SessionErrorSummary summarize_session_errors(std::span<const double> errors);

/// Cross-session aggregation of per-session summaries.
struct CrossSessionSummary {
  double median_of_medians = 0.0;  ///< headline number in Fig 9
  double p75_of_medians = 0.0;
  double p90_of_medians = 0.0;
  double mean_of_means = 0.0;
  double median_of_p90s = 0.0;
};

CrossSessionSummary summarize_across_sessions(
    std::span<const SessionErrorSummary> sessions);

}  // namespace cs2p
