#include "util/gaussian.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace cs2p {

double gaussian_log_pdf(double x, double mean, double sigma) noexcept {
  const double s = std::max(sigma, kMinEmissionSigma);
  const double z = (x - mean) / s;
  return -0.5 * z * z - std::log(s) - 0.5 * std::log(2.0 * std::numbers::pi);
}

double gaussian_pdf(double x, double mean, double sigma) noexcept {
  return std::exp(gaussian_log_pdf(x, mean, sigma));
}

}  // namespace cs2p
