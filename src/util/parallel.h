// Minimal data-parallel helper for embarrassingly parallel index builds.
//
// The CS2P engine constructs one cluster index per candidate feature set
// (189 of them) and a per-candidate error table — all independent work
// items. parallel_for splits [0, n) across a bounded worker pool; with
// hardware_concurrency() == 1 (or n below the grain) it degrades to a
// serial loop with zero thread overhead.
#pragma once

#include <cstddef>
#include <functional>

namespace cs2p {

/// Invokes fn(i) for every i in [0, n), possibly concurrently. fn must be
/// safe to call from multiple threads for distinct i. Exceptions thrown by
/// fn propagate to the caller (the first one wins; remaining work may or
/// may not run). `max_threads` == 0 uses the hardware concurrency.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned max_threads = 0);

}  // namespace cs2p
