// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components in the library (trace generation, EM
// initialization, SGD shuffling, ...) draw from cs2p::Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256** seeded through SplitMix64, which is fast, has a 2^256-1
// period, and passes BigCrush; std::mt19937 is deliberately avoided because
// its state is large and its distributions are not portable across standard
// library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace cs2p {

/// xoshiro256** engine with convenience samplers. Satisfies
/// UniformRandomBitGenerator so it can also feed <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached pair).
  double gaussian() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double gaussian(double mean, double sigma) noexcept;

  /// Log-normal: exp(N(mu, sigma^2)).
  double log_normal(double mu, double sigma) noexcept;

  /// Exponential with rate lambda > 0.
  double exponential(double lambda) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Samples an index according to `weights` (non-negative, not all zero).
  /// Falls back to the last index on accumulated floating-point shortfall.
  std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle of [0, n) indices.
  std::vector<std::size_t> permutation(std::size_t n) noexcept;

  /// Derives an independent child generator (for per-worker streams).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace cs2p
