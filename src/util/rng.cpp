#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace cs2p {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = -n % n;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double sigma) noexcept {
  return mean + sigma * gaussian();
}

double Rng::log_normal(double mu, double sigma) noexcept {
  return std::exp(gaussian(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0 || weights.empty()) return weights.empty() ? 0 : weights.size() - 1;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) noexcept {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::split() noexcept { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace cs2p
