// Univariate Gaussian density helpers for HMM emissions.
#pragma once

namespace cs2p {

/// Minimum emission standard deviation. Baum-Welch can collapse a state's
/// variance to ~0 when few observations are assigned to it; flooring sigma
/// keeps likelihoods finite and the forward filter numerically stable.
inline constexpr double kMinEmissionSigma = 1e-3;

/// N(mean, sigma^2) density at x. sigma is floored at kMinEmissionSigma.
double gaussian_pdf(double x, double mean, double sigma) noexcept;

/// log N(mean, sigma^2) at x, same flooring.
double gaussian_log_pdf(double x, double mean, double sigma) noexcept;

}  // namespace cs2p
