#include "util/error_metrics.h"

#include <cmath>

#include "util/stats.h"

namespace cs2p {

double absolute_normalized_error(double predicted, double actual) noexcept {
  if (actual == 0.0) return std::abs(predicted);
  return std::abs(predicted - actual) / std::abs(actual);
}

SessionErrorSummary summarize_session_errors(std::span<const double> errors) {
  SessionErrorSummary s;
  s.session_median = median(errors);
  s.session_mean = mean(errors);
  s.session_p90 = quantile(errors, 0.9);
  return s;
}

CrossSessionSummary summarize_across_sessions(
    std::span<const SessionErrorSummary> sessions) {
  std::vector<double> medians, means, p90s;
  medians.reserve(sessions.size());
  means.reserve(sessions.size());
  p90s.reserve(sessions.size());
  for (const auto& s : sessions) {
    medians.push_back(s.session_median);
    means.push_back(s.session_mean);
    p90s.push_back(s.session_p90);
  }
  CrossSessionSummary out;
  out.median_of_medians = median(medians);
  out.p75_of_medians = quantile(medians, 0.75);
  out.p90_of_medians = quantile(medians, 0.9);
  out.mean_of_means = mean(means);
  out.median_of_p90s = median(p90s);
  return out;
}

}  // namespace cs2p
