#include "util/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace cs2p {

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned max_threads) {
  if (n == 0) return;
  unsigned workers = max_threads != 0 ? max_threads
                                      : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  if (workers > n) workers = static_cast<unsigned>(n);

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      {
        std::scoped_lock lock(error_mutex);
        if (first_error) return;  // stop pulling new work after a failure
      }
      try {
        fn(i);
      } catch (...) {
        std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (unsigned t = 1; t < workers; ++t) threads.emplace_back(worker);
  worker();  // the calling thread participates
  for (auto& thread : threads) thread.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cs2p
