#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace cs2p {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::string& label,
                                const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());

  std::vector<std::size_t> widths(columns, 0);
  auto account = [&widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  account(header_);
  for (const auto& row : rows_) account(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total_width = 0;
  for (std::size_t w : widths) total_width += w + 2;
  out << std::string(total_width, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace cs2p
