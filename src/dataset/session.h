// Session schema: the features of Table 2 plus the per-epoch throughput
// series recorded for each video session.
//
// A "session" is one client-server HTTP connection downloading video chunks;
// throughput is averaged per fixed-length epoch (6 s in the paper). Features
// are the spatial attributes CS2P clusters on: ISP, AS, Province, City,
// Server and the client's IP /16 prefix.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cs2p {

/// The session features CS2P may cluster on (Table 2). kClientPrefix stands
/// in for "ClientIP": the paper's last-mile baselines group by IP /16 prefix
/// rather than exact address.
enum class FeatureId : std::uint8_t {
  kIsp = 0,
  kAs,
  kProvince,
  kCity,
  kServer,
  kClientPrefix,
};

inline constexpr std::size_t kNumFeatures = 6;

/// All feature ids in declaration order.
constexpr std::array<FeatureId, kNumFeatures> all_features() noexcept {
  return {FeatureId::kIsp,    FeatureId::kAs,     FeatureId::kProvince,
          FeatureId::kCity,   FeatureId::kServer, FeatureId::kClientPrefix};
}

/// Human-readable feature name ("ISP", "City", ...).
std::string_view feature_name(FeatureId id) noexcept;

/// Spatial attributes of one session.
struct SessionFeatures {
  std::string isp;
  std::string as_number;
  std::string province;
  std::string city;
  std::string server;
  std::string client_prefix;

  /// Value of the given feature.
  std::string_view value(FeatureId id) const noexcept;

  bool operator==(const SessionFeatures&) const = default;
};

/// A set of features encoded as a bitmask over FeatureId. Subset enumeration
/// in the clustering step iterates masks 1..2^n-1.
using FeatureMask = std::uint32_t;

inline constexpr FeatureMask kAllFeaturesMask = (1U << kNumFeatures) - 1;

constexpr bool mask_contains(FeatureMask mask, FeatureId id) noexcept {
  return (mask >> static_cast<unsigned>(id)) & 1U;
}

/// "ISP+City+Server"-style label for logs and bench output.
std::string mask_to_string(FeatureMask mask);

/// Concatenated key of the feature values selected by `mask` (used to hash
/// sessions into clusters). Stable: fields are joined in FeatureId order
/// with an unlikely separator.
std::string feature_key(const SessionFeatures& features, FeatureMask mask);

/// One recorded video session.
struct Session {
  std::int64_t id = 0;
  SessionFeatures features;
  int day = 0;              ///< dataset day index (0-based)
  double start_hour = 0.0;  ///< local time-of-day in [0, 24)
  double epoch_seconds = 6.0;
  std::vector<double> throughput_mbps;  ///< one sample per epoch

  /// Absolute start time in hours since day 0 midnight.
  double start_time_hours() const noexcept { return day * 24.0 + start_hour; }

  double duration_seconds() const noexcept {
    return static_cast<double>(throughput_mbps.size()) * epoch_seconds;
  }

  /// Throughput of the first epoch (the "initial throughput" the paper's
  /// initial-bitrate selection predicts); 0 for an empty session.
  double initial_throughput() const noexcept {
    return throughput_mbps.empty() ? 0.0 : throughput_mbps.front();
  }

  double average_throughput() const noexcept;
};

}  // namespace cs2p
