#include "dataset/dataset.h"

#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/stats.h"

namespace cs2p {

Dataset::Dataset(std::vector<Session> sessions) : sessions_(std::move(sessions)) {}

void Dataset::add(Session session) { sessions_.push_back(std::move(session)); }

std::vector<const Session*> Dataset::on_day(int day) const {
  std::vector<const Session*> out;
  for (const auto& s : sessions_)
    if (s.day == day) out.push_back(&s);
  return out;
}

std::pair<Dataset, Dataset> Dataset::split_by_day(int first_test_day) const {
  Dataset train, test;
  for (const auto& s : sessions_) {
    if (s.day < first_test_day) train.add(s);
    else test.add(s);
  }
  return {std::move(train), std::move(test)};
}

DatasetSummary Dataset::summarize() const {
  DatasetSummary out;
  out.num_sessions = sessions_.size();
  std::map<FeatureId, std::set<std::string, std::less<>>> uniques;
  for (const auto& s : sessions_) {
    out.total_epochs += s.throughput_mbps.size();
    for (FeatureId id : all_features())
      uniques[id].insert(std::string(s.features.value(id)));
  }
  for (FeatureId id : all_features())
    out.unique_values[id] = uniques[id].size();
  out.median_duration_seconds = median(durations_seconds());
  out.median_epoch_throughput_mbps = median(all_epoch_throughputs());
  return out;
}

std::vector<double> Dataset::durations_seconds() const {
  std::vector<double> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(s.duration_seconds());
  return out;
}

std::vector<double> Dataset::all_epoch_throughputs() const {
  std::vector<double> out;
  for (const auto& s : sessions_)
    out.insert(out.end(), s.throughput_mbps.begin(), s.throughput_mbps.end());
  return out;
}

std::vector<double> Dataset::per_session_cov() const {
  std::vector<double> out;
  for (const auto& s : sessions_) {
    if (s.throughput_mbps.size() < 2) continue;
    out.push_back(coefficient_of_variation(s.throughput_mbps));
  }
  return out;
}

void Dataset::save_csv(const std::string& path) const {
  CsvTable table;
  table.header = {"id",     "isp",    "as",   "province", "city",
                  "server", "prefix", "day",  "start_hour", "epoch_seconds",
                  "series"};
  table.rows.reserve(sessions_.size());
  for (const auto& s : sessions_) {
    std::ostringstream series;
    series.precision(17);
    for (std::size_t i = 0; i < s.throughput_mbps.size(); ++i) {
      if (i) series << ' ';
      series << s.throughput_mbps[i];
    }
    table.rows.push_back({std::to_string(s.id), s.features.isp, s.features.as_number,
                          s.features.province, s.features.city, s.features.server,
                          s.features.client_prefix, std::to_string(s.day),
                          std::to_string(s.start_hour), std::to_string(s.epoch_seconds),
                          series.str()});
  }
  write_csv_file(path, table);
}

Dataset Dataset::load_csv(const std::string& path) {
  const CsvTable table = read_csv_file(path);
  const char* required[] = {"id",     "isp",    "as",  "province",   "city",
                            "server", "prefix", "day", "start_hour", "epoch_seconds",
                            "series"};
  std::map<std::string, int> cols;
  for (const char* name : required) {
    const int c = table.column(name);
    if (c < 0)
      throw std::runtime_error(std::string("Dataset::load_csv: missing column ") + name);
    cols[name] = c;
  }

  Dataset out;
  for (const auto& row : table.rows) {
    Session s;
    s.id = std::stoll(row[static_cast<std::size_t>(cols["id"])]);
    s.features.isp = row[static_cast<std::size_t>(cols["isp"])];
    s.features.as_number = row[static_cast<std::size_t>(cols["as"])];
    s.features.province = row[static_cast<std::size_t>(cols["province"])];
    s.features.city = row[static_cast<std::size_t>(cols["city"])];
    s.features.server = row[static_cast<std::size_t>(cols["server"])];
    s.features.client_prefix = row[static_cast<std::size_t>(cols["prefix"])];
    s.day = std::stoi(row[static_cast<std::size_t>(cols["day"])]);
    s.start_hour = std::stod(row[static_cast<std::size_t>(cols["start_hour"])]);
    s.epoch_seconds = std::stod(row[static_cast<std::size_t>(cols["epoch_seconds"])]);
    std::istringstream series(row[static_cast<std::size_t>(cols["series"])]);
    double v = 0.0;
    while (series >> v) s.throughput_mbps.push_back(v);
    // istream extraction stops silently at tokens like "nan" or "inf";
    // treat anything left unparsed as corruption, not a shorter session.
    if (!series.eof())
      throw std::runtime_error(
          "Dataset::load_csv: session " + std::to_string(s.id) +
          " has an unparseable throughput sample");
    // Reject corrupt rows at the boundary: one NaN here would otherwise
    // surface deep inside Baum-Welch with no hint of its origin.
    for (double w : s.throughput_mbps) {
      if (!std::isfinite(w) || w < 0.0)
        throw std::runtime_error(
            "Dataset::load_csv: session " + std::to_string(s.id) +
            " has a NaN, infinite, or negative throughput sample");
    }
    out.add(std::move(s));
  }
  return out;
}

}  // namespace cs2p
