#include "dataset/dataset.h"

#include <cmath>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/stats.h"

namespace cs2p {

Dataset::Dataset(std::vector<Session> sessions) : sessions_(std::move(sessions)) {}

void Dataset::add(Session session) { sessions_.push_back(std::move(session)); }

std::vector<const Session*> Dataset::on_day(int day) const {
  std::vector<const Session*> out;
  for (const auto& s : sessions_)
    if (s.day == day) out.push_back(&s);
  return out;
}

std::pair<Dataset, Dataset> Dataset::split_by_day(int first_test_day) const {
  Dataset train, test;
  for (const auto& s : sessions_) {
    if (s.day < first_test_day) train.add(s);
    else test.add(s);
  }
  return {std::move(train), std::move(test)};
}

DatasetSummary Dataset::summarize() const {
  DatasetSummary out;
  out.num_sessions = sessions_.size();
  std::map<FeatureId, std::set<std::string, std::less<>>> uniques;
  for (const auto& s : sessions_) {
    out.total_epochs += s.throughput_mbps.size();
    for (FeatureId id : all_features())
      uniques[id].insert(std::string(s.features.value(id)));
  }
  for (FeatureId id : all_features())
    out.unique_values[id] = uniques[id].size();
  out.median_duration_seconds = median(durations_seconds());
  out.median_epoch_throughput_mbps = median(all_epoch_throughputs());
  return out;
}

std::vector<double> Dataset::durations_seconds() const {
  std::vector<double> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(s.duration_seconds());
  return out;
}

std::vector<double> Dataset::all_epoch_throughputs() const {
  std::vector<double> out;
  for (const auto& s : sessions_)
    out.insert(out.end(), s.throughput_mbps.begin(), s.throughput_mbps.end());
  return out;
}

std::vector<double> Dataset::per_session_cov() const {
  std::vector<double> out;
  for (const auto& s : sessions_) {
    if (s.throughput_mbps.size() < 2) continue;
    out.push_back(coefficient_of_variation(s.throughput_mbps));
  }
  return out;
}

void Dataset::save_csv(const std::string& path) const {
  CsvTable table;
  table.header = {"id",     "isp",    "as",   "province", "city",
                  "server", "prefix", "day",  "start_hour", "epoch_seconds",
                  "series"};
  table.rows.reserve(sessions_.size());
  for (const auto& s : sessions_) {
    std::ostringstream series;
    series.precision(17);
    for (std::size_t i = 0; i < s.throughput_mbps.size(); ++i) {
      if (i) series << ' ';
      series << s.throughput_mbps[i];
    }
    table.rows.push_back({std::to_string(s.id), s.features.isp, s.features.as_number,
                          s.features.province, s.features.city, s.features.server,
                          s.features.client_prefix, std::to_string(s.day),
                          std::to_string(s.start_hour), std::to_string(s.epoch_seconds),
                          series.str()});
  }
  write_csv_file(path, table);
}

namespace {

/// Column lookup shared by both loaders; a missing column is file-level
/// corruption and always throws.
std::map<std::string, int> required_columns(const CsvTable& table) {
  const char* required[] = {"id",     "isp",    "as",  "province",   "city",
                            "server", "prefix", "day", "start_hour", "epoch_seconds",
                            "series"};
  std::map<std::string, int> cols;
  for (const char* name : required) {
    const int c = table.column(name);
    if (c < 0)
      throw IngestError(IngestErrorKind::kMissingColumn, -1,
                        std::string("Dataset::load_csv: missing column ") + name);
    cols[name] = c;
  }
  return cols;
}

/// Parses one CSV row into `out` and validates it. Returns the rejection
/// kind, or nullopt when the row is clean. Both loaders run exactly this —
/// strict turns a rejection into an IngestError, lenient into a counter.
std::optional<IngestErrorKind> parse_session_row(
    const std::vector<std::string>& row, std::map<std::string, int>& cols,
    Session& out) {
  out.id = std::stoll(row[static_cast<std::size_t>(cols["id"])]);
  out.features.isp = row[static_cast<std::size_t>(cols["isp"])];
  out.features.as_number = row[static_cast<std::size_t>(cols["as"])];
  out.features.province = row[static_cast<std::size_t>(cols["province"])];
  out.features.city = row[static_cast<std::size_t>(cols["city"])];
  out.features.server = row[static_cast<std::size_t>(cols["server"])];
  out.features.client_prefix = row[static_cast<std::size_t>(cols["prefix"])];
  out.day = std::stoi(row[static_cast<std::size_t>(cols["day"])]);
  out.start_hour = std::stod(row[static_cast<std::size_t>(cols["start_hour"])]);
  out.epoch_seconds = std::stod(row[static_cast<std::size_t>(cols["epoch_seconds"])]);
  // A session whose epoch duration is not a positive finite number has no
  // usable notion of time: duration_seconds() and every rate derived from
  // it would be meaningless.
  if (!std::isfinite(out.epoch_seconds) || out.epoch_seconds <= 0.0)
    return IngestErrorKind::kBadEpochSeconds;
  // Tokenise the series and convert each token with stod, which (unlike
  // istream double extraction) accepts "nan"/"inf" — so a non-finite sample
  // is attributed as NON_FINITE_SAMPLE, not lumped into parse corruption.
  std::istringstream series(row[static_cast<std::size_t>(cols["series"])]);
  std::string token;
  while (series >> token) {
    double v = 0.0;
    std::size_t consumed = 0;
    try {
      v = std::stod(token, &consumed);
    } catch (const std::exception&) {
      return IngestErrorKind::kUnparseableSeries;
    }
    if (consumed != token.size()) return IngestErrorKind::kUnparseableSeries;
    out.throughput_mbps.push_back(v);
  }
  for (double w : out.throughput_mbps) {
    if (!std::isfinite(w)) return IngestErrorKind::kNonFiniteSample;
    if (w < 0.0) return IngestErrorKind::kNegativeSample;
  }
  return std::nullopt;
}

}  // namespace

std::string_view ingest_error_kind_name(IngestErrorKind kind) noexcept {
  switch (kind) {
    case IngestErrorKind::kUnparseableSeries: return "UNPARSEABLE_SERIES";
    case IngestErrorKind::kNonFiniteSample: return "NON_FINITE_SAMPLE";
    case IngestErrorKind::kNegativeSample: return "NEGATIVE_SAMPLE";
    case IngestErrorKind::kBadEpochSeconds: return "BAD_EPOCH_SECONDS";
    case IngestErrorKind::kMissingColumn: return "MISSING_COLUMN";
  }
  return "UNKNOWN";
}

Dataset Dataset::load_csv(const std::string& path) {
  const CsvTable table = read_csv_file(path);
  auto cols = required_columns(table);
  Dataset out;
  for (const auto& row : table.rows) {
    Session s;
    if (const auto rejection = parse_session_row(row, cols, s)) {
      throw IngestError(*rejection, s.id,
                        "Dataset::load_csv: session " + std::to_string(s.id) +
                            " rejected: " +
                            std::string(ingest_error_kind_name(*rejection)));
    }
    out.add(std::move(s));
  }
  return out;
}

Dataset Dataset::load_csv_lenient(const std::string& path, IngestStats& stats) {
  const CsvTable table = read_csv_file(path);
  auto cols = required_columns(table);
  Dataset out;
  for (const auto& row : table.rows) {
    Session s;
    const auto rejection = parse_session_row(row, cols, s);
    if (!rejection) {
      ++stats.rows_loaded;
      out.add(std::move(s));
      continue;
    }
    ++stats.rows_skipped;
    switch (*rejection) {
      case IngestErrorKind::kUnparseableSeries: ++stats.unparseable_series; break;
      case IngestErrorKind::kNonFiniteSample: ++stats.non_finite_samples; break;
      case IngestErrorKind::kNegativeSample: ++stats.negative_samples; break;
      case IngestErrorKind::kBadEpochSeconds: ++stats.bad_epoch_seconds; break;
      case IngestErrorKind::kMissingColumn: break;  // unreachable: thrown above
    }
  }
  return out;
}

}  // namespace cs2p
