// Synthetic trace generator standing in for the proprietary iQiyi dataset.
//
// The paper's analysis (§3) rests on four empirical observations; the
// generator is constructed so that each of them holds in the synthetic data
// by the same mechanism the paper conjectures for the real network:
//
//  * Obs 1 (high intra-session variability): sessions emit from a hidden
//    Markov chain over "k concurrent flows at the bottleneck" states, so
//    per-epoch throughput is noisy with CoV comparable to the paper's.
//  * Obs 2 (stateful evolution): the chain is sticky (stay probability
//    ~0.9+), producing the persistent-then-switch pattern of Fig 4.
//  * Obs 3 (cross-session similarity): all sessions sharing a ground-truth
//    cluster (ISP x City x Server x last-mile prefix) share one chain, so
//    their initial and average throughputs concentrate (Fig 5).
//  * Obs 4 (high-dimensional feature effects): bottleneck capacity is
//    base(ISP) * congestion(City) * load(Server) * interaction(ISP,City,
//    Server) * lastmile(Prefix); the interaction term is a deterministic
//    hash of the triple, so no single feature or pair explains throughput
//    (Fig 6), and "bottlenecked" prefixes make the impact of a feature vary
//    across sessions.
//
// Time-of-day matters through the initial state distribution: at peak hours
// sessions tend to start in higher-contention states, which is what makes
// the time-windowed clustering of §5.1 useful for initial prediction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "util/matrix.h"
#include "util/rng.h"

namespace cs2p {

/// Knobs for the synthetic world. Defaults produce a laptop-scale scale
/// model of the paper's dataset (the paper: 87 ISPs, 736 cities, 18 servers,
/// 20M+ sessions; we default to a proportionally denser sampling of a
/// smaller world so clusters are populated).
struct SyntheticConfig {
  std::size_t num_isps = 8;
  std::size_t num_provinces = 10;
  std::size_t cities_per_province = 4;
  std::size_t num_servers = 18;
  std::size_t prefixes_per_isp_city = 3;
  std::size_t servers_per_province = 3;  ///< geographic server affinity
  int days = 2;                          ///< day 0 trains, day 1 tests

  std::size_t num_sessions = 12000;
  double epoch_seconds = 6.0;
  double log_duration_mu = 4.0;     ///< log-normal duration in epochs
  double log_duration_sigma = 0.8;
  std::size_t min_epochs = 5;
  std::size_t max_epochs = 400;

  std::size_t max_flows = 4;          ///< ground-truth state count per cluster

  // Multiplicative log-AR(1) measurement noise. TCP's congestion window
  // saw-tooths around the fair share, so consecutive 6-s epoch averages are
  // negatively correlated: an epoch that sampled the high side of the tooth
  // is followed by one on the low side. noise_rho < 0 encodes this; it makes
  // Last-Sample-style predictors sqrt(2(1-rho)/2) worse relative to
  // predicting the state mean, which is what the paper measures on real
  // traces (SS3 Obs 1).
  double observation_noise = 0.05;  ///< stationary std of the log-noise
  double noise_rho = -0.4;          ///< lag-1 autocorrelation in (-1, 1)

  // Transient per-epoch bursts: with probability burst_probability an epoch's
  // measurement is scaled by U(burst_low, burst_high) — short cross-traffic
  // spikes / TCP loss episodes that do NOT reflect a state change. These are
  // why "simple models that use the previous chunk throughputs are very
  // noisy" (§1): Last-Sample copies the outlier into its next forecast,
  // while a state-based filter shrugs it off.
  double burst_probability = 0.15;
  double burst_low = 0.5;
  double burst_high = 0.8;

  double min_throughput_mbps = 0.05;  ///< clamp floor

  std::uint64_t seed = 42;
};

/// Ground-truth Markov chain of one (ISP, City, Server, Prefix) cluster.
struct ClusterProfile {
  double capacity_mbps = 0.0;         ///< un-contended bottleneck capacity
  std::vector<double> state_means;    ///< capacity / k for k = 1..K
  std::vector<double> state_sigmas;
  Matrix transition;                  ///< sticky K x K chain
  double peak_shift = 0.0;            ///< how strongly peak hours raise contention
};

/// The synthetic network world: entity tables plus deterministic profile
/// derivation. Generation is reproducible from SyntheticConfig::seed.
class SyntheticWorld {
 public:
  explicit SyntheticWorld(SyntheticConfig config);

  /// Generates the full dataset (config.num_sessions sessions).
  Dataset generate();

  /// Ground-truth profile of the cluster a feature tuple belongs to.
  /// Exposed so tests and benches can compare learned models with truth.
  ClusterProfile profile_for(const SessionFeatures& features) const;

  /// Initial state distribution of a cluster at a given hour of day.
  Vec initial_state_distribution(const ClusterProfile& profile, double hour) const;

  const SyntheticConfig& config() const noexcept { return config_; }

  /// Entity name helpers (stable identifiers, e.g. "ISP3", "City7-2").
  std::string isp_name(std::size_t i) const;
  std::string city_name(std::size_t province, std::size_t city) const;
  std::string server_name(std::size_t s) const;

 private:
  struct IspInfo {
    double base_capacity_mbps;
    double popularity;
    std::size_t num_ases;
  };
  struct CityInfo {
    std::size_t province;
    double congestion;  ///< multiplier <= ~1.1
    double popularity;
  };
  struct ServerInfo {
    double load_factor;
  };

  /// Deterministic per-entity-combination hash in [lo, hi].
  double combo_factor(std::uint64_t a, std::uint64_t b, std::uint64_t c, double lo,
                      double hi) const noexcept;

  std::size_t isp_index(std::string_view name) const;
  std::size_t city_index(std::string_view name) const;
  std::size_t server_index(std::string_view name) const;
  std::size_t prefix_index(std::string_view name) const;

  SyntheticConfig config_;
  std::vector<IspInfo> isps_;
  std::vector<CityInfo> cities_;  ///< flattened province x city
  std::vector<ServerInfo> servers_;
  std::uint64_t world_salt_;
};

/// Convenience: build a world and generate in one call.
Dataset generate_synthetic_dataset(const SyntheticConfig& config);

}  // namespace cs2p
