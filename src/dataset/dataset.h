// Dataset container: a collection of sessions plus the summary statistics
// and train/test split helpers the evaluation needs (§7.1: "train on day 1,
// test on day 2").
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dataset/session.h"

namespace cs2p {

/// Why a session row failed ingest validation.
enum class IngestErrorKind : std::uint8_t {
  kUnparseableSeries = 0,  ///< a series token did not parse as a number
  kNonFiniteSample,        ///< NaN or infinite throughput sample
  kNegativeSample,         ///< negative throughput sample
  kBadEpochSeconds,        ///< epoch duration not finite and > 0
  kMissingColumn,          ///< required CSV column absent
};

/// Stable name of an ingest error kind ("NON_FINITE_SAMPLE", ...).
std::string_view ingest_error_kind_name(IngestErrorKind kind) noexcept;

/// Typed ingest failure thrown by the strict loader. Derives from
/// std::runtime_error so existing catch sites keep working; `kind()` and
/// `session_id()` make the rejection machine-readable.
class IngestError : public std::runtime_error {
 public:
  IngestError(IngestErrorKind kind, std::int64_t session_id,
              const std::string& message)
      : std::runtime_error(message), kind_(kind), session_id_(session_id) {}

  IngestErrorKind kind() const noexcept { return kind_; }
  /// Session id of the offending row; -1 when no row is attributable
  /// (e.g. a missing column).
  std::int64_t session_id() const noexcept { return session_id_; }

 private:
  IngestErrorKind kind_;
  std::int64_t session_id_;
};

/// Per-file skip accounting of the lenient loader.
struct IngestStats {
  std::size_t rows_loaded = 0;
  std::size_t rows_skipped = 0;             ///< sum of the reasons below
  std::size_t unparseable_series = 0;
  std::size_t non_finite_samples = 0;       ///< rows with a NaN/Inf sample
  std::size_t negative_samples = 0;         ///< rows with a negative sample
  std::size_t bad_epoch_seconds = 0;        ///< rows with epoch_seconds <= 0
};

/// Table 2-style summary of a dataset.
struct DatasetSummary {
  std::size_t num_sessions = 0;
  std::size_t total_epochs = 0;
  std::map<FeatureId, std::size_t> unique_values;  ///< per-feature cardinality
  double median_duration_seconds = 0.0;
  double median_epoch_throughput_mbps = 0.0;
};

/// An owning collection of sessions.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Session> sessions);

  const std::vector<Session>& sessions() const noexcept { return sessions_; }
  std::vector<Session>& sessions() noexcept { return sessions_; }
  std::size_t size() const noexcept { return sessions_.size(); }
  bool empty() const noexcept { return sessions_.empty(); }

  void add(Session session);

  /// Pointers to the sessions recorded on `day`.
  std::vector<const Session*> on_day(int day) const;

  /// Splits into (train, test) by day threshold: sessions with
  /// day < first_test_day train, the rest test.
  std::pair<Dataset, Dataset> split_by_day(int first_test_day) const;

  DatasetSummary summarize() const;

  /// Flattened series for Fig 3: all session durations (s) and all
  /// per-epoch throughput samples (Mbps).
  std::vector<double> durations_seconds() const;
  std::vector<double> all_epoch_throughputs() const;

  /// Coefficient of variation of throughput per session (Observation 1);
  /// sessions with < 2 epochs are skipped.
  std::vector<double> per_session_cov() const;

  /// CSV round-trip. One row per session; the throughput series is stored
  /// space-separated in a single quoted cell.
  void save_csv(const std::string& path) const;

  /// Strict loader: the first invalid row aborts the load with a typed
  /// IngestError (one NaN would otherwise surface deep inside Baum-Welch
  /// with no hint of its origin).
  static Dataset load_csv(const std::string& path);

  /// Lenient loader: invalid rows are skipped (never repaired) and counted
  /// per reason in `stats`; valid rows load exactly as load_csv would load
  /// them. A missing required column still throws — that is file-level
  /// corruption, not a bad row.
  static Dataset load_csv_lenient(const std::string& path, IngestStats& stats);

 private:
  std::vector<Session> sessions_;
};

}  // namespace cs2p
