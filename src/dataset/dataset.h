// Dataset container: a collection of sessions plus the summary statistics
// and train/test split helpers the evaluation needs (§7.1: "train on day 1,
// test on day 2").
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "dataset/session.h"

namespace cs2p {

/// Table 2-style summary of a dataset.
struct DatasetSummary {
  std::size_t num_sessions = 0;
  std::size_t total_epochs = 0;
  std::map<FeatureId, std::size_t> unique_values;  ///< per-feature cardinality
  double median_duration_seconds = 0.0;
  double median_epoch_throughput_mbps = 0.0;
};

/// An owning collection of sessions.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Session> sessions);

  const std::vector<Session>& sessions() const noexcept { return sessions_; }
  std::vector<Session>& sessions() noexcept { return sessions_; }
  std::size_t size() const noexcept { return sessions_.size(); }
  bool empty() const noexcept { return sessions_.empty(); }

  void add(Session session);

  /// Pointers to the sessions recorded on `day`.
  std::vector<const Session*> on_day(int day) const;

  /// Splits into (train, test) by day threshold: sessions with
  /// day < first_test_day train, the rest test.
  std::pair<Dataset, Dataset> split_by_day(int first_test_day) const;

  DatasetSummary summarize() const;

  /// Flattened series for Fig 3: all session durations (s) and all
  /// per-epoch throughput samples (Mbps).
  std::vector<double> durations_seconds() const;
  std::vector<double> all_epoch_throughputs() const;

  /// Coefficient of variation of throughput per session (Observation 1);
  /// sessions with < 2 epochs are skipped.
  std::vector<double> per_session_cov() const;

  /// CSV round-trip. One row per session; the throughput series is stored
  /// space-separated in a single quoted cell.
  void save_csv(const std::string& path) const;
  static Dataset load_csv(const std::string& path);

 private:
  std::vector<Session> sessions_;
};

}  // namespace cs2p
