#include "dataset/session.h"

#include "util/stats.h"

namespace cs2p {

std::string_view feature_name(FeatureId id) noexcept {
  switch (id) {
    case FeatureId::kIsp: return "ISP";
    case FeatureId::kAs: return "AS";
    case FeatureId::kProvince: return "Province";
    case FeatureId::kCity: return "City";
    case FeatureId::kServer: return "Server";
    case FeatureId::kClientPrefix: return "ClientPrefix";
  }
  return "?";
}

std::string_view SessionFeatures::value(FeatureId id) const noexcept {
  switch (id) {
    case FeatureId::kIsp: return isp;
    case FeatureId::kAs: return as_number;
    case FeatureId::kProvince: return province;
    case FeatureId::kCity: return city;
    case FeatureId::kServer: return server;
    case FeatureId::kClientPrefix: return client_prefix;
  }
  return {};
}

std::string mask_to_string(FeatureMask mask) {
  if (mask == 0) return "(global)";
  std::string out;
  for (FeatureId id : all_features()) {
    if (!mask_contains(mask, id)) continue;
    if (!out.empty()) out += "+";
    out += feature_name(id);
  }
  return out;
}

std::string feature_key(const SessionFeatures& features, FeatureMask mask) {
  std::string key;
  for (FeatureId id : all_features()) {
    if (!mask_contains(mask, id)) continue;
    key += features.value(id);
    key += '\x1f';  // ASCII unit separator: cannot appear in feature values
  }
  return key;
}

double Session::average_throughput() const noexcept {
  return mean(throughput_mbps);
}

}  // namespace cs2p
