#include "dataset/synthetic.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>

namespace cs2p {
namespace {

/// SplitMix64-style avalanche used for deterministic combination factors.
std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Parses the trailing integer of names like "ISP3" or "City7-2" (after the
/// last non-digit). Throws on malformed identifiers.
std::size_t trailing_number(std::string_view name) {
  std::size_t pos = name.size();
  while (pos > 0 && std::isdigit(static_cast<unsigned char>(name[pos - 1]))) --pos;
  if (pos == name.size())
    throw std::invalid_argument("SyntheticWorld: malformed entity name: " +
                                std::string(name));
  std::size_t value = 0;
  const auto* begin = name.data() + pos;
  const auto* end = name.data() + name.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    throw std::invalid_argument("SyntheticWorld: malformed entity name: " +
                                std::string(name));
  return value;
}

/// Relative diurnal demand: low at night, peaks in the evening. Integrates
/// to ~1 over 24 h when used as categorical weights per hour.
double diurnal_weight(double hour) noexcept {
  // Two bumps: mid-day and a stronger evening peak (video watching).
  const double day_bump = std::exp(-0.5 * std::pow((hour - 13.0) / 3.0, 2.0));
  const double evening_bump = 2.0 * std::exp(-0.5 * std::pow((hour - 20.5) / 2.2, 2.0));
  return 0.15 + day_bump + evening_bump;
}

}  // namespace

SyntheticWorld::SyntheticWorld(SyntheticConfig config) : config_(std::move(config)) {
  if (config_.num_isps == 0 || config_.num_provinces == 0 ||
      config_.cities_per_province == 0 || config_.num_servers == 0 ||
      config_.max_flows == 0 || config_.days <= 0) {
    throw std::invalid_argument("SyntheticWorld: all entity counts must be positive");
  }
  Rng rng(config_.seed);
  world_salt_ = rng();

  isps_.reserve(config_.num_isps);
  for (std::size_t i = 0; i < config_.num_isps; ++i) {
    IspInfo info{};
    // Base capacity spread over roughly [2.5, 25] Mbps, log-uniform, which
    // matches the residential-broadband-like distribution of Fig 3b.
    info.base_capacity_mbps = 2.5 * std::exp(rng.uniform(0.0, std::log(10.0)));
    // Zipf-ish popularity: a few big ISPs dominate.
    info.popularity = 1.0 / static_cast<double>(i + 1);
    info.num_ases = 1 + rng.uniform_index(3);  // 1-3 ASes per ISP
    isps_.push_back(info);
  }

  cities_.reserve(config_.num_provinces * config_.cities_per_province);
  for (std::size_t p = 0; p < config_.num_provinces; ++p) {
    for (std::size_t c = 0; c < config_.cities_per_province; ++c) {
      CityInfo info{};
      info.province = p;
      info.congestion = rng.uniform(0.5, 1.1);
      info.popularity = 0.3 + rng.uniform();
      cities_.push_back(info);
    }
  }

  servers_.reserve(config_.num_servers);
  for (std::size_t s = 0; s < config_.num_servers; ++s) {
    servers_.push_back({rng.uniform(0.6, 1.1)});
  }
}

std::string SyntheticWorld::isp_name(std::size_t i) const {
  return "ISP" + std::to_string(i);
}

std::string SyntheticWorld::city_name(std::size_t province, std::size_t city) const {
  return "City" + std::to_string(province) + "-" + std::to_string(city);
}

std::string SyntheticWorld::server_name(std::size_t s) const {
  return "Server" + std::to_string(s);
}

double SyntheticWorld::combo_factor(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                                    double lo, double hi) const noexcept {
  const std::uint64_t h =
      mix(world_salt_ ^ mix(a + 1) ^ mix((b + 1) * 0x9e3779b9ULL) ^
          mix((c + 1) * 0x85ebca6bULL));
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return lo + (hi - lo) * unit;
}

std::size_t SyntheticWorld::isp_index(std::string_view name) const {
  const std::size_t i = trailing_number(name);
  if (i >= isps_.size())
    throw std::invalid_argument("SyntheticWorld: unknown ISP " + std::string(name));
  return i;
}

std::size_t SyntheticWorld::city_index(std::string_view name) const {
  // "City<p>-<c>": parse both numbers.
  const auto dash = name.rfind('-');
  if (dash == std::string_view::npos)
    throw std::invalid_argument("SyntheticWorld: malformed city " + std::string(name));
  const std::size_t c = trailing_number(name);
  const std::size_t p = trailing_number(name.substr(0, dash));
  const std::size_t idx = p * config_.cities_per_province + c;
  if (p >= config_.num_provinces || c >= config_.cities_per_province)
    throw std::invalid_argument("SyntheticWorld: unknown city " + std::string(name));
  return idx;
}

std::size_t SyntheticWorld::server_index(std::string_view name) const {
  const std::size_t s = trailing_number(name);
  if (s >= servers_.size())
    throw std::invalid_argument("SyntheticWorld: unknown server " + std::string(name));
  return s;
}

std::size_t SyntheticWorld::prefix_index(std::string_view name) const {
  return trailing_number(name);
}

ClusterProfile SyntheticWorld::profile_for(const SessionFeatures& features) const {
  const std::size_t isp = isp_index(features.isp);
  const std::size_t city = city_index(features.city);
  const std::size_t server = server_index(features.server);
  const std::size_t prefix = prefix_index(features.client_prefix);

  // High-dimensional interaction: for about half of the (ISP, City, Server)
  // triples — "the common case, rather than an anomalous corner case"
  // (Observation 4 / Fig 6) — throughput depends on the full triple rather
  // than decomposing into per-feature factors. The other half decomposes,
  // so coarser feature combinations are genuinely homogeneous for them.
  const double interaction_roll = combo_factor(isp, city, server ^ 0x77, 0.0, 1.0);
  const double interaction =
      interaction_roll < 0.5 ? combo_factor(isp, city, server, 0.55, 1.45) : 1.0;

  // Last-mile multiplier per prefix: ~15% of prefixes are severely
  // bottlenecked (satellite-like), for which the last mile dominates; the
  // rest see no last-mile limit at all. This is the "impact of the same
  // feature varies across sessions" half of Observation 4.
  const double roll = combo_factor(prefix, isp, 0xbeef, 0.0, 1.0);
  const double last_mile =
      roll < 0.15 ? combo_factor(prefix, isp, 0xcafe, 0.25, 0.4) : 1.0;

  ClusterProfile profile;
  profile.capacity_mbps = isps_[isp].base_capacity_mbps * cities_[city].congestion *
                          servers_[server].load_factor * interaction * last_mile;

  const std::size_t k_states = config_.max_flows;
  profile.state_means.resize(k_states);
  profile.state_sigmas.resize(k_states);
  for (std::size_t k = 0; k < k_states; ++k) {
    // TCP fair-sharing intuition: k+1 flows at the bottleneck each get an
    // equal share of the capacity.
    profile.state_means[k] = profile.capacity_mbps / static_cast<double>(k + 1);
    profile.state_sigmas[k] =
        std::max(0.01, 0.05 * profile.state_means[k]);
  }

  // Sticky chain with mostly-adjacent transitions (flows arrive/depart one
  // at a time). Stay probability varies per cluster.
  const double stay = combo_factor(isp ^ 0x5a5a, city, server, 0.93, 0.985);
  profile.transition = Matrix(k_states, k_states, 0.0);
  for (std::size_t i = 0; i < k_states; ++i) {
    if (k_states == 1) {
      profile.transition(0, 0) = 1.0;
      break;
    }
    profile.transition(i, i) = stay;
    const double leave = 1.0 - stay;
    const bool has_prev = i > 0;
    const bool has_next = i + 1 < k_states;
    if (has_prev && has_next) {
      // Balanced arrivals/departures in steady state: without symmetry the
      // chain would drift systematically, which neither real traces nor the
      // paper's example models (Fig 8) show.
      profile.transition(i, i - 1) = 0.5 * leave;
      profile.transition(i, i + 1) = 0.5 * leave;
    } else if (has_prev) {
      profile.transition(i, i - 1) = leave;
    } else {
      profile.transition(i, i + 1) = leave;
    }
  }

  profile.peak_shift = combo_factor(isp, city, 0xfeed, 0.5, 2.0);
  return profile;
}

Vec SyntheticWorld::initial_state_distribution(const ClusterProfile& profile,
                                               double hour) const {
  const std::size_t k_states = profile.state_means.size();
  // Contention pressure rises at peak hours: weight state k proportionally
  // to exp(-|k - target|), target sliding from low-contention (off-peak)
  // to high-contention (peak).
  const double peak = (diurnal_weight(hour) - 0.15) / 3.0;  // ~[0, 1]
  const double target =
      std::min<double>(static_cast<double>(k_states - 1),
                       profile.peak_shift * peak * static_cast<double>(k_states - 1));
  Vec weights(k_states);
  for (std::size_t k = 0; k < k_states; ++k)
    weights[k] = std::exp(-2.5 * std::abs(static_cast<double>(k) - target));
  normalize_in_place(weights);
  return weights;
}

Dataset SyntheticWorld::generate() {
  Rng rng(config_.seed ^ 0xabcdef12345678ULL);
  Dataset dataset;

  // Popularity weights.
  std::vector<double> isp_weights;
  for (const auto& isp : isps_) isp_weights.push_back(isp.popularity);
  std::vector<double> city_weights;
  for (const auto& city : cities_) city_weights.push_back(city.popularity);
  std::vector<double> hour_weights(24);
  for (int h = 0; h < 24; ++h) hour_weights[static_cast<std::size_t>(h)] =
      diurnal_weight(static_cast<double>(h) + 0.5);

  for (std::size_t n = 0; n < config_.num_sessions; ++n) {
    Session s;
    s.id = static_cast<std::int64_t>(n);
    s.epoch_seconds = config_.epoch_seconds;

    const std::size_t isp = rng.categorical(isp_weights);
    const std::size_t city = rng.categorical(city_weights);
    const std::size_t province = cities_[city].province;

    // Geographic server affinity: most sessions hit one of the province's
    // assigned servers; a minority go anywhere (CDN spill-over).
    std::size_t server = 0;
    if (rng.bernoulli(0.85) && config_.servers_per_province > 0) {
      const std::size_t slot = rng.uniform_index(config_.servers_per_province);
      server = (province * config_.servers_per_province + slot) % config_.num_servers;
    } else {
      server = rng.uniform_index(config_.num_servers);
    }

    const std::size_t prefix_slot = rng.uniform_index(config_.prefixes_per_isp_city);
    // Prefix identity is global: "Pfx<isp>_<city>_<slot>" with a numeric
    // suffix that encodes all three so profile_for can recover it.
    const std::size_t prefix_id =
        (isp * cities_.size() + city) * config_.prefixes_per_isp_city + prefix_slot;

    s.features.isp = isp_name(isp);
    s.features.as_number =
        "AS" + std::to_string(isp * 10 + rng.uniform_index(isps_[isp].num_ases));
    s.features.province = "Province" + std::to_string(province);
    s.features.city = city_name(province, city % config_.cities_per_province);
    s.features.server = server_name(server);
    s.features.client_prefix = "Pfx" + std::to_string(prefix_id);

    s.day = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(config_.days)));
    s.start_hour = static_cast<double>(rng.categorical(hour_weights)) + rng.uniform();

    const ClusterProfile profile = profile_for(s.features);

    // Duration in epochs: log-normal, clamped.
    const double raw_epochs =
        rng.log_normal(config_.log_duration_mu, config_.log_duration_sigma);
    const auto epochs = std::clamp<std::size_t>(
        static_cast<std::size_t>(raw_epochs), config_.min_epochs, config_.max_epochs);

    // Sample the hidden path and emit throughput.
    const Vec init = initial_state_distribution(profile, s.start_hour);
    std::size_t state = rng.categorical(init);
    s.throughput_mbps.reserve(epochs);
    // Log-AR(1) measurement noise with stationary std observation_noise:
    // z_t = rho z_{t-1} + eta_t, eta ~ N(0, noise^2 (1 - rho^2)).
    const double rho = std::clamp(config_.noise_rho, -0.99, 0.99);
    const double innovation_sigma =
        config_.observation_noise * std::sqrt(1.0 - rho * rho);
    double log_noise = rng.gaussian(0.0, config_.observation_noise);
    for (std::size_t t = 0; t < epochs; ++t) {
      if (t > 0) {
        Vec row(profile.transition.row(state).begin(),
                profile.transition.row(state).end());
        state = rng.categorical(row);
        log_noise = rho * log_noise + rng.gaussian(0.0, innovation_sigma);
      }
      double w = rng.gaussian(profile.state_means[state], profile.state_sigmas[state]);
      // Multiplicative measurement noise (TCP sawtooth) plus occasional
      // transient bursts (cross-traffic spikes) that do not change state.
      w *= std::exp(log_noise);
      if (rng.bernoulli(config_.burst_probability))
        w *= rng.uniform(config_.burst_low, config_.burst_high);
      s.throughput_mbps.push_back(std::max(w, config_.min_throughput_mbps));
    }
    dataset.add(std::move(s));
  }
  return dataset;
}

Dataset generate_synthetic_dataset(const SyntheticConfig& config) {
  SyntheticWorld world(config);
  return world.generate();
}

}  // namespace cs2p
