#include "qoe/qoe.h"

#include <cmath>
#include <stdexcept>

namespace cs2p {

double qoe_from_series(std::span<const double> bitrates_kbps,
                       std::span<const double> rebuffer_seconds,
                       double startup_delay_seconds, const QoeParams& params) {
  if (bitrates_kbps.size() != rebuffer_seconds.size())
    throw std::invalid_argument("qoe_from_series: size mismatch");
  double quality = 0.0;
  double switching = 0.0;
  double rebuffer = 0.0;
  for (std::size_t k = 0; k < bitrates_kbps.size(); ++k) {
    quality += bitrates_kbps[k];
    rebuffer += rebuffer_seconds[k];
    if (k + 1 < bitrates_kbps.size())
      switching += std::abs(bitrates_kbps[k + 1] - bitrates_kbps[k]);
  }
  return quality - params.lambda * switching - params.mu * rebuffer -
         params.mu_s * startup_delay_seconds;
}

QoeBreakdown compute_qoe(const PlaybackResult& playback, const QoeParams& params) {
  QoeBreakdown out;
  out.startup_seconds = playback.startup_delay_seconds;

  std::size_t good_chunks = 0;
  double prev_bitrate = -1.0;
  for (const auto& chunk : playback.chunks) {
    out.quality_sum_kbps += chunk.bitrate_kbps;
    out.rebuffer_seconds += chunk.rebuffer_seconds;
    if (chunk.rebuffer_seconds <= 0.0) ++good_chunks;
    if (prev_bitrate >= 0.0 && chunk.bitrate_kbps != prev_bitrate) {
      out.switching_penalty_kbps += std::abs(chunk.bitrate_kbps - prev_bitrate);
      ++out.num_switches;
    }
    prev_bitrate = chunk.bitrate_kbps;
  }

  const auto n = playback.chunks.size();
  out.avg_bitrate_kbps = n ? out.quality_sum_kbps / static_cast<double>(n) : 0.0;
  out.good_ratio = n ? static_cast<double>(good_chunks) / static_cast<double>(n) : 0.0;
  out.total = out.quality_sum_kbps - params.lambda * out.switching_penalty_kbps -
              params.mu * out.rebuffer_seconds - params.mu_s * out.startup_seconds;
  return out;
}

}  // namespace cs2p
