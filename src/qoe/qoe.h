// Linear QoE model of Yin et al. [47], used verbatim by the paper (§7.1).
//
//   QoE = sum_k q(R_k)                         (average video quality)
//       - lambda * sum_k |q(R_{k+1}) - q(R_k)| (quality variation)
//       - mu     * sum_k rebuffer_k            (total rebuffer time)
//       - mu_s   * startup_delay               (startup penalty)
//
// with q(R) = R (identity in kbps). The paper sets lambda = 1 and
// mu = 3000 following [47]'s QoE_lin. The exact mu_s is illegible in the
// paper source; we default it to 300 (startup delay tolerated an order of
// magnitude more than midstream stalls, consistent with QoE measurement
// studies) — with mu_s = mu, starting at the lowest rung strictly dominates
// and initial bitrate selection could never help QoE, contradicting the
// paper's own Table 1 motivation. All weights are knobs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cs2p {

/// QoE weighting parameters.
struct QoeParams {
  double lambda = 1.0;  ///< quality-variation weight
  double mu = 3000.0;   ///< rebuffer penalty per second (kbps-equivalent)
  double mu_s = 300.0;  ///< startup-delay penalty per second
};

/// Per-chunk telemetry emitted by the player simulator.
struct ChunkRecord {
  double bitrate_kbps = 0.0;
  double rebuffer_seconds = 0.0;  ///< stall time incurred downloading it
  double download_seconds = 0.0;
  double predicted_throughput_mbps = 0.0;
  double actual_throughput_mbps = 0.0;
  /// serve_flags:: bits of the predictor when this chunk's forecast was
  /// made (0 = primary model; see predictors/predictor.h).
  unsigned serve_flags = 0;
};

/// Full session outcome.
struct PlaybackResult {
  std::vector<ChunkRecord> chunks;
  double startup_delay_seconds = 0.0;
  /// True when the session's predictor finished in degraded (local
  /// fallback) mode — lets the pilot bench report QoE-under-failure.
  bool predictor_degraded = false;
  /// Chunks whose forecast was served off the primary path (any non-zero
  /// serve_flags: guardrail fallback, drifted cluster, global model,
  /// client-side fallback).
  std::size_t degraded_chunks = 0;
};

/// QoE score plus its components (the paper reports AvgBitrate and GoodRatio
/// separately in §7.5).
struct QoeBreakdown {
  double total = 0.0;
  double quality_sum_kbps = 0.0;
  double switching_penalty_kbps = 0.0;
  double rebuffer_seconds = 0.0;
  double startup_seconds = 0.0;
  double avg_bitrate_kbps = 0.0;   ///< AvgBitrate metric
  double good_ratio = 0.0;         ///< fraction of chunks with no rebuffering
  std::size_t num_switches = 0;
};

/// Scores a playback under the linear QoE model.
QoeBreakdown compute_qoe(const PlaybackResult& playback, const QoeParams& params = {});

/// Direct form used by the offline-optimal DP: bitrates + rebuffer times.
double qoe_from_series(std::span<const double> bitrates_kbps,
                       std::span<const double> rebuffer_seconds,
                       double startup_delay_seconds, const QoeParams& params = {});

}  // namespace cs2p
