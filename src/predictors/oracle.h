// Oracle predictor: returns the session's true future throughput.
//
// Used only by the evaluation harness to compute the offline-optimal QoE
// normaliser (n-QoE, §7.1) and as a sanity upper bound in tests. It reads
// SessionContext::oracle_series, which real predictors must ignore.
#pragma once

#include "predictors/predictor.h"

namespace cs2p {

class OracleModel final : public PredictorModel {
 public:
  std::string name() const override { return "Oracle"; }

  /// Throws std::invalid_argument if the context carries no oracle series.
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext& context) const override;
};

}  // namespace cs2p
