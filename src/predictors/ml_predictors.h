// Machine-learning baseline predictors (paper §7.1): SVR [34] and GBR [41],
// trained "using all the sessions in our dataset with the same session
// feature set as we list in Table 2".
//
// Both models regress next-epoch throughput on the target-encoded session
// features plus a summary of the session's observed history (empty at the
// initial epoch), so one model serves both the initial (Fig 9a) and the
// midstream (Fig 9b) evaluation. Multi-step-ahead prediction returns the
// same value: the features barely change within a lookahead horizon, which
// matches the slow error growth of these baselines in Fig 9c.
#pragma once

#include <cstdint>

#include "dataset/dataset.h"
#include "ml/gbrt.h"
#include "ml/svr.h"
#include "predictors/feature_encoder.h"
#include "predictors/predictor.h"

namespace cs2p {

/// How training examples are drawn from sessions.
struct MlTrainingConfig {
  std::size_t max_examples_per_session = 8;  ///< epoch subsampling bound
  std::size_t max_total_examples = 60000;
  std::uint64_t seed = 17;
};

/// SVR baseline.
class SvrPredictorModel final : public PredictorModel {
 public:
  /// Trains on `training`; throws std::invalid_argument when empty.
  SvrPredictorModel(const Dataset& training, const MlTrainingConfig& train_config = {},
                    const SvrConfig& svr_config = {});

  std::string name() const override { return "SVR"; }
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext& context) const override;

 private:
  FeatureEncoder encoder_;
  LinearSvr svr_;
};

/// GBR baseline.
class GbrPredictorModel final : public PredictorModel {
 public:
  GbrPredictorModel(const Dataset& training, const MlTrainingConfig& train_config = {},
                    const GbrtConfig& gbrt_config = {});

  std::string name() const override { return "GBR"; }
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext& context) const override;

 private:
  FeatureEncoder encoder_;
  GradientBoostedTrees gbrt_;
};

}  // namespace cs2p
