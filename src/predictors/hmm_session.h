// Reusable per-session predictor wrapping an OnlineHmmFilter plus a fixed
// cold-start value. Shared by the GHM baseline and the CS2P engine: both
// predict midstream with Algorithm 1 and differ only in which HMM and which
// initial value they supply.
#pragma once

#include <algorithm>
#include <cmath>

#include "hmm/online_filter.h"
#include "predictors/predictor.h"

namespace cs2p {

class HmmSessionPredictor final : public SessionPredictor {
 public:
  /// `initial_value` is the cluster/global median used before any
  /// observation arrives (Eq. 6).
  HmmSessionPredictor(const GaussianHmm& model, double initial_value,
                      PredictionRule rule = PredictionRule::kMleState)
      : filter_(model, rule), initial_value_(initial_value) {}

  /// Serving-tier constructor: shares one SoA kernel across every session
  /// pinned to the same model (hmm/kernel.h).
  HmmSessionPredictor(std::shared_ptr<const HmmKernel> kernel,
                      double initial_value,
                      PredictionRule rule = PredictionRule::kMleState)
      : filter_(std::move(kernel), rule), initial_value_(initial_value) {}

  std::optional<double> predict_initial() const override { return initial_value_; }

  double predict(unsigned steps_ahead) const override {
    if (filter_.observations() == 0) return initial_value_;
    return filter_.predict(std::max(1U, steps_ahead));
  }

  void observe(double throughput_mbps) override { filter_.observe(throughput_mbps); }

  std::optional<double> last_log_likelihood() const override {
    if (filter_.observations() == 0) return std::nullopt;
    const double ll = filter_.last_log_likelihood();
    if (std::isnan(ll)) return std::nullopt;
    return ll;
  }

  BatchObservePlan begin_batch_observe(double throughput_mbps) override {
    return {BatchObservePlan::Kind::kFilter, &filter_, throughput_mbps};
  }

  const OnlineHmmFilter* batch_predict_filter(unsigned) const override {
    // Cold start serves initial_value_ through the scalar path.
    return filter_.observations() == 0 ? nullptr : &filter_;
  }

  /// Exposed for diagnostics (pilot bench reports predicted rebuffering from
  /// the belief state).
  const OnlineHmmFilter& filter() const noexcept { return filter_; }

 private:
  OnlineHmmFilter filter_;
  double initial_value_;
};

}  // namespace cs2p
