// History-based baseline predictors (paper §3 Observation 1, §7.1):
//
//   LS — Last Sample: the previous epoch's throughput.
//   HM — Harmonic Mean of all previous samples in the session (the
//        predictor MPC [47] ships with; robust to outliers).
//   AR — Auto-Regressive model of order k, refit on the session's own
//        history each epoch by ridge least squares (with a mean fallback
//        until enough lags exist).
//
// None of them can produce an initial (cold-start) prediction.
#pragma once

#include <cstddef>

#include "predictors/predictor.h"

namespace cs2p {

/// Last-Sample model.
class LastSampleModel final : public PredictorModel {
 public:
  std::string name() const override { return "LS"; }
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext& context) const override;
};

/// Harmonic-Mean model. `window` limits how many recent samples are used
/// (0 = all history, the paper's configuration).
class HarmonicMeanModel final : public PredictorModel {
 public:
  explicit HarmonicMeanModel(std::size_t window = 0) : window_(window) {}
  std::string name() const override { return "HM"; }
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext& context) const override;

 private:
  std::size_t window_;
};

/// Auto-Regressive model of order `order`, refit per session online.
class AutoRegressiveModel final : public PredictorModel {
 public:
  explicit AutoRegressiveModel(std::size_t order = 3, double ridge_lambda = 1e-3)
      : order_(order), ridge_lambda_(ridge_lambda) {}
  std::string name() const override { return "AR"; }
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext& context) const override;

 private:
  std::size_t order_;
  double ridge_lambda_;
};

}  // namespace cs2p
