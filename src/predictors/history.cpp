#include "predictors/history.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "ml/linear.h"
#include "util/stats.h"

namespace cs2p {
namespace {

/// Shared base: accumulates the session's own history.
class HistorySession : public SessionPredictor {
 public:
  void observe(double throughput_mbps) override { history_.push_back(throughput_mbps); }

 protected:
  void require_history() const {
    if (history_.empty())
      throw std::logic_error("history predictor: predict() before any observation");
  }
  std::vector<double> history_;
};

class LastSampleSession final : public HistorySession {
 public:
  double predict(unsigned) const override {
    require_history();
    return history_.back();
  }
};

class HarmonicMeanSession final : public HistorySession {
 public:
  explicit HarmonicMeanSession(std::size_t window) : window_(window) {}

  double predict(unsigned) const override {
    require_history();
    const std::size_t n = history_.size();
    const std::size_t use = window_ == 0 ? n : std::min(window_, n);
    return harmonic_mean(
        std::span<const double>(history_.data() + (n - use), use));
  }

 private:
  std::size_t window_;
};

class AutoRegressiveSession final : public HistorySession {
 public:
  AutoRegressiveSession(std::size_t order, double ridge_lambda)
      : order_(order), ridge_lambda_(ridge_lambda) {}

  double predict(unsigned steps_ahead) const override {
    require_history();
    // Need at least order_ + 2 samples to fit order_ + intercept coefficients
    // on >= 2 equations; fall back to the running mean before that.
    if (history_.size() < order_ + 2) {
      double forecast = mean(history_);
      return std::max(forecast, 0.0);
    }

    // Fit w on rows [w_{t-1}..w_{t-k}, 1] -> w_t over the whole history.
    std::vector<Vec> rows;
    std::vector<double> targets;
    for (std::size_t t = order_; t < history_.size(); ++t) {
      Vec row;
      row.reserve(order_ + 1);
      for (std::size_t lag = 1; lag <= order_; ++lag)
        row.push_back(history_[t - lag]);
      row.push_back(1.0);  // intercept
      rows.push_back(std::move(row));
      targets.push_back(history_[t]);
    }
    const Vec coef = ridge_regression(rows, targets, ridge_lambda_);

    // Iterate the recurrence for multi-step-ahead forecasts.
    std::vector<double> extended = history_;
    double forecast = extended.back();
    for (unsigned step = 0; step < std::max(1U, steps_ahead); ++step) {
      Vec row;
      row.reserve(order_ + 1);
      for (std::size_t lag = 1; lag <= order_; ++lag)
        row.push_back(extended[extended.size() - lag]);
      row.push_back(1.0);
      forecast = dot(coef, row);
      extended.push_back(forecast);
    }
    return std::max(forecast, 0.0);
  }

 private:
  std::size_t order_;
  double ridge_lambda_;
};

}  // namespace

std::unique_ptr<SessionPredictor> LastSampleModel::make_session(
    const SessionContext&) const {
  return std::make_unique<LastSampleSession>();
}

std::unique_ptr<SessionPredictor> HarmonicMeanModel::make_session(
    const SessionContext&) const {
  return std::make_unique<HarmonicMeanSession>(window_);
}

std::unique_ptr<SessionPredictor> AutoRegressiveModel::make_session(
    const SessionContext&) const {
  return std::make_unique<AutoRegressiveSession>(order_, ridge_lambda_);
}

}  // namespace cs2p
