#include "predictors/guardrail.h"

#include <algorithm>
#include <cmath>

#include "hmm/online_filter.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cs2p {

SurpriseBaseline compute_surprise_baseline(const GaussianHmm& model,
                                           const GuardrailConfig& config) {
  Rng rng(config.baseline_seed);
  std::vector<double> log_likelihoods;
  log_likelihoods.reserve(config.baseline_sequences * config.baseline_length);

  for (std::size_t s = 0; s < config.baseline_sequences; ++s) {
    OnlineHmmFilter filter(model);
    std::size_t state = rng.categorical(model.initial);
    for (std::size_t t = 0; t < config.baseline_length; ++t) {
      if (t > 0) {
        Vec row(model.transition.row(state).begin(),
                model.transition.row(state).end());
        state = rng.categorical(row);
      }
      const double w =
          rng.gaussian(model.states[state].mean, model.states[state].sigma);
      filter.observe(w);
      const double ll = filter.last_log_likelihood();
      // Model-sampled data can still (very rarely) underflow; the baseline
      // describes the well-behaved bulk, so skip those.
      if (std::isfinite(ll)) log_likelihoods.push_back(ll);
    }
  }

  SurpriseBaseline baseline;
  if (log_likelihoods.empty()) return baseline;  // defensive: keep defaults
  baseline.mean_log_likelihood = mean(log_likelihoods);
  // Floor the spread: a near-deterministic model would otherwise make any
  // finite observation look infinitely surprising.
  baseline.std_log_likelihood = std::max(0.05, stddev(log_likelihoods));
  return baseline;
}

GuardrailMetrics GuardrailMetrics::from_registry(obs::MetricsRegistry& registry) {
  GuardrailMetrics out;
  out.rejected_non_finite = &registry.counter(
      "cs2p_guardrail_rejected_samples_total", {{"reason", "non_finite"}});
  out.rejected_negative = &registry.counter(
      "cs2p_guardrail_rejected_samples_total", {{"reason", "negative"}});
  out.rejected_zero = &registry.counter("cs2p_guardrail_rejected_samples_total",
                                        {{"reason", "zero"}});
  out.clamped_spikes =
      &registry.counter("cs2p_guardrail_clamped_spikes_total");
  out.fallback_predictions =
      &registry.counter("cs2p_guardrail_fallback_predictions_total");
  return out;
}

ObservationSanitizer::Result ObservationSanitizer::sanitize(double throughput_mbps) {
  Result out;
  if (!std::isfinite(throughput_mbps)) {
    ++rejected_non_finite_;
    if (metrics_ != nullptr && metrics_->rejected_non_finite != nullptr)
      metrics_->rejected_non_finite->inc();
    out.verdict = SampleVerdict::kRejectedNonFinite;
    return out;
  }
  if (throughput_mbps < 0.0) {
    ++rejected_negative_;
    if (metrics_ != nullptr && metrics_->rejected_negative != nullptr)
      metrics_->rejected_negative->inc();
    out.verdict = SampleVerdict::kRejectedNegative;
    return out;
  }
  if (throughput_mbps == 0.0) {
    ++rejected_zero_;
    if (metrics_ != nullptr && metrics_->rejected_zero != nullptr)
      metrics_->rejected_zero->inc();
    out.verdict = SampleVerdict::kRejectedZero;
    return out;
  }
  if (spike_ceiling_mbps_ > 0.0 && throughput_mbps > spike_ceiling_mbps_) {
    ++clamped_spikes_;
    if (metrics_ != nullptr && metrics_->clamped_spikes != nullptr)
      metrics_->clamped_spikes->inc();
    out.verdict = SampleVerdict::kClamped;
    out.value = spike_ceiling_mbps_;
    return out;
  }
  out.value = throughput_mbps;
  return out;
}

std::string_view guardrail_state_name(GuardrailState state) noexcept {
  switch (state) {
    case GuardrailState::kHealthy: return "HEALTHY";
    case GuardrailState::kSuspect: return "SUSPECT";
    case GuardrailState::kDegraded: return "DEGRADED";
  }
  return "HEALTHY";
}

SurpriseMonitor::SurpriseMonitor(SurpriseBaseline baseline,
                                 const GuardrailConfig& config)
    : baseline_(baseline), config_(config) {
  if (config_.window == 0) config_.window = 1;
  if (config_.confirm_observations == 0) config_.confirm_observations = 1;
  if (config_.recovery_observations == 0) config_.recovery_observations = 1;
  // A hysteresis band with exit above enter would oscillate by construction.
  config_.exit_z = std::min(config_.exit_z, config_.enter_z);
}

GuardrailState SurpriseMonitor::record(double log_likelihood) {
  double penalised = log_likelihood;
  if (!std::isfinite(penalised)) {
    ++degenerate_;
    penalised = baseline_.mean_log_likelihood -
                config_.degenerate_penalty_sigmas * baseline_.std_log_likelihood;
  }
  window_.push_back(penalised);
  window_sum_ += penalised;
  if (window_.size() > config_.window) {
    window_sum_ -= window_.front();
    window_.pop_front();
  }

  if (window_.size() < std::max<std::size_t>(1, config_.min_observations)) {
    score_ = 0.0;
    return state_;
  }

  // z-score of the window mean under the baseline: low log-likelihood means
  // high surprise, so the score is positive when the model looks wrong.
  const double n = static_cast<double>(window_.size());
  const double window_mean = window_sum_ / n;
  const double std_of_mean = baseline_.std_log_likelihood / std::sqrt(n);
  score_ = (baseline_.mean_log_likelihood - window_mean) / std_of_mean;

  if (score_ >= config_.enter_z) {
    ++alarm_streak_;
    calm_streak_ = 0;
  } else if (score_ <= config_.exit_z) {
    ++calm_streak_;
    alarm_streak_ = 0;
  } else {
    // Inside the hysteresis band: streaks hold, no transition pressure.
    alarm_streak_ = 0;
    calm_streak_ = 0;
  }

  switch (state_) {
    case GuardrailState::kHealthy:
      if (alarm_streak_ > 0) state_ = GuardrailState::kSuspect;
      [[fallthrough]];
    case GuardrailState::kSuspect:
      if (alarm_streak_ >= config_.confirm_observations) {
        state_ = GuardrailState::kDegraded;
        ++trips_;
        calm_streak_ = 0;
      } else if (state_ == GuardrailState::kSuspect && alarm_streak_ == 0) {
        state_ = GuardrailState::kHealthy;
      }
      break;
    case GuardrailState::kDegraded:
      if (calm_streak_ >= config_.recovery_observations) {
        state_ = GuardrailState::kHealthy;
        ++recoveries_;
        alarm_streak_ = 0;
      }
      break;
  }
  return state_;
}

}  // namespace cs2p
