#include "predictors/feature_encoder.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/stats.h"

namespace cs2p {

void FeatureEncoder::fit(const Dataset& training, double smoothing) {
  if (training.empty()) throw std::invalid_argument("FeatureEncoder::fit: empty dataset");

  double total = 0.0;
  std::size_t count = 0;
  for (const auto& s : training.sessions()) {
    if (s.throughput_mbps.empty()) continue;
    total += s.average_throughput();
    ++count;
  }
  if (count == 0) throw std::invalid_argument("FeatureEncoder::fit: no observations");
  global_mean_ = total / static_cast<double>(count);

  value_means_.assign(kNumFeatures, {});
  std::vector<std::unordered_map<std::string, std::pair<double, std::size_t>>> acc(
      kNumFeatures);
  for (const auto& s : training.sessions()) {
    if (s.throughput_mbps.empty()) continue;
    const double y = s.average_throughput();
    for (FeatureId id : all_features()) {
      auto& slot = acc[static_cast<std::size_t>(id)][std::string(s.features.value(id))];
      slot.first += y;
      slot.second += 1;
    }
  }
  for (std::size_t f = 0; f < kNumFeatures; ++f) {
    for (const auto& [value, sum_count] : acc[f]) {
      const auto [sum, n] = sum_count;
      value_means_[f][value] =
          (sum + smoothing * global_mean_) / (static_cast<double>(n) + smoothing);
    }
  }
  fitted_ = true;
}

std::size_t FeatureEncoder::dimension() const noexcept {
  return kNumFeatures + 2;  // encoded features + (sin, cos) of time-of-day
}

Vec FeatureEncoder::encode(const SessionFeatures& features, double start_hour) const {
  if (!fitted_) throw std::logic_error("FeatureEncoder::encode: not fitted");
  Vec out;
  out.reserve(dimension());
  for (FeatureId id : all_features()) {
    const auto& map = value_means_[static_cast<std::size_t>(id)];
    const auto it = map.find(std::string(features.value(id)));
    out.push_back(it != map.end() ? it->second : global_mean_);
  }
  const double angle = 2.0 * std::numbers::pi * start_hour / 24.0;
  out.push_back(std::sin(angle));
  out.push_back(std::cos(angle));
  return out;
}

Vec FeatureEncoder::encode_with_history(const SessionFeatures& features,
                                        double start_hour,
                                        std::span<const double> history) const {
  Vec out = encode(features, start_hour);
  if (history.empty()) {
    out.push_back(0.0);
    out.push_back(global_mean_);
    out.push_back(global_mean_);
    out.push_back(global_mean_);
  } else {
    out.push_back(1.0);
    out.push_back(history.back());
    out.push_back(harmonic_mean(history));
    out.push_back(mean(history));
  }
  return out;
}

}  // namespace cs2p
