#include "predictors/simple_cross.h"

#include <stdexcept>

#include "util/stats.h"

namespace cs2p {
namespace {

/// Constant predictor: same value for initial and every midstream epoch.
class ConstantSession final : public SessionPredictor {
 public:
  explicit ConstantSession(double value) : value_(value) {}
  std::optional<double> predict_initial() const override { return value_; }
  double predict(unsigned) const override { return value_; }
  void observe(double) override {}

 private:
  double value_;
};

}  // namespace

FeatureMedianModel::FeatureMedianModel(const Dataset& training, FeatureId feature,
                                       std::string name)
    : feature_(feature), name_(std::move(name)) {
  if (training.empty())
    throw std::invalid_argument("FeatureMedianModel: empty training set");

  std::unordered_map<std::string, std::vector<double>> groups;
  std::vector<double> all;
  for (const auto& s : training.sessions()) {
    if (s.throughput_mbps.empty()) continue;
    groups[std::string(s.features.value(feature_))].push_back(s.initial_throughput());
    all.push_back(s.initial_throughput());
  }
  if (all.empty())
    throw std::invalid_argument("FeatureMedianModel: no observations");
  global_median_ = median(all);
  medians_.reserve(groups.size());
  for (auto& [value, samples] : groups) medians_[value] = median(samples);
}

std::unique_ptr<SessionPredictor> FeatureMedianModel::make_session(
    const SessionContext& context) const {
  const auto it = medians_.find(std::string(context.features.value(feature_)));
  return std::make_unique<ConstantSession>(it != medians_.end() ? it->second
                                                                : global_median_);
}

FeatureMedianModel make_lm_client(const Dataset& training) {
  return FeatureMedianModel(training, FeatureId::kClientPrefix, "LM-client");
}

FeatureMedianModel make_lm_server(const Dataset& training) {
  return FeatureMedianModel(training, FeatureId::kServer, "LM-server");
}

GlobalMedianModel::GlobalMedianModel(const Dataset& training) {
  std::vector<double> all;
  for (const auto& s : training.sessions())
    if (!s.throughput_mbps.empty()) all.push_back(s.initial_throughput());
  if (all.empty()) throw std::invalid_argument("GlobalMedianModel: no observations");
  median_ = median(all);
}

std::unique_ptr<SessionPredictor> GlobalMedianModel::make_session(
    const SessionContext&) const {
  return std::make_unique<ConstantSession>(median_);
}

}  // namespace cs2p
