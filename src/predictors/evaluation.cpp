#include "predictors/evaluation.h"

#include <algorithm>

#include "util/stats.h"

namespace cs2p {

PredictorEvaluation evaluate_predictor(const PredictorModel& model,
                                       const Dataset& test,
                                       const EvaluationOptions& options) {
  PredictorEvaluation out;
  out.predictor_name = model.name();
  const unsigned horizon = std::max(1U, options.horizon);

  std::size_t evaluated = 0;
  for (const auto& session : test.sessions()) {
    if (options.max_sessions && evaluated >= options.max_sessions) break;
    const auto& series = session.throughput_mbps;
    if (series.empty()) continue;
    ++evaluated;

    SessionContext context = SessionContext::from(session);
    if (options.provide_oracle) context.oracle_series = &series;
    const auto predictor = model.make_session(context);

    if (const auto initial = predictor->predict_initial()) {
      out.initial_errors.push_back(absolute_normalized_error(*initial, series[0]));
    }

    // Midstream: after observing epochs [0, t], forecast epoch t + horizon.
    std::vector<double> errors;
    for (std::size_t t = 0; t + horizon < series.size(); ++t) {
      predictor->observe(series[t]);
      const double forecast = predictor->predict(horizon);
      errors.push_back(absolute_normalized_error(forecast, series[t + horizon]));
    }
    if (!errors.empty()) {
      auto summary = summarize_session_errors(errors);
      out.midstream_median_errors.push_back(summary.session_median);
      out.midstream_sessions.push_back(summary);
    }
  }

  out.midstream_summary = summarize_across_sessions(out.midstream_sessions);
  out.initial_median_error = median(out.initial_errors);
  out.initial_p75_error = quantile(out.initial_errors, 0.75);
  return out;
}

}  // namespace cs2p
