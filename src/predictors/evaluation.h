// Prediction-accuracy evaluation harness (paper §7.2).
//
// Replays each test session through a predictor exactly as a player would:
// the initial prediction is requested before any observation, then for every
// later epoch the predictor forecasts `horizon` epochs ahead and is
// subsequently fed the measured value. Errors are the absolute normalized
// error of Eq. 1, summarised per session and across sessions the way Fig 9
// reports them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "predictors/predictor.h"
#include "util/error_metrics.h"

namespace cs2p {

struct EvaluationOptions {
  unsigned horizon = 1;           ///< epochs ahead for midstream forecasts
  std::size_t max_sessions = 0;   ///< 0 = evaluate on every test session
  bool provide_oracle = false;    ///< expose the true series (Oracle only)
};

/// Accuracy results for one predictor on one test set.
struct PredictorEvaluation {
  std::string predictor_name;

  /// One initial-epoch error per session (empty when the predictor cannot
  /// cold-start, e.g. LS/HM/AR).
  std::vector<double> initial_errors;

  /// Per-session midstream error summaries (sessions with >= horizon + 1
  /// epochs only).
  std::vector<SessionErrorSummary> midstream_sessions;

  /// Convenience: per-session median midstream errors (the series behind
  /// the Fig 9b CDF).
  std::vector<double> midstream_median_errors;

  CrossSessionSummary midstream_summary;
  double initial_median_error = 0.0;  ///< median over initial_errors
  double initial_p75_error = 0.0;
};

/// Runs the replay. Sessions shorter than horizon + 1 epochs contribute only
/// initial errors.
PredictorEvaluation evaluate_predictor(const PredictorModel& model,
                                       const Dataset& test,
                                       const EvaluationOptions& options = {});

}  // namespace cs2p
