// GuardedSessionPredictor: the HMM session predictor wrapped in the
// prediction guardrails of guardrail.h.
//
// Serving policy per epoch:
//   - every observation passes the ObservationSanitizer; rejected samples
//     never reach the forward filter (but still extend the session's raw
//     history so counters and diagnostics see them),
//   - each accepted observation's one-step predictive log-likelihood feeds
//     the SurpriseMonitor,
//   - while the monitor is HEALTHY/SUSPECT, predictions come from the HMM
//     exactly like HmmSessionPredictor,
//   - while DEGRADED, predictions come from the stateless fallback chain:
//     harmonic mean of the most recent accepted samples, then the global
//     model's initial value when no usable history exists. The filter keeps
//     being updated throughout so the session can recover with hysteresis.
//
// Guardrail transitions are reported through an optional event callback —
// this is how the CS2P engine aggregates per-session trips into
// cluster-level drift (core/engine.h).
#pragma once

#include <functional>

#include "hmm/online_filter.h"
#include "predictors/guardrail.h"
#include "predictors/predictor.h"

namespace cs2p {

/// Guardrail lifecycle notifications, delivered synchronously from
/// observe() / the destructor.
enum class GuardrailEvent : std::uint8_t {
  kOpened = 0,   ///< emitted on construction
  kTripped,      ///< entered DEGRADED
  kRecovered,    ///< left DEGRADED
  kClosed,       ///< emitted on destruction (degraded flag = final state)
};

class GuardedSessionPredictor final : public SessionPredictor {
 public:
  /// Counters mirrored out for server stats and bench reporting.
  struct Stats {
    GuardrailState state = GuardrailState::kHealthy;
    double surprise_score = 0.0;
    std::size_t trips = 0;
    std::size_t recoveries = 0;
    std::size_t degenerate_updates = 0;
    std::size_t rejected_samples = 0;
    std::size_t clamped_samples = 0;
    std::size_t fallback_predictions = 0;
  };

  /// `tripped` is true for kTripped and for kClosed-while-degraded.
  using EventCallback = std::function<void(GuardrailEvent, bool tripped)>;

  /// `initial_value` is the cluster/global median (Eq. 6);
  /// `global_fallback_mbps` terminates the fallback chain when the session
  /// has no usable history of its own. `static_flags` carries the serving
  /// context fixed at session creation (kGlobalModel, kClusterDrifted).
  /// `metrics` (optional, must outlive the session) mirrors sanitizer
  /// verdicts and fallback serves into the shared registry.
  GuardedSessionPredictor(const GaussianHmm& model, double initial_value,
                          double global_fallback_mbps,
                          const SurpriseBaseline& baseline,
                          const GuardrailConfig& config,
                          PredictionRule rule = PredictionRule::kMleState,
                          std::uint8_t static_flags = serve_flags::kPrimary,
                          EventCallback on_event = nullptr,
                          const GuardrailMetrics* metrics = nullptr);

  /// Serving-tier constructor: shares a prebuilt SoA kernel with every other
  /// session pinned to the same model (hmm/kernel.h).
  GuardedSessionPredictor(std::shared_ptr<const HmmKernel> kernel,
                          double initial_value, double global_fallback_mbps,
                          const SurpriseBaseline& baseline,
                          const GuardrailConfig& config,
                          PredictionRule rule = PredictionRule::kMleState,
                          std::uint8_t static_flags = serve_flags::kPrimary,
                          EventCallback on_event = nullptr,
                          const GuardrailMetrics* metrics = nullptr);
  ~GuardedSessionPredictor() override;

  GuardedSessionPredictor(const GuardedSessionPredictor&) = delete;
  GuardedSessionPredictor& operator=(const GuardedSessionPredictor&) = delete;

  std::optional<double> predict_initial() const override { return initial_value_; }
  double predict(unsigned steps_ahead) const override;
  void observe(double throughput_mbps) override;

  bool degraded() const override {
    return monitor_.state() == GuardrailState::kDegraded;
  }
  std::uint8_t serve_flags() const override;
  std::optional<double> last_log_likelihood() const override;

  /// Brownout path (DESIGN.md §14): the stateless HM/global fallback chain,
  /// served without touching the HMM filter — the cheap answer the server
  /// swaps in under sustained shed pressure.
  std::optional<double> predict_brownout(unsigned steps_ahead) const override;

  /// SUSPECT or DEGRADED: the surprise monitor already doubts the primary
  /// path, so brownout level 1 degrades this session before healthy ones.
  bool suspect() const override {
    return monitor_.state() != GuardrailState::kHealthy;
  }

  /// Batched-inference hooks: observe() is literally begin + filter advance
  /// + finish, so the batched and scalar paths share every guardrail
  /// decision (sanitizer verdicts, surprise scoring, trip/recover events).
  BatchObservePlan begin_batch_observe(double throughput_mbps) override;
  void finish_batch_observe() override;
  const OnlineHmmFilter* batch_predict_filter(unsigned steps_ahead) const override;

  GuardrailState guardrail_state() const noexcept { return monitor_.state(); }
  Stats stats() const;

  /// Exposed for diagnostics (same contract as HmmSessionPredictor).
  const OnlineHmmFilter& filter() const noexcept { return filter_; }
  const ObservationSanitizer& sanitizer() const noexcept { return sanitizer_; }
  const SurpriseMonitor& monitor() const noexcept { return monitor_; }

 private:
  double fallback_forecast() const;

  OnlineHmmFilter filter_;
  double initial_value_;
  double global_fallback_mbps_;
  GuardrailConfig config_;
  ObservationSanitizer sanitizer_;
  SurpriseMonitor monitor_;
  std::uint8_t static_flags_;
  EventCallback on_event_;
  const GuardrailMetrics* metrics_;
  std::deque<double> recent_samples_;  ///< accepted samples, fallback window
  mutable std::size_t fallback_predictions_ = 0;
  /// degraded() snapshot taken in begin_batch_observe, consumed by
  /// finish_batch_observe (valid only between the two).
  bool was_degraded_before_batch_ = false;
};

}  // namespace cs2p
