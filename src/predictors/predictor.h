// Common interface of all throughput predictors (CS2P and the baselines).
//
// A PredictorModel is the trained artifact (built once from a training
// dataset); it spawns one SessionPredictor per video session. The session
// predictor is driven epoch by epoch exactly like a player would drive it:
//
//   auto sp = model.make_session(ctx);
//   double w0_hat = sp->predict_initial().value_or(fallback);   // pre-play
//   for each epoch t: { w_hat = sp->predict(1); ... sp->observe(w_t); }
//
// History-based predictors (LS/HM/AR) return nullopt from predict_initial —
// the paper notes they "can not be used for the initial throughput
// prediction" — and require at least one observation before predict().
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dataset/session.h"
#include "hmm/model.h"

namespace cs2p {

class OnlineHmmFilter;

/// What a predictor may know about a session before any throughput is
/// observed: its features and start time. `oracle_series` is set only by the
/// evaluation harness for the Oracle upper-bound predictor; real predictors
/// must ignore it.
struct SessionContext {
  SessionFeatures features;
  int day = 0;
  double start_hour = 0.0;
  const std::vector<double>* oracle_series = nullptr;

  static SessionContext from(const Session& s) {
    return SessionContext{s.features, s.day, s.start_hour, nullptr};
  }
};

/// Why a prediction was served the way it was. Carried as a flags byte in
/// the wire protocol's PRED replies (net/wire.h, protocol v2) so remote
/// players and the simulator can attribute forecast quality to the right
/// serving path, not just to "the predictor".
namespace serve_flags {
inline constexpr std::uint8_t kPrimary = 0;             ///< the session's own model
inline constexpr std::uint8_t kDegraded = 1u << 0;      ///< any fallback is serving
inline constexpr std::uint8_t kGuardrailTripped = 1u << 1;  ///< per-session guardrail DEGRADED
inline constexpr std::uint8_t kClusterDrifted = 1u << 2;    ///< cluster marked drifted at HELLO
inline constexpr std::uint8_t kGlobalModel = 1u << 3;       ///< session runs on the global HMM
inline constexpr std::uint8_t kRemoteFallback = 1u << 4;    ///< client-side local fallback (service lost)
inline constexpr std::uint8_t kDraining = 1u << 5;          ///< replica is draining; plan a migration
inline constexpr std::uint8_t kBrownout = 1u << 6;          ///< cheap fallback served under overload brownout
}  // namespace serve_flags

/// How one (session, observation) pair joins a batched engine pass
/// (DESIGN.md §16). begin_batch_observe() runs everything that precedes the
/// filter advance (sanitizing, bookkeeping) and reports what the batch
/// driver should do; after the batch kernel has advanced the filter,
/// finish_batch_observe() runs everything that follows it (guardrail
/// scoring, trip/recover events). The split keeps batched semantics
/// identical to scalar observe() by construction — scalar observe() is
/// implemented as begin + advance + finish.
struct BatchObservePlan {
  enum class Kind : std::uint8_t {
    kScalar,    ///< not batchable: the driver calls observe() instead
    kFilter,    ///< advance `filter` with `value`, then finish_batch_observe()
    kConsumed,  ///< fully handled in begin (e.g. sanitizer rejected the sample)
  };
  Kind kind = Kind::kScalar;
  OnlineHmmFilter* filter = nullptr;
  double value = 0.0;
};

/// Per-session prediction state machine.
class SessionPredictor {
 public:
  virtual ~SessionPredictor() = default;

  /// Initial-epoch prediction (Mbps), available before any observation.
  /// nullopt when this predictor family cannot predict cold-start.
  virtual std::optional<double> predict_initial() const { return std::nullopt; }

  /// Predicts throughput `steps_ahead` epochs past the last observation
  /// (1 = next epoch). History-based predictors throw std::logic_error if
  /// called before the first observe().
  virtual double predict(unsigned steps_ahead = 1) const = 0;

  /// Feeds the measured throughput of the epoch that just completed.
  virtual void observe(double throughput_mbps) = 0;

  /// True when the predictor has lost its backing service and is running on
  /// a local fallback (see RemoteSessionPredictor), or when its guardrail
  /// has switched it to the fallback chain (GuardedSessionPredictor).
  virtual bool degraded() const { return false; }

  /// serve_flags:: bits describing why the *next* prediction would be
  /// served the way it is. Default: primary when healthy, kDegraded when
  /// degraded() — richer predictors override with the full story.
  virtual std::uint8_t serve_flags() const {
    return degraded() ? serve_flags::kDegraded : serve_flags::kPrimary;
  }

  /// One-step predictive log-likelihood the model assigned to the most
  /// recent accepted observation — the per-request prediction-quality signal
  /// the trace log records (DESIGN.md §11). nullopt for predictor families
  /// without a probabilistic model, and before the first observation.
  virtual std::optional<double> last_log_likelihood() const {
    return std::nullopt;
  }

  /// Cheap degraded forecast for overload brownout (DESIGN.md §14): a
  /// forecast that skips the expensive primary path (e.g. the guarded
  /// predictor's HM/global fallback chain instead of full HMM filtering).
  /// nullopt when this family has no cheaper path — the server then serves
  /// the primary forecast even in brownout rather than inventing one.
  virtual std::optional<double> predict_brownout(unsigned steps_ahead) const {
    (void)steps_ahead;
    return std::nullopt;
  }

  /// True when the predictor's own quality monitor already doubts the
  /// primary path (guardrail SUSPECT or worse). Brownout level 1 degrades
  /// these sessions first: their expensive filtering is the work buying the
  /// least forecast quality under pressure.
  virtual bool suspect() const { return degraded(); }

  // -- Batched-inference hooks (DESIGN.md §16) ------------------------------
  // Default: not batchable — the engine's batch driver falls back to the
  // scalar observe()/predict() calls, so non-HMM families need no changes.

  /// Stage this observation for a batched advance. A kFilter plan obligates
  /// the caller to advance the filter (batch kernel or filter.observe) and
  /// then call finish_batch_observe() before any other method.
  virtual BatchObservePlan begin_batch_observe(double throughput_mbps) {
    (void)throughput_mbps;
    return {};
  }

  /// Completes a kFilter plan after the filter advanced.
  virtual void finish_batch_observe() {}

  /// The filter a batched predict may serve this session from, or nullptr
  /// when the scalar predict() must run instead (cold start, degraded
  /// fallback chain, non-HMM family — paths with side effects or without a
  /// batchable filter).
  virtual const OnlineHmmFilter* batch_predict_filter(unsigned steps_ahead) const {
    (void)steps_ahead;
    return nullptr;
  }
};

/// A compact, self-contained model a client can download and run on its own
/// (the paper's client-side solution, §5.3: "each video client downloads its
/// own HMM and initial throughput prediction from the Prediction Engine").
struct DownloadableModel {
  double initial_mbps = 0.0;
  bool used_global_model = false;
  GaussianHmm hmm;
};

/// A trained prediction model; thread-compatible (const after training).
class PredictorModel {
 public:
  virtual ~PredictorModel() = default;

  /// Display name used in bench output ("CS2P", "HM", "GBR", ...).
  virtual std::string name() const = 0;

  /// Creates the per-session state for a new session.
  virtual std::unique_ptr<SessionPredictor> make_session(
      const SessionContext& context) const = 0;

  /// Exports the compact per-session model for client-side execution, when
  /// this predictor family supports it (CS2P and GHM do; history-based and
  /// regression baselines do not).
  virtual std::optional<DownloadableModel> downloadable_model(
      const SessionContext& context) const {
    (void)context;
    return std::nullopt;
  }
};

}  // namespace cs2p
