// Prediction guardrails: online model-mismatch detection for per-session
// HMM predictors.
//
// CS2P's cluster models are only as good as the similarity assumption
// behind them (§5.1 concedes ~4% of sessions match no cluster at all, and a
// session whose network shifts out of distribution midstream keeps getting
// confident-but-wrong state-mean predictions). The guardrail layer watches
// the one-step predictive log-likelihood the forward filter assigns to each
// accepted observation, compares a sliding window of it against a baseline
// distribution computed offline from the model itself, and drives a small
// hysteresis state machine:
//
//   HEALTHY --(surprise > enter_z for confirm_observations)--> DEGRADED
//       ^                                                         |
//       +--(surprise < exit_z for recovery_observations)----------+
//
// (the confirmation streak is the SUSPECT phase; see DESIGN.md §10).
// While DEGRADED, the session is served by a stateless fallback chain —
// harmonic mean of recent samples, then the global model's initial value —
// instead of the mismatched HMM. In front of everything sits an observation
// sanitizer that rejects NaN/Inf/negative/zero samples and clamps
// physically-implausible spikes before they reach the filter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string_view>

#include "hmm/model.h"
#include "obs/metrics.h"

namespace cs2p {

/// Registry handles for the guardrail layer's service-level aggregates
/// (DESIGN.md §11). One instance per engine, shared by every session it
/// opens: the per-session counters on ObservationSanitizer/SurpriseMonitor
/// answer "what happened to this session", these answer "what is the
/// guardrail doing fleet-wide" and are what the STATS scrape exposes.
/// Null pointers = not wired (standalone sanitizers in tests).
struct GuardrailMetrics {
  obs::Counter* rejected_non_finite = nullptr;
  obs::Counter* rejected_negative = nullptr;
  obs::Counter* rejected_zero = nullptr;
  obs::Counter* clamped_spikes = nullptr;
  obs::Counter* fallback_predictions = nullptr;

  /// Registers the cs2p_guardrail_* series and returns their handles.
  static GuardrailMetrics from_registry(obs::MetricsRegistry& registry);
};

/// Knobs of the guardrail layer. Defaults are tuned on the synthetic world
/// (bench_drift_qoe): conservative enough that in-distribution sessions do
/// not trip, fast enough that a mid-trace regime shift is caught within a
/// couple of windows.
struct GuardrailConfig {
  bool enabled = false;  ///< off: GuardedSessionPredictor is never created

  // -- Observation sanitizer -------------------------------------------------
  /// Samples above max_spike_multiple x (largest state mean) are clamped to
  /// that bound: a physically-implausible spike (measurement glitch, unit
  /// bug upstream) must not yank the belief, but the epoch still happened.
  double max_spike_multiple = 10.0;

  // -- Surprise monitor ------------------------------------------------------
  std::size_t window = 8;             ///< sliding log-likelihood window
  std::size_t min_observations = 4;   ///< no verdicts before this many accepted
  /// Surprise score is a z-score of the window-mean log-likelihood against
  /// the offline baseline; enter/exit thresholds form the hysteresis band.
  double enter_z = 6.0;
  double exit_z = 2.0;
  std::size_t confirm_observations = 3;   ///< streak: HEALTHY/SUSPECT -> DEGRADED
  std::size_t recovery_observations = 8;  ///< streak: DEGRADED -> HEALTHY
  /// Degenerate filter updates (all-zero emission vector) carry -infinity
  /// log-likelihood; they enter the window as baseline mean minus this many
  /// baseline sigmas so the score stays finite but maximally alarmed.
  double degenerate_penalty_sigmas = 12.0;

  // -- Fallback chain --------------------------------------------------------
  /// Harmonic mean over this many most-recent accepted samples (0 = all).
  std::size_t fallback_window = 8;

  // -- Offline baseline ------------------------------------------------------
  /// The baseline is estimated by sampling sequences from the model itself
  /// and replaying them through the filter (deterministic from the seed).
  std::size_t baseline_sequences = 32;
  std::size_t baseline_length = 48;
  std::uint64_t baseline_seed = 0x20160816;
};

/// Per-cluster baseline distribution of the one-step predictive
/// log-likelihood when the model is right, computed offline during training
/// (what "unsurprising" looks like for this cluster's HMM).
struct SurpriseBaseline {
  double mean_log_likelihood = 0.0;
  double std_log_likelihood = 1.0;  ///< floored at a small positive value
};

/// Estimates the baseline by Monte Carlo from the model itself:
/// sample sequences with the config's seed, replay them through an
/// OnlineHmmFilter, and summarise the per-step predictive log-likelihoods.
/// Deterministic; costs ~baseline_sequences x baseline_length filter steps
/// (microseconds for the paper's 6-state models).
SurpriseBaseline compute_surprise_baseline(const GaussianHmm& model,
                                           const GuardrailConfig& config);

/// Why the sanitizer rejected (or altered) a sample.
enum class SampleVerdict : std::uint8_t {
  kAccepted = 0,
  kClamped,           ///< accepted after clamping an implausible spike
  kRejectedNonFinite, ///< NaN or +/-Inf
  kRejectedNegative,
  kRejectedZero,      ///< a fully stalled epoch carries no rate information
};

/// Stateless validation + clamping in front of OnlineHmmFilter::observe,
/// with rejection counters. `spike_ceiling_mbps` is precomputed by the
/// owner as max_spike_multiple x the model's largest state mean.
class ObservationSanitizer {
 public:
  /// `metrics` (optional) receives the same verdicts as the local counters,
  /// into the shared registry — the per-reason counters here stay the
  /// per-session view, the registry is the fleet-wide source of truth.
  explicit ObservationSanitizer(double spike_ceiling_mbps,
                                const GuardrailMetrics* metrics = nullptr)
      : spike_ceiling_mbps_(spike_ceiling_mbps), metrics_(metrics) {}

  struct Result {
    SampleVerdict verdict = SampleVerdict::kAccepted;
    double value = 0.0;  ///< the (possibly clamped) sample; valid iff accepted
    bool accepted() const noexcept {
      return verdict == SampleVerdict::kAccepted ||
             verdict == SampleVerdict::kClamped;
    }
  };

  Result sanitize(double throughput_mbps);

  std::size_t rejected_non_finite() const noexcept { return rejected_non_finite_; }
  std::size_t rejected_negative() const noexcept { return rejected_negative_; }
  std::size_t rejected_zero() const noexcept { return rejected_zero_; }
  std::size_t clamped_spikes() const noexcept { return clamped_spikes_; }
  std::size_t total_rejected() const noexcept {
    return rejected_non_finite_ + rejected_negative_ + rejected_zero_;
  }

 private:
  double spike_ceiling_mbps_;
  const GuardrailMetrics* metrics_;
  std::size_t rejected_non_finite_ = 0;
  std::size_t rejected_negative_ = 0;
  std::size_t rejected_zero_ = 0;
  std::size_t clamped_spikes_ = 0;
};

/// Guardrail verdict for one session at one instant.
enum class GuardrailState : std::uint8_t {
  kHealthy = 0,
  kSuspect,   ///< surprise above enter_z, awaiting confirmation streak
  kDegraded,  ///< serving the fallback chain
};

std::string_view guardrail_state_name(GuardrailState state) noexcept;

/// Sliding-window surprise scorer + the HEALTHY/SUSPECT/DEGRADED machine.
/// Fed one predictive log-likelihood per accepted observation; drives the
/// GuardedSessionPredictor's serving decision.
class SurpriseMonitor {
 public:
  SurpriseMonitor(SurpriseBaseline baseline, const GuardrailConfig& config);

  /// Scores the latest accepted observation's predictive log-likelihood
  /// (-infinity for a degenerate update) and advances the state machine.
  /// Returns the state after the update.
  GuardrailState record(double log_likelihood);

  GuardrailState state() const noexcept { return state_; }

  /// Current surprise z-score (0 until min_observations accepted).
  double score() const noexcept { return score_; }

  const SurpriseBaseline& baseline() const noexcept { return baseline_; }

  /// HEALTHY/SUSPECT -> DEGRADED transitions (one per "flap").
  std::size_t trips() const noexcept { return trips_; }
  /// DEGRADED -> HEALTHY transitions.
  std::size_t recoveries() const noexcept { return recoveries_; }
  /// Degenerate (-infinity) log-likelihoods seen.
  std::size_t degenerate_observations() const noexcept { return degenerate_; }

 private:
  SurpriseBaseline baseline_;
  GuardrailConfig config_;
  std::deque<double> window_;  ///< recent (penalised) log-likelihoods
  double window_sum_ = 0.0;
  double score_ = 0.0;
  GuardrailState state_ = GuardrailState::kHealthy;
  std::size_t alarm_streak_ = 0;  ///< consecutive scores above enter_z
  std::size_t calm_streak_ = 0;   ///< consecutive scores below exit_z
  std::size_t trips_ = 0;
  std::size_t recoveries_ = 0;
  std::size_t degenerate_ = 0;
};

}  // namespace cs2p
