// GHM — Global Hidden Markov Model baseline (paper §7.2).
//
// One HMM trained on all training sequences without session clustering. The
// paper compares CS2P against it to show that a per-cluster HMM is necessary
// ("the prediction accuracy of CS2P outperforms GHM"). Initial prediction is
// the global median, since a global HMM has no cross-session feature signal.
#pragma once

#include "dataset/dataset.h"
#include "hmm/baum_welch.h"
#include "predictors/predictor.h"

namespace cs2p {

struct GhmConfig {
  BaumWelchConfig training;          ///< HMM training knobs (N = 6 default)
  std::size_t max_training_sequences = 2000;  ///< subsample bound (EM cost)
  std::uint64_t seed = 23;
};

class GlobalHmmModel final : public PredictorModel {
 public:
  /// Trains one HMM over (a subsample of) all training sessions.
  explicit GlobalHmmModel(const Dataset& training, const GhmConfig& config = {});

  std::string name() const override { return "GHM"; }
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext& context) const override;
  std::optional<DownloadableModel> downloadable_model(
      const SessionContext& context) const override;

  const GaussianHmm& model() const noexcept { return model_; }

 private:
  GaussianHmm model_;
  double initial_median_ = 0.0;
};

}  // namespace cs2p
