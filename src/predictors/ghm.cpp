#include "predictors/ghm.h"

#include <stdexcept>

#include "predictors/hmm_session.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cs2p {

GlobalHmmModel::GlobalHmmModel(const Dataset& training, const GhmConfig& config) {
  if (training.empty()) throw std::invalid_argument("GlobalHmmModel: empty training set");

  std::vector<double> initials;
  for (const auto& s : training.sessions())
    if (!s.throughput_mbps.empty()) initials.push_back(s.initial_throughput());
  if (initials.empty())
    throw std::invalid_argument("GlobalHmmModel: no observations");
  initial_median_ = median(initials);

  // Subsample sequences to bound EM cost on large datasets.
  Rng rng(config.seed);
  std::vector<std::vector<double>> sequences;
  const auto& sessions = training.sessions();
  if (sessions.size() <= config.max_training_sequences) {
    for (const auto& s : sessions)
      if (s.throughput_mbps.size() >= 2) sequences.push_back(s.throughput_mbps);
  } else {
    const auto order = rng.permutation(sessions.size());
    for (std::size_t i = 0;
         i < order.size() && sequences.size() < config.max_training_sequences; ++i) {
      const auto& s = sessions[order[i]];
      if (s.throughput_mbps.size() >= 2) sequences.push_back(s.throughput_mbps);
    }
  }
  if (sequences.empty())
    throw std::invalid_argument("GlobalHmmModel: no usable sequences");
  model_ = train_hmm(sequences, config.training).model;
}

std::unique_ptr<SessionPredictor> GlobalHmmModel::make_session(
    const SessionContext&) const {
  return std::make_unique<HmmSessionPredictor>(model_, initial_median_);
}

std::optional<DownloadableModel> GlobalHmmModel::downloadable_model(
    const SessionContext&) const {
  return DownloadableModel{initial_median_, true, model_};
}

}  // namespace cs2p
