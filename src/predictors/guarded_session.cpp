#include "predictors/guarded_session.h"

#include <algorithm>
#include <cmath>

namespace cs2p {
namespace {

double spike_ceiling(const GaussianHmm& model, const GuardrailConfig& config) {
  double max_mean = 0.0;
  for (const auto& state : model.states) max_mean = std::max(max_mean, state.mean);
  return config.max_spike_multiple > 0.0 ? config.max_spike_multiple * max_mean
                                         : 0.0;  // 0 disables clamping
}

}  // namespace

GuardedSessionPredictor::GuardedSessionPredictor(
    const GaussianHmm& model, double initial_value, double global_fallback_mbps,
    const SurpriseBaseline& baseline, const GuardrailConfig& config,
    PredictionRule rule, std::uint8_t static_flags, EventCallback on_event,
    const GuardrailMetrics* metrics)
    : GuardedSessionPredictor(HmmKernel::create(model), initial_value,
                              global_fallback_mbps, baseline, config, rule,
                              static_flags, std::move(on_event), metrics) {}

GuardedSessionPredictor::GuardedSessionPredictor(
    std::shared_ptr<const HmmKernel> kernel, double initial_value,
    double global_fallback_mbps, const SurpriseBaseline& baseline,
    const GuardrailConfig& config, PredictionRule rule,
    std::uint8_t static_flags, EventCallback on_event,
    const GuardrailMetrics* metrics)
    : filter_(kernel, rule),
      initial_value_(initial_value),
      global_fallback_mbps_(global_fallback_mbps),
      config_(config),
      sanitizer_(spike_ceiling(kernel->model(), config), metrics),
      monitor_(baseline, config),
      static_flags_(static_flags),
      on_event_(std::move(on_event)),
      metrics_(metrics) {
  if (on_event_) on_event_(GuardrailEvent::kOpened, false);
}

GuardedSessionPredictor::~GuardedSessionPredictor() {
  if (on_event_) on_event_(GuardrailEvent::kClosed, degraded());
}

double GuardedSessionPredictor::fallback_forecast() const {
  // Harmonic mean of the recent accepted samples — robust to the outliers
  // that likely caused the degradation in the first place.
  double inverse_sum = 0.0;
  std::size_t n = 0;
  for (double w : recent_samples_) {
    if (w > 0.0) {
      inverse_sum += 1.0 / w;
      ++n;
    }
  }
  if (n > 0) return static_cast<double>(n) / inverse_sum;
  // End of the chain: the global model's initial value, with the cluster
  // median before it when the global value is unusable.
  if (global_fallback_mbps_ > 0.0 && std::isfinite(global_fallback_mbps_))
    return global_fallback_mbps_;
  return initial_value_;
}

double GuardedSessionPredictor::predict(unsigned steps_ahead) const {
  if (degraded()) {
    ++fallback_predictions_;
    if (metrics_ != nullptr && metrics_->fallback_predictions != nullptr)
      metrics_->fallback_predictions->inc();
    return fallback_forecast();
  }
  if (filter_.observations() == 0) return initial_value_;
  return filter_.predict(std::max(1U, steps_ahead));
}

void GuardedSessionPredictor::observe(double throughput_mbps) {
  // Scalar observe IS the batch protocol run inline — one code path, so the
  // two can never drift.
  const BatchObservePlan plan = begin_batch_observe(throughput_mbps);
  if (plan.kind != BatchObservePlan::Kind::kFilter) return;
  filter_.observe(plan.value);
  finish_batch_observe();
}

BatchObservePlan GuardedSessionPredictor::begin_batch_observe(
    double throughput_mbps) {
  const ObservationSanitizer::Result sample = sanitizer_.sanitize(throughput_mbps);
  if (!sample.accepted())  // poisoned sample: belief unchanged
    return {BatchObservePlan::Kind::kConsumed, nullptr, 0.0};

  recent_samples_.push_back(sample.value);
  if (config_.fallback_window > 0 &&
      recent_samples_.size() > config_.fallback_window)
    recent_samples_.pop_front();

  was_degraded_before_batch_ = degraded();
  return {BatchObservePlan::Kind::kFilter, &filter_, sample.value};
}

void GuardedSessionPredictor::finish_batch_observe() {
  monitor_.record(filter_.last_log_likelihood());
  const bool now_degraded = degraded();
  if (on_event_ && was_degraded_before_batch_ != now_degraded) {
    on_event_(now_degraded ? GuardrailEvent::kTripped : GuardrailEvent::kRecovered,
              now_degraded);
  }
}

const OnlineHmmFilter* GuardedSessionPredictor::batch_predict_filter(
    unsigned steps_ahead) const {
  (void)steps_ahead;
  // Degraded sessions serve the fallback chain (with its counter/metric side
  // effects) and cold starts serve initial_value_ — both scalar-only.
  if (degraded() || filter_.observations() == 0) return nullptr;
  return &filter_;
}

std::optional<double> GuardedSessionPredictor::predict_brownout(
    unsigned steps_ahead) const {
  (void)steps_ahead;  // the fallback chain is horizon-free by construction
  ++fallback_predictions_;
  if (metrics_ != nullptr && metrics_->fallback_predictions != nullptr)
    metrics_->fallback_predictions->inc();
  return fallback_forecast();
}

std::uint8_t GuardedSessionPredictor::serve_flags() const {
  std::uint8_t flags = static_flags_;
  if (degraded())
    flags |= serve_flags::kDegraded | serve_flags::kGuardrailTripped;
  return flags;
}

std::optional<double> GuardedSessionPredictor::last_log_likelihood() const {
  if (filter_.observations() == 0) return std::nullopt;
  const double ll = filter_.last_log_likelihood();
  if (std::isnan(ll)) return std::nullopt;
  return ll;
}

GuardedSessionPredictor::Stats GuardedSessionPredictor::stats() const {
  Stats out;
  out.state = monitor_.state();
  out.surprise_score = monitor_.score();
  out.trips = monitor_.trips();
  out.recoveries = monitor_.recoveries();
  out.degenerate_updates = filter_.degenerate_updates();
  out.rejected_samples = sanitizer_.total_rejected();
  out.clamped_samples = sanitizer_.clamped_spikes();
  out.fallback_predictions = fallback_predictions_;
  return out;
}

}  // namespace cs2p
