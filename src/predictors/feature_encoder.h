// Target encoding of categorical session features for the ML baselines.
//
// SVR and GBR need numeric feature vectors. One-hot encoding over thousands
// of prefixes is wasteful for trees and slow for SGD, so each categorical
// value is replaced by the mean initial throughput of the *training*
// sessions carrying that value (classic target/mean encoding with an
// additive-smoothing prior toward the global mean). Unknown values at test
// time encode as the global mean.
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/dataset.h"
#include "util/matrix.h"

namespace cs2p {

/// Learned per-feature value -> mean-throughput maps.
class FeatureEncoder {
 public:
  /// Fits the encoding on training sessions. `smoothing` is the pseudo-count
  /// pulling rare values toward the global mean.
  void fit(const Dataset& training, double smoothing = 5.0);

  /// Encodes a session's categorical features plus the time-of-day (as two
  /// cyclic components) into a dense vector. Requires fit().
  Vec encode(const SessionFeatures& features, double start_hour) const;

  /// Width of the encoded vector.
  std::size_t dimension() const noexcept;

  /// Appends the midstream history block to an encoded vector:
  /// [has_history, last, harmonic_mean, mean] of the observed samples.
  /// With empty history the block is [0, global_mean, global_mean,
  /// global_mean] so cold-start rows live in the same space.
  Vec encode_with_history(const SessionFeatures& features, double start_hour,
                          std::span<const double> history) const;

  double global_mean() const noexcept { return global_mean_; }
  bool fitted() const noexcept { return fitted_; }

 private:
  std::vector<std::unordered_map<std::string, double>> value_means_;
  double global_mean_ = 0.0;
  bool fitted_ = false;
};

}  // namespace cs2p
