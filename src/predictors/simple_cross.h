// Simple cross-session baselines (paper §3 Observation 4 and Fig 9a):
//
//   LM-client — last-mile client predictor: the median throughput of
//               training sessions sharing the client's IP prefix.
//   LM-server — the median over sessions hitting the same server.
//   GlobalMedian — the median over ALL training sessions (the "global
//               average" end of the spectrum discussed in §4).
//
// Each predicts a per-session constant (initial and midstream alike) — they
// have no notion of intra-session dynamics, which is exactly why the paper
// finds them inaccurate midstream.
#pragma once

#include <unordered_map>

#include "dataset/dataset.h"
#include "predictors/predictor.h"

namespace cs2p {

/// Median-by-one-feature predictor (covers LM-client and LM-server).
class FeatureMedianModel final : public PredictorModel {
 public:
  /// Groups training sessions by `feature` and stores the median of their
  /// initial throughputs per group; a global median covers unseen values.
  FeatureMedianModel(const Dataset& training, FeatureId feature, std::string name);

  std::string name() const override { return name_; }
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext& context) const override;

 private:
  FeatureId feature_;
  std::string name_;
  std::unordered_map<std::string, double> medians_;
  double global_median_ = 0.0;
};

/// Convenience factories matching the paper's names.
FeatureMedianModel make_lm_client(const Dataset& training);
FeatureMedianModel make_lm_server(const Dataset& training);

/// Global-median predictor.
class GlobalMedianModel final : public PredictorModel {
 public:
  explicit GlobalMedianModel(const Dataset& training);
  std::string name() const override { return "GlobalMedian"; }
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext& context) const override;

 private:
  double median_ = 0.0;
};

}  // namespace cs2p
