#include "predictors/oracle.h"

#include <stdexcept>
#include <vector>

namespace cs2p {
namespace {

class OracleSession final : public SessionPredictor {
 public:
  explicit OracleSession(std::vector<double> series) : series_(std::move(series)) {}

  std::optional<double> predict_initial() const override {
    return series_.empty() ? std::optional<double>{} : series_.front();
  }

  double predict(unsigned steps_ahead) const override {
    const std::size_t target = position_ + std::max(1U, steps_ahead) - 1;
    if (series_.empty()) return 0.0;
    return series_[std::min(target, series_.size() - 1)];
  }

  void observe(double) override { ++position_; }

 private:
  std::vector<double> series_;
  std::size_t position_ = 0;  ///< index of the next (unobserved) epoch
};

}  // namespace

std::unique_ptr<SessionPredictor> OracleModel::make_session(
    const SessionContext& context) const {
  if (context.oracle_series == nullptr)
    throw std::invalid_argument("OracleModel: context carries no oracle series");
  return std::make_unique<OracleSession>(*context.oracle_series);
}

}  // namespace cs2p
