#include "predictors/ml_predictors.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "util/rng.h"

namespace cs2p {
namespace {

/// Builds (feature, target) rows: for each sampled epoch t of each session,
/// features encode the session + history w_0..w_{t-1} and the target is w_t.
/// t = 0 rows (empty history) teach the models cold-start prediction.
void build_training_rows(const Dataset& training, const FeatureEncoder& encoder,
                         const MlTrainingConfig& config, std::vector<Vec>& rows,
                         std::vector<double>& targets) {
  Rng rng(config.seed);
  for (const auto& s : training.sessions()) {
    const auto& series = s.throughput_mbps;
    if (series.empty()) continue;
    const std::size_t budget =
        std::min<std::size_t>(config.max_examples_per_session, series.size());
    // Sample distinct epochs; always include t = 0 for cold-start coverage.
    std::vector<std::size_t> picks{0};
    while (picks.size() < budget) {
      const std::size_t t = rng.uniform_index(series.size());
      if (std::find(picks.begin(), picks.end(), t) == picks.end()) picks.push_back(t);
    }
    for (std::size_t t : picks) {
      rows.push_back(encoder.encode_with_history(
          s.features, s.start_hour,
          std::span<const double>(series.data(), t)));
      targets.push_back(series[t]);
      if (rows.size() >= config.max_total_examples) return;
    }
  }
}

/// Shared per-session state: accumulates history, re-encodes, calls a
/// regression function.
class MlSession final : public SessionPredictor {
 public:
  MlSession(const FeatureEncoder& encoder, SessionContext context,
            std::function<double(const Vec&)> regress)
      : encoder_(encoder), context_(std::move(context)), regress_(std::move(regress)) {}

  std::optional<double> predict_initial() const override {
    return std::max(0.0, regress_(encoder_.encode_with_history(
                        context_.features, context_.start_hour, {})));
  }

  double predict(unsigned) const override {
    return std::max(0.0, regress_(encoder_.encode_with_history(
                        context_.features, context_.start_hour, history_)));
  }

  void observe(double throughput_mbps) override { history_.push_back(throughput_mbps); }

 private:
  const FeatureEncoder& encoder_;
  SessionContext context_;
  std::function<double(const Vec&)> regress_;
  std::vector<double> history_;
};

}  // namespace

SvrPredictorModel::SvrPredictorModel(const Dataset& training,
                                     const MlTrainingConfig& train_config,
                                     const SvrConfig& svr_config) {
  encoder_.fit(training);
  std::vector<Vec> rows;
  std::vector<double> targets;
  build_training_rows(training, encoder_, train_config, rows, targets);
  if (rows.empty())
    throw std::invalid_argument("SvrPredictorModel: no training examples");
  svr_.fit(rows, targets, svr_config);
}

std::unique_ptr<SessionPredictor> SvrPredictorModel::make_session(
    const SessionContext& context) const {
  return std::make_unique<MlSession>(
      encoder_, context, [this](const Vec& x) { return svr_.predict(x); });
}

GbrPredictorModel::GbrPredictorModel(const Dataset& training,
                                     const MlTrainingConfig& train_config,
                                     const GbrtConfig& gbrt_config) {
  encoder_.fit(training);
  std::vector<Vec> rows;
  std::vector<double> targets;
  build_training_rows(training, encoder_, train_config, rows, targets);
  if (rows.empty())
    throw std::invalid_argument("GbrPredictorModel: no training examples");
  gbrt_.fit(rows, targets, gbrt_config);
}

std::unique_ptr<SessionPredictor> GbrPredictorModel::make_session(
    const SessionContext& context) const {
  return std::make_unique<MlSession>(
      encoder_, context, [this](const Vec& x) { return gbrt_.predict(x); });
}

}  // namespace cs2p
