// Fig 3 — CDFs of session duration (3a) and per-epoch throughput (3b),
// plus the Observation 1 intra-session variability statistics:
// "about half of the sessions have normalized stddev >= 30% and 20%+ of
// sessions have normalized stddev >= 50%".

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace cs2p;
  Dataset dataset = generate_synthetic_dataset(bench::standard_config_scaled());

  const auto durations = dataset.durations_seconds();
  const auto throughputs = dataset.all_epoch_throughputs();

  std::printf("Fig 3a: CDF of session duration (seconds)\n\n");
  TextTable dur({"percentile", "duration (s)"});
  const std::vector<double> qs = {0.1, 0.25, 0.5, 0.75, 0.9, 0.99};
  for (double q : qs)
    dur.add_row_numeric(format_double(q, 2), {quantile(durations, q)}, 0);
  std::fputs(dur.to_string().c_str(), stdout);

  std::printf("\nFig 3b: CDF of per-epoch throughput (Mbps)\n\n");
  TextTable thr({"percentile", "throughput (Mbps)"});
  for (double q : qs)
    thr.add_row_numeric(format_double(q, 2), {quantile(throughputs, q)}, 2);
  std::fputs(thr.to_string().c_str(), stdout);

  const auto covs = dataset.per_session_cov();
  std::printf("\nObservation 1: intra-session variability (CoV of throughput)\n");
  std::printf("  sessions with CoV >= 0.3: %.1f%%   (paper: ~50%%)\n",
              100.0 * (1.0 - ecdf(covs, 0.3)));
  std::printf("  sessions with CoV >= 0.5: %.1f%%   (paper: >20%%)\n",
              100.0 * (1.0 - ecdf(covs, 0.5)));
  return 0;
}
