// Recovery bench — time-to-recover after a world shift: continuous training
// vs. the --drift-reload full retrain (DESIGN.md §15, EXPERIMENTS.md).
//
// Scenario: a serving engine trained offline on the pre-shift world, then
// every cluster's live throughput collapses to 25% of its trained level (an
// access-network regime change). Live sessions keep completing and the two
// recovery strategies race:
//
//   - full-retrain: the reload loop retrains from --data. The CSV on disk
//     predates the shift, so however often it retrains it reproduces the
//     same stale model — the pre-PR behavior (and why interval reloads now
//     skip unchanged datasets entirely).
//   - continuous: the streaming trainer ingests the completed post-shift
//     sessions, marks the moved clusters dirty, retrains them on the live
//     reservoirs and swaps each candidate through the canary gate.
//
// Metric: per-round median one-step relative error of the arm's current
// model over a fresh batch of post-shift sessions. Time-to-recover = first
// round whose median error falls back within 1.5x the pre-shift baseline.
//
// Gate (exit code): the continuous arm must recover within the bench
// horizon AND strictly earlier than the full-retrain arm (which, training
// on stale data, should never recover at all).

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/trainer.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace cs2p;

constexpr double kShiftScale = 0.25;   ///< post-shift throughput multiplier
constexpr double kRecoverFactor = 1.5; ///< recovered when <= this x baseline
constexpr int kRounds = 10;
constexpr int kSessionsPerRound = 16;
constexpr int kEpochsPerSession = 12;

const std::vector<std::pair<std::string, double>>& cities() {
  static const std::vector<std::pair<std::string, double>> kCities = {
      {"alpha", 1.5}, {"beta", 3.0}, {"gamma", 6.0}, {"delta", 12.0}};
  return kCities;
}

SessionFeatures city_features(const std::string& city) {
  return {"ISP0", "AS0", "P0", city, "S0", "Pfx-" + city};
}

/// The pre-shift world: four clusters at well-separated throughput levels,
/// fixed start hour so live sessions map onto their training buckets.
Dataset pre_shift_dataset() {
  Dataset train;
  Rng rng(31);
  std::int64_t id = 0;
  for (const auto& [city, level] : cities()) {
    for (int i = 0; i < 16; ++i) {
      Session s;
      s.id = id++;
      s.features = city_features(city);
      s.start_hour = 12.0;
      for (int t = 0; t < 10; ++t)
        s.throughput_mbps.push_back(level * (1.0 + rng.uniform(-0.15, 0.15)));
      train.add(s);
    }
  }
  return train;
}

Cs2pConfig engine_config() {
  Cs2pConfig config;
  config.hmm.num_states = 2;
  config.hmm.max_iterations = 8;
  config.selector.min_cluster_size = 6;
  config.max_sequences_per_cluster = 24;
  config.max_global_sequences = 64;
  return config;
}

/// One live session's throughput sequence at `scale` x its cluster level.
std::vector<double> live_sequence(double level, double scale, Rng& rng) {
  std::vector<double> out;
  out.reserve(kEpochsPerSession);
  for (int t = 0; t < kEpochsPerSession; ++t)
    out.push_back(level * scale * (1.0 + rng.uniform(-0.15, 0.15)));
  return out;
}

/// Replays one round of live sessions against `model` and returns the
/// per-epoch one-step relative errors. When `trainer` is set, each session
/// also completes into it (the serving completion hook).
std::vector<double> play_round(const Cs2pPredictorModel& model, double scale,
                               Rng& rng, ContinuousTrainer* trainer) {
  std::vector<double> errors;
  for (int i = 0; i < kSessionsPerRound; ++i) {
    const auto& [city, level] = cities()[i % cities().size()];
    const std::vector<double> sequence = live_sequence(level, scale, rng);
    auto session =
        model.make_session({city_features(city), 1, 12.0, nullptr});
    for (std::size_t t = 0; t + 1 < sequence.size(); ++t) {
      session->observe(sequence[t]);
      const double predicted = session->predict(1);
      const double actual = sequence[t + 1];
      errors.push_back(std::abs(predicted - actual) / std::max(actual, 0.01));
    }
    if (trainer != nullptr)
      trainer->ingest(city_features(city), 12.0, sequence);
  }
  return errors;
}

double median_of(std::vector<double> xs) { return median(xs); }

}  // namespace

int main() {
  const Dataset train = pre_shift_dataset();

  auto stale_engine = std::make_shared<Cs2pEngine>(train, engine_config());
  stale_engine->warm_up();
  auto stale_model = std::make_shared<Cs2pPredictorModel>(stale_engine);

  // Pre-shift baseline: what "healthy" error looks like on the trained world.
  Rng baseline_rng(101);
  const double baseline =
      median_of(play_round(*stale_model, 1.0, baseline_rng, nullptr));
  const double recover_threshold = kRecoverFactor * baseline;
  std::printf("pre-shift baseline: median one-step relative error %.3f "
              "(recover when <= %.3f)\n\n",
              baseline, recover_threshold);

  // Arm 1: --drift-reload style full retrain from --data. The dataset on
  // disk never saw the shift, and identical data + config reproduce an
  // identical model, so one rebuild stands in for every per-round retrain.
  auto full_retrain_engine =
      std::make_shared<Cs2pEngine>(train, engine_config());
  full_retrain_engine->warm_up();
  auto full_retrain_model =
      std::make_shared<Cs2pPredictorModel>(full_retrain_engine);

  // Arm 2: continuous training over the live post-shift stream.
  TrainerConfig trainer_config;
  trainer_config.reservoir_size = 32;
  trainer_config.min_new_sessions = 4;
  trainer_config.holdout_stride = 4;
  trainer_config.canary_margin = 0.01;
  trainer_config.horizon = 2;
  trainer_config.probation_ms = 0;  // no guardrail sessions in this bench
  ContinuousTrainer trainer(stale_engine, trainer_config);

  std::printf("%-7s %22s %22s\n", "round", "continuous med err",
              "full-retrain med err");
  int continuous_recovered = -1;
  int full_recovered = -1;
  Rng continuous_rng(202);
  Rng full_rng(202);  // identical live traffic for both arms
  for (int round = 1; round <= kRounds; ++round) {
    const Cs2pPredictorModel continuous_model(trainer.engine());
    const double continuous_err = median_of(
        play_round(continuous_model, kShiftScale, continuous_rng, &trainer));
    trainer.run_once();

    const double full_err = median_of(
        play_round(*full_retrain_model, kShiftScale, full_rng, nullptr));

    if (continuous_recovered < 0 && continuous_err <= recover_threshold)
      continuous_recovered = round;
    if (full_recovered < 0 && full_err <= recover_threshold)
      full_recovered = round;
    std::printf("%-7d %22.3f %22.3f\n", round, continuous_err, full_err);
  }

  const TrainerStats stats = trainer.stats();
  std::printf("\ntrainer: %llu ingested, %llu retrains, %llu accepts, "
              "%llu rejects, generation %llu\n",
              static_cast<unsigned long long>(stats.sessions_ingested),
              static_cast<unsigned long long>(stats.retrains),
              static_cast<unsigned long long>(stats.canary_accepts),
              static_cast<unsigned long long>(stats.canary_rejects),
              static_cast<unsigned long long>(stats.generation));
  std::printf("time-to-recover (rounds of %d sessions): continuous=%s, "
              "full-retrain=%s\n",
              kSessionsPerRound,
              continuous_recovered > 0
                  ? std::to_string(continuous_recovered).c_str()
                  : "never",
              full_recovered > 0 ? std::to_string(full_recovered).c_str()
                                 : "never");

  // Gate: continuous training must recover, and strictly before a full
  // retrain from the stale dataset does (it shouldn't recover at all).
  const bool pass =
      continuous_recovered > 0 &&
      (full_recovered < 0 || continuous_recovered < full_recovered);
  std::printf("gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
