// Fig 6 — the throughput of sessions matching ALL of {ISP, City, Server} is
// much more stable than sessions matching any single feature or pair:
// feature combinations, not individual features, determine throughput.
//
// Also reproduces the two Observation 4 statistics:
//  * "50% of distinct ISP-City-Server values have inter-session throughput
//    stddev at least 10% lower than sessions matching only one or two
//    features";
//  * the relative information gain of a feature differs strongly across
//    ISPs ("difference of relative information gain over 65%").

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/common.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace cs2p;

struct Group {
  std::vector<double> throughputs;
};

double group_spread(const std::vector<double>& xs) {
  return xs.size() >= 2 ? stddev(xs) : 0.0;
}

}  // namespace

int main() {
  using namespace cs2p;
  Dataset dataset = generate_synthetic_dataset(bench::standard_config_scaled());

  // Pick the most common (ISP, City, Server) triple as the X/Y/Z anchor.
  std::map<std::string, std::size_t> triple_count;
  for (const auto& s : dataset.sessions()) {
    triple_count[s.features.isp + "|" + s.features.city + "|" + s.features.server]++;
  }
  std::string best_triple;
  std::size_t best_count = 0;
  for (const auto& [key, count] : triple_count) {
    if (count > best_count) {
      best_count = count;
      best_triple = key;
    }
  }
  const auto p1 = best_triple.find('|');
  const auto p2 = best_triple.rfind('|');
  const std::string x_isp = best_triple.substr(0, p1);
  const std::string y_city = best_triple.substr(p1 + 1, p2 - p1 - 1);
  const std::string z_server = best_triple.substr(p2 + 1);

  std::printf("Fig 6: throughput spread vs matched feature subset\n");
  std::printf("X = ISP(%s), Y = City(%s), Z = Server(%s)\n\n", x_isp.c_str(),
              y_city.c_str(), z_server.c_str());

  struct Subset {
    const char* label;
    bool use_isp, use_city, use_server;
  };
  const Subset subsets[] = {
      {"[X]", true, false, false},      {"[Y]", false, true, false},
      {"[Z]", false, false, true},      {"[X,Y]", true, true, false},
      {"[X,Z]", true, false, true},     {"[Y,Z]", false, true, true},
      {"[X,Y,Z]", true, true, true},
  };

  TextTable table({"subset", "n", "median (Mbps)", "stddev", "IQR/median"});
  for (const auto& subset : subsets) {
    std::vector<double> averages;
    for (const auto& s : dataset.sessions()) {
      if (s.throughput_mbps.empty()) continue;
      if (subset.use_isp && s.features.isp != x_isp) continue;
      if (subset.use_city && s.features.city != y_city) continue;
      if (subset.use_server && s.features.server != z_server) continue;
      averages.push_back(s.average_throughput());
    }
    const double med = median(averages);
    const double iqr = quantile(averages, 0.75) - quantile(averages, 0.25);
    table.add_row({subset.label, std::to_string(averages.size()),
                   format_double(med, 2), format_double(group_spread(averages), 2),
                   format_double(med > 0 ? iqr / med : 0.0, 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Obs 4 stat 1: fraction of triples whose spread beats the best 1/2-feature
  // grouping by >= 10%.
  std::map<std::string, Group> by_triple, by_isp_s, by_city_s, by_server_s,
      by_isp_city, by_isp_server, by_city_server;
  for (const auto& s : dataset.sessions()) {
    if (s.throughput_mbps.empty()) continue;
    const double avg = s.average_throughput();
    const auto& f = s.features;
    by_triple[f.isp + "|" + f.city + "|" + f.server].throughputs.push_back(avg);
    by_isp_s[f.isp].throughputs.push_back(avg);
    by_city_s[f.city].throughputs.push_back(avg);
    by_server_s[f.server].throughputs.push_back(avg);
    by_isp_city[f.isp + "|" + f.city].throughputs.push_back(avg);
    by_isp_server[f.isp + "|" + f.server].throughputs.push_back(avg);
    by_city_server[f.city + "|" + f.server].throughputs.push_back(avg);
  }
  std::size_t triples_evaluated = 0, triples_better = 0;
  for (const auto& [key, group] : by_triple) {
    if (group.throughputs.size() < 30) continue;
    const auto pa = key.find('|');
    const auto pb = key.rfind('|');
    const std::string isp = key.substr(0, pa);
    const std::string city = key.substr(pa + 1, pb - pa - 1);
    const std::string server = key.substr(pb + 1);
    const double triple_sd = group_spread(group.throughputs);
    const double min_partial_sd = std::min(
        {group_spread(by_isp_s[isp].throughputs),
         group_spread(by_city_s[city].throughputs),
         group_spread(by_server_s[server].throughputs),
         group_spread(by_isp_city[isp + "|" + city].throughputs),
         group_spread(by_isp_server[isp + "|" + server].throughputs),
         group_spread(by_city_server[city + "|" + server].throughputs)});
    ++triples_evaluated;
    if (triple_sd <= 0.9 * min_partial_sd) ++triples_better;
  }
  std::printf("\nObservation 4a: %.0f%% of (ISP, City, Server) triples have "
              ">=10%% lower stddev than every 1-2 feature grouping "
              "(paper: ~50%%, n=%zu triples)\n",
              triples_evaluated
                  ? 100.0 * static_cast<double>(triples_better) / triples_evaluated
                  : 0.0,
              triples_evaluated);

  // Obs 4 stat 2: RIG(throughput | city) varies across ISPs.
  std::map<std::string, std::pair<std::vector<double>, std::vector<int>>> per_isp;
  std::map<std::string, int> city_id;
  for (const auto& s : dataset.sessions()) {
    if (s.throughput_mbps.empty()) continue;
    if (!city_id.contains(s.features.city))
      city_id[s.features.city] = static_cast<int>(city_id.size());
    auto& slot = per_isp[s.features.isp];
    slot.first.push_back(s.average_throughput());
    slot.second.push_back(city_id[s.features.city]);
  }
  double min_rig = 1.0, max_rig = 0.0;
  for (const auto& [isp, data] : per_isp) {
    if (data.first.size() < 200) continue;
    const auto y = equal_frequency_bins(data.first, 8);
    const double rig = relative_information_gain(y, data.second);
    min_rig = std::min(min_rig, rig);
    max_rig = std::max(max_rig, rig);
  }
  std::printf("Observation 4b: RIG(throughput | City) ranges %.2f - %.2f across "
              "ISPs, a %.0f%% relative difference (paper: >65%%)\n",
              min_rig, max_rig,
              max_rig > 0.0 ? 100.0 * (max_rig - min_rig) / max_rig : 0.0);
  return 0;
}
