// Fig 9c — median prediction error vs lookahead horizon (1-10 epochs).
//
// Paper: "CS2P clearly outperforms other predictors, achieving 5%
// improvement over the second best (GBR). When predicting 10 epochs ahead,
// CS2P can still achieve as low as 19% prediction error while all other
// solutions have error >= 27%."

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/engine.h"
#include "predictors/evaluation.h"
#include "predictors/ghm.h"
#include "predictors/history.h"
#include "predictors/ml_predictors.h"
#include "util/table.h"

int main() {
  using namespace cs2p;
  auto [train, test] = bench::standard_dataset();
  std::printf("Fig 9c: median of per-session median error vs lookahead horizon\n\n");

  const LastSampleModel ls;
  const HarmonicMeanModel hm;
  const AutoRegressiveModel ar;
  const SvrPredictorModel svr(train);
  const GbrPredictorModel gbr(train);
  const Cs2pPredictorModel cs2p(train);
  const std::vector<const PredictorModel*> models = {&ls, &hm, &ar, &svr, &gbr, &cs2p};

  TextTable table({"horizon", "LS", "HM", "AR", "SVR", "GBR", "CS2P"});
  EvaluationOptions options;
  options.max_sessions = 600;

  for (unsigned horizon : {1U, 2U, 3U, 5U, 7U, 10U}) {
    options.horizon = horizon;
    std::vector<double> row;
    for (const PredictorModel* model : models) {
      const PredictorEvaluation eval = evaluate_predictor(*model, test, options);
      row.push_back(eval.midstream_summary.median_of_medians);
    }
    table.add_row_numeric(std::to_string(horizon), row);
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\npaper shape: all errors grow with horizon; CS2P stays lowest "
              "at every horizon.\n");
  return 0;
}
