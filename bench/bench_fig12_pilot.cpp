// §7.5 — pilot deployment: CS2P + MPC vs HM + MPC through the real
// prediction service.
//
// Unlike the other benches (which call the engine in-process), this one
// replays the player against a live PredictionServer over loopback TCP —
// one HELLO per session, one OBSERVE round trip per chunk — mirroring the
// paper's dash.js + Node.js pilot. Paper results: "+3.2% on overall QoE and
// +10.9% higher average bitrate compared with the state-of-art HM + MPC
// strategy", and the engine "can accurately predict the total rebuffering
// time at the beginning of the session".

#include <cstdio>
#include <memory>
#include <vector>

#include "abr/evaluation.h"
#include "abr/mpc.h"
#include "bench/common.h"
#include "core/engine.h"
#include "hmm/online_filter.h"
#include "net/client.h"
#include "net/server.h"
#include "predictors/history.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace cs2p;

/// PredictorModel adapter that obtains per-session predictors from a remote
/// PredictionServer (the player side of §6).
class RemotePredictorModel final : public PredictorModel {
 public:
  explicit RemotePredictorModel(PredictionClient& client) : client_(&client) {}
  std::string name() const override { return "Remote-CS2P"; }
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext& context) const override {
    return std::make_unique<RemoteSessionPredictor>(*client_, context.features,
                                                    context.start_hour);
  }

 private:
  PredictionClient* client_;
};

}  // namespace

int main() {
  using namespace cs2p;
  auto [train, test] = bench::standard_dataset();

  // Server side: a trained CS2P engine behind the TCP service.
  auto cs2p = std::make_shared<Cs2pPredictorModel>(train);
  PredictionServer server(cs2p);
  PredictionClient client(server.port());
  RemotePredictorModel remote(client);
  const HarmonicMeanModel hm;

  AbrEvaluationOptions options;
  options.max_sessions = 120;
  options.min_trace_epochs = options.video.num_chunks;

  MpcConfig mpc_config;
  mpc_config.robust = true;
  const auto mpc = [&] { return std::make_unique<MpcController>(mpc_config); };

  std::printf("Pilot deployment (§7.5): player vs live TCP prediction service\n\n");
  const AbrEvaluation hm_eval = evaluate_abr("HM + MPC", &hm, mpc, test, options);
  const AbrEvaluation cs2p_eval =
      evaluate_abr("CS2P + MPC (remote)", &remote, mpc, test, options);

  TextTable table({"strategy", "median n-QoE", "avg kbps", "GoodRatio", "rebuf s"});
  for (const auto* eval : {&hm_eval, &cs2p_eval}) {
    table.add_row({eval->label, format_double(eval->median_n_qoe, 3),
                   format_double(eval->avg_bitrate_kbps, 0),
                   format_double(eval->good_ratio, 3),
                   format_double(eval->mean_rebuffer_seconds, 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  const double qoe_gain =
      hm_eval.median_n_qoe > 0.0
          ? 100.0 * (cs2p_eval.median_n_qoe - hm_eval.median_n_qoe) / hm_eval.median_n_qoe
          : 0.0;
  const double bitrate_gain =
      hm_eval.avg_bitrate_kbps > 0.0
          ? 100.0 * (cs2p_eval.avg_bitrate_kbps - hm_eval.avg_bitrate_kbps) /
                hm_eval.avg_bitrate_kbps
          : 0.0;
  std::printf("\nCS2P+MPC vs HM+MPC: %+.1f%% median QoE, %+.1f%% avg bitrate "
              "(paper: +3.2%% QoE, +10.9%% bitrate)\n",
              qoe_gain, bitrate_gain);
  std::printf("requests served over TCP: %llu\n",
              static_cast<unsigned long long>(server.requests_handled()));

  // Rebuffer-time prediction at session start: forecast the whole-session
  // throughput trajectory from the cluster HMM (multi-step-ahead from the
  // initial belief), simulate the playback against that forecast, and
  // compare predicted vs realized total rebuffering.
  const Cs2pEngine& engine = cs2p->engine();
  std::vector<double> predicted_rebuf, actual_rebuf;
  std::size_t n = 0;
  for (const auto& session : test.sessions()) {
    if (session.throughput_mbps.size() < options.video.num_chunks) continue;
    if (session.average_throughput() < options.min_avg_throughput_mbps) continue;
    if (++n > 60) break;

    const SessionModelRef ref =
        engine.session_model(session.features, session.start_hour);
    OnlineHmmFilter filter(*ref.hmm);
    std::vector<double> forecast(options.video.num_chunks);
    forecast[0] = ref.initial_prediction;
    for (std::size_t h = 1; h < forecast.size(); ++h)
      forecast[h] = filter.predict(static_cast<unsigned>(h));

    MpcController controller(mpc_config);
    // Predicted playback: run against the forecast trace with an oracle of
    // that same forecast.
    struct ForecastOracle final : SessionPredictor {
      explicit ForecastOracle(const std::vector<double>& f) : f_(f) {}
      std::optional<double> predict_initial() const override { return f_[0]; }
      double predict(unsigned steps) const override {
        return f_[std::min(pos_ + steps - 1, f_.size() - 1)];
      }
      void observe(double) override { ++pos_; }
      const std::vector<double>& f_;
      std::size_t pos_ = 0;
    } forecast_oracle(forecast);

    const PlaybackResult predicted = simulate_playback(
        options.video, ThroughputTrace(forecast), controller, &forecast_oracle);

    MpcController controller2(mpc_config);
    auto live = cs2p->make_session(SessionContext::from(session));
    const PlaybackResult realized =
        simulate_playback(options.video, ThroughputTrace(session.throughput_mbps),
                          controller2, live.get());

    predicted_rebuf.push_back(compute_qoe(predicted).rebuffer_seconds);
    actual_rebuf.push_back(compute_qoe(realized).rebuffer_seconds);
  }
  std::vector<double> abs_gap;
  for (std::size_t i = 0; i < predicted_rebuf.size(); ++i)
    abs_gap.push_back(std::abs(predicted_rebuf[i] - actual_rebuf[i]));
  std::printf("\nrebuffer-time prediction at session start (n=%zu): median "
              "|predicted - actual| = %.2f s (actual median %.2f s, "
              "correlation %.2f)\n",
              predicted_rebuf.size(), median(abs_gap), median(actual_rebuf),
              correlation(predicted_rebuf, actual_rebuf));

  // QoE under failure: kill the prediction service a third of the way into a
  // session and let RemoteSessionPredictor degrade to its local
  // harmonic-mean fallback. The stream must finish and still be scoreable.
  // Pick a session with headroom above the lowest rung so the number shows
  // the cost of degradation rather than a trace nobody could stream.
  const Session* victim = nullptr;
  for (const auto& session : test.sessions()) {
    if (session.throughput_mbps.size() < options.video.num_chunks) continue;
    if (session.average_throughput() < 1.5) continue;
    victim = &session;
    break;
  }
  if (victim != nullptr) {
    auto doomed_server = std::make_unique<PredictionServer>(cs2p);
    ClientConfig degraded_config;
    degraded_config.recv_timeout_ms = 500;
    degraded_config.send_timeout_ms = 500;
    degraded_config.max_retries = 1;
    degraded_config.backoff_initial_ms = 2;
    PredictionClient doomed_client(doomed_server->port(), degraded_config);
    RemoteSessionPredictor remote_session(doomed_client, victim->features,
                                          victim->start_hour);

    /// Stops the server after a third of the chunks have been observed.
    struct KillServerAt final : SessionPredictor {
      KillServerAt(RemoteSessionPredictor& inner, PredictionServer& server,
                   std::size_t kill_after)
          : inner(&inner), server(&server), kill_after(kill_after) {}
      std::optional<double> predict_initial() const override {
        return inner->predict_initial();
      }
      double predict(unsigned steps) const override { return inner->predict(steps); }
      void observe(double w) override {
        if (++observed == kill_after) server->stop();
        inner->observe(w);
      }
      bool degraded() const override { return inner->degraded(); }
      RemoteSessionPredictor* inner;
      PredictionServer* server;
      std::size_t kill_after;
      std::size_t observed = 0;
    } killer(remote_session, *doomed_server, options.video.num_chunks / 3);

    MpcController degraded_controller(mpc_config);
    const PlaybackResult degraded_run =
        simulate_playback(options.video, ThroughputTrace(victim->throughput_mbps),
                          degraded_controller, &killer);
    const QoeBreakdown degraded_qoe = compute_qoe(degraded_run);

    // Same session with the service healthy, for contrast.
    MpcController healthy_controller(mpc_config);
    auto healthy_session = cs2p->make_session(SessionContext::from(*victim));
    const PlaybackResult healthy_run =
        simulate_playback(options.video, ThroughputTrace(victim->throughput_mbps),
                          healthy_controller, healthy_session.get());
    const QoeBreakdown healthy_qoe = compute_qoe(healthy_run);

    std::printf("\nQoE under failure (server killed at chunk %zu/%zu): "
                "degraded=%s, QoE %.0f, avg %.0f kbps, rebuf %.2f s, "
                "%llu fallback forecasts\n",
                options.video.num_chunks / 3, options.video.num_chunks,
                degraded_run.predictor_degraded ? "yes" : "no",
                degraded_qoe.total, degraded_qoe.avg_bitrate_kbps,
                degraded_qoe.rebuffer_seconds,
                static_cast<unsigned long long>(
                    remote_session.fallback_predictions()));
    std::printf("same session, service healthy:                    "
                "QoE %.0f, avg %.0f kbps, rebuf %.2f s\n",
                healthy_qoe.total, healthy_qoe.avg_bitrate_kbps,
                healthy_qoe.rebuffer_seconds);
  }
  return 0;
}
