// Table 2 — summary of dataset statistics.
//
// Paper (iQiyi, Sept 2015): 20M+ sessions, 3.2M client IPs, 87 ISPs,
// 160 ASes, 33 provinces, 736 cities, 18 servers, 8 days. Our synthetic
// world is a scale model: the table below reports the same rows for the
// generated dataset the other benches run on.

#include <cstdio>
#include <string>

#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace cs2p;
  const SyntheticConfig config = bench::standard_config_scaled();
  Dataset dataset = generate_synthetic_dataset(config);
  const DatasetSummary summary = dataset.summarize();

  std::printf("Table 2: dataset feature summary (synthetic scale model)\n\n");
  TextTable table({"Feature", "# unique values", "paper (iQiyi)"});
  table.add_row({"Sessions", std::to_string(summary.num_sessions), "20M+"});
  const char* paper_values[] = {"87", "160", "33", "736", "18", "3.2M prefixes"};
  std::size_t row = 0;
  for (FeatureId id : all_features()) {
    table.add_row({std::string(feature_name(id)),
                   std::to_string(summary.unique_values.at(id)), paper_values[row++]});
  }
  table.add_row({"Days", std::to_string(config.days), "8"});
  table.add_row({"Epoch length (s)",
                 format_double(config.epoch_seconds, 0), "6"});
  table.add_row({"Total epochs", std::to_string(summary.total_epochs), "-"});
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nmedian session duration: %.0f s (Fig 3a)\n",
              summary.median_duration_seconds);
  std::printf("median per-epoch throughput: %.2f Mbps (Fig 3b)\n",
              summary.median_epoch_throughput_mbps);
  return 0;
}
