// Fig 9a — CDF of the initial-epoch (cold start) prediction error.
//
// Paper: "CS2P performs much better in predicting the initial throughput
// with 20% median error vs 35%+ for other predictors" — compared against
// GBR, SVR, LM-client (same IP prefix) and LM-server (same server); LS/HM/AR
// cannot cold-start. Also reproduces the FCC-dataset side experiment: with
// richer per-session features (more discriminative prefixes), initial
// accuracy improves further.

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/engine.h"
#include "predictors/evaluation.h"
#include "predictors/ml_predictors.h"
#include "predictors/simple_cross.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace cs2p;
  auto [train, test] = bench::standard_dataset();
  std::printf("Fig 9a: initial-epoch prediction error (train %zu / test %zu)\n\n",
              train.size(), test.size());

  const SvrPredictorModel svr(train);
  const GbrPredictorModel gbr(train);
  const FeatureMedianModel lm_client = make_lm_client(train);
  const FeatureMedianModel lm_server = make_lm_server(train);
  const GlobalMedianModel global(train);
  const Cs2pPredictorModel cs2p(train);

  const std::vector<const PredictorModel*> models = {
      &svr, &gbr, &lm_client, &lm_server, &global, &cs2p};

  EvaluationOptions options;
  options.max_sessions = 3000;

  TextTable summary({"predictor", "median", "p75", "p90"});
  TextTable cdf({"error<=", "SVR", "GBR", "LM-client", "LM-server", "Global", "CS2P"});
  const std::vector<double> grid = {0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0};
  std::vector<std::vector<double>> columns;

  for (const PredictorModel* model : models) {
    const PredictorEvaluation eval = evaluate_predictor(*model, test, options);
    summary.add_row_numeric(eval.predictor_name,
                            {eval.initial_median_error, eval.initial_p75_error,
                             quantile(eval.initial_errors, 0.9)});
    columns.push_back(ecdf_at(eval.initial_errors, grid));
  }
  for (std::size_t g = 0; g < grid.size(); ++g) {
    std::vector<double> row;
    for (const auto& column : columns) row.push_back(column[g]);
    cdf.add_row_numeric(format_double(grid[g], 2), row, 2);
  }
  std::fputs(summary.to_string().c_str(), stdout);
  std::printf("\nCDF of initial error (fraction of sessions):\n");
  std::fputs(cdf.to_string().c_str(), stdout);

  // FCC-style side experiment: a world with MORE discriminative last-mile
  // features (one prefix per client pool instead of shared prefixes) —
  // initial prediction gets better, as the paper found on FCC MBA data.
  SyntheticConfig rich = bench::standard_config_scaled();
  rich.prefixes_per_isp_city = 6;   // finer-grained last-mile identity
  rich.num_sessions = rich.num_sessions * 3 / 2;
  Dataset rich_dataset = generate_synthetic_dataset(rich);
  auto [rich_train, rich_test] = rich_dataset.split_by_day(1);
  const Cs2pPredictorModel rich_cs2p(rich_train);
  const PredictorEvaluation rich_eval =
      evaluate_predictor(rich_cs2p, rich_test, options);
  std::printf("\nFCC-style richer-feature world: CS2P initial median error "
              "%.3f (paper: ~10%% on FCC vs 20%% on iQiyi)\n",
              rich_eval.initial_median_error);
  return 0;
}
