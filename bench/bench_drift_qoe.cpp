// Drift bench — prediction error of the guarded vs. the unguarded HMM
// predictor, in distribution and under an injected regime shift.
//
// The guardrail layer (DESIGN.md §10) is only worth its complexity if it is
// (a) free when the cluster model is right and (b) strictly better when the
// model goes stale midstream. This bench measures both on the standard
// world:
//
//   - in-distribution: every test session replayed unmodified. Guarded and
//     unguarded predictors must agree to within noise (the guardrail should
//     essentially never trip).
//   - regime shift: halfway through each session the measured throughput
//     collapses to ~2% of its trace value (a severe path change the cluster
//     HMM knows nothing about). Post-shift, the unguarded HMM keeps
//     predicting its state means while the guarded predictor falls back to
//     the harmonic mean of what it actually sees.
//
// Output: median/p75 absolute normalized error per predictor and scenario
// (split pre/post shift), plus trip/recovery counts as a flap sanity check.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/engine.h"
#include "predictors/guarded_session.h"
#include "predictors/hmm_session.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace cs2p;

struct ErrorSplit {
  std::vector<double> pre;   ///< per-epoch |err|/w before the shift point
  std::vector<double> post;  ///< ... and after (empty when no shift)
};

struct ScenarioResult {
  ErrorSplit guarded;
  ErrorSplit unguarded;
  std::size_t trips = 0;
  std::size_t recoveries = 0;
  std::size_t sessions = 0;
};

/// Replays up to `max_sessions` test sessions against one engine, driving a
/// guarded and an unguarded predictor on the identical cluster model and
/// observation stream. `shift_scale` < 1 collapses throughput after each
/// session's midpoint (1.0 = in-distribution).
ScenarioResult run_scenario(const Cs2pEngine& engine, const Dataset& test,
                            double shift_scale, std::size_t max_sessions,
                            Rng& rng) {
  GuardrailConfig guardrail;  // defaults: what the engine would serve with
  guardrail.enabled = true;
  ScenarioResult result;
  for (const Session& s : test.sessions()) {
    if (result.sessions >= max_sessions) break;
    if (s.throughput_mbps.size() < 8) continue;
    ++result.sessions;
    const SessionModelRef ref = engine.session_model(s.features, s.start_hour);
    HmmSessionPredictor unguarded(*ref.hmm, ref.initial_prediction);
    GuardedSessionPredictor guarded(*ref.hmm, ref.initial_prediction,
                                    engine.global_initial(),
                                    engine.surprise_baseline(ref.hmm),
                                    guardrail);
    const std::size_t shift_epoch = s.throughput_mbps.size() / 2;
    for (std::size_t t = 0; t < s.throughput_mbps.size(); ++t) {
      double w = s.throughput_mbps[t];
      const bool shifted = shift_scale < 1.0 && t >= shift_epoch;
      if (shifted) w = std::max(0.005, shift_scale * w * rng.uniform(0.8, 1.2));
      if (t > 0) {  // one-step-ahead error, skip the cold-start epoch
        const double eg = std::abs(guarded.predict(1) - w) / w;
        const double eu = std::abs(unguarded.predict(1) - w) / w;
        (shifted ? result.guarded.post : result.guarded.pre).push_back(eg);
        (shifted ? result.unguarded.post : result.unguarded.pre).push_back(eu);
      }
      guarded.observe(w);
      unguarded.observe(w);
    }
    const GuardedSessionPredictor::Stats stats = guarded.stats();
    result.trips += stats.trips;
    result.recoveries += stats.recoveries;
  }
  return result;
}

void add_rows(TextTable& table, const char* scenario, const char* phase,
              const std::vector<double>& guarded,
              const std::vector<double>& unguarded) {
  if (guarded.empty()) return;
  table.add_row_numeric(std::string(scenario) + " / " + phase + " / guarded",
                        {median(guarded), quantile(guarded, 0.75)});
  table.add_row_numeric(std::string(scenario) + " / " + phase + " / unguarded",
                        {median(unguarded), quantile(unguarded, 0.75)});
}

}  // namespace

int main() {
  using namespace cs2p;
  auto [train, test] = bench::standard_dataset();
  std::printf("Drift bench: guarded vs unguarded HMM predictor "
              "(train %zu / test %zu sessions)\n\n",
              train.size(), test.size());

  Cs2pConfig config;
  const Cs2pEngine engine(std::move(train), config);

  constexpr std::size_t kSessions = 400;
  Rng rng(20160816);
  const ScenarioResult in_dist =
      run_scenario(engine, test, /*shift_scale=*/1.0, kSessions, rng);
  const ScenarioResult shifted =
      run_scenario(engine, test, /*shift_scale=*/0.02, kSessions, rng);

  TextTable table({"scenario / phase / predictor", "median", "p75"});
  add_rows(table, "in-dist", "all", in_dist.guarded.pre, in_dist.unguarded.pre);
  add_rows(table, "shifted", "pre", shifted.guarded.pre, shifted.unguarded.pre);
  add_rows(table, "shifted", "post", shifted.guarded.post,
           shifted.unguarded.post);
  std::printf("Per-epoch absolute normalized error |w_hat - w| / w:\n");
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\nguardrail trips: in-dist %zu across %zu sessions, "
              "shifted %zu across %zu sessions (%zu recoveries)\n",
              in_dist.trips, in_dist.sessions, shifted.trips, shifted.sessions,
              shifted.recoveries);

  const double guarded_post = median(shifted.guarded.post);
  const double unguarded_post = median(shifted.unguarded.post);
  std::printf("post-shift median error: guarded %.3f vs unguarded %.3f "
              "(%s)\n",
              guarded_post, unguarded_post,
              guarded_post < unguarded_post ? "guardrail wins" : "REGRESSION");
  return guarded_post < unguarded_post ? 0 : 1;
}
