// §7.3 (Fig 10) — QoE improvement from better prediction.
//
// Paper: "When combined with MPC, CS2P can drive median overall QoE to 93%
// of offline optimal for initial chunk and 95% for midstream chunks,
// outperforming other state-of-art predictors", and both beat the
// prediction-free BB/RB baselines. Every predictor arm runs the same
// (Robust)MPC controller; n-QoE normalises each session by its
// perfect-knowledge offline optimum.

#include <cstdio>
#include <memory>
#include <vector>

#include "abr/controllers.h"
#include "abr/festive.h"
#include "abr/evaluation.h"
#include "abr/mpc.h"
#include "bench/common.h"
#include "core/engine.h"
#include "predictors/ghm.h"
#include "predictors/history.h"
#include "predictors/ml_predictors.h"
#include "predictors/oracle.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace cs2p;
  auto [train, test] = bench::standard_dataset();

  const HarmonicMeanModel hm;
  const SvrPredictorModel svr(train);
  const GbrPredictorModel gbr(train);
  const GlobalHmmModel ghm(train);
  const Cs2pPredictorModel cs2p(train);
  const OracleModel oracle;

  AbrEvaluationOptions options;
  options.max_sessions = 250;
  options.min_trace_epochs = options.video.num_chunks;

  MpcConfig mpc_config;
  mpc_config.robust = true;
  const auto mpc = [&] { return std::make_unique<MpcController>(mpc_config); };
  const auto bb = [] { return std::make_unique<BufferBasedController>(); };
  const auto rb = [] { return std::make_unique<RateBasedController>(); };
  const auto festive = [] { return std::make_unique<FestiveController>(); };

  struct Arm {
    std::string label;
    const PredictorModel* model;
    ControllerFactory controller;
    bool needs_oracle = false;
  };
  const std::vector<Arm> arms = {
      {"BB", nullptr, bb},
      {"RB (HM)", &hm, rb},
      {"FESTIVE", nullptr, festive},
      {"HM + MPC", &hm, mpc},
      {"SVR + MPC", &svr, mpc},
      {"GBR + MPC", &gbr, mpc},
      {"GHM + MPC", &ghm, mpc},
      {"CS2P + MPC", &cs2p, mpc},
      {"Oracle + MPC", &oracle, mpc, true},
  };

  std::printf("Fig 10: n-QoE by predictor (all arms share the same MPC)\n\n");
  TextTable table({"strategy", "median n-QoE", "mean n-QoE", "p25 n-QoE",
                   "avg kbps", "GoodRatio", "rebuf s", "startup s"});
  for (const auto& arm : arms) {
    AbrEvaluationOptions arm_options = options;
    arm_options.provide_oracle = arm.needs_oracle;
    const AbrEvaluation eval =
        evaluate_abr(arm.label, arm.model, arm.controller, test, arm_options);
    std::vector<double> n_qoes;
    for (const auto& outcome : eval.outcomes)
      n_qoes.push_back(outcome.normalized_qoe);
    table.add_row({arm.label, format_double(eval.median_n_qoe, 3),
                   format_double(eval.mean_n_qoe, 3),
                   format_double(quantile(n_qoes, 0.25), 3),
                   format_double(eval.avg_bitrate_kbps, 0),
                   format_double(eval.good_ratio, 3),
                   format_double(eval.mean_rebuffer_seconds, 2),
                   format_double(eval.mean_startup_seconds, 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\npaper shape: CS2P+MPC > {HM, SVR, GBR, GHM}+MPC > BB/RB; "
              "Oracle+MPC bounds what prediction can buy.\n");
  return 0;
}
