// Fig 9b — CDF of midstream (1-epoch-ahead) prediction error.
//
// Paper: "CS2P reduces the median prediction error by 50% comparing to other
// baseline solutions, achieving 7% median error and 20% 75-percentile
// error... CS2P also outperforms GHM, which confirms the necessity of
// training a separate HMM for each cluster."
//
// Output: per-predictor CDF of the per-session median absolute normalized
// error, plus the summary quantiles the paper quotes.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "core/engine.h"
#include "predictors/evaluation.h"
#include "predictors/ghm.h"
#include "predictors/history.h"
#include "predictors/ml_predictors.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace cs2p;
  auto [train, test] = bench::standard_dataset();
  std::printf("Fig 9b: midstream prediction error (train %zu / test %zu sessions)\n\n",
              train.size(), test.size());

  const LastSampleModel ls;
  const HarmonicMeanModel hm;
  const AutoRegressiveModel ar;
  const SvrPredictorModel svr(train);
  const GbrPredictorModel gbr(train);
  const GlobalHmmModel ghm(train);
  const Cs2pPredictorModel cs2p(train);

  const std::vector<const PredictorModel*> models = {&ls, &hm,  &ar,  &svr,
                                                     &gbr, &ghm, &cs2p};

  EvaluationOptions options;
  options.max_sessions = 1500;

  TextTable summary({"predictor", "median", "p75", "p90", "mean"});
  TextTable cdf({"error<=", "LS", "HM", "AR", "SVR", "GBR", "GHM", "CS2P"});
  const std::vector<double> grid = {0.02, 0.05, 0.08, 0.1, 0.15, 0.2,
                                    0.3,  0.4,  0.5,  0.75, 1.0};
  std::vector<std::vector<double>> cdf_columns;

  for (const PredictorModel* model : models) {
    const PredictorEvaluation eval = evaluate_predictor(*model, test, options);
    summary.add_row_numeric(eval.predictor_name,
                            {eval.midstream_summary.median_of_medians,
                             eval.midstream_summary.p75_of_medians,
                             eval.midstream_summary.p90_of_medians,
                             eval.midstream_summary.mean_of_means});
    cdf_columns.push_back(ecdf_at(eval.midstream_median_errors, grid));
  }

  for (std::size_t g = 0; g < grid.size(); ++g) {
    std::vector<double> row;
    for (const auto& column : cdf_columns) row.push_back(column[g]);
    cdf.add_row_numeric(format_double(grid[g], 2), row, 2);
  }

  std::printf("Per-session median error, summarised across sessions:\n");
  std::fputs(summary.to_string().c_str(), stdout);
  std::printf("\nCDF of per-session median error (fraction of sessions):\n");
  std::fputs(cdf.to_string().c_str(), stdout);
  return 0;
}
