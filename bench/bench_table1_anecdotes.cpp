// Table 1 — limitations of current initial bitrate selection, quantified.
//
// The paper's Table 1 is anecdotal: fixed-bitrate players pick a low rate
// to avoid stalls ("bitrate too low"), adaptive players ramp up slowly from
// a conservative start ("a few chunks are wasted to probe throughput"), and
// throughput prediction buys a high initial bitrate without rebuffering or
// long startup. This bench reproduces those anecdotes as numbers:
//
//   * Fixed-low     — constant 350 kbps (the NFL/Lynda row);
//   * Cold ramp-up  — HM+MPC starting blind at the lowest rung (Netflix);
//   * CS2P + MPC    — prediction-driven initial selection.
//
// Reported: initial bitrate, chunks wasted before reaching the sustainable
// rung, startup delay, rebuffering, and QoE over a short Vevo-length clip
// (where slow ramp-up never converges, the paper's short-video point).

#include <cstdio>
#include <memory>

#include "abr/controllers.h"
#include "abr/evaluation.h"
#include "abr/mpc.h"
#include "bench/common.h"
#include "core/engine.h"
#include "predictors/history.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace cs2p;

struct AnecdoteStats {
  double initial_bitrate = 0.0;    ///< mean chunk-0 bitrate (kbps)
  double wasted_chunks = 0.0;      ///< mean chunks below the sustainable rung
  double startup_seconds = 0.0;
  double rebuffer_seconds = 0.0;
  double avg_bitrate = 0.0;
};

AnecdoteStats measure(const PredictorModel* model, const ControllerFactory& make,
                      const Dataset& test, const VideoSpec& video,
                      std::size_t max_sessions) {
  AnecdoteStats out;
  std::vector<double> initial, wasted, startup, rebuf, bitrate;
  std::size_t n = 0;
  for (const auto& session : test.sessions()) {
    if (session.throughput_mbps.size() < video.num_chunks) continue;
    if (session.average_throughput() < 0.45) continue;
    if (++n > max_sessions) break;

    std::unique_ptr<SessionPredictor> predictor;
    if (model != nullptr)
      predictor = model->make_session(SessionContext::from(session));
    const auto controller = make();
    const ThroughputTrace trace(session.throughput_mbps);
    const PlaybackResult played =
        simulate_playback(video, trace, *controller, predictor.get());
    const QoeBreakdown qoe = compute_qoe(played);

    // "Sustainable rung": the highest ladder bitrate below the session's
    // median throughput. Chunks rendered below it are the probe waste.
    const double sustainable =
        video.bitrates_kbps[highest_sustainable(
            video, median(session.throughput_mbps) * 1000.0)];
    std::size_t below = 0;
    for (const auto& chunk : played.chunks)
      if (chunk.bitrate_kbps < sustainable) ++below;

    initial.push_back(played.chunks.front().bitrate_kbps);
    wasted.push_back(static_cast<double>(below));
    startup.push_back(played.startup_delay_seconds);
    rebuf.push_back(qoe.rebuffer_seconds);
    bitrate.push_back(qoe.avg_bitrate_kbps);
  }
  out.initial_bitrate = mean(initial);
  out.wasted_chunks = mean(wasted);
  out.startup_seconds = mean(startup);
  out.rebuffer_seconds = mean(rebuf);
  out.avg_bitrate = mean(bitrate);
  return out;
}

}  // namespace

int main() {
  using namespace cs2p;
  auto [train, test] = bench::standard_dataset();
  const Cs2pPredictorModel cs2p(train);
  const HarmonicMeanModel hm;

  MpcConfig mpc_config;
  mpc_config.robust = true;
  const auto mpc = [&] { return std::make_unique<MpcController>(mpc_config); };
  const auto fixed_low = [] { return std::make_unique<FixedBitrateController>(0); };

  // A short clip (Vevo-style, ~90 s) where slow ramp-up cannot converge.
  VideoSpec short_clip;
  short_clip.num_chunks = 15;

  std::printf("Table 1: initial bitrate selection anecdotes, quantified\n");
  for (const auto& [label, video] :
       std::vector<std::pair<const char*, VideoSpec>>{
           {"260-s video", VideoSpec{}}, {"90-s clip", short_clip}}) {
    std::printf("\n%s:\n", label);
    TextTable table({"player", "initial kbps", "wasted chunks", "startup s",
                     "rebuf s", "avg kbps"});
    const struct {
      const char* name;
      const PredictorModel* model;
      ControllerFactory controller;
    } rows[] = {
        {"Fixed-low (NFL/Lynda)", nullptr, fixed_low},
        {"Cold ramp-up (HM+MPC)", &hm, mpc},
        {"CS2P + MPC", &cs2p, mpc},
    };
    for (const auto& row : rows) {
      const AnecdoteStats s = measure(row.model, row.controller, test, video, 150);
      table.add_row({row.name, format_double(s.initial_bitrate, 0),
                     format_double(s.wasted_chunks, 1),
                     format_double(s.startup_seconds, 2),
                     format_double(s.rebuffer_seconds, 2),
                     format_double(s.avg_bitrate, 0)});
    }
    std::fputs(table.to_string().c_str(), stdout);
  }
  std::printf("\npaper shape: fixed = low bitrate; cold ramp-up wastes probe "
              "chunks (worse on short clips); prediction starts high without "
              "long startup or stalls.\n");
  return 0;
}
