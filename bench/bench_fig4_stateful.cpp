// Fig 4 — stateful behaviour of session throughput.
//
// 4a: an example long session's timeseries segmented into persistent states
//     (we print the Viterbi decoding under a fitted HMM: state id, dwell
//     length, and mean, reproducing the "roughly 10 segments over 4 states"
//     reading of the figure).
// 4b: throughput at epoch t+1 vs epoch t for all sessions of one client
//     prefix — the clustered scatter. We summarise it as the state-to-state
//     transition counts of a 2-D histogram: high mass on the diagonal
//     (persistence) with a few off-diagonal cells (switches).

#include <cstdio>
#include <map>
#include <vector>

#include "bench/common.h"
#include "hmm/baum_welch.h"
#include "hmm/viterbi.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace cs2p;
  Dataset dataset = generate_synthetic_dataset(bench::standard_config_scaled());

  // 4a: pick the longest session, fit a 4-state HMM, decode.
  const Session* example = nullptr;
  for (const auto& s : dataset.sessions())
    if (example == nullptr ||
        s.throughput_mbps.size() > example->throughput_mbps.size())
      example = &s;

  BaumWelchConfig config;
  config.num_states = 4;
  const auto trained = train_hmm({example->throughput_mbps}, config);
  const auto decoded = viterbi(trained.model, example->throughput_mbps);

  std::printf("Fig 4a: session #%lld (%zu epochs) segmented by a 4-state HMM\n\n",
              static_cast<long long>(example->id), example->throughput_mbps.size());
  TextTable segments({"segment", "state", "epochs", "state mean (Mbps)"});
  std::size_t seg_start = 0;
  int seg_id = 0;
  for (std::size_t t = 1; t <= decoded.path.size(); ++t) {
    if (t == decoded.path.size() || decoded.path[t] != decoded.path[t - 1]) {
      const std::size_t state = decoded.path[seg_start];
      segments.add_row({std::to_string(seg_id++), std::to_string(state),
                        std::to_string(t - seg_start),
                        format_double(trained.model.states[state].mean, 2)});
      seg_start = t;
      if (seg_id >= 20) break;  // print at most 20 segments
    }
  }
  std::fputs(segments.to_string().c_str(), stdout);

  // 4b: consecutive-epoch scatter for one prefix, summarised as quadrant
  // masses around the per-prefix state grid.
  std::map<std::string, std::vector<const Session*>> by_prefix;
  for (const auto& s : dataset.sessions())
    by_prefix[s.features.client_prefix].push_back(&s);
  const std::vector<const Session*>* best = nullptr;
  std::string best_prefix;
  for (const auto& [prefix, sessions] : by_prefix) {
    if (best == nullptr || sessions.size() > best->size()) {
      best = &sessions;
      best_prefix = prefix;
    }
  }

  std::vector<double> same_state_steps, all_steps;
  std::size_t persist = 0, total = 0;
  for (const Session* s : *best) {
    for (std::size_t t = 0; t + 1 < s->throughput_mbps.size(); ++t) {
      const double a = s->throughput_mbps[t];
      const double b = s->throughput_mbps[t + 1];
      const double ratio = b / a;
      ++total;
      if (ratio > 0.8 && ratio < 1.25) ++persist;  // on the diagonal
      all_steps.push_back(ratio);
    }
  }
  (void)same_state_steps;
  std::printf("\nFig 4b: consecutive-epoch throughput for prefix %s "
              "(%zu sessions, %zu steps)\n",
              best_prefix.c_str(), best->size(), total);
  std::printf("  fraction on the diagonal (W_{t+1}/W_t in [0.8, 1.25]): %.2f\n",
              static_cast<double>(persist) / static_cast<double>(total));
  std::printf("  ratio percentiles: p10=%.2f p25=%.2f p50=%.2f p75=%.2f p90=%.2f\n",
              quantile(all_steps, 0.1), quantile(all_steps, 0.25),
              quantile(all_steps, 0.5), quantile(all_steps, 0.75),
              quantile(all_steps, 0.9));
  std::printf("  (clustered diagonal mass with discrete off-diagonal jumps = "
              "the paper's red-circled states)\n");
  return 0;
}
