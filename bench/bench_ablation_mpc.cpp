// Ablation — plain FastMPC vs the RobustMPC discount (DESIGN.md §6).
//
// The paper pairs CS2P with FastMPC [47]. In our synthetic world, epochs
// carry transient bursts that a point forecast cannot anticipate; plain MPC
// rides the forecast with no margin and stalls on every burst, while the
// RobustMPC variant (from the same paper [47]) discounts the forecast by the
// recently observed prediction error. This bench quantifies that choice and
// shows it preserves the predictor ordering the QoE benches rely on: the
// more accurate predictor is discounted less and keeps its advantage.

#include <cstdio>
#include <memory>

#include "abr/evaluation.h"
#include "abr/mpc.h"
#include "bench/common.h"
#include "core/engine.h"
#include "predictors/history.h"
#include "util/table.h"

int main() {
  using namespace cs2p;
  auto [train, test] = bench::standard_dataset();

  const Cs2pPredictorModel cs2p(train);
  const HarmonicMeanModel hm;

  AbrEvaluationOptions options;
  options.max_sessions = 150;
  options.min_trace_epochs = options.video.num_chunks;

  std::printf("Ablation: plain FastMPC vs RobustMPC discount\n\n");
  TextTable table({"strategy", "median n-QoE", "avg kbps", "GoodRatio", "rebuf s"});
  for (const bool robust : {false, true}) {
    MpcConfig config;
    config.robust = robust;
    const auto mpc = [&] { return std::make_unique<MpcController>(config); };
    for (const auto& [label, model] :
         std::vector<std::pair<std::string, const PredictorModel*>>{
             {"HM", &hm}, {"CS2P", &cs2p}}) {
      const AbrEvaluation eval = evaluate_abr(
          label + (robust ? " + RobustMPC" : " + MPC"), model, mpc, test, options);
      table.add_row({eval.label, format_double(eval.median_n_qoe, 3),
                     format_double(eval.avg_bitrate_kbps, 0),
                     format_double(eval.good_ratio, 3),
                     format_double(eval.mean_rebuffer_seconds, 2)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nexpected: the robust discount removes the burst-driven stalls "
              "for both arms and CS2P (more accurate, less discounted) keeps "
              "the higher bitrate and QoE.\n");
  return 0;
}
