// §7.4 — sensitivity of CS2P to its configuration parameters, plus the
// design-choice ablations called out in DESIGN.md:
//
//  * number of HMM states N (paper cross-validates to N = 6);
//  * minimum cluster size (too small = noisy models, too large = everything
//    falls back to the global model);
//  * training-data volume;
//  * MLE-state vs posterior-mean prediction rule (Algorithm 1 uses MLE);
//  * median vs mean initial predictor (Eq. 6 uses the median).

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/engine.h"
#include "predictors/evaluation.h"
#include "util/table.h"

namespace {

using namespace cs2p;

struct Row {
  std::string label;
  double initial_error;
  double midstream_error;
  double fallback_rate;
};

Row run(const std::string& label, const Dataset& train, const Dataset& test,
        const Cs2pConfig& config, std::size_t max_sessions) {
  const Cs2pPredictorModel model(train, config);
  EvaluationOptions options;
  options.max_sessions = max_sessions;
  const PredictorEvaluation eval = evaluate_predictor(model, test, options);
  const EngineStats stats = model.engine().stats();
  return {label, eval.initial_median_error,
          eval.midstream_summary.median_of_medians,
          stats.sessions_served
              ? static_cast<double>(stats.global_fallbacks) / stats.sessions_served
              : 0.0};
}

}  // namespace

int main() {
  using namespace cs2p;
  auto [train, test] = bench::standard_dataset();
  const std::size_t kSessions = 700;
  std::vector<Row> rows;

  // Sweep 1: HMM state count.
  for (std::size_t n : {2, 4, 6, 8, 10}) {
    Cs2pConfig config;
    config.hmm.num_states = n;
    rows.push_back(run("N=" + std::to_string(n) + " states", train, test, config,
                       kSessions));
  }
  // Sweep 2: minimum cluster size.
  for (std::size_t size : {5, 10, 20, 50, 100}) {
    Cs2pConfig config;
    config.selector.min_cluster_size = size;
    rows.push_back(
        run("min cluster=" + std::to_string(size), train, test, config, kSessions));
  }
  // Sweep 3: training-data volume.
  for (double fraction : {0.25, 0.5, 1.0}) {
    Dataset subset;
    const auto target =
        static_cast<std::size_t>(fraction * static_cast<double>(train.size()));
    for (std::size_t i = 0; i < target; ++i) subset.add(train.sessions()[i]);
    Cs2pConfig config;
    rows.push_back(run("train x" + format_double(fraction, 2), subset, test, config,
                       kSessions));
  }
  // Ablation: prediction rule.
  {
    Cs2pConfig config;
    config.prediction_rule = PredictionRule::kPosteriorMean;
    rows.push_back(run("posterior-mean rule", train, test, config, kSessions));
  }
  // Ablation: mean instead of median initial predictor.
  {
    Cs2pConfig config;
    config.median_initial = false;
    rows.push_back(run("mean initial (Eq.6 ablation)", train, test, config,
                       kSessions));
  }

  std::printf("Sensitivity & ablations (§7.4): CS2P error vs configuration\n\n");
  TextTable table({"configuration", "initial median err", "midstream median err",
                   "global fallback"});
  for (const auto& row : rows) {
    table.add_row_numeric(row.label,
                          {row.initial_error, row.midstream_error, row.fallback_rate});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\npaper shape: flat optimum around N=6; moderate min-cluster "
              "size wins; more data helps; MLE-state and median-initial are "
              "the right defaults.\n");
  return 0;
}
