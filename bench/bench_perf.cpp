// §5.3 / §6 — performance microbenchmarks (google-benchmark).
//
// Paper claims to verify:
//  * online prediction is "two matrix multiplication operations" and takes
//    < 10 ms on a laptop (ours is ns-scale in C++);
//  * a trained HMM occupies < 5 KB;
//  * the deployed server sustains ~500 predictions/second (Node.js; our TCP
//    service does far more).
//
// The BM_Obs* group prices the telemetry layer (DESIGN.md §11). CI divides
// BM_ObsPerRequestInstrumentation by BM_TcpObserveRoundTrip and fails the
// build if the registry work a request triggers exceeds 2% of the request it
// decorates (measured ~0.1-0.3%: tens of ns against tens of µs).

#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>

#include "abr/mpc.h"
#include "bench/common.h"
#include "core/engine.h"
#include "dataset/synthetic.h"
#include "hmm/batch_filter.h"
#include "hmm/baum_welch.h"
#include "hmm/kernel.h"
#include "hmm/online_filter.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/player.h"

namespace {

using namespace cs2p;

/// Small world shared by the microbenches (built once).
struct PerfFixture {
  PerfFixture() {
    SyntheticConfig config = bench::standard_config();
    config.num_sessions = 4000;
    Dataset dataset = generate_synthetic_dataset(config);
    auto [tr, te] = dataset.split_by_day(1);
    train = std::move(tr);
    test = std::move(te);
    model = std::make_shared<Cs2pPredictorModel>(train);
    for (const auto& s : test.sessions()) {
      if (s.throughput_mbps.size() >= 40) {
        probe = &s;
        break;
      }
    }
  }
  Dataset train, test;
  std::shared_ptr<Cs2pPredictorModel> model;
  const Session* probe = nullptr;
};

PerfFixture& fixture() {
  static PerfFixture instance;
  return instance;
}

void BM_HmmPredict(benchmark::State& state) {
  auto& f = fixture();
  auto predictor = f.model->make_session(SessionContext::from(*f.probe));
  predictor->observe(f.probe->throughput_mbps[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor->predict(1));
  }
}
BENCHMARK(BM_HmmPredict);

void BM_HmmObserveAndPredict(benchmark::State& state) {
  auto& f = fixture();
  auto predictor = f.model->make_session(SessionContext::from(*f.probe));
  std::size_t t = 0;
  for (auto _ : state) {
    predictor->observe(f.probe->throughput_mbps[t % f.probe->throughput_mbps.size()]);
    benchmark::DoNotOptimize(predictor->predict(1));
    ++t;
  }
}
BENCHMARK(BM_HmmObserveAndPredict);

// -- Batched SIMD inference core (DESIGN.md §16) ------------------------------
// Single-core scalar vs batched kernel cost, by model size and batch width.
// The ObservePredict pair does one full serve step per session (observe +
// next-epoch predict); the Predict pair isolates the PREDICT-verb hot path,
// where batching shows its full amortization (no per-lane exp). items/s is
// predictions/s and per-predict ns is real_time/width. Reference numbers
// live in bench/baselines/kernel_batch.json — >= 4x at n=6 width 16 with
// CS2P_NATIVE_ARCH=ON on an AVX-512 host — and CI fails a >20% regression
// of the portable-build batched:scalar ratio.

/// Deterministic n-state model shaped like the paper's trained clusters:
/// sticky diagonal, spread means.
GaussianHmm kernel_bench_model(std::size_t n) {
  GaussianHmm model;
  model.initial.assign(n, 1.0 / static_cast<double>(n));
  model.transition = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      model.transition(i, j) =
          i == j ? 0.7 : 0.3 / static_cast<double>(n - 1);
  model.states.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    model.states[i].mean = 1.0 + 1.5 * static_cast<double>(i);
    model.states[i].sigma = 0.3 + 0.05 * static_cast<double>(i);
  }
  return model;
}

/// A short observation cycle hitting different states (kept out of the timed
/// loop; shared by the scalar and batched benches so the work matches).
std::vector<double> kernel_bench_stream(const GaussianHmm& model) {
  std::vector<double> stream;
  for (std::size_t i = 0; i < 8; ++i)
    stream.push_back(model.states[i % model.num_states()].mean * 1.04);
  return stream;
}

/// Scalar baseline: one session advanced + predicted per iteration — the
/// per-predict cost the serve path paid before batching.
void BM_KernelScalarObservePredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto kernel = HmmKernel::create(kernel_bench_model(n));
  const std::vector<double> stream = kernel_bench_stream(kernel->model());
  OnlineHmmFilter filter(kernel);
  std::size_t t = 0;
  for (auto _ : state) {
    filter.observe(stream[t % stream.size()]);
    benchmark::DoNotOptimize(filter.predict(1));
    ++t;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["predictions/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelScalarObservePredict)->Arg(4)->Arg(6)->Arg(8);

/// Batched: `width` kernel-sharing sessions advanced + predicted in one
/// state-matrix walk per call (hmm/batch_filter.h).
void BM_KernelBatchObservePredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto width = static_cast<std::size_t>(state.range(1));
  const auto kernel = HmmKernel::create(kernel_bench_model(n));
  const std::vector<double> stream = kernel_bench_stream(kernel->model());
  std::vector<OnlineHmmFilter> filters(width, OnlineHmmFilter(kernel));
  std::vector<OnlineHmmFilter*> lanes(width);
  std::vector<const OnlineHmmFilter*> const_lanes(width);
  for (std::size_t b = 0; b < width; ++b) {
    lanes[b] = &filters[b];
    const_lanes[b] = &filters[b];
  }
  std::vector<double> observations(width);
  std::vector<double> predictions(width);
  BatchHmmFilter batch;
  std::size_t t = 0;
  for (auto _ : state) {
    for (std::size_t b = 0; b < width; ++b)
      observations[b] = stream[(t + b) % stream.size()];
    batch.observe(*kernel, lanes, observations);
    batch.predict(*kernel, const_lanes, 1, predictions);
    benchmark::DoNotOptimize(predictions.data());
    benchmark::ClobberMemory();
    ++t;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * width));
  state.counters["predictions/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * width),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelBatchObservePredict)
    ->Args({6, 1})
    ->Args({6, 4})
    ->Args({6, 16})
    ->Args({6, 64})
    ->Args({4, 16})
    ->Args({8, 16});

/// Predict-only scalar: the PREDICT-verb hot path — belief · P^tau from the
/// kernel's cached powers, no emission exp. This is the per-request cost the
/// batch path amortizes.
void BM_KernelScalarPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto kernel = HmmKernel::create(kernel_bench_model(n));
  const std::vector<double> stream = kernel_bench_stream(kernel->model());
  OnlineHmmFilter filter(kernel);
  for (const double w : stream) filter.observe(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.predict(1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["predictions/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelScalarPredict)->Arg(4)->Arg(6)->Arg(8);

/// Predict-only batched: `width` lanes through one shared P^tau walk.
/// The headline acceptance ratio: per-predict ns here vs the scalar bench
/// above at the same model size, width >= 16.
void BM_KernelBatchPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto width = static_cast<std::size_t>(state.range(1));
  const auto kernel = HmmKernel::create(kernel_bench_model(n));
  const std::vector<double> stream = kernel_bench_stream(kernel->model());
  std::vector<OnlineHmmFilter> filters(width, OnlineHmmFilter(kernel));
  std::vector<const OnlineHmmFilter*> const_lanes(width);
  for (std::size_t b = 0; b < width; ++b) {
    for (std::size_t t = 0; t <= b % stream.size(); ++t)
      filters[b].observe(stream[(t + b) % stream.size()]);
    const_lanes[b] = &filters[b];
  }
  std::vector<double> predictions(width);
  BatchHmmFilter batch;
  for (auto _ : state) {
    batch.predict(*kernel, const_lanes, 1, predictions);
    benchmark::DoNotOptimize(predictions.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * width));
  state.counters["predictions/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * width),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelBatchPredict)
    ->Args({6, 1})
    ->Args({6, 4})
    ->Args({6, 16})
    ->Args({6, 64})
    ->Args({4, 16})
    ->Args({8, 16});

void BM_HmmTrainCluster(benchmark::State& state) {
  auto& f = fixture();
  std::vector<std::vector<double>> sequences;
  for (const auto& s : f.train.sessions()) {
    if (s.throughput_mbps.size() >= 10) sequences.push_back(s.throughput_mbps);
    if (sequences.size() == 40) break;
  }
  BaumWelchConfig config;
  config.num_states = static_cast<std::size_t>(state.range(0));
  config.max_iterations = 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(train_hmm(sequences, config));
  }
}
BENCHMARK(BM_HmmTrainCluster)->Arg(4)->Arg(6)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_EngineSessionLookup(benchmark::State& state) {
  auto& f = fixture();
  const Cs2pEngine& engine = f.model->engine();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.session_model(f.probe->features, f.probe->start_hour));
  }
}
BENCHMARK(BM_EngineSessionLookup);

void BM_MpcDecision(benchmark::State& state) {
  auto& f = fixture();
  auto predictor = f.model->make_session(SessionContext::from(*f.probe));
  predictor->observe(f.probe->throughput_mbps[0]);
  MpcController controller;
  VideoSpec video;
  AbrState abr_state;
  abr_state.chunk_index = 5;
  abr_state.buffer_seconds = 12.0;
  abr_state.last_bitrate_index = 2;
  abr_state.last_throughput_mbps = f.probe->throughput_mbps[0];
  abr_state.predictor = predictor.get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.select_bitrate(abr_state, video));
  }
}
BENCHMARK(BM_MpcDecision)->Unit(benchmark::kMicrosecond);

void BM_TcpObserveRoundTrip(benchmark::State& state) {
  auto& f = fixture();
  static PredictionServer server(f.model);
  static PredictionClient client(server.port());
  static const SessionResponse session =
      client.hello(f.probe->features, f.probe->start_hour);
  std::size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.observe(
        session.session_id,
        f.probe->throughput_mbps[t % f.probe->throughput_mbps.size()]));
    ++t;
  }
  state.counters["predictions/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TcpObserveRoundTrip)->Unit(benchmark::kMicrosecond);

/// Aggregate service throughput at N concurrent connections (§6: the
/// deployed engine's capacity story). Each benchmark thread is one
/// persistent client driving OBSERVE round trips against a shared server
/// serving the real CS2P model; requests/s is the aggregate rate across
/// all threads. Run at 1/8/64 to see how the serving core scales with
/// connection count (EXPERIMENTS.md records pre/post-refactor numbers).
void BM_ServerConcurrency(benchmark::State& state) {
  auto& f = fixture();
  static PredictionServer* server = [] {
    ServerConfig config;
    config.max_connections = 128;
    return new PredictionServer(fixture().model, config);
  }();
  PredictionClient client(server->port());
  const SessionResponse session =
      client.hello(f.probe->features, f.probe->start_hour);
  std::size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.observe(
        session.session_id,
        f.probe->throughput_mbps[t % f.probe->throughput_mbps.size()]));
    ++t;
  }
  client.bye(session.session_id);
  state.counters["requests/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServerConcurrency)
    ->Threads(1)
    ->Threads(8)
    ->Threads(64)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Goodput under overload (DESIGN.md §14): short sessions (HELLO, 8
/// OBSERVEs, BYE) from far more concurrent clients than the 2-worker server
/// is sized for. With admission control off every session is admitted and
/// they all contend; with shedding on, HELLOs past the utilization/queue
/// thresholds answer OVERLOADED (counted as `shed`, not goodput) and the
/// admitted sessions keep their latency. The claim EXPERIMENTS.md records:
/// the shedding server sustains >= 90% of its saturation goodput at ~2x
/// capacity, instead of collapsing.
void BM_GoodputUnderOverload(benchmark::State& state, bool shed) {
  auto& f = fixture();
  static PredictionServer* servers[2] = {nullptr, nullptr};
  static std::mutex init_mutex;
  {
    std::scoped_lock lock(init_mutex);
    if (servers[shed ? 1 : 0] == nullptr) {
      ServerConfig config;
      config.io_threads = 2;  // fixed capacity the client fleet overruns
      config.max_connections = 256;
      if (shed) {
        config.shed_utilization = 0.85;
        config.shed_pending_replies = 64;
        config.retry_after_ms = 5;
      }
      servers[shed ? 1 : 0] = new PredictionServer(fixture().model, config);
    }
  }
  PredictionServer& server = *servers[shed ? 1 : 0];
  PredictionClient client(server.port());
  std::uint64_t served = 0;
  std::uint64_t shed_hellos = 0;
  for (auto _ : state) {
    try {
      const SessionResponse session =
          client.hello(f.probe->features, f.probe->start_hour);
      for (int i = 0; i < 8; ++i)
        benchmark::DoNotOptimize(client.observe(
            session.session_id,
            f.probe->throughput_mbps[static_cast<std::size_t>(i) %
                                     f.probe->throughput_mbps.size()]));
      client.bye(session.session_id);
      served += 8;
    } catch (const ServerError&) {
      ++shed_hellos;  // admission refused with a retry-after hint
    }
  }
  state.counters["goodput/s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
  state.counters["shed_hellos"] = static_cast<double>(shed_hellos);
}
BENCHMARK_CAPTURE(BM_GoodputUnderOverload, shed_off, false)
    ->Threads(2)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_GoodputUnderOverload, shed_on, true)
    ->Threads(2)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ModelFootprint(benchmark::State& state) {
  auto& f = fixture();
  const SessionModelRef ref =
      f.model->engine().session_model(f.probe->features, f.probe->start_hour);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.hmm->byte_size());
  }
  state.counters["model_bytes"] = static_cast<double>(ref.hmm->byte_size());
  state.counters["serialized_bytes"] =
      static_cast<double>(serialize_hmm(*ref.hmm).size());
}
BENCHMARK(BM_ModelFootprint);

// -- Telemetry cost (DESIGN.md §11) ------------------------------------------

void BM_ObsCounterInc(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("bench_counter_total");
  for (auto _ : state) counter.inc();
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsCounterIncContended(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("bench_contended_total");
  for (auto _ : state) counter.inc();
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_ObsCounterIncContended)->Threads(8);

void BM_ObsHistogramObserve(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.histogram(
      "bench_latency_seconds", obs::default_latency_buckets_seconds());
  double sample = 1e-6;
  for (auto _ : state) {
    histogram.observe(sample);
    sample = sample < 1.0 ? sample * 1.7 : 1e-6;  // walk the buckets
  }
}
BENCHMARK(BM_ObsHistogramObserve);

/// Exactly the registry work one PRED request adds in net/server.cpp:
/// requests + per-verb + replies counters and the latency histogram. This is
/// the number CI holds under 2% of BM_TcpObserveRoundTrip.
void BM_ObsPerRequestInstrumentation(benchmark::State& state) {
  static obs::MetricsRegistry registry;
  obs::Counter& requests = registry.counter("bench_requests_total");
  obs::Counter& verb = registry.counter("bench_verb_requests_total",
                                        {{"verb", "observe"}});
  obs::Counter& replies = registry.counter("bench_replies_total");
  obs::Histogram& latency = registry.histogram(
      "bench_request_seconds", obs::default_latency_buckets_seconds());
  for (auto _ : state) {
    requests.inc();
    verb.inc();
    replies.inc();
    latency.observe(12e-6);
  }
}
BENCHMARK(BM_ObsPerRequestInstrumentation);

void BM_ObsTraceSampleDecision(benchmark::State& state) {
  std::uint64_t session_id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        obs::trace_sample_decision(0x5cb29e16u, 0.01, session_id++));
  }
}
BENCHMARK(BM_ObsTraceSampleDecision);

void BM_ObsRegistryScrape(benchmark::State& state) {
  static obs::MetricsRegistry& registry = []() -> obs::MetricsRegistry& {
    static obs::MetricsRegistry r;
    // Populate to roughly the series count of a live cs2p_serve.
    for (int i = 0; i < 24; ++i)
      r.counter("bench_family_" + std::to_string(i) + "_total").inc();
    for (int i = 0; i < 6; ++i)
      r.gauge("bench_gauge_" + std::to_string(i)).set(static_cast<double>(i));
    for (int i = 0; i < 4; ++i) {
      auto& h = r.histogram("bench_hist_" + std::to_string(i) + "_seconds",
                            obs::default_latency_buckets_seconds());
      for (int j = 0; j < 100; ++j) h.observe(1e-5 * j);
    }
    return r;
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.scrape());
  }
  state.counters["scrape_bytes"] =
      static_cast<double>(registry.scrape().size());
}
BENCHMARK(BM_ObsRegistryScrape)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
