// Fig 2 — midstream QoE vs throughput-prediction accuracy.
//
// Replicates the Yin et al. analysis the paper reproduces: drive MPC with a
// synthetically corrupted oracle whose relative prediction error is
// controlled, and plot normalized QoE against the error level; the
// buffer-based controller (which ignores predictions) is the flat reference
// line. Paper: "when the error is 20%, the n-QoE of MPC is close to optimal
// (> 85%)" and MPC degrades below BB as the error grows.

#include <cstdio>
#include <memory>
#include <vector>

#include "abr/controllers.h"
#include "abr/evaluation.h"
#include "abr/mpc.h"
#include "bench/common.h"
#include "predictors/predictor.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace cs2p;

/// Oracle corrupted with multiplicative error of controlled magnitude:
/// prediction = truth * (1 + e), e ~ U(-err, +err).
class NoisyOracleModel final : public PredictorModel {
 public:
  NoisyOracleModel(double relative_error, std::uint64_t seed)
      : relative_error_(relative_error), seed_(seed) {}

  std::string name() const override { return "NoisyOracle"; }

  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext& context) const override;

 private:
  double relative_error_;
  std::uint64_t seed_;
};

class NoisyOracleSession final : public SessionPredictor {
 public:
  NoisyOracleSession(std::vector<double> series, double relative_error,
                     std::uint64_t seed)
      : series_(std::move(series)), relative_error_(relative_error), rng_(seed) {}

  std::optional<double> predict_initial() const override {
    return series_.empty() ? std::optional<double>{} : corrupt(series_.front());
  }

  double predict(unsigned steps_ahead) const override {
    if (series_.empty()) return 0.0;
    const std::size_t target =
        std::min(position_ + std::max(1U, steps_ahead) - 1, series_.size() - 1);
    return corrupt(series_[target]);
  }

  void observe(double) override { ++position_; }

 private:
  double corrupt(double truth) const {
    return truth * (1.0 + rng_.uniform(-relative_error_, relative_error_));
  }

  std::vector<double> series_;
  double relative_error_;
  mutable Rng rng_;
  std::size_t position_ = 0;
};

std::unique_ptr<SessionPredictor> NoisyOracleModel::make_session(
    const SessionContext& context) const {
  if (context.oracle_series == nullptr)
    throw std::invalid_argument("NoisyOracleModel: needs the oracle series");
  return std::make_unique<NoisyOracleSession>(*context.oracle_series,
                                              relative_error_, seed_);
}

}  // namespace

int main() {
  using namespace cs2p;
  auto [train, test] = bench::standard_dataset();
  (void)train;

  AbrEvaluationOptions options;
  options.max_sessions = 120;
  options.min_trace_epochs = options.video.num_chunks;
  options.provide_oracle = true;

  const auto bb = [] { return std::make_unique<BufferBasedController>(); };
  const AbrEvaluation bb_eval = evaluate_abr("BB", nullptr, bb, test, options);

  std::printf("Fig 2: normalized QoE vs prediction error (MPC vs BB)\n\n");
  TextTable table({"rel. error", "MPC n-QoE (median)", "BB n-QoE (median)"});
  const std::vector<double> errors = {0.0, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0};
  for (double err : errors) {
    const NoisyOracleModel model(err, /*seed=*/97);
    const auto mpc = [] { return std::make_unique<MpcController>(); };
    const AbrEvaluation eval = evaluate_abr("MPC", &model, mpc, test, options);
    table.add_row_numeric(format_double(err, 1),
                          {eval.median_n_qoe, bb_eval.median_n_qoe});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\npaper shape: MPC > 0.85 n-QoE at <= 20%% error, dipping below "
              "BB as the error grows large.\n");
  return 0;
}
