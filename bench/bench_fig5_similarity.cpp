// Fig 5 — sessions with the same key features have similar throughput.
//
// 5a: example "close neighbour" session pairs (same ground-truth cluster)
//     vs a random pair: correlation of their average levels.
// 5b: CDFs of initial throughput for three large clusters — within a
//     cluster initial throughput concentrates, across clusters it differs.
//     Paper: "65% sessions in Cluster A have throughput around 2 Mbps...
//     over 40% of sessions in Cluster B with throughput 6 Mbps."

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/common.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace cs2p;
  Dataset dataset = generate_synthetic_dataset(bench::standard_config_scaled());

  // Group sessions by full feature tuple (the ground-truth cluster).
  std::map<std::string, std::vector<const Session*>> clusters;
  for (const auto& s : dataset.sessions()) {
    if (s.throughput_mbps.empty()) continue;
    clusters[feature_key(s.features, kAllFeaturesMask)].push_back(&s);
  }

  // The three largest clusters.
  std::vector<std::pair<std::size_t, std::string>> sized;
  for (const auto& [key, sessions] : clusters)
    sized.emplace_back(sessions.size(), key);
  std::sort(sized.rbegin(), sized.rend());

  std::printf("Fig 5a: within-cluster vs cross-cluster throughput spread\n\n");
  // Within a cluster, session averages concentrate (low relative IQR);
  // across clusters, medians differ by large factors.
  TextTable spread({"cluster", "n", "median avg (Mbps)", "IQR/median"});
  std::vector<double> cluster_medians;
  for (std::size_t c = 0; c < 5 && c < sized.size(); ++c) {
    std::vector<double> averages;
    for (const Session* s : clusters[sized[c].second])
      averages.push_back(s->average_throughput());
    const double med = median(averages);
    const double iqr = quantile(averages, 0.75) - quantile(averages, 0.25);
    cluster_medians.push_back(med);
    spread.add_row({"cluster-" + std::to_string(c), std::to_string(averages.size()),
                    format_double(med, 2), format_double(med > 0 ? iqr / med : 0, 2)});
  }
  std::fputs(spread.to_string().c_str(), stdout);
  const double cross_spread =
      cluster_medians.empty() || median(cluster_medians) == 0.0
          ? 0.0
          : (quantile(cluster_medians, 1.0) - quantile(cluster_medians, 0.0)) /
                median(cluster_medians);
  std::printf("cross-cluster median spread (range/median): %.2f — sessions in "
              "the same cluster are far more alike than across clusters\n",
              cross_spread);

  std::printf("\nFig 5b: CDF of initial throughput, three largest clusters\n\n");
  TextTable cdf({"percentile", "Cluster A", "Cluster B", "Cluster C"});
  std::vector<std::vector<double>> initials(3);
  for (std::size_t c = 0; c < 3 && c < sized.size(); ++c) {
    for (const Session* s : clusters[sized[c].second])
      initials[c].push_back(s->initial_throughput());
  }
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    cdf.add_row_numeric(format_double(q, 2),
                        {quantile(initials[0], q), quantile(initials[1], q),
                         quantile(initials[2], q)});
  }
  std::fputs(cdf.to_string().c_str(), stdout);
  for (std::size_t c = 0; c < 3 && c < sized.size(); ++c) {
    const double med = median(initials[c]);
    const double within_25pct =
        ecdf(initials[c], med * 1.25) - ecdf(initials[c], med * 0.75);
    std::printf("cluster %c: n=%zu, %.0f%% of sessions within +/-25%% of the "
                "cluster median\n",
                static_cast<char>('A' + c), initials[c].size(),
                100.0 * within_25pct);
  }
  return 0;
}
