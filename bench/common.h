// Shared configuration of the benchmark harness.
//
// Every bench binary reproduces one table/figure of the paper on the same
// "standard world": a scale model of the iQiyi dataset dense enough that
// session clusters at the (ISP, City, Server, Prefix) granularity hold
// dozens-to-hundreds of training sessions, as the paper's 20M-session
// dataset does at its clustering granularity. Day 0 trains, day 1 tests
// (§7.1). Everything is deterministic from the seeds below.
#pragma once

#include <cstdlib>
#include <utility>

#include "dataset/synthetic.h"

namespace cs2p::bench {

/// World used by all accuracy/QoE benches.
inline SyntheticConfig standard_config() {
  SyntheticConfig config;
  config.num_isps = 6;
  config.num_provinces = 8;
  config.cities_per_province = 3;
  config.num_servers = 12;
  config.servers_per_province = 2;
  config.prefixes_per_isp_city = 2;
  config.num_sessions = 16000;
  config.days = 2;
  config.seed = 2016;  // SIGCOMM'16
  return config;
}

/// Reads CS2P_BENCH_SESSIONS to scale runs up/down without recompiling.
inline SyntheticConfig standard_config_scaled() {
  SyntheticConfig config = standard_config();
  if (const char* env = std::getenv("CS2P_BENCH_SESSIONS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) config.num_sessions = static_cast<std::size_t>(n);
  }
  return config;
}

struct TrainTest {
  Dataset train;
  Dataset test;
};

inline TrainTest standard_dataset() {
  Dataset dataset = generate_synthetic_dataset(standard_config_scaled());
  auto [train, test] = dataset.split_by_day(1);
  return {std::move(train), std::move(test)};
}

}  // namespace cs2p::bench
