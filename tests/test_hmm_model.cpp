// Tests for the Gaussian HMM model type (hmm/model.h).

#include "hmm/model.h"

#include <gtest/gtest.h>

#include "hmm_test_util.h"
#include "util/gaussian.h"

namespace cs2p {
namespace {

using testing_support::two_state_model;

TEST(HmmModel, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(two_state_model().validate());
}

TEST(HmmModel, ValidateRejectsEmptyModel) {
  GaussianHmm model;
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(HmmModel, ValidateRejectsNonStochasticInitial) {
  GaussianHmm model = two_state_model();
  model.initial = {0.6, 0.6};
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(HmmModel, ValidateRejectsNegativeProbabilities) {
  GaussianHmm model = two_state_model();
  model.transition(0, 0) = 1.1;
  model.transition(0, 1) = -0.1;
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(HmmModel, ValidateRejectsShapeMismatch) {
  GaussianHmm model = two_state_model();
  model.initial.push_back(0.0);
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(HmmModel, ValidateRejectsBadSigma) {
  GaussianHmm model = two_state_model();
  model.states[0].sigma = 0.0;
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(HmmModel, EmissionVectorMatchesPdf) {
  const GaussianHmm model = two_state_model();
  const Vec e = model.emission_probabilities(1.0);
  ASSERT_EQ(e.size(), 2u);
  EXPECT_DOUBLE_EQ(e[0], gaussian_pdf(1.0, 1.0, 0.1));
  EXPECT_DOUBLE_EQ(e[1], gaussian_pdf(1.0, 5.0, 0.5));
}

TEST(HmmModel, LogEmissionConsistent) {
  const GaussianHmm model = two_state_model();
  const Vec e = model.emission_probabilities(2.0);
  const Vec log_e = model.emission_log_probabilities(2.0);
  for (std::size_t i = 0; i < e.size(); ++i)
    EXPECT_NEAR(std::exp(log_e[i]), e[i], 1e-12);
}

TEST(HmmModel, ByteSizeUnder5KB) {
  // The paper's §5.3 footprint claim: even a 16-state model is < 5 KB.
  GaussianHmm model;
  const std::size_t n = 16;
  model.initial.assign(n, 1.0 / n);
  model.transition = Matrix(n, n, 1.0 / n);
  model.states.assign(n, {1.0, 0.1});
  EXPECT_LT(model.byte_size(), 5u * 1024u);
}

TEST(HmmModel, SerializeRoundTrip) {
  const GaussianHmm model = testing_support::three_state_model();
  const GaussianHmm restored = deserialize_hmm(serialize_hmm(model));
  ASSERT_EQ(restored.num_states(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(restored.initial[i], model.initial[i]);
    EXPECT_DOUBLE_EQ(restored.states[i].mean, model.states[i].mean);
    EXPECT_DOUBLE_EQ(restored.states[i].sigma, model.states[i].sigma);
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(restored.transition(i, j), model.transition(i, j));
  }
}

TEST(HmmModel, DeserializeRejectsGarbage) {
  EXPECT_THROW(deserialize_hmm("not-a-model"), std::runtime_error);
  EXPECT_THROW(deserialize_hmm("cs2p-hmm-v1 0\n"), std::runtime_error);
  EXPECT_THROW(deserialize_hmm("cs2p-hmm-v1 2\ninitial 0.5"), std::runtime_error);
}

TEST(HmmModel, SerializedSizeUnder5KB) {
  const std::string text = serialize_hmm(testing_support::three_state_model());
  EXPECT_LT(text.size(), 5u * 1024u);
}

TEST(HmmModel, StationaryDistributionFixedPoint) {
  const GaussianHmm model = two_state_model();
  const Vec pi = model.stationary_distribution();
  const Vec next = vec_mat(pi, model.transition);
  ASSERT_EQ(pi.size(), 2u);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-9);
  EXPECT_NEAR(pi[0], next[0], 1e-9);
  // Analytic stationary of {{0.9,0.1},{0.2,0.8}} is (2/3, 1/3).
  EXPECT_NEAR(pi[0], 2.0 / 3.0, 1e-6);
}

}  // namespace
}  // namespace cs2p
