// Tests for the Gaussian HMM model type (hmm/model.h).

#include "hmm/model.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "hmm_test_util.h"
#include "util/gaussian.h"

namespace cs2p {
namespace {

using testing_support::two_state_model;

TEST(HmmModel, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(two_state_model().validate());
}

TEST(HmmModel, ValidateRejectsEmptyModel) {
  GaussianHmm model;
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(HmmModel, ValidateRejectsNonStochasticInitial) {
  GaussianHmm model = two_state_model();
  model.initial = {0.6, 0.6};
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(HmmModel, ValidateRejectsNegativeProbabilities) {
  GaussianHmm model = two_state_model();
  model.transition(0, 0) = 1.1;
  model.transition(0, 1) = -0.1;
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(HmmModel, ValidateRejectsShapeMismatch) {
  GaussianHmm model = two_state_model();
  model.initial.push_back(0.0);
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(HmmModel, ValidateRejectsBadSigma) {
  GaussianHmm model = two_state_model();
  model.states[0].sigma = 0.0;
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(HmmModel, EmissionVectorMatchesPdf) {
  const GaussianHmm model = two_state_model();
  const Vec e = model.emission_probabilities(1.0);
  ASSERT_EQ(e.size(), 2u);
  EXPECT_DOUBLE_EQ(e[0], gaussian_pdf(1.0, 1.0, 0.1));
  EXPECT_DOUBLE_EQ(e[1], gaussian_pdf(1.0, 5.0, 0.5));
}

TEST(HmmModel, LogEmissionConsistent) {
  const GaussianHmm model = two_state_model();
  const Vec e = model.emission_probabilities(2.0);
  const Vec log_e = model.emission_log_probabilities(2.0);
  for (std::size_t i = 0; i < e.size(); ++i)
    EXPECT_NEAR(std::exp(log_e[i]), e[i], 1e-12);
}

TEST(HmmModel, ByteSizeUnder5KB) {
  // The paper's §5.3 footprint claim: even a 16-state model is < 5 KB.
  GaussianHmm model;
  const std::size_t n = 16;
  model.initial.assign(n, 1.0 / n);
  model.transition = Matrix(n, n, 1.0 / n);
  model.states.assign(n, {1.0, 0.1});
  EXPECT_LT(model.byte_size(), 5u * 1024u);
}

TEST(HmmModel, SerializeRoundTrip) {
  const GaussianHmm model = testing_support::three_state_model();
  const GaussianHmm restored = deserialize_hmm(serialize_hmm(model));
  ASSERT_EQ(restored.num_states(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(restored.initial[i], model.initial[i]);
    EXPECT_DOUBLE_EQ(restored.states[i].mean, model.states[i].mean);
    EXPECT_DOUBLE_EQ(restored.states[i].sigma, model.states[i].sigma);
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(restored.transition(i, j), model.transition(i, j));
  }
}

TEST(HmmModel, DeserializeRejectsGarbage) {
  EXPECT_THROW(deserialize_hmm("not-a-model"), ModelParseError);
  EXPECT_THROW(deserialize_hmm("cs2p-hmm-v1 0\n"), ModelParseError);
  EXPECT_THROW(deserialize_hmm("cs2p-hmm-v1 2\ninitial 0.5"), ModelParseError);
}

TEST(HmmModel, DeserializeRejectsAbsurdStateCount) {
  // A snapshot-sized allocation must not be attacker/corruption controlled:
  // state counts beyond kMaxHmmStates are rejected before any resize.
  EXPECT_THROW(deserialize_hmm("cs2p-hmm-v1 99999999\n"), ModelParseError);
  EXPECT_THROW(
      deserialize_hmm("cs2p-hmm-v1 " + std::to_string(kMaxHmmStates + 1) + "\n"),
      ModelParseError);
}

TEST(HmmModel, DeserializeRejectsNonFiniteParameters) {
  // NaN/Inf survive serialization as text but must never survive
  // deserialization: either the number parse or validate() rejects them.
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    GaussianHmm nan_initial = two_state_model();
    nan_initial.initial[0] = bad;
    EXPECT_THROW(deserialize_hmm(serialize_hmm(nan_initial)), ModelParseError);

    GaussianHmm nan_transition = two_state_model();
    nan_transition.transition(1, 1) = bad;
    EXPECT_THROW(deserialize_hmm(serialize_hmm(nan_transition)),
                 ModelParseError);

    GaussianHmm nan_mean = two_state_model();
    nan_mean.states[0].mean = bad;
    EXPECT_THROW(deserialize_hmm(serialize_hmm(nan_mean)), ModelParseError);
  }
}

TEST(HmmModel, DeserializeRejectsNonStochasticRows) {
  GaussianHmm broken_row = two_state_model();
  broken_row.transition(0, 0) = 0.5;  // row 0 now sums to 0.6
  EXPECT_THROW(deserialize_hmm(serialize_hmm(broken_row)), ModelParseError);

  GaussianHmm broken_initial = two_state_model();
  broken_initial.initial = {0.2, 0.2};
  EXPECT_THROW(deserialize_hmm(serialize_hmm(broken_initial)), ModelParseError);

  GaussianHmm negative_prob = two_state_model();
  negative_prob.transition(0, 0) = 1.0;
  negative_prob.transition(0, 1) = -0.1;  // sums to 0.9... and is negative
  EXPECT_THROW(deserialize_hmm(serialize_hmm(negative_prob)), ModelParseError);
}

TEST(HmmModel, DeserializeRejectsNonPositiveSigma) {
  for (const double bad : {0.0, -0.25}) {
    GaussianHmm model = two_state_model();
    model.states[1].sigma = bad;
    EXPECT_THROW(deserialize_hmm(serialize_hmm(model)), ModelParseError);
  }
}

TEST(HmmModel, ValidateRejectsNonFiniteProbabilities) {
  // Regression guard: NaN fails every comparison, so a tolerance check like
  // |sum - 1| > tol is silently false for NaN rows. validate() must test
  // finiteness explicitly.
  GaussianHmm model = two_state_model();
  model.initial[0] = std::numeric_limits<double>::quiet_NaN();
  model.initial[1] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(model.validate(), std::invalid_argument);

  model = two_state_model();
  model.transition(0, 0) = std::numeric_limits<double>::quiet_NaN();
  model.transition(0, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(HmmModel, SerializedSizeUnder5KB) {
  const std::string text = serialize_hmm(testing_support::three_state_model());
  EXPECT_LT(text.size(), 5u * 1024u);
}

TEST(HmmModel, StationaryDistributionFixedPoint) {
  const GaussianHmm model = two_state_model();
  const Vec pi = model.stationary_distribution();
  const Vec next = vec_mat(pi, model.transition);
  ASSERT_EQ(pi.size(), 2u);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-9);
  EXPECT_NEAR(pi[0], next[0], 1e-9);
  // Analytic stationary of {{0.9,0.1},{0.2,0.8}} is (2/3, 1/3).
  EXPECT_NEAR(pi[0], 2.0 / 3.0, 1e-6);
}

}  // namespace
}  // namespace cs2p
