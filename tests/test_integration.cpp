// End-to-end integration tests: generate -> train -> predict -> adapt,
// asserting the paper's qualitative results hold on a small world.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "abr/controllers.h"
#include "abr/evaluation.h"
#include "abr/mpc.h"
#include "core/engine.h"
#include "dataset/synthetic.h"
#include "predictors/evaluation.h"
#include "predictors/history.h"
#include "predictors/simple_cross.h"
#include "net/client.h"
#include "net/server.h"
#include "predictors/hmm_session.h"
#include "predictors/oracle.h"

namespace cs2p {
namespace {

/// One shared small world for the whole suite (built once: training the
/// engine is the expensive part).
struct World {
  World() {
    SyntheticConfig config;
    config.num_isps = 4;
    config.num_provinces = 4;
    config.cities_per_province = 2;
    config.num_servers = 6;
    config.servers_per_province = 2;
    config.prefixes_per_isp_city = 1;
    config.num_sessions = 6000;
    config.seed = 1234;
    Dataset dataset = generate_synthetic_dataset(config);
    auto [tr, te] = dataset.split_by_day(1);
    train = std::move(tr);
    test = std::move(te);

    Cs2pConfig engine_config;
    engine_config.hmm.max_iterations = 25;
    cs2p = std::make_unique<Cs2pPredictorModel>(train, engine_config);
    hm = std::make_unique<HarmonicMeanModel>();
  }
  Dataset train, test;
  std::unique_ptr<Cs2pPredictorModel> cs2p;
  std::unique_ptr<HarmonicMeanModel> hm;
};

World& world() {
  static World instance;
  return instance;
}

TEST(Integration, Cs2pBeatsHarmonicMeanMidstream) {
  EvaluationOptions options;
  options.max_sessions = 400;
  const auto cs2p_eval = evaluate_predictor(*world().cs2p, world().test, options);
  const auto hm_eval = evaluate_predictor(*world().hm, world().test, options);
  EXPECT_LT(cs2p_eval.midstream_summary.median_of_medians,
            hm_eval.midstream_summary.median_of_medians);
}

TEST(Integration, Cs2pInitialBeatsGlobalMedian) {
  EvaluationOptions options;
  options.max_sessions = 400;
  const GlobalMedianModel global(world().train);
  const auto cs2p_eval = evaluate_predictor(*world().cs2p, world().test, options);
  const auto global_eval = evaluate_predictor(global, world().test, options);
  EXPECT_LT(cs2p_eval.initial_median_error, global_eval.initial_median_error);
}

TEST(Integration, MostSessionsGetClusterModels) {
  const EngineStats stats = world().cs2p->engine().stats();
  ASSERT_GT(stats.sessions_served, 0u);
  const double fallback_rate =
      static_cast<double>(stats.global_fallbacks) /
      static_cast<double>(stats.sessions_served);
  EXPECT_LT(fallback_rate, 0.35);  // paper: ~4% on a vastly larger dataset
}

TEST(Integration, OracleMpcUpperBoundsCs2pMpc) {
  AbrEvaluationOptions options;
  options.max_sessions = 40;
  options.min_trace_epochs = options.video.num_chunks;

  MpcConfig mpc_config;
  mpc_config.robust = true;
  const auto mpc = [&] { return std::make_unique<MpcController>(mpc_config); };

  const OracleModel oracle;
  AbrEvaluationOptions oracle_options = options;
  oracle_options.provide_oracle = true;
  const auto oracle_eval =
      evaluate_abr("oracle", &oracle, mpc, world().test, oracle_options);
  const auto cs2p_eval =
      evaluate_abr("cs2p", world().cs2p.get(), mpc, world().test, options);
  EXPECT_GE(oracle_eval.median_n_qoe + 0.02, cs2p_eval.median_n_qoe);
  EXPECT_GT(oracle_eval.median_n_qoe, 0.85);  // near-optimal with truth
}

TEST(Integration, Cs2pMpcBeatsPredictionFreeBaselines) {
  AbrEvaluationOptions options;
  options.max_sessions = 60;
  options.min_trace_epochs = options.video.num_chunks;

  MpcConfig mpc_config;
  mpc_config.robust = true;
  const auto mpc = [&] { return std::make_unique<MpcController>(mpc_config); };
  const auto bb = [] { return std::make_unique<BufferBasedController>(); };

  const auto cs2p_eval =
      evaluate_abr("cs2p", world().cs2p.get(), mpc, world().test, options);
  const auto bb_eval = evaluate_abr("bb", nullptr, bb, world().test, options);
  EXPECT_GT(cs2p_eval.median_n_qoe, bb_eval.median_n_qoe);
}

TEST(Integration, DatasetRoundTripPreservesEvaluation) {
  // Save/load the test set and verify a predictor scores identically.
  const std::string path = ::testing::TempDir() + "/cs2p_roundtrip.csv";
  Dataset subset;
  for (std::size_t i = 0; i < 50 && i < world().test.size(); ++i)
    subset.add(world().test.sessions()[i]);
  subset.save_csv(path);
  const Dataset loaded = Dataset::load_csv(path);

  EvaluationOptions options;
  const auto a = evaluate_predictor(*world().hm, subset, options);
  const auto b = evaluate_predictor(*world().hm, loaded, options);
  EXPECT_DOUBLE_EQ(a.midstream_summary.median_of_medians,
                   b.midstream_summary.median_of_medians);
  std::remove(path.c_str());
}

TEST(Integration, ClientSideModelMatchesServerSide) {
  // §5.3 decentralized mode: a client that downloads the compact model and
  // runs it locally must produce exactly the predictions the server-side
  // session would.
  PredictionServer server(
      std::shared_ptr<const PredictorModel>(world().cs2p.get(),
                                            [](const PredictorModel*) {}));
  PredictionClient client(server.port());

  const Session& probe = world().test.sessions()[0];
  const DownloadableModel downloaded =
      client.download_model(probe.features, probe.start_hour);
  EXPECT_LT(downloaded.hmm.byte_size(), 5u * 1024u);  // §5.3 footprint
  HmmSessionPredictor local(downloaded.hmm, downloaded.initial_mbps);

  const SessionResponse remote = client.hello(probe.features, probe.start_hour);
  EXPECT_DOUBLE_EQ(local.predict_initial().value(), remote.initial_mbps);
  for (std::size_t t = 0; t < 10 && t < probe.throughput_mbps.size(); ++t) {
    const double server_forecast =
        client.observe(remote.session_id, probe.throughput_mbps[t]);
    local.observe(probe.throughput_mbps[t]);
    EXPECT_NEAR(local.predict(1), server_forecast, 1e-9) << "epoch " << t;
  }
  client.bye(remote.session_id);
}

TEST(Integration, EngineStatsAccumulate) {
  const EngineStats before = world().cs2p->engine().stats();
  (void)world().cs2p->make_session(SessionContext::from(world().test.sessions()[0]));
  const EngineStats after = world().cs2p->engine().stats();
  EXPECT_EQ(after.sessions_served, before.sessions_served + 1);
}

}  // namespace
}  // namespace cs2p
