// Tests for the QoE sweep harness (abr/evaluation.h).

#include "abr/evaluation.h"

#include <gtest/gtest.h>

#include "abr/controllers.h"
#include "abr/mpc.h"
#include "predictors/oracle.h"

namespace cs2p {
namespace {

Session make_session(std::int64_t id, std::vector<double> series) {
  Session s;
  s.id = id;
  s.features = {"I", "A", "P", "C", "S", "X"};
  s.throughput_mbps = std::move(series);
  return s;
}

Dataset playable_dataset(std::size_t sessions, std::size_t epochs, double mbps) {
  Dataset d;
  for (std::size_t i = 0; i < sessions; ++i)
    d.add(make_session(static_cast<std::int64_t>(i),
                       std::vector<double>(epochs, mbps)));
  return d;
}

AbrEvaluationOptions small_options() {
  AbrEvaluationOptions options;
  options.video.num_chunks = 10;
  options.min_trace_epochs = 10;
  return options;
}

TEST(AbrEvaluation, OracleMpcIsNearOptimalOnConstantTraces) {
  const Dataset test = playable_dataset(5, 12, 2.4);
  const OracleModel oracle;
  AbrEvaluationOptions options = small_options();
  options.provide_oracle = true;
  const auto mpc = [] { return std::make_unique<MpcController>(); };
  const AbrEvaluation eval = evaluate_abr("oracle", &oracle, mpc, test, options);
  ASSERT_EQ(eval.outcomes.size(), 5u);
  // Not ~1.0 even with a perfect forecast: on a short clip the offline
  // optimum banks buffer midway and spends it riding the top rung at the
  // end of the video, which a 5-chunk-lookahead MPC cannot see. ~0.9 is
  // the structural gap, not noise.
  EXPECT_GT(eval.median_n_qoe, 0.85);
  for (const auto& outcome : eval.outcomes) {
    EXPECT_LE(outcome.qoe, outcome.optimal_qoe + 1.0);  // optimal dominates
    EXPECT_GE(outcome.normalized_qoe, 0.0);
  }
}

TEST(AbrEvaluation, SkipsShortSessions) {
  Dataset test;
  test.add(make_session(1, std::vector<double>(3, 2.0)));   // too short
  test.add(make_session(2, std::vector<double>(12, 2.0)));  // eligible
  const auto bb = [] { return std::make_unique<BufferBasedController>(); };
  const AbrEvaluation eval =
      evaluate_abr("bb", nullptr, bb, test, small_options());
  EXPECT_EQ(eval.outcomes.size(), 1u);
}

TEST(AbrEvaluation, SkipsUnplayableSessions) {
  Dataset test;
  test.add(make_session(1, std::vector<double>(12, 0.1)));  // below the ladder
  test.add(make_session(2, std::vector<double>(12, 2.0)));
  const auto bb = [] { return std::make_unique<BufferBasedController>(); };
  const AbrEvaluation eval =
      evaluate_abr("bb", nullptr, bb, test, small_options());
  EXPECT_EQ(eval.outcomes.size(), 1u);
}

TEST(AbrEvaluation, MaxSessionsCaps) {
  const Dataset test = playable_dataset(8, 12, 2.0);
  AbrEvaluationOptions options = small_options();
  options.max_sessions = 3;
  const auto bb = [] { return std::make_unique<BufferBasedController>(); };
  const AbrEvaluation eval = evaluate_abr("bb", nullptr, bb, test, options);
  EXPECT_EQ(eval.outcomes.size(), 3u);
}

TEST(AbrEvaluation, AggregatesMatchOutcomes) {
  const Dataset test = playable_dataset(4, 12, 2.0);
  const auto bb = [] { return std::make_unique<BufferBasedController>(); };
  const AbrEvaluation eval =
      evaluate_abr("bb", nullptr, bb, test, small_options());
  double bitrate_sum = 0.0;
  for (const auto& outcome : eval.outcomes)
    bitrate_sum += outcome.breakdown.avg_bitrate_kbps;
  EXPECT_NEAR(eval.avg_bitrate_kbps,
              bitrate_sum / static_cast<double>(eval.outcomes.size()), 1e-9);
  EXPECT_EQ(eval.label, "bb");
}

TEST(AbrEvaluation, GoodRatioIsOneWithoutStalls) {
  // Plenty of bandwidth for the lowest rungs: BB never stalls.
  const Dataset test = playable_dataset(3, 12, 50.0);
  const auto bb = [] { return std::make_unique<BufferBasedController>(); };
  const AbrEvaluation eval =
      evaluate_abr("bb", nullptr, bb, test, small_options());
  EXPECT_DOUBLE_EQ(eval.good_ratio, 1.0);
  EXPECT_DOUBLE_EQ(eval.mean_rebuffer_seconds, 0.0);
}

}  // namespace
}  // namespace cs2p
