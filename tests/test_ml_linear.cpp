// Tests for the linear algebra solvers (ml/linear.h).

#include "ml/linear.h"

#include <gtest/gtest.h>

namespace cs2p {
namespace {

TEST(Dot, BasicAndErrors) {
  const Vec a = {1.0, 2.0, 3.0};
  const Vec b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_THROW(dot(a, Vec{1.0}), std::invalid_argument);
}

TEST(SolveLinearSystem, KnownSolution) {
  // 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vec b = {5.0, 10.0};
  const Vec x = solve_linear_system(a, b);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, NeedsPivoting) {
  // A zero on the diagonal forces a row swap.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vec b = {2.0, 3.0};
  const Vec x = solve_linear_system(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinearSystem, SingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const Vec b = {1.0, 2.0};
  EXPECT_THROW(solve_linear_system(a, b), std::runtime_error);
}

TEST(SolveLinearSystem, ShapeMismatchThrows) {
  EXPECT_THROW(solve_linear_system(Matrix(2, 3), Vec{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(solve_linear_system(Matrix(2, 2), Vec{1.0}), std::invalid_argument);
}

TEST(RidgeRegression, ExactFitWithoutRegularization) {
  // y = 2 x1 - x2 + 3 (intercept as a constant 1 feature).
  std::vector<Vec> rows;
  std::vector<double> y;
  for (double x1 : {0.0, 1.0, 2.0, 3.0}) {
    for (double x2 : {0.0, 1.0, 2.0}) {
      rows.push_back({x1, x2, 1.0});
      y.push_back(2.0 * x1 - x2 + 3.0);
    }
  }
  const Vec w = ridge_regression(rows, y, 0.0);
  EXPECT_NEAR(w[0], 2.0, 1e-9);
  EXPECT_NEAR(w[1], -1.0, 1e-9);
  EXPECT_NEAR(w[2], 3.0, 1e-9);
}

TEST(RidgeRegression, RegularizationShrinksWeights) {
  std::vector<Vec> rows = {{1.0}, {2.0}, {3.0}};
  std::vector<double> y = {2.0, 4.0, 6.0};
  const Vec exact = ridge_regression(rows, y, 0.0);
  const Vec shrunk = ridge_regression(rows, y, 10.0);
  EXPECT_NEAR(exact[0], 2.0, 1e-9);
  EXPECT_LT(shrunk[0], exact[0]);
  EXPECT_GT(shrunk[0], 0.0);
}

TEST(RidgeRegression, HandlesCollinearFeaturesWithRegularization) {
  // Duplicate features: singular without lambda, solvable with it.
  std::vector<Vec> rows = {{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_THROW(ridge_regression(rows, y, 0.0), std::runtime_error);
  const Vec w = ridge_regression(rows, y, 1e-3);
  EXPECT_NEAR(w[0], w[1], 1e-9);  // symmetric split
}

TEST(RidgeRegression, ErrorPaths) {
  EXPECT_THROW(ridge_regression({}, {}, 0.0), std::invalid_argument);
  EXPECT_THROW(ridge_regression({{1.0}}, std::vector<double>{1.0, 2.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ridge_regression({{1.0}, {1.0, 2.0}}, std::vector<double>{1.0, 2.0},
                                0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cs2p
