// Tests for the session schema and dataset container (dataset/).

#include "dataset/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace cs2p {
namespace {

Session make_session(std::int64_t id, int day, std::vector<double> series) {
  Session s;
  s.id = id;
  s.day = day;
  s.start_hour = 12.0;
  s.features = {"ISP0", "AS1", "Province2", "City2-1", "Server3", "Pfx7"};
  s.throughput_mbps = std::move(series);
  return s;
}

TEST(SessionSchema, FeatureValueAccessor) {
  const SessionFeatures f = {"isp", "as", "prov", "city", "srv", "pfx"};
  EXPECT_EQ(f.value(FeatureId::kIsp), "isp");
  EXPECT_EQ(f.value(FeatureId::kAs), "as");
  EXPECT_EQ(f.value(FeatureId::kProvince), "prov");
  EXPECT_EQ(f.value(FeatureId::kCity), "city");
  EXPECT_EQ(f.value(FeatureId::kServer), "srv");
  EXPECT_EQ(f.value(FeatureId::kClientPrefix), "pfx");
}

TEST(SessionSchema, FeatureNames) {
  EXPECT_EQ(feature_name(FeatureId::kIsp), "ISP");
  EXPECT_EQ(feature_name(FeatureId::kClientPrefix), "ClientPrefix");
}

TEST(SessionSchema, MaskHelpers) {
  const FeatureMask mask =
      (1U << static_cast<unsigned>(FeatureId::kIsp)) |
      (1U << static_cast<unsigned>(FeatureId::kCity));
  EXPECT_TRUE(mask_contains(mask, FeatureId::kIsp));
  EXPECT_FALSE(mask_contains(mask, FeatureId::kServer));
  EXPECT_EQ(mask_to_string(mask), "ISP+City");
  EXPECT_EQ(mask_to_string(0), "(global)");
}

TEST(SessionSchema, FeatureKeyDependsOnlyOnSelectedFeatures) {
  SessionFeatures a = {"isp", "as", "prov", "city", "srv", "pfx"};
  SessionFeatures b = a;
  b.server = "other-server";
  const FeatureMask isp_city =
      (1U << static_cast<unsigned>(FeatureId::kIsp)) |
      (1U << static_cast<unsigned>(FeatureId::kCity));
  EXPECT_EQ(feature_key(a, isp_city), feature_key(b, isp_city));
  EXPECT_NE(feature_key(a, kAllFeaturesMask), feature_key(b, kAllFeaturesMask));
}

TEST(SessionSchema, SessionDerivedQuantities) {
  const Session s = make_session(1, 0, {2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(s.duration_seconds(), 18.0);
  EXPECT_DOUBLE_EQ(s.initial_throughput(), 2.0);
  EXPECT_DOUBLE_EQ(s.average_throughput(), 4.0);
  EXPECT_DOUBLE_EQ(s.start_time_hours(), 12.0);
  const Session empty = make_session(2, 1, {});
  EXPECT_DOUBLE_EQ(empty.initial_throughput(), 0.0);
  EXPECT_DOUBLE_EQ(empty.start_time_hours(), 36.0);
}

TEST(Dataset, SplitByDay) {
  Dataset dataset;
  dataset.add(make_session(1, 0, {1.0}));
  dataset.add(make_session(2, 0, {2.0}));
  dataset.add(make_session(3, 1, {3.0}));
  auto [train, test] = dataset.split_by_day(1);
  EXPECT_EQ(train.size(), 2u);
  EXPECT_EQ(test.size(), 1u);
  EXPECT_EQ(test.sessions()[0].id, 3);
}

TEST(Dataset, OnDay) {
  Dataset dataset;
  dataset.add(make_session(1, 0, {1.0}));
  dataset.add(make_session(2, 1, {2.0}));
  const auto day1 = dataset.on_day(1);
  ASSERT_EQ(day1.size(), 1u);
  EXPECT_EQ(day1[0]->id, 2);
}

TEST(Dataset, SummarizeCountsUniques) {
  Dataset dataset;
  Session a = make_session(1, 0, {1.0, 2.0});
  Session b = make_session(2, 0, {3.0});
  b.features.isp = "ISP9";
  dataset.add(a);
  dataset.add(b);
  const DatasetSummary summary = dataset.summarize();
  EXPECT_EQ(summary.num_sessions, 2u);
  EXPECT_EQ(summary.total_epochs, 3u);
  EXPECT_EQ(summary.unique_values.at(FeatureId::kIsp), 2u);
  EXPECT_EQ(summary.unique_values.at(FeatureId::kCity), 1u);
}

TEST(Dataset, CovSkipsShortSessions) {
  Dataset dataset;
  dataset.add(make_session(1, 0, {1.0}));            // too short
  dataset.add(make_session(2, 0, {1.0, 3.0, 2.0}));  // counted
  EXPECT_EQ(dataset.per_session_cov().size(), 1u);
}

TEST(Dataset, CsvRoundTrip) {
  Dataset dataset;
  dataset.add(make_session(7, 1, {1.5, 2.25, 0.125}));
  Session other = make_session(9, 0, {});
  other.features.city = "City0-0";
  dataset.add(other);

  const std::string path = ::testing::TempDir() + "/cs2p_dataset_test.csv";
  dataset.save_csv(path);
  const Dataset loaded = Dataset::load_csv(path);
  ASSERT_EQ(loaded.size(), 2u);
  const Session& restored = loaded.sessions()[0];
  EXPECT_EQ(restored.id, 7);
  EXPECT_EQ(restored.day, 1);
  EXPECT_EQ(restored.features.city, "City2-1");
  ASSERT_EQ(restored.throughput_mbps.size(), 3u);
  EXPECT_DOUBLE_EQ(restored.throughput_mbps[1], 2.25);
  EXPECT_TRUE(loaded.sessions()[1].throughput_mbps.empty());
  std::remove(path.c_str());
}

TEST(Dataset, LoadCsvRejectsNaNAndNegativeSamples) {
  for (const char* bad : {"nan", "inf", "-1.0"}) {
    const std::string path = ::testing::TempDir() + "/cs2p_bad_sample.csv";
    {
      FILE* f = std::fopen(path.c_str(), "w");
      std::fputs(
          "id,isp,as,province,city,server,prefix,day,start_hour,"
          "epoch_seconds,series\n",
          f);
      std::fprintf(f, "1,ISP0,AS0,P0,C0,S0,Pfx0,0,12.0,6.0,1.5 %s 2.0\n", bad);
      std::fclose(f);
    }
    EXPECT_THROW(Dataset::load_csv(path), std::runtime_error)
        << "sample " << bad << " should be rejected";
    std::remove(path.c_str());
  }
}

TEST(Dataset, LoadCsvMissingColumnThrows) {
  const std::string path = ::testing::TempDir() + "/cs2p_bad.csv";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("id,isp\n1,ISP0\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(Dataset::load_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

namespace {

/// Writes a CSV with the required header plus the given data lines.
std::string write_csv_fixture(const char* name,
                              std::initializer_list<const char*> lines) {
  const std::string path = ::testing::TempDir() + "/" + name;
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs(
      "id,isp,as,province,city,server,prefix,day,start_hour,"
      "epoch_seconds,series\n",
      f);
  for (const char* line : lines) std::fprintf(f, "%s\n", line);
  std::fclose(f);
  return path;
}

}  // namespace

TEST(Ingest, StrictLoaderThrowsTypedErrorWithKindAndSessionId) {
  struct Case {
    const char* row;
    IngestErrorKind kind;
  };
  const Case cases[] = {
      {"31,ISP0,AS0,P0,C0,S0,Pfx0,0,12.0,6.0,1.0 nan 2.0",
       IngestErrorKind::kNonFiniteSample},
      {"32,ISP0,AS0,P0,C0,S0,Pfx0,0,12.0,6.0,1.0 -0.5 2.0",
       IngestErrorKind::kNegativeSample},
      {"33,ISP0,AS0,P0,C0,S0,Pfx0,0,12.0,6.0,1.0 2.0x 3.0",
       IngestErrorKind::kUnparseableSeries},
      {"34,ISP0,AS0,P0,C0,S0,Pfx0,0,12.0,0.0,1.0 2.0",
       IngestErrorKind::kBadEpochSeconds},
      {"35,ISP0,AS0,P0,C0,S0,Pfx0,0,12.0,-6.0,1.0 2.0",
       IngestErrorKind::kBadEpochSeconds},
  };
  for (const Case& c : cases) {
    const std::string path = write_csv_fixture("cs2p_typed_error.csv", {c.row});
    try {
      Dataset::load_csv(path);
      FAIL() << "row should have been rejected: " << c.row;
    } catch (const IngestError& e) {
      EXPECT_EQ(e.kind(), c.kind) << c.row;
      // Session id survives into the error so operators can find the row.
      EXPECT_GE(e.session_id(), 31);
      EXPECT_LE(e.session_id(), 35);
      EXPECT_NE(std::string(e.what()).find(
                    std::string(ingest_error_kind_name(c.kind))),
                std::string::npos);
    }
    std::remove(path.c_str());
  }
}

TEST(Ingest, MissingColumnReportsNoSessionId) {
  const std::string path = ::testing::TempDir() + "/cs2p_no_col.csv";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("id,isp\n1,ISP0\n", f);
    std::fclose(f);
  }
  try {
    Dataset::load_csv(path);
    FAIL() << "missing column should throw";
  } catch (const IngestError& e) {
    EXPECT_EQ(e.kind(), IngestErrorKind::kMissingColumn);
    EXPECT_EQ(e.session_id(), -1);
  }
  std::remove(path.c_str());
}

TEST(Ingest, LenientLoaderSkipsAndCountsPerReason) {
  const std::string path = write_csv_fixture(
      "cs2p_lenient.csv",
      {
          "1,ISP0,AS0,P0,C0,S0,Pfx0,0,12.0,6.0,1.5 2.0 2.5",   // clean
          "2,ISP0,AS0,P0,C0,S0,Pfx0,0,12.0,6.0,1.0 inf 2.0",   // non-finite
          "3,ISP0,AS0,P0,C0,S0,Pfx0,0,12.0,6.0,1.0 -1.0",      // negative
          "4,ISP0,AS0,P0,C0,S0,Pfx0,0,12.0,6.0,1.0 garbage",   // unparseable
          "5,ISP0,AS0,P0,C0,S0,Pfx0,0,12.0,0.0,1.0 2.0",       // bad epoch
          "6,ISP0,AS0,P0,C0,S0,Pfx0,1,18.5,6.0,3.0 3.5",       // clean
      });
  IngestStats stats;
  const Dataset loaded = Dataset::load_csv_lenient(path, stats);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.sessions()[0].id, 1);
  EXPECT_EQ(loaded.sessions()[1].id, 6);
  EXPECT_EQ(stats.rows_loaded, 2u);
  EXPECT_EQ(stats.rows_skipped, 4u);
  EXPECT_EQ(stats.non_finite_samples, 1u);
  EXPECT_EQ(stats.negative_samples, 1u);
  EXPECT_EQ(stats.unparseable_series, 1u);
  EXPECT_EQ(stats.bad_epoch_seconds, 1u);
  // Clean rows load exactly as the strict loader would load them.
  ASSERT_EQ(loaded.sessions()[0].throughput_mbps.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded.sessions()[0].throughput_mbps[1], 2.0);
  EXPECT_DOUBLE_EQ(loaded.sessions()[1].start_hour, 18.5);
}

TEST(Ingest, LenientLoaderStillThrowsOnMissingColumn) {
  const std::string path = ::testing::TempDir() + "/cs2p_lenient_no_col.csv";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("id,isp\n1,ISP0\n", f);
    std::fclose(f);
  }
  IngestStats stats;
  EXPECT_THROW(Dataset::load_csv_lenient(path, stats), IngestError);
  EXPECT_EQ(stats.rows_loaded, 0u);
  std::remove(path.c_str());
}

TEST(Ingest, ErrorKindNamesAreStable) {
  EXPECT_EQ(ingest_error_kind_name(IngestErrorKind::kUnparseableSeries),
            "UNPARSEABLE_SERIES");
  EXPECT_EQ(ingest_error_kind_name(IngestErrorKind::kNonFiniteSample),
            "NON_FINITE_SAMPLE");
  EXPECT_EQ(ingest_error_kind_name(IngestErrorKind::kNegativeSample),
            "NEGATIVE_SAMPLE");
  EXPECT_EQ(ingest_error_kind_name(IngestErrorKind::kBadEpochSeconds),
            "BAD_EPOCH_SECONDS");
  EXPECT_EQ(ingest_error_kind_name(IngestErrorKind::kMissingColumn),
            "MISSING_COLUMN");
}

}  // namespace
}  // namespace cs2p
