// Hot-swap retraining tests (net/server.h + core/engine.h): swapping the
// served model under live traffic must never drop a session, never dangle a
// predictor's engine references, and always route new sessions to the fresh
// model. The soak test runs under TSan in CI (ci.yml thread-sanitizer job).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "dataset/synthetic.h"
#include "net/client.h"
#include "net/server.h"

namespace cs2p {
namespace {

SyntheticConfig swap_world(std::uint64_t seed) {
  SyntheticConfig config;
  config.num_isps = 2;
  config.num_provinces = 2;
  config.cities_per_province = 2;
  config.num_servers = 3;
  config.prefixes_per_isp_city = 1;
  config.num_sessions = 600;
  config.seed = seed;
  return config;
}

Cs2pConfig fast_config() {
  Cs2pConfig config;
  config.hmm.num_states = 2;
  config.hmm.max_iterations = 6;
  config.selector.min_cluster_size = 8;
  config.max_sequences_per_cluster = 10;
  config.max_global_sequences = 60;
  return config;
}

std::shared_ptr<Cs2pPredictorModel> make_model(std::uint64_t seed) {
  auto [train, test] = SyntheticWorld(swap_world(seed)).generate().split_by_day(1);
  (void)test;
  return std::make_shared<Cs2pPredictorModel>(std::move(train), fast_config());
}

TEST(HotSwap, InFlightSessionPinsItsModelUntilRelease) {
  auto model_a = make_model(11);
  std::weak_ptr<Cs2pPredictorModel> alive_a = model_a;
  PredictionServer server(model_a, 0);
  PredictionClient client(server.port());

  const SessionFeatures features = model_a->engine().training().sessions()[0].features;
  const auto session = client.hello(features, 12.0);

  // Publish a successor and drop our own reference to the old model: the
  // in-flight session must keep it alive and keep answering on it.
  server.swap_model(make_model(22));
  model_a.reset();
  EXPECT_EQ(server.models_swapped(), 1u);
  EXPECT_FALSE(alive_a.expired()) << "session must pin its creating model";

  const double forecast = client.observe(session.session_id, 2.0);
  EXPECT_TRUE(std::isfinite(forecast));
  EXPECT_GT(forecast, 0.0);

  // Releasing the session releases the old model.
  client.bye(session.session_id);
  EXPECT_TRUE(alive_a.expired()) << "old model must be freed after BYE";

  // New sessions land on the fresh model without disruption.
  const auto session2 = client.hello(features, 12.0);
  EXPECT_GT(session2.initial_mbps, 0.0);
  EXPECT_EQ(client.sessions_reestablished(), 0u);
}

TEST(HotSwap, ConcurrentSwapSoakDropsNoSessions) {
  auto model_a = make_model(11);
  auto model_b = make_model(22);
  PredictionServer server(model_a, 0);

  // Feature tuples for the client threads, drawn from model A's world.
  std::vector<SessionFeatures> features;
  for (std::size_t i = 0; i < 8; ++i)
    features.push_back(
        model_a->engine().training().sessions()[i * 37].features);

  constexpr int kClients = 4;
  constexpr int kIterations = 40;
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> rehellos{0};

  // Swapper: alternate the published model as fast as the server takes it.
  std::thread swapper([&] {
    for (int i = 0; i < 200; ++i) {
      server.swap_model(i % 2 == 0 ? model_b : model_a);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        PredictionClient client(server.port());
        for (int i = 0; i < kIterations; ++i) {
          const auto& f = features[(c + i) % features.size()];
          const auto session = client.hello(f, (c * 5.0 + i) / 2.0);
          if (!(session.initial_mbps >= 0.0)) ++failures;
          for (int o = 0; o < 3; ++o) {
            const double pred =
                client.observe(session.session_id, 1.0 + 0.25 * o);
            if (!std::isfinite(pred) || pred < 0.0) ++failures;
          }
          const double ahead = client.predict(session.session_id, 2);
          if (!std::isfinite(ahead) || ahead < 0.0) ++failures;
          client.bye(session.session_id);
        }
        rehellos += client.sessions_reestablished();
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  swapper.join();

  EXPECT_EQ(failures.load(), 0) << "every request must succeed across swaps";
  EXPECT_EQ(rehellos.load(), 0u) << "a swap must never drop a session";
  EXPECT_EQ(server.models_swapped(), 200u);
  EXPECT_EQ(server.session_count(), 0u) << "all sessions released";
  EXPECT_GE(server.requests_handled(),
            static_cast<std::uint64_t>(kClients * kIterations * 6));
  server.stop();
}

TEST(HotSwap, SwapRejectsNullModel) {
  PredictionServer server(make_model(11), 0);
  EXPECT_THROW(server.swap_model(nullptr), std::invalid_argument);
  EXPECT_EQ(server.models_swapped(), 0u);
}

TEST(HotSwap, ModelDownloadUsesCurrentModel) {
  auto model_a = make_model(11);
  PredictionServer server(model_a, 0);
  PredictionClient client(server.port());

  const SessionFeatures features = model_a->engine().training().sessions()[0].features;
  const DownloadableModel before = client.download_model(features, 12.0);

  auto model_b = make_model(22);
  server.swap_model(model_b);
  const DownloadableModel after = client.download_model(features, 12.0);

  // The downloaded artifact now comes from engine B (identical bytes would
  // only happen if both engines trained the same model, which the disjoint
  // seeds rule out for the global HMM).
  EXPECT_NE(serialize_hmm(before.hmm), serialize_hmm(after.hmm));
}

}  // namespace
}  // namespace cs2p
