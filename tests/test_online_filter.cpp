// Tests for the online HMM filter implementing Algorithm 1.

#include "hmm/online_filter.h"

#include <gtest/gtest.h>

#include "hmm_test_util.h"

namespace cs2p {
namespace {

using testing_support::two_state_model;

TEST(OnlineFilter, StartsAtInitialBelief) {
  OnlineHmmFilter filter(two_state_model());
  ASSERT_EQ(filter.belief().size(), 2u);
  EXPECT_DOUBLE_EQ(filter.belief()[0], 0.6);
  EXPECT_DOUBLE_EQ(filter.belief()[1], 0.4);
  EXPECT_EQ(filter.observations(), 0u);
}

TEST(OnlineFilter, RejectsInvalidModel) {
  GaussianHmm model = two_state_model();
  model.initial = {0.5, 0.6};
  EXPECT_THROW(OnlineHmmFilter{model}, std::invalid_argument);
}

TEST(OnlineFilter, FirstObservationConditionsWithoutPropagation) {
  // pi_{1|1} proportional to pi_1 .* e(w): check against hand computation.
  const GaussianHmm model = two_state_model();
  OnlineHmmFilter filter(model);
  filter.observe(1.0);
  const Vec e = model.emission_probabilities(1.0);
  Vec expected = hadamard(model.initial, e);
  normalize_in_place(expected);
  EXPECT_NEAR(filter.belief()[0], expected[0], 1e-12);
  EXPECT_NEAR(filter.belief()[1], expected[1], 1e-12);
}

TEST(OnlineFilter, SecondObservationPropagatesFirst) {
  const GaussianHmm model = two_state_model();
  OnlineHmmFilter filter(model);
  filter.observe(1.0);
  const Vec after_first = filter.belief();
  filter.observe(5.0);
  Vec expected = hadamard(vec_mat(after_first, model.transition),
                          model.emission_probabilities(5.0));
  normalize_in_place(expected);
  EXPECT_NEAR(filter.belief()[0], expected[0], 1e-12);
  EXPECT_NEAR(filter.belief()[1], expected[1], 1e-12);
}

TEST(OnlineFilter, PredictIsMleStateMean) {
  // Eq. 8: prediction = mean of argmax state of the propagated belief.
  const GaussianHmm model = two_state_model();
  OnlineHmmFilter filter(model);
  filter.observe(1.0);  // state 0 nearly certain
  EXPECT_DOUBLE_EQ(filter.predict(1), 1.0);
  filter.observe(5.0);
  filter.observe(5.0);  // state 1 nearly certain
  EXPECT_DOUBLE_EQ(filter.predict(1), 5.0);
}

TEST(OnlineFilter, PredictZeroStepsThrows) {
  OnlineHmmFilter filter(two_state_model());
  EXPECT_THROW(filter.predict(0), std::invalid_argument);
}

TEST(OnlineFilter, MultiStepUsesMatrixPower) {
  // pi P^tau must drive the multi-step prediction: from a sticky state the
  // far-future prediction eventually flips to the stationary argmax.
  GaussianHmm model = two_state_model();
  // Make state 1 dominant in the long run.
  model.transition = Matrix{{0.6, 0.4}, {0.05, 0.95}};
  OnlineHmmFilter filter(model);
  filter.observe(1.0);  // currently state 0
  EXPECT_DOUBLE_EQ(filter.predict(1), 1.0);
  EXPECT_DOUBLE_EQ(filter.predict(50), 5.0);  // stationary mass on state 1
}

TEST(OnlineFilter, MultiStepConsistentWithPow) {
  const GaussianHmm model = testing_support::three_state_model();
  OnlineHmmFilter filter(model);
  filter.observe(2.4);
  filter.observe(2.6);
  // Manual tau = 3 computation.
  Vec projected = vec_mat(filter.belief(), model.transition.pow(3));
  normalize_in_place(projected);
  const double expected = model.states[argmax(projected)].mean;
  EXPECT_DOUBLE_EQ(filter.predict(3), expected);
}

TEST(OnlineFilter, PosteriorMeanRule) {
  const GaussianHmm model = two_state_model();
  OnlineHmmFilter mle(model, PredictionRule::kMleState);
  OnlineHmmFilter post(model, PredictionRule::kPosteriorMean);
  mle.observe(2.0);  // ambiguous observation
  post.observe(2.0);
  const double mle_pred = mle.predict(1);
  const double post_pred = post.predict(1);
  // MLE snaps to a state mean; posterior mean is a convex combination.
  EXPECT_TRUE(mle_pred == 1.0 || mle_pred == 5.0);
  EXPECT_GT(post_pred, 0.9);
  EXPECT_LT(post_pred, 5.1);
}

TEST(OnlineFilter, BeliefStaysNormalized) {
  Rng rng(5);
  const GaussianHmm model = testing_support::three_state_model();
  OnlineHmmFilter filter(model);
  for (int i = 0; i < 200; ++i) {
    filter.observe(rng.uniform(0.5, 7.0));
    double sum = 0.0;
    for (double p : filter.belief()) {
      ASSERT_GE(p, 0.0);
      sum += p;
    }
    ASSERT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(OnlineFilter, OutlierObservationDoesNotPoisonBelief) {
  // A wildly impossible observation must not produce NaNs; the filter
  // recovers on the next plausible sample.
  const GaussianHmm model = two_state_model();
  OnlineHmmFilter filter(model);
  filter.observe(1.0);
  filter.observe(1e12);
  for (double p : filter.belief()) EXPECT_TRUE(std::isfinite(p));
  filter.observe(5.0);
  filter.observe(5.0);
  EXPECT_DOUBLE_EQ(filter.predict(1), 5.0);
}

TEST(OnlineFilter, PredictiveDistributionMoments) {
  // Certain state: mixture collapses to that state's Gaussian.
  const GaussianHmm model = two_state_model();
  OnlineHmmFilter filter(model);
  filter.observe(1.0);
  filter.observe(1.0);  // belief ~ state 0
  const auto f = filter.predict_distribution(1);
  // Next epoch: 90% state 0 (mu 1, sigma .1), 10% state 1 (mu 5, sigma .5).
  const double mean = 0.9 * 1.0 + 0.1 * 5.0;
  EXPECT_NEAR(f.mean, mean, 0.02);
  const double second = 0.9 * (0.01 + 1.0) + 0.1 * (0.25 + 25.0);
  EXPECT_NEAR(f.std_dev, std::sqrt(second - mean * mean), 0.05);
}

TEST(OnlineFilter, PredictiveDistributionWidensWithHorizon) {
  const GaussianHmm model = two_state_model();
  OnlineHmmFilter filter(model);
  filter.observe(1.0);
  const auto near = filter.predict_distribution(1);
  const auto far = filter.predict_distribution(20);
  EXPECT_GT(far.std_dev, near.std_dev);  // mixing -> more state uncertainty
}

TEST(OnlineFilter, PredictiveDistributionZeroStepsThrows) {
  OnlineHmmFilter filter(two_state_model());
  EXPECT_THROW(filter.predict_distribution(0), std::invalid_argument);
}

TEST(OnlineFilter, ResetRestoresInitialState) {
  OnlineHmmFilter filter(two_state_model());
  filter.observe(5.0);
  filter.reset();
  EXPECT_EQ(filter.observations(), 0u);
  EXPECT_DOUBLE_EQ(filter.belief()[0], 0.6);
}

TEST(OnlineFilter, MleStateIndex) {
  OnlineHmmFilter filter(two_state_model());
  filter.observe(5.0);
  EXPECT_EQ(filter.mle_state(), 1u);
}

TEST(OnlineFilter, TracksStateSwitches) {
  // Feed a sequence that dwells in state 0 then switches to state 1: the
  // filter's one-step prediction should follow with at most one epoch lag.
  const GaussianHmm model = two_state_model();
  OnlineHmmFilter filter(model);
  for (int i = 0; i < 10; ++i) filter.observe(1.0);
  EXPECT_DOUBLE_EQ(filter.predict(1), 1.0);
  filter.observe(5.0);
  EXPECT_DOUBLE_EQ(filter.predict(1), 5.0);
}

TEST(OnlineFilter, PredictiveDistributionMultiStepMatchesMatrixPower) {
  // tau > 1 goes through Matrix::pow; the mixture moments must match a
  // manual computation against pi P^tau exactly.
  const GaussianHmm model = testing_support::three_state_model();
  OnlineHmmFilter filter(model);
  filter.observe(2.4);
  filter.observe(0.9);
  Vec projected = vec_mat(filter.belief(), model.transition.pow(4));
  normalize_in_place(projected);
  double mean = 0.0, second = 0.0;
  for (std::size_t i = 0; i < projected.size(); ++i) {
    mean += projected[i] * model.states[i].mean;
    second += projected[i] * (model.states[i].sigma * model.states[i].sigma +
                              model.states[i].mean * model.states[i].mean);
  }
  const auto f = filter.predict_distribution(4);
  EXPECT_DOUBLE_EQ(f.mean, mean);
  EXPECT_DOUBLE_EQ(f.std_dev, std::sqrt(std::max(0.0, second - mean * mean)));
}

TEST(OnlineFilter, PredictiveDistributionVarianceClampedAtZero) {
  // States with identical means and vanishing sigmas make
  // second_moment - mean^2 a catastrophic cancellation that can land a hair
  // below zero; the clamp must keep std_dev a real number, never sqrt(-eps).
  GaussianHmm model;
  model.initial = {0.3, 0.7};
  model.transition = Matrix{{0.5, 0.5}, {0.5, 0.5}};
  model.states = {{3.0, 1e-12}, {3.0, 1e-12}};
  OnlineHmmFilter filter(model);
  filter.observe(3.0);
  const auto f = filter.predict_distribution(1);
  EXPECT_TRUE(std::isfinite(f.std_dev));
  EXPECT_GE(f.std_dev, 0.0);
  EXPECT_NEAR(f.mean, 3.0, 1e-9);
}

TEST(OnlineFilter, PredictiveDistributionMatchesMonteCarlo) {
  // Brute force the mixture: sample next-epoch states from the propagated
  // belief and throughputs from the per-state Gaussians; the empirical
  // moments must converge to predict_distribution's closed form.
  const GaussianHmm model = two_state_model();
  OnlineHmmFilter filter(model);
  filter.observe(1.1);
  filter.observe(0.9);
  Vec projected = vec_mat(filter.belief(), model.transition);
  normalize_in_place(projected);

  Rng rng(1234);
  const int kSamples = 200'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const std::size_t state = rng.categorical(projected);
    const double w =
        rng.gaussian(model.states[state].mean, model.states[state].sigma);
    sum += w;
    sum_sq += w * w;
  }
  const double mc_mean = sum / kSamples;
  const double mc_std = std::sqrt(sum_sq / kSamples - mc_mean * mc_mean);

  const auto f = filter.predict_distribution(1);
  EXPECT_NEAR(f.mean, mc_mean, 0.02);
  EXPECT_NEAR(f.std_dev, mc_std, 0.02);
}

TEST(OnlineFilter, LogLikelihoodNanBeforeFirstObservation) {
  OnlineHmmFilter filter(two_state_model());
  EXPECT_TRUE(std::isnan(filter.last_log_likelihood()));
  EXPECT_EQ(filter.degenerate_updates(), 0u);
}

TEST(OnlineFilter, LogLikelihoodMatchesHandComputation) {
  // First observation: likelihood = sum_x pi_1(x) e_x(w).
  const GaussianHmm model = two_state_model();
  OnlineHmmFilter filter(model);
  filter.observe(1.0);
  const double expected =
      std::log(vec_sum(hadamard(model.initial, model.emission_probabilities(1.0))));
  EXPECT_NEAR(filter.last_log_likelihood(), expected, 1e-12);
  EXPECT_EQ(filter.degenerate_updates(), 0u);
}

TEST(OnlineFilter, UnderflowIsCountedAndBeliefStaysFinite) {
  // An observation thousands of sigmas from every state underflows all
  // emission probabilities: the update must be flagged (-inf likelihood,
  // counter bumped), the belief must stay a finite distribution, and every
  // subsequent prediction must be a real number.
  const GaussianHmm model = two_state_model();
  OnlineHmmFilter filter(model);
  filter.observe(1.0);
  filter.observe(1e12);
  EXPECT_TRUE(std::isinf(filter.last_log_likelihood()));
  EXPECT_LT(filter.last_log_likelihood(), 0.0);
  EXPECT_EQ(filter.degenerate_updates(), 1u);
  double sum = 0.0;
  for (double p : filter.belief()) {
    ASSERT_TRUE(std::isfinite(p));
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_TRUE(std::isfinite(filter.predict(1)));
  EXPECT_TRUE(std::isfinite(filter.predict_distribution(1).mean));
  EXPECT_TRUE(std::isfinite(filter.predict_distribution(1).std_dev));
  // Recovery: the next in-distribution observation restores finite
  // likelihoods without further degenerate updates.
  filter.observe(5.0);
  EXPECT_TRUE(std::isfinite(filter.last_log_likelihood()));
  EXPECT_EQ(filter.degenerate_updates(), 1u);
}

TEST(OnlineFilter, ResetClearsLikelihoodState) {
  OnlineHmmFilter filter(two_state_model());
  filter.observe(1.0);
  filter.observe(1e12);
  ASSERT_EQ(filter.degenerate_updates(), 1u);
  filter.reset();
  EXPECT_TRUE(std::isnan(filter.last_log_likelihood()));
  EXPECT_EQ(filter.degenerate_updates(), 0u);
}

}  // namespace
}  // namespace cs2p
