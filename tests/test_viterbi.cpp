// Tests for Viterbi decoding, validated against brute-force path search.

#include "hmm/viterbi.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hmm_test_util.h"
#include "util/gaussian.h"

namespace cs2p {
namespace {

using testing_support::three_state_model;
using testing_support::two_state_model;

/// Brute-force MAP path by enumeration.
std::pair<std::vector<std::size_t>, double> brute_force_map(
    const GaussianHmm& model, const std::vector<double>& obs) {
  const std::size_t n = model.num_states();
  std::vector<std::size_t> path(obs.size(), 0), best_path;
  double best = -std::numeric_limits<double>::infinity();
  while (true) {
    double log_p = std::log(model.initial[path[0]]) +
                   gaussian_log_pdf(obs[0], model.states[path[0]].mean,
                                    model.states[path[0]].sigma);
    for (std::size_t t = 1; t < obs.size(); ++t) {
      const double trans = model.transition(path[t - 1], path[t]);
      log_p += (trans > 0 ? std::log(trans)
                          : -std::numeric_limits<double>::infinity()) +
               gaussian_log_pdf(obs[t], model.states[path[t]].mean,
                                model.states[path[t]].sigma);
    }
    if (log_p > best) {
      best = log_p;
      best_path = path;
    }
    std::size_t digit = 0;
    while (digit < obs.size() && ++path[digit] == n) {
      path[digit] = 0;
      ++digit;
    }
    if (digit == obs.size()) break;
  }
  return {best_path, best};
}

TEST(Viterbi, MatchesBruteForceTwoState) {
  const GaussianHmm model = two_state_model();
  const std::vector<double> obs = {1.1, 0.9, 4.8, 5.1, 1.2};
  const auto result = viterbi(model, obs);
  const auto [expected_path, expected_log_p] = brute_force_map(model, obs);
  EXPECT_EQ(result.path, expected_path);
  EXPECT_NEAR(result.log_probability, expected_log_p, 1e-9);
}

TEST(Viterbi, MatchesBruteForceThreeState) {
  const GaussianHmm model = three_state_model();
  const std::vector<double> obs = {2.4, 2.6, 6.5, 5.8, 1.0, 0.9};
  const auto result = viterbi(model, obs);
  const auto [expected_path, expected_log_p] = brute_force_map(model, obs);
  EXPECT_EQ(result.path, expected_path);
  EXPECT_NEAR(result.log_probability, expected_log_p, 1e-9);
}

TEST(Viterbi, SingleObservation) {
  const GaussianHmm model = two_state_model();
  const auto result = viterbi(model, std::vector<double>{4.9});
  ASSERT_EQ(result.path.size(), 1u);
  EXPECT_EQ(result.path[0], 1u);
}

TEST(Viterbi, EmptySequenceThrows) {
  EXPECT_THROW(viterbi(two_state_model(), std::vector<double>{}),
               std::invalid_argument);
}

TEST(Viterbi, StickyChainPrefersFewSwitches) {
  // With a very sticky chain, a single ambiguous observation in the middle
  // of a clear run should not cause a state switch.
  GaussianHmm model = two_state_model();
  model.transition = Matrix{{0.99, 0.01}, {0.01, 0.99}};
  // 1.5 is 5 sigma from state 0 but 7 sigma from state 1: even ignoring the
  // switching cost, staying explains the blip better.
  const std::vector<double> obs = {1.0, 1.0, 1.5, 1.0, 1.0};
  const auto result = viterbi(model, obs);
  for (std::size_t state : result.path) EXPECT_EQ(state, 0u);
}

TEST(Viterbi, HandlesZeroTransitionProbabilities) {
  GaussianHmm model = two_state_model();
  model.transition = Matrix{{1.0, 0.0}, {0.0, 1.0}};  // no switching possible
  const std::vector<double> obs = {1.0, 5.0, 5.0};    // tempting switch
  const auto result = viterbi(model, obs);
  // Path must stay constant because switching has probability zero.
  EXPECT_EQ(result.path[0], result.path[1]);
  EXPECT_EQ(result.path[1], result.path[2]);
}

}  // namespace
}  // namespace cs2p
