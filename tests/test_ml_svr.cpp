// Tests for linear epsilon-SVR (ml/svr.h).

#include "ml/svr.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cs2p {
namespace {

TEST(LinearSvr, FitsCleanLinearFunction) {
  // y = 3 x - 1 with no noise: SVR should recover it within the tube width.
  std::vector<Vec> rows;
  std::vector<double> y;
  for (double x = 0.0; x < 4.0; x += 0.1) {
    rows.push_back({x});
    y.push_back(3.0 * x - 1.0);
  }
  LinearSvr svr;
  SvrConfig config;
  config.epochs = 200;
  config.epsilon = 0.05;
  svr.fit(rows, y, config);
  EXPECT_TRUE(svr.trained());
  for (double x : {0.5, 1.5, 3.5}) {
    EXPECT_NEAR(svr.predict(Vec{x}), 3.0 * x - 1.0, 0.3);
  }
}

TEST(LinearSvr, RobustToOutliers) {
  // The epsilon-insensitive loss caps each point's pull: a single wild
  // outlier must not drag the fit far (unlike least squares).
  std::vector<Vec> rows;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    rows.push_back({x});
    y.push_back(2.0 * x + rng.gaussian(0.0, 0.05));
  }
  rows.push_back({2.0});
  y.push_back(1000.0);  // outlier
  LinearSvr svr;
  SvrConfig config;
  config.epochs = 120;
  svr.fit(rows, y, config);
  EXPECT_NEAR(svr.predict(Vec{2.0}), 4.0, 1.0);
}

TEST(LinearSvr, MultiDimensional) {
  std::vector<Vec> rows;
  std::vector<double> y;
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    rows.push_back({a, b});
    y.push_back(1.0 * a - 2.0 * b + 0.5);
  }
  LinearSvr svr;
  SvrConfig config;
  config.epochs = 200;
  config.epsilon = 0.02;
  svr.fit(rows, y, config);
  EXPECT_NEAR(svr.predict(Vec{0.5, 0.5}), 0.0, 0.2);
  EXPECT_NEAR(svr.predict(Vec{1.0, 0.0}), 1.5, 0.25);
}

TEST(LinearSvr, PredictBeforeFitThrows) {
  const LinearSvr svr;
  EXPECT_THROW(svr.predict(Vec{1.0}), std::logic_error);
}

TEST(LinearSvr, FitErrorPaths) {
  LinearSvr svr;
  EXPECT_THROW(svr.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(svr.fit({{1.0}}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(svr.fit({{}}, std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(svr.fit({{1.0}, {1.0, 2.0}}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(LinearSvr, DeterministicForFixedSeed) {
  std::vector<Vec> rows = {{1.0}, {2.0}, {3.0}, {4.0}};
  std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  LinearSvr a, b;
  a.fit(rows, y);
  b.fit(rows, y);
  EXPECT_DOUBLE_EQ(a.predict(Vec{2.5}), b.predict(Vec{2.5}));
}

}  // namespace
}  // namespace cs2p
