// Tests for the small dense matrix algebra (util/matrix.h).

#include "util/matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cs2p {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplication) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix i = Matrix::identity(2);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(m * i, m), 0.0);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(i * m, m), 0.0);
}

TEST(Matrix, MultiplyKnown) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, NonSquareMultiply) {
  const Matrix a{{1.0, 0.0, 2.0}};           // 1x3
  const Matrix b{{1.0}, {2.0}, {3.0}};       // 3x1
  const Matrix c = a * b;                    // 1x1 = 7
  EXPECT_DOUBLE_EQ(c(0, 0), 7.0);
}

TEST(Matrix, AddAndScale) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  a *= 0.5;
  EXPECT_DOUBLE_EQ(a(1, 1), 2.5);
  EXPECT_THROW(a += Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, PowZeroIsIdentity) {
  const Matrix a{{0.5, 0.5}, {0.25, 0.75}};
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a.pow(0), Matrix::identity(2)), 0.0);
}

TEST(Matrix, PowMatchesRepeatedMultiply) {
  const Matrix a{{0.9, 0.1}, {0.2, 0.8}};
  Matrix expected = a;
  for (int i = 1; i < 5; ++i) expected = expected * a;
  EXPECT_LT(Matrix::max_abs_diff(a.pow(5), expected), 1e-12);
}

TEST(Matrix, PowNonSquareThrows) {
  EXPECT_THROW(Matrix(2, 3).pow(2), std::invalid_argument);
}

TEST(Matrix, Transposed) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, StochasticPowStaysStochastic) {
  const Matrix p{{0.95, 0.05}, {0.1, 0.9}};
  const Matrix p10 = p.pow(10);
  for (std::size_t r = 0; r < 2; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_GE(p10(r, c), 0.0);
      row_sum += p10(r, c);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-12);
  }
}

TEST(VecOps, VecMatKnown) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vec v = {1.0, 1.0};
  const Vec out = vec_mat(v, m);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
}

TEST(VecOps, VecMatDimensionMismatchThrows) {
  const Matrix m(3, 2);
  const Vec v = {1.0, 2.0};
  EXPECT_THROW(vec_mat(v, m), std::invalid_argument);
}

TEST(VecOps, Hadamard) {
  const Vec a = {1.0, 2.0, 3.0};
  const Vec b = {2.0, 0.5, -1.0};
  const Vec c = hadamard(a, b);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_DOUBLE_EQ(c[2], -3.0);
  EXPECT_THROW(hadamard(a, Vec{1.0}), std::invalid_argument);
}

TEST(VecOps, NormalizeInPlace) {
  Vec v = {1.0, 3.0};
  const double sum = normalize_in_place(v);
  EXPECT_DOUBLE_EQ(sum, 4.0);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(VecOps, NormalizeDegenerateFallsBackToUniform) {
  Vec v = {0.0, 0.0, 0.0};
  normalize_in_place(v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 1.0 / 3.0);
}

TEST(VecOps, ArgmaxAndErrors) {
  const Vec v = {0.1, 0.7, 0.2};
  EXPECT_EQ(argmax(v), 1u);
  EXPECT_THROW(argmax(Vec{}), std::invalid_argument);
}

TEST(VecOps, ArgmaxTiesPickFirst) {
  const Vec v = {0.5, 0.5};
  EXPECT_EQ(argmax(v), 0u);
}

}  // namespace
}  // namespace cs2p
