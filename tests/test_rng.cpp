// Tests for the deterministic RNG (util/rng.h).

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace cs2p {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double min_seen = 1.0, max_seen = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    min_seen = std::min(min_seen, u);
    max_seen = std::max(max_seen, u);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_LT(min_seen, 0.01);
  EXPECT_GT(max_seen, 0.99);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaledMoments) {
  Rng rng(19);
  const int n = 30000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, LogNormalIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.log_normal(0.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  const int n = 30000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(37);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Rng, CategoricalNegativeWeightsIgnored) {
  Rng rng(41);
  std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(43);
  const auto perm = rng.permutation(50);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(47);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++same;
  EXPECT_LT(same, 2);
}

// Property sweep: moments hold across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST_P(RngSeedSweep, GaussianPairIndependence) {
  // Box-Muller caches a second variate: consecutive pairs must still be
  // uncorrelated.
  Rng rng(GetParam());
  const int n = 20000;
  double sum_xy = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian();
    const double y = rng.gaussian();
    sum_xy += x * y;
  }
  EXPECT_NEAR(sum_xy / n, 0.0, 0.04);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 42, 1234, 99999, 0xdeadbeef));

}  // namespace
}  // namespace cs2p
