// Tests for categorical target encoding (predictors/feature_encoder.h).

#include "predictors/feature_encoder.h"

#include <gtest/gtest.h>

namespace cs2p {
namespace {

Session make_session(const std::string& isp, double level) {
  Session s;
  s.features = {isp, "AS0", "P0", "C0", "S0", "Pfx0"};
  s.throughput_mbps = {level, level, level};
  s.start_hour = 12.0;
  return s;
}

Dataset two_isp_dataset() {
  Dataset d;
  for (int i = 0; i < 50; ++i) d.add(make_session("fast-isp", 8.0));
  for (int i = 0; i < 50; ++i) d.add(make_session("slow-isp", 1.0));
  return d;
}

TEST(FeatureEncoder, FitRequiresData) {
  FeatureEncoder encoder;
  EXPECT_THROW(encoder.fit(Dataset{}), std::invalid_argument);
}

TEST(FeatureEncoder, EncodeBeforeFitThrows) {
  const FeatureEncoder encoder;
  EXPECT_THROW(encoder.encode(SessionFeatures{}, 0.0), std::logic_error);
}

TEST(FeatureEncoder, EncodesKnownValuesToGroupMeans) {
  FeatureEncoder encoder;
  encoder.fit(two_isp_dataset(), /*smoothing=*/0.0);
  const Vec fast = encoder.encode({"fast-isp", "AS0", "P0", "C0", "S0", "Pfx0"}, 12.0);
  const Vec slow = encoder.encode({"slow-isp", "AS0", "P0", "C0", "S0", "Pfx0"}, 12.0);
  ASSERT_EQ(fast.size(), encoder.dimension());
  EXPECT_NEAR(fast[0], 8.0, 1e-9);   // ISP slot
  EXPECT_NEAR(slow[0], 1.0, 1e-9);
  // Shared features encode to the same (global) value.
  EXPECT_DOUBLE_EQ(fast[3], slow[3]);
}

TEST(FeatureEncoder, UnknownValueEncodesToGlobalMean) {
  FeatureEncoder encoder;
  encoder.fit(two_isp_dataset());
  const Vec v = encoder.encode({"never-seen", "AS0", "P0", "C0", "S0", "Pfx0"}, 12.0);
  EXPECT_NEAR(v[0], encoder.global_mean(), 1e-9);
}

TEST(FeatureEncoder, SmoothingPullsRareValuesTowardGlobalMean) {
  Dataset d = two_isp_dataset();
  d.add(make_session("rare-isp", 100.0));  // single extreme session
  FeatureEncoder raw, smoothed;
  raw.fit(d, 0.0);
  smoothed.fit(d, 10.0);
  const SessionFeatures rare = {"rare-isp", "AS0", "P0", "C0", "S0", "Pfx0"};
  EXPECT_NEAR(raw.encode(rare, 0.0)[0], 100.0, 1e-9);
  EXPECT_LT(smoothed.encode(rare, 0.0)[0], 30.0);
  EXPECT_GT(smoothed.encode(rare, 0.0)[0], smoothed.global_mean() - 1e-9);
}

TEST(FeatureEncoder, TimeOfDayIsCyclic) {
  FeatureEncoder encoder;
  encoder.fit(two_isp_dataset());
  const SessionFeatures f = {"fast-isp", "AS0", "P0", "C0", "S0", "Pfx0"};
  const Vec at_0 = encoder.encode(f, 0.0);
  const Vec at_24 = encoder.encode(f, 24.0);
  const std::size_t d = encoder.dimension();
  EXPECT_NEAR(at_0[d - 2], at_24[d - 2], 1e-9);
  EXPECT_NEAR(at_0[d - 1], at_24[d - 1], 1e-9);
}

TEST(FeatureEncoder, HistoryBlockColdStart) {
  FeatureEncoder encoder;
  encoder.fit(two_isp_dataset());
  const SessionFeatures f = {"fast-isp", "AS0", "P0", "C0", "S0", "Pfx0"};
  const Vec cold = encoder.encode_with_history(f, 12.0, {});
  ASSERT_EQ(cold.size(), encoder.dimension() + 4);
  EXPECT_DOUBLE_EQ(cold[encoder.dimension()], 0.0);  // has_history flag
  EXPECT_DOUBLE_EQ(cold[encoder.dimension() + 1], encoder.global_mean());
}

TEST(FeatureEncoder, HistoryBlockWithSamples) {
  FeatureEncoder encoder;
  encoder.fit(two_isp_dataset());
  const SessionFeatures f = {"fast-isp", "AS0", "P0", "C0", "S0", "Pfx0"};
  const std::vector<double> history = {2.0, 4.0};
  const Vec v = encoder.encode_with_history(f, 12.0, history);
  const std::size_t base = encoder.dimension();
  EXPECT_DOUBLE_EQ(v[base], 1.0);       // has_history
  EXPECT_DOUBLE_EQ(v[base + 1], 4.0);   // last
  EXPECT_NEAR(v[base + 2], 8.0 / 3.0, 1e-12);  // harmonic mean
  EXPECT_DOUBLE_EQ(v[base + 3], 3.0);   // mean
}

}  // namespace
}  // namespace cs2p
