// Continuous-training pipeline tests (core/trainer.h, DESIGN.md §15):
// streaming ingest + reservoir bookkeeping, the canary gate accepting a
// genuinely shifted world and bumping the model lineage, the gate blocking a
// poisoned retrain while serving continues (the acceptance scenario of the
// robustness PR), drift-quorum rollback during probation with retrain
// backoff, clean probation release, external-reload adoption, and the
// server-level unified BYE/eviction completion hook that feeds it all.

#include "core/trainer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/model_store.h"
#include "hmm/online_filter.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "predictors/guarded_session.h"
#include "util/rng.h"

namespace cs2p {
namespace {

/// Two-cluster world with a fixed start hour so every ingested session maps
/// to the same bucket its training twin occupied. "low-city" streams around
/// 2 Mbps, "high-city" around 6 Mbps.
SessionFeatures city_features(const std::string& city) {
  return {"ISP0", "AS0", "P0", city, "S0", "Pfx-" + city};
}

Dataset tiny_dataset(std::size_t per_city = 10) {
  Dataset train;
  Rng rng(5);
  std::int64_t id = 0;
  for (const auto& [city, level] :
       std::vector<std::pair<std::string, double>>{{"low-city", 2.0},
                                                   {"high-city", 6.0}}) {
    for (std::size_t i = 0; i < per_city; ++i) {
      Session s;
      s.id = id++;
      s.features = city_features(city);
      s.start_hour = 12.0;
      for (int t = 0; t < 8; ++t)
        s.throughput_mbps.push_back(level * (1.0 + rng.uniform(-0.15, 0.15)));
      train.add(s);
    }
  }
  return train;
}

Cs2pConfig tiny_config() {
  Cs2pConfig config;
  config.hmm.num_states = 2;
  config.hmm.max_iterations = 8;
  config.selector.min_cluster_size = 4;
  config.max_sequences_per_cluster = 16;
  config.max_global_sequences = 32;
  return config;
}

std::shared_ptr<const Cs2pEngine> tiny_engine() {
  auto engine = std::make_shared<Cs2pEngine>(tiny_dataset(), tiny_config());
  engine->warm_up();
  return engine;
}

TrainerConfig fast_trainer_config() {
  TrainerConfig config;
  config.reservoir_size = 32;
  config.min_new_sessions = 8;
  config.min_sequence_epochs = 4;
  config.holdout_stride = 4;
  config.canary_margin = 0.01;
  config.horizon = 2;
  config.probation_ms = 60'000;  // tests resolve probations explicitly
  config.backoff_initial_ms = 3'600'000;
  return config;
}

/// One session's throughput sequence around `level` (±20% noise).
std::vector<double> sequence_at(double level, Rng& rng, std::size_t epochs = 12) {
  std::vector<double> out;
  out.reserve(epochs);
  for (std::size_t t = 0; t < epochs; ++t)
    out.push_back(level * (1.0 + rng.uniform(-0.2, 0.2)));
  return out;
}

/// The trainer's stable identity of the cluster serving `features`.
std::pair<std::size_t, std::string> cluster_identity(
    const Cs2pEngine& engine, const SessionFeatures& features,
    double start_hour = 12.0) {
  const SelectionResult selection = engine.selector().select(features, start_hour);
  EXPECT_TRUE(selection.found);
  return {selection.candidate_id,
          engine.cluster_index()
              .index_for(selection.candidate_id)
              .bucket_key_for(features, start_hour)};
}

/// What the engine would forecast for this cluster after seeing `observed`
/// three times — a functional probe of which model generation is serving.
double steady_prediction(const Cs2pEngine& engine, std::size_t candidate_id,
                         const std::string& bucket_key, double observed) {
  const ClusterModelView view =
      engine.cluster_model_view(candidate_id, bucket_key);
  OnlineHmmFilter filter(view.hmm, PredictionRule::kMleState);
  for (int i = 0; i < 3; ++i) filter.observe(observed);
  return filter.predict(1);
}

TEST(Trainer, RejectsDegenerateConstruction) {
  EXPECT_THROW(ContinuousTrainer(nullptr, {}), std::invalid_argument);
  TrainerConfig zero;
  zero.reservoir_size = 0;
  EXPECT_THROW(ContinuousTrainer(tiny_engine(), zero), std::invalid_argument);
}

TEST(Trainer, IngestTracksClustersAndDropsJunk) {
  ContinuousTrainer trainer(tiny_engine(), fast_trainer_config());
  const SessionFeatures low = city_features("low-city");

  // Too short after sample-wise sanitization: NaN and negatives drop out.
  const double nan = std::nan("");
  trainer.ingest(low, 12.0, {1.0, nan, -3.0, 2.0});
  EXPECT_EQ(trainer.stats().sessions_ingested, 0u);
  EXPECT_EQ(trainer.stats().sessions_dropped, 1u);

  Rng rng(7);
  for (int i = 0; i < 5; ++i) trainer.ingest(low, 12.0, sequence_at(2.0, rng));
  const TrainerStats stats = trainer.stats();
  EXPECT_EQ(stats.sessions_ingested, 5u);
  EXPECT_EQ(stats.clusters_tracked, 1u);
  EXPECT_EQ(stats.generation, 0u);

  // Nothing shifted and nothing reached min_new_sessions: a pass is a no-op.
  EXPECT_EQ(trainer.run_once(), 0u);
  EXPECT_EQ(trainer.stats().retrains, 0u);
}

TEST(Trainer, ShiftedClusterRetrainsThroughCanaryWithLineage) {
  auto root = tiny_engine();
  const std::string root_snapshot = serialize_engine(*root);
  const auto [candidate_id, bucket_key] =
      cluster_identity(*root, city_features("low-city"));

  ContinuousTrainer trainer(root, fast_trainer_config());
  std::size_t publishes = 0;
  std::shared_ptr<const Cs2pEngine> published;
  trainer.set_publish([&](const std::shared_ptr<const Cs2pEngine>& engine,
                          const std::string& bytes) {
    ++publishes;
    published = engine;
    EXPECT_FALSE(bytes.empty());
    return true;
  });

  // The low cluster's world jumps from ~2 to ~20 Mbps.
  Rng rng(11);
  for (int i = 0; i < 24; ++i)
    trainer.ingest(city_features("low-city"), 12.0, sequence_at(20.0, rng));

  EXPECT_EQ(trainer.run_once(), 1u);
  const TrainerStats stats = trainer.stats();
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.canary_accepts, 1u);
  EXPECT_EQ(stats.canary_rejects, 0u);
  EXPECT_EQ(stats.probations_active, 1u);

  // Lineage: generation 1, parented on the root engine's snapshot bytes.
  auto current = trainer.engine();
  ASSERT_NE(current, root);
  EXPECT_EQ(current->lineage().generation, 1u);
  EXPECT_EQ(current->lineage().parent_checksum, snapshot_checksum(root_snapshot));
  EXPECT_EQ(publishes, 1u);
  EXPECT_EQ(published, current);

  // The swapped cluster now tracks the shifted world; the root still serves
  // the old one (in-flight sessions keep their pinned model).
  EXPECT_GT(steady_prediction(*current, candidate_id, bucket_key, 20.0), 10.0);
  EXPECT_LT(steady_prediction(*root, candidate_id, bucket_key, 20.0), 10.0);

  // The accepted generation round-trips through the snapshot store with its
  // lineage intact — what a restarted replica would restore.
  const std::string bytes = serialize_engine(*current);
  auto restored =
      restore_engine_from_bytes(bytes, current->training(), tiny_config());
  EXPECT_EQ(restored->lineage().generation, 1u);
  EXPECT_EQ(restored->lineage().parent_checksum,
            snapshot_checksum(root_snapshot));
}

TEST(Trainer, CanaryBlocksPoisonedRetrain) {
  auto root = tiny_engine();
  const auto [candidate_id, bucket_key] =
      cluster_identity(*root, city_features("low-city"));

  TrainerConfig config = fast_trainer_config();
  // A near-tie must not swap: the poisoned candidate has to *clearly* beat
  // the incumbent on clean held-out data, which it cannot.
  config.canary_margin = 0.3;
  ContinuousTrainer trainer(root, config);

  // A minority of corrupt sessions (wild 0.01 <-> 400 Mbps swings) lands in
  // the low cluster between clean sessions that match the incumbent world.
  // Offset 2 mod 4 keeps the stride-4 canary holdout poison-free — the gate
  // judges on the clean majority, as the reservoir intends.
  Rng rng(13);
  for (int i = 0; i < 32; ++i) {
    std::vector<double> sequence;
    if (i % 4 == 2) {
      for (int t = 0; t < 12; ++t) sequence.push_back(t % 2 == 0 ? 0.01 : 400.0);
    } else {
      sequence = sequence_at(2.0, rng);
    }
    trainer.ingest(city_features("low-city"), 12.0, sequence);
  }

  EXPECT_EQ(trainer.run_once(), 0u);
  const TrainerStats stats = trainer.stats();
  EXPECT_EQ(stats.canary_accepts, 0u);
  EXPECT_GE(stats.canary_rejects, 1u);
  EXPECT_EQ(stats.rollbacks, 0u);

  // The reject is a model-quality verdict, not a data-volume artifact.
  const std::string key = std::to_string(candidate_id) + ":" + bucket_key;
  const auto reason = trainer.last_reject(key);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(*reason, CanaryRejectReason::kInsufficientData);

  // Serving continues on the untouched incumbent.
  EXPECT_EQ(trainer.engine(), root);
  EXPECT_EQ(trainer.engine()->lineage().generation, 0u);
  Cs2pPredictorModel model(root);
  auto session = model.make_session({city_features("low-city"), 1, 12.0, nullptr});
  session->observe(2.0);
  EXPECT_TRUE(std::isfinite(session->predict(1)));
}

TEST(Trainer, DriftTripDuringProbationRollsBackAndBacksOff) {
  auto root = tiny_engine();
  const auto [candidate_id, bucket_key] =
      cluster_identity(*root, city_features("low-city"));

  ContinuousTrainer trainer(root, fast_trainer_config());
  Rng rng(17);
  for (int i = 0; i < 24; ++i)
    trainer.ingest(city_features("low-city"), 12.0, sequence_at(20.0, rng));
  ASSERT_EQ(trainer.run_once(), 1u);
  ASSERT_EQ(trainer.stats().probations_active, 1u);

  // The accepted generation disappoints in production: a quorum of its live
  // guarded sessions trips the surprise monitor inside the probation window.
  auto current = trainer.engine();
  const Cluster* cluster = current->find_cluster(candidate_id, bucket_key);
  ASSERT_NE(cluster, nullptr);
  for (int i = 0; i < 4; ++i)
    current->note_guardrail_event(cluster, GuardrailEvent::kOpened, false);
  for (int i = 0; i < 4; ++i)
    current->note_guardrail_event(cluster, GuardrailEvent::kTripped, false);
  ASSERT_TRUE(current->cluster_drifted(cluster));

  EXPECT_EQ(trainer.run_once(), 1u);
  const TrainerStats stats = trainer.stats();
  EXPECT_EQ(stats.rollbacks, 1u);
  EXPECT_EQ(stats.probations_active, 0u);
  // A rollback is itself a new generation whose model is the parent's.
  EXPECT_EQ(stats.generation, 2u);
  auto rolled_back = trainer.engine();
  EXPECT_EQ(rolled_back->lineage().parent_checksum,
            snapshot_checksum(serialize_engine(*current)));
  EXPECT_LT(steady_prediction(*rolled_back, candidate_id, bucket_key, 20.0),
            10.0);

  // The cluster is backed off: more shifted traffic does not retrain it
  // until the (hour-long, in this config) backoff expires.
  for (int i = 0; i < 16; ++i)
    trainer.ingest(city_features("low-city"), 12.0, sequence_at(20.0, rng));
  EXPECT_EQ(trainer.run_once(), 0u);
  EXPECT_EQ(trainer.stats().retrains, 1u);
}

TEST(Trainer, CleanProbationReleasesWithoutRollback) {
  auto root = tiny_engine();
  TrainerConfig config = fast_trainer_config();
  config.probation_ms = 0;  // the deadline passes by the next pass
  ContinuousTrainer trainer(root, config);

  Rng rng(19);
  for (int i = 0; i < 24; ++i)
    trainer.ingest(city_features("low-city"), 12.0, sequence_at(20.0, rng));
  ASSERT_EQ(trainer.run_once(), 1u);
  ASSERT_EQ(trainer.stats().probations_active, 1u);

  // No drift trip: the next pass releases the generation as trusted.
  EXPECT_EQ(trainer.run_once(), 0u);
  const TrainerStats stats = trainer.stats();
  EXPECT_EQ(stats.probations_active, 0u);
  EXPECT_EQ(stats.rollbacks, 0u);
  EXPECT_EQ(stats.generation, 1u);
}

TEST(Trainer, SetEngineAdoptsReloadAndClearsProbations) {
  auto root = tiny_engine();
  ContinuousTrainer trainer(root, fast_trainer_config());
  Rng rng(23);
  for (int i = 0; i < 24; ++i)
    trainer.ingest(city_features("low-city"), 12.0, sequence_at(20.0, rng));
  ASSERT_EQ(trainer.run_once(), 1u);
  ASSERT_EQ(trainer.stats().probations_active, 1u);

  // An interval/SIGHUP reload rebuilt everything offline: the trainer adopts
  // the new lineage root and drops probations guarding superseded parents.
  auto reloaded = tiny_engine();
  trainer.set_engine(reloaded, serialize_engine(*reloaded));
  EXPECT_EQ(trainer.engine(), reloaded);
  EXPECT_EQ(trainer.stats().generation, 0u);
  EXPECT_EQ(trainer.stats().probations_active, 0u);
}

// -- Unified session-completion teardown (net/server.h) ---------------------

/// Trivial deterministic model so the server tests need no training pass.
class FlatModel final : public PredictorModel {
 public:
  std::string name() const override { return "Flat"; }
  std::unique_ptr<SessionPredictor> make_session(
      const SessionContext&) const override {
    class S final : public SessionPredictor {
     public:
      std::optional<double> predict_initial() const override { return 2.0; }
      double predict(unsigned) const override { return last_; }
      void observe(double w) override { last_ = w; }

     private:
      double last_ = 2.0;
    };
    return std::make_unique<S>();
  }
};

TEST(SessionCompletion, ByeAndEvictionBothReachTheHook) {
  auto registry = std::make_shared<obs::MetricsRegistry>();
  std::mutex mutex;
  std::vector<CompletedSession> completed;

  ServerConfig config;
  config.metrics = registry;
  config.session_ttl_ms = 50;  // the abandoned session evicts quickly
  config.on_session_complete = [&](CompletedSession&& done) {
    const std::scoped_lock lock(mutex);
    completed.push_back(std::move(done));
  };

  PredictionServer server(std::make_shared<FlatModel>(), config, 0);
  PredictionClient client(server.port());

  // Session 1: full lifecycle ending in BYE.
  const auto bye_session = client.hello(city_features("low-city"), 12.0);
  for (double w : {3.0, 4.0, 5.0})
    (void)client.observe(bye_session.session_id, w);
  client.bye(bye_session.session_id);

  // Session 2: observed once, then abandoned — TTL eviction must hand the
  // same teardown signal to the same hook (the pre-PR behavior silently
  // discarded it and skipped the duration histogram).
  const auto evicted_session = client.hello(city_features("high-city"), 12.0);
  (void)client.observe(evicted_session.session_id, 7.0);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      const std::scoped_lock lock(mutex);
      if (completed.size() >= 2) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const std::scoped_lock lock(mutex);
  ASSERT_EQ(completed.size(), 2u);
  const CompletedSession* bye = nullptr;
  const CompletedSession* evict = nullptr;
  for (const CompletedSession& done : completed) {
    if (done.reason == "bye") bye = &done;
    if (done.reason == "evict") evict = &done;
  }
  ASSERT_NE(bye, nullptr) << "BYE teardown must reach the hook";
  ASSERT_NE(evict, nullptr) << "TTL eviction must reach the hook";

  EXPECT_EQ(bye->features.city, "low-city");
  ASSERT_EQ(bye->observations.size(), 3u);
  EXPECT_DOUBLE_EQ(bye->observations[0], 3.0);
  EXPECT_DOUBLE_EQ(bye->observations[2], 5.0);

  EXPECT_EQ(evict->features.city, "high-city");
  ASSERT_EQ(evict->observations.size(), 1u);
  EXPECT_DOUBLE_EQ(evict->observations[0], 7.0);

  // Both teardown paths feed the connection-duration histogram — eviction
  // used to bypass it.
  const auto& seconds = registry->histogram(
      "cs2p_server_session_seconds", obs::default_duration_buckets_seconds());
  EXPECT_EQ(seconds.count(), 2u);
  server.stop();
}

TEST(SessionCompletion, HookExceptionsAreSwallowedAndCounted) {
  auto registry = std::make_shared<obs::MetricsRegistry>();
  ServerConfig config;
  config.metrics = registry;
  config.on_session_complete = [](CompletedSession&&) {
    throw std::runtime_error("trainer backpressure");
  };

  PredictionServer server(std::make_shared<FlatModel>(), config, 0);
  PredictionClient client(server.port());
  const auto session = client.hello(city_features("low-city"), 12.0);
  (void)client.observe(session.session_id, 3.0);
  client.bye(session.session_id);

  // The connection (and server) survive; the failure is observable.
  const auto session2 = client.hello(city_features("low-city"), 12.0);
  EXPECT_GT(session2.initial_mbps, 0.0);
  EXPECT_EQ(
      registry->counter("cs2p_server_completion_hook_errors_total").value(),
      1u);
  server.stop();
}

}  // namespace
}  // namespace cs2p
