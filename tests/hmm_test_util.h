// Shared helpers for the HMM test suites: small reference models and
// brute-force path enumeration to validate the dynamic-programming
// recursions against first principles.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "hmm/model.h"
#include "util/gaussian.h"
#include "util/rng.h"

namespace cs2p::testing_support {

/// A well-separated 2-state model: sticky chain, distant means.
inline GaussianHmm two_state_model() {
  GaussianHmm model;
  model.initial = {0.6, 0.4};
  model.transition = Matrix{{0.9, 0.1}, {0.2, 0.8}};
  model.states = {{1.0, 0.1}, {5.0, 0.5}};
  return model;
}

/// A 3-state model with asymmetric structure.
inline GaussianHmm three_state_model() {
  GaussianHmm model;
  model.initial = {0.5, 0.3, 0.2};
  model.transition =
      Matrix{{0.8, 0.15, 0.05}, {0.1, 0.85, 0.05}, {0.05, 0.15, 0.8}};
  model.states = {{1.0, 0.2}, {2.5, 0.3}, {6.0, 0.8}};
  return model;
}

/// Brute-force P(obs | model) by enumerating every hidden path.
inline double brute_force_likelihood(const GaussianHmm& model,
                                     std::span<const double> obs) {
  const std::size_t n = model.num_states();
  const std::size_t t_len = obs.size();
  std::vector<std::size_t> path(t_len, 0);
  double total = 0.0;
  while (true) {
    double p = model.initial[path[0]] *
               gaussian_pdf(obs[0], model.states[path[0]].mean,
                            model.states[path[0]].sigma);
    for (std::size_t t = 1; t < t_len && p > 0.0; ++t) {
      p *= model.transition(path[t - 1], path[t]) *
           gaussian_pdf(obs[t], model.states[path[t]].mean,
                        model.states[path[t]].sigma);
    }
    total += p;
    // Advance the path counter.
    std::size_t digit = 0;
    while (digit < t_len && ++path[digit] == n) {
      path[digit] = 0;
      ++digit;
    }
    if (digit == t_len) break;
  }
  return total;
}

/// Samples an observation sequence from a model.
inline std::vector<double> sample_sequence(const GaussianHmm& model,
                                           std::size_t length, Rng& rng) {
  std::vector<double> obs;
  obs.reserve(length);
  std::size_t state = rng.categorical(model.initial);
  for (std::size_t t = 0; t < length; ++t) {
    if (t > 0) {
      Vec row(model.transition.row(state).begin(), model.transition.row(state).end());
      state = rng.categorical(row);
    }
    obs.push_back(rng.gaussian(model.states[state].mean, model.states[state].sigma));
  }
  return obs;
}

}  // namespace cs2p::testing_support
