// Tests for the prediction guardrail layer: observation sanitizer, surprise
// monitor state machine (hysteresis + flap bound), offline baseline, and the
// GuardedSessionPredictor fallback chain.

#include "predictors/guardrail.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "hmm_test_util.h"
#include "predictors/guarded_session.h"
#include "predictors/hmm_session.h"

namespace cs2p {
namespace {

using testing_support::sample_sequence;
using testing_support::two_state_model;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// -- ObservationSanitizer ----------------------------------------------------

TEST(Sanitizer, AcceptsPlausibleSamples) {
  ObservationSanitizer sanitizer(50.0);
  const auto r = sanitizer.sanitize(3.2);
  EXPECT_TRUE(r.accepted());
  EXPECT_EQ(r.verdict, SampleVerdict::kAccepted);
  EXPECT_DOUBLE_EQ(r.value, 3.2);
  EXPECT_EQ(sanitizer.total_rejected(), 0u);
}

TEST(Sanitizer, RejectsNonFiniteNegativeAndZero) {
  ObservationSanitizer sanitizer(50.0);
  EXPECT_EQ(sanitizer.sanitize(kNaN).verdict, SampleVerdict::kRejectedNonFinite);
  EXPECT_EQ(sanitizer.sanitize(kInf).verdict, SampleVerdict::kRejectedNonFinite);
  EXPECT_EQ(sanitizer.sanitize(-kInf).verdict, SampleVerdict::kRejectedNonFinite);
  EXPECT_EQ(sanitizer.sanitize(-1.0).verdict, SampleVerdict::kRejectedNegative);
  EXPECT_EQ(sanitizer.sanitize(0.0).verdict, SampleVerdict::kRejectedZero);
  EXPECT_FALSE(sanitizer.sanitize(kNaN).accepted());
  EXPECT_EQ(sanitizer.rejected_non_finite(), 4u);
  EXPECT_EQ(sanitizer.rejected_negative(), 1u);
  EXPECT_EQ(sanitizer.rejected_zero(), 1u);
  EXPECT_EQ(sanitizer.total_rejected(), 6u);
  EXPECT_EQ(sanitizer.clamped_spikes(), 0u);
}

TEST(Sanitizer, ClampsImplausibleSpikes) {
  ObservationSanitizer sanitizer(50.0);
  const auto r = sanitizer.sanitize(400.0);
  EXPECT_TRUE(r.accepted());
  EXPECT_EQ(r.verdict, SampleVerdict::kClamped);
  EXPECT_DOUBLE_EQ(r.value, 50.0);
  EXPECT_EQ(sanitizer.clamped_spikes(), 1u);
  // Clamped samples are accepted, not rejected.
  EXPECT_EQ(sanitizer.total_rejected(), 0u);
}

TEST(Sanitizer, ZeroCeilingDisablesClamping) {
  ObservationSanitizer sanitizer(0.0);
  const auto r = sanitizer.sanitize(1e9);
  EXPECT_EQ(r.verdict, SampleVerdict::kAccepted);
  EXPECT_DOUBLE_EQ(r.value, 1e9);
}

// -- compute_surprise_baseline -----------------------------------------------

TEST(SurpriseBaselineTest, DeterministicAndSane) {
  const GaussianHmm model = two_state_model();
  GuardrailConfig config;
  const SurpriseBaseline a = compute_surprise_baseline(model, config);
  const SurpriseBaseline b = compute_surprise_baseline(model, config);
  EXPECT_DOUBLE_EQ(a.mean_log_likelihood, b.mean_log_likelihood);
  EXPECT_DOUBLE_EQ(a.std_log_likelihood, b.std_log_likelihood);
  EXPECT_TRUE(std::isfinite(a.mean_log_likelihood));
  EXPECT_GE(a.std_log_likelihood, 0.05);  // floor
}

TEST(SurpriseBaselineTest, InDistributionDataScoresNearBaseline) {
  // Replaying model-sampled data through the filter should produce
  // log-likelihoods whose mean is within a couple of baseline sigmas.
  const GaussianHmm model = two_state_model();
  GuardrailConfig config;
  const SurpriseBaseline baseline = compute_surprise_baseline(model, config);

  Rng rng(99);
  OnlineHmmFilter filter(model);
  double sum = 0.0;
  std::size_t n = 0;
  for (double w : sample_sequence(model, 200, rng)) {
    filter.observe(w);
    if (std::isfinite(filter.last_log_likelihood())) {
      sum += filter.last_log_likelihood();
      ++n;
    }
  }
  ASSERT_GT(n, 150u);
  EXPECT_NEAR(sum / static_cast<double>(n), baseline.mean_log_likelihood,
              2.0 * baseline.std_log_likelihood);
}

// -- SurpriseMonitor ---------------------------------------------------------

GuardrailConfig monitor_config() {
  GuardrailConfig config;
  config.window = 4;
  config.min_observations = 4;
  config.enter_z = 3.0;
  config.exit_z = 1.0;
  config.confirm_observations = 2;
  config.recovery_observations = 3;
  return config;
}

// Unit baseline makes the score arithmetic transparent:
// score = -window_mean * sqrt(n).
SurpriseBaseline unit_baseline() { return SurpriseBaseline{0.0, 1.0}; }

TEST(Monitor, StaysHealthyOnBaselineData) {
  SurpriseMonitor monitor(unit_baseline(), monitor_config());
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(monitor.record(0.0), GuardrailState::kHealthy);
  EXPECT_EQ(monitor.trips(), 0u);
  EXPECT_NEAR(monitor.score(), 0.0, 1e-12);
}

TEST(Monitor, NoVerdictBeforeMinObservations) {
  SurpriseMonitor monitor(unit_baseline(), monitor_config());
  // Three wildly surprising observations — still below min_observations.
  EXPECT_EQ(monitor.record(-100.0), GuardrailState::kHealthy);
  EXPECT_EQ(monitor.record(-100.0), GuardrailState::kHealthy);
  EXPECT_EQ(monitor.record(-100.0), GuardrailState::kHealthy);
  EXPECT_DOUBLE_EQ(monitor.score(), 0.0);
}

TEST(Monitor, TripsThroughSuspectAfterConfirmStreak) {
  SurpriseMonitor monitor(unit_baseline(), monitor_config());
  for (int i = 0; i < 4; ++i) monitor.record(0.0);
  ASSERT_EQ(monitor.state(), GuardrailState::kHealthy);
  // window [0,0,0,-10]: mean -2.5, score 5 >= enter_z -> SUSPECT (streak 1).
  EXPECT_EQ(monitor.record(-10.0), GuardrailState::kSuspect);
  // streak 2 >= confirm_observations -> DEGRADED.
  EXPECT_EQ(monitor.record(-10.0), GuardrailState::kDegraded);
  EXPECT_EQ(monitor.trips(), 1u);
  EXPECT_EQ(monitor.recoveries(), 0u);
}

TEST(Monitor, SuspectFallsBackToHealthyWhenAlarmBreaks) {
  SurpriseMonitor monitor(unit_baseline(), monitor_config());
  for (int i = 0; i < 4; ++i) monitor.record(0.0);
  EXPECT_EQ(monitor.record(-10.0), GuardrailState::kSuspect);
  // A calm observation interrupts the confirmation streak: window
  // [0,0,-10,8] has mean -0.5, score 1.0 <= exit_z.
  EXPECT_EQ(monitor.record(8.0), GuardrailState::kHealthy);
  EXPECT_EQ(monitor.trips(), 0u);
}

TEST(Monitor, RecoversOnlyAfterRecoveryStreak) {
  SurpriseMonitor monitor(unit_baseline(), monitor_config());
  for (int i = 0; i < 4; ++i) monitor.record(0.0);
  monitor.record(-10.0);
  ASSERT_EQ(monitor.record(-10.0), GuardrailState::kDegraded);
  // Feed calm data; the window drains the -10s first (scores stay alarmed),
  // then needs recovery_observations consecutive calm scores.
  int steps_to_recover = 0;
  while (monitor.state() == GuardrailState::kDegraded && steps_to_recover < 50) {
    monitor.record(0.0);
    ++steps_to_recover;
  }
  EXPECT_EQ(monitor.state(), GuardrailState::kHealthy);
  EXPECT_EQ(monitor.recoveries(), 1u);
  // At least window drain (2 slots) + recovery streak (3), and no instant
  // flap-back.
  EXPECT_GE(steps_to_recover, 4);
}

TEST(Monitor, HysteresisBandHoldsState) {
  // Scores inside (exit_z, enter_z) must not move the machine in either
  // direction — this is the anti-flap property.
  SurpriseMonitor healthy(unit_baseline(), monitor_config());
  for (int i = 0; i < 4; ++i) healthy.record(0.0);
  // Constant ll = -1: window mean -1, score 2 — inside the (1, 3) band.
  for (int i = 0; i < 100; ++i) healthy.record(-1.0);
  EXPECT_EQ(healthy.state(), GuardrailState::kHealthy);
  EXPECT_EQ(healthy.trips(), 0u);

  SurpriseMonitor degraded(unit_baseline(), monitor_config());
  for (int i = 0; i < 4; ++i) degraded.record(0.0);
  degraded.record(-10.0);
  ASSERT_EQ(degraded.record(-10.0), GuardrailState::kDegraded);
  for (int i = 0; i < 100; ++i) degraded.record(-1.0);
  EXPECT_EQ(degraded.state(), GuardrailState::kDegraded);
  EXPECT_EQ(degraded.recoveries(), 0u);
}

TEST(Monitor, FlapCountBoundedByRegimeShifts) {
  // 6 true regime cycles -> exactly 6 trips and <= 6 recoveries, regardless
  // of the 40 observations inside each phase. A flapping monitor would trip
  // many times per bad phase.
  SurpriseMonitor monitor(unit_baseline(), monitor_config());
  const int kCycles = 6;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (int i = 0; i < 40; ++i) monitor.record(-10.0);
    for (int i = 0; i < 40; ++i) monitor.record(0.0);
  }
  EXPECT_EQ(monitor.trips(), static_cast<std::size_t>(kCycles));
  EXPECT_LE(monitor.recoveries(), static_cast<std::size_t>(kCycles));
  EXPECT_GE(monitor.recoveries(), static_cast<std::size_t>(kCycles - 1));
}

TEST(Monitor, SingleOutlierDoesNotTrip) {
  // One catastrophic sample inside healthy traffic: with the default knobs
  // (window 8, enter_z 6, penalty 12 sigmas) the window mean moves to -1.5,
  // score ~4.2 — inside the hysteresis band, so no alarm ever starts.
  SurpriseMonitor monitor(unit_baseline(), GuardrailConfig{});
  for (int i = 0; i < 10; ++i) monitor.record(0.0);
  monitor.record(-std::numeric_limits<double>::infinity());
  for (int i = 0; i < 10; ++i) monitor.record(0.0);
  EXPECT_EQ(monitor.trips(), 0u);
  EXPECT_EQ(monitor.state(), GuardrailState::kHealthy);
  EXPECT_EQ(monitor.degenerate_observations(), 1u);
}

TEST(Monitor, DegenerateObservationsKeepScoreFinite) {
  SurpriseMonitor monitor(unit_baseline(), monitor_config());
  for (int i = 0; i < 8; ++i)
    monitor.record(-std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isfinite(monitor.score()));
  EXPECT_EQ(monitor.state(), GuardrailState::kDegraded);
  EXPECT_EQ(monitor.degenerate_observations(), 8u);
}

TEST(Monitor, StateNames) {
  EXPECT_EQ(guardrail_state_name(GuardrailState::kHealthy), "HEALTHY");
  EXPECT_EQ(guardrail_state_name(GuardrailState::kSuspect), "SUSPECT");
  EXPECT_EQ(guardrail_state_name(GuardrailState::kDegraded), "DEGRADED");
}

// -- GuardedSessionPredictor -------------------------------------------------

GuardrailConfig guarded_config() {
  GuardrailConfig config;
  config.enabled = true;
  config.window = 4;
  config.min_observations = 4;
  config.enter_z = 6.0;
  config.exit_z = 2.0;
  config.confirm_observations = 2;
  config.recovery_observations = 4;
  config.fallback_window = 4;
  return config;
}

TEST(GuardedSession, MatchesUnguardedHmmInDistribution) {
  // On data drawn from the model itself, the guardrail must be invisible:
  // identical predictions, no degradation.
  const GaussianHmm model = two_state_model();
  const GuardrailConfig config = guarded_config();
  const SurpriseBaseline baseline = compute_surprise_baseline(model, config);

  GuardedSessionPredictor guarded(model, 2.0, 1.5, baseline, config);
  HmmSessionPredictor plain(model, 2.0);

  EXPECT_EQ(guarded.predict_initial(), plain.predict_initial());
  Rng rng(7);
  for (double w : sample_sequence(model, 120, rng)) {
    guarded.observe(w);
    plain.observe(w);
    ASSERT_DOUBLE_EQ(guarded.predict(1), plain.predict(1));
  }
  EXPECT_FALSE(guarded.degraded());
  EXPECT_EQ(guarded.stats().trips, 0u);
  EXPECT_EQ(guarded.serve_flags(), serve_flags::kPrimary);
}

TEST(GuardedSession, TripsOnRegimeShiftAndServesFallback) {
  const GaussianHmm model = two_state_model();  // states at 1.0 and 5.0
  const GuardrailConfig config = guarded_config();
  const SurpriseBaseline baseline = compute_surprise_baseline(model, config);
  GuardedSessionPredictor guarded(model, 2.0, 1.5, baseline, config);

  Rng rng(11);
  for (double w : sample_sequence(model, 40, rng)) guarded.observe(w);
  ASSERT_FALSE(guarded.degraded());

  // Regime shift: throughput collapses to ~0.2 Mbps, 8 sigmas below the
  // nearest state. The guardrail must trip and serve the harmonic mean of
  // the recent (post-shift) samples instead of a state mean.
  for (int i = 0; i < 12; ++i) guarded.observe(0.2);
  EXPECT_TRUE(guarded.degraded());
  EXPECT_GE(guarded.stats().trips, 1u);
  EXPECT_NEAR(guarded.predict(1), 0.2, 0.05);
  EXPECT_GT(guarded.stats().fallback_predictions, 0u);
  EXPECT_TRUE(guarded.serve_flags() & serve_flags::kDegraded);
  EXPECT_TRUE(guarded.serve_flags() & serve_flags::kGuardrailTripped);
}

TEST(GuardedSession, RecoversWithHysteresis) {
  const GaussianHmm model = two_state_model();
  const GuardrailConfig config = guarded_config();
  const SurpriseBaseline baseline = compute_surprise_baseline(model, config);
  GuardedSessionPredictor guarded(model, 2.0, 1.5, baseline, config);

  Rng rng(13);
  for (double w : sample_sequence(model, 30, rng)) guarded.observe(w);
  for (int i = 0; i < 12; ++i) guarded.observe(0.2);
  ASSERT_TRUE(guarded.degraded());

  // Back in distribution: the filter keeps updating while degraded, so the
  // monitor can observe the return to normal and recover.
  for (double w : sample_sequence(model, 60, rng)) guarded.observe(w);
  EXPECT_FALSE(guarded.degraded());
  EXPECT_GE(guarded.stats().recoveries, 1u);
  EXPECT_EQ(guarded.serve_flags(), serve_flags::kPrimary);
}

TEST(GuardedSession, PoisonedSamplesNeverReachTheFilter) {
  const GaussianHmm model = two_state_model();
  const GuardrailConfig config = guarded_config();
  const SurpriseBaseline baseline = compute_surprise_baseline(model, config);
  GuardedSessionPredictor guarded(model, 2.0, 1.5, baseline, config);

  guarded.observe(1.0);
  const std::size_t before = guarded.filter().observations();
  guarded.observe(kNaN);
  guarded.observe(kInf);
  guarded.observe(-3.0);
  guarded.observe(0.0);
  EXPECT_EQ(guarded.filter().observations(), before);
  EXPECT_EQ(guarded.stats().rejected_samples, 4u);
  EXPECT_FALSE(guarded.degraded());
  EXPECT_TRUE(std::isfinite(guarded.predict(1)));
}

TEST(GuardedSession, SpikesAreClampedNotBelieved) {
  const GaussianHmm model = two_state_model();  // max mean 5.0 -> ceiling 50
  const GuardrailConfig config = guarded_config();
  const SurpriseBaseline baseline = compute_surprise_baseline(model, config);
  GuardedSessionPredictor guarded(model, 2.0, 1.5, baseline, config);

  guarded.observe(1.0);
  guarded.observe(1e7);
  EXPECT_EQ(guarded.stats().clamped_samples, 1u);
  EXPECT_TRUE(std::isfinite(guarded.predict(1)));
}

TEST(GuardedSession, NoNanPredictionsUnderAdversarialInput) {
  // Satellite acceptance: far-out observations must never produce NaN
  // beliefs or predictions, guardrail on or off.
  const GaussianHmm model = two_state_model();
  const GuardrailConfig config = guarded_config();
  const SurpriseBaseline baseline = compute_surprise_baseline(model, config);
  GuardedSessionPredictor guarded(model, 2.0, 1.5, baseline, config);
  OnlineHmmFilter unguarded(model);

  const double hostile[] = {1.0, kNaN,  1e12, -5.0, kInf, 0.2,
                            0.0, 1e-9, 5.0,  -kInf, 0.3,  1e7};
  for (double w : hostile) {
    guarded.observe(w);
    ASSERT_TRUE(std::isfinite(guarded.predict(1)));
    if (std::isfinite(w) && w > 0.0) {
      unguarded.observe(w);
      ASSERT_TRUE(std::isfinite(unguarded.predict(1)));
      for (double p : unguarded.belief()) ASSERT_TRUE(std::isfinite(p));
    }
  }
  for (double p : guarded.filter().belief()) EXPECT_TRUE(std::isfinite(p));
}

TEST(GuardedSession, FallbackChainEndsAtGlobalThenInitial) {
  const GaussianHmm model = two_state_model();
  GuardrailConfig config = guarded_config();
  config.min_observations = 1;
  config.confirm_observations = 1;
  const SurpriseBaseline baseline = compute_surprise_baseline(model, config);

  // No accepted samples yet and degraded is impossible; but predict() with
  // zero observations returns the initial value.
  GuardedSessionPredictor fresh(model, 2.25, 1.5, baseline, config);
  EXPECT_DOUBLE_EQ(fresh.predict(1), 2.25);
  EXPECT_EQ(fresh.predict_initial(), std::optional<double>(2.25));
}

TEST(GuardedSession, EventCallbackLifecycle) {
  const GaussianHmm model = two_state_model();
  const GuardrailConfig config = guarded_config();
  const SurpriseBaseline baseline = compute_surprise_baseline(model, config);

  std::vector<GuardrailEvent> events;
  {
    GuardedSessionPredictor guarded(
        model, 2.0, 1.5, baseline, config, PredictionRule::kMleState,
        serve_flags::kPrimary,
        [&](GuardrailEvent event, bool) { events.push_back(event); });
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0], GuardrailEvent::kOpened);

    Rng rng(17);
    for (double w : sample_sequence(model, 30, rng)) guarded.observe(w);
    for (int i = 0; i < 12; ++i) guarded.observe(0.2);
    ASSERT_TRUE(guarded.degraded());
    ASSERT_GE(events.size(), 2u);
    EXPECT_EQ(events[1], GuardrailEvent::kTripped);

    for (double w : sample_sequence(model, 60, rng)) guarded.observe(w);
    ASSERT_FALSE(guarded.degraded());
    ASSERT_GE(events.size(), 3u);
    EXPECT_EQ(events[2], GuardrailEvent::kRecovered);
  }
  EXPECT_EQ(events.back(), GuardrailEvent::kClosed);
}

TEST(GuardedSession, StaticFlagsAreCarried) {
  const GaussianHmm model = two_state_model();
  const GuardrailConfig config = guarded_config();
  const SurpriseBaseline baseline = compute_surprise_baseline(model, config);
  GuardedSessionPredictor guarded(
      model, 2.0, 1.5, baseline, config, PredictionRule::kMleState,
      static_cast<std::uint8_t>(serve_flags::kGlobalModel |
                                serve_flags::kClusterDrifted));
  EXPECT_TRUE(guarded.serve_flags() & serve_flags::kGlobalModel);
  EXPECT_TRUE(guarded.serve_flags() & serve_flags::kClusterDrifted);
  EXPECT_FALSE(guarded.serve_flags() & serve_flags::kDegraded);
}

}  // namespace
}  // namespace cs2p
