// Tests for cross-validated HMM state-count selection.

#include "hmm/model_selection.h"

#include <gtest/gtest.h>

#include "hmm/online_filter.h"
#include "hmm_test_util.h"

namespace cs2p {
namespace {

using testing_support::sample_sequence;
using testing_support::two_state_model;

TEST(ModelSelection, OneStepErrorZeroForPerfectlyPredictableData) {
  // A 1-state model over a constant series predicts exactly.
  GaussianHmm model;
  model.initial = {1.0};
  model.transition = Matrix{{1.0}};
  model.states = {{2.0, 0.1}};
  const std::vector<std::vector<double>> sequences = {{2.0, 2.0, 2.0, 2.0}};
  EXPECT_DOUBLE_EQ(one_step_cv_error(model, sequences), 0.0);
}

TEST(ModelSelection, OneStepErrorSkipsShortSequences) {
  GaussianHmm model;
  model.initial = {1.0};
  model.transition = Matrix{{1.0}};
  model.states = {{2.0, 0.1}};
  EXPECT_DOUBLE_EQ(one_step_cv_error(model, {{1.0}, {}}), 0.0);
}

TEST(ModelSelection, PrefersEnoughStatesOverTooFew) {
  // Data from a 2-state model with far-apart means: a 1-state model must be
  // clearly worse than 2+ states under CV error.
  const GaussianHmm truth = two_state_model();
  Rng rng(21);
  std::vector<std::vector<double>> sequences;
  for (int s = 0; s < 16; ++s) sequences.push_back(sample_sequence(truth, 60, rng));

  BaumWelchConfig base;
  base.max_iterations = 40;
  const auto result = select_state_count(sequences, {1, 2, 3}, 4, base);
  ASSERT_EQ(result.scores.size(), 3u);
  EXPECT_GE(result.best_num_states, 2u);
  // The 1-state score must be clearly the worst.
  EXPECT_GT(result.scores[0].cv_error, result.scores[1].cv_error);
}

TEST(ModelSelection, ScoresReportedPerCandidate) {
  const GaussianHmm truth = two_state_model();
  Rng rng(23);
  std::vector<std::vector<double>> sequences;
  for (int s = 0; s < 8; ++s) sequences.push_back(sample_sequence(truth, 40, rng));
  BaumWelchConfig base;
  const auto result = select_state_count(sequences, {2, 4}, 2, base);
  ASSERT_EQ(result.scores.size(), 2u);
  EXPECT_EQ(result.scores[0].num_states, 2u);
  EXPECT_EQ(result.scores[1].num_states, 4u);
  for (const auto& score : result.scores) EXPECT_GE(score.cv_error, 0.0);
}

TEST(ModelSelection, ErrorPaths) {
  BaumWelchConfig base;
  EXPECT_THROW(select_state_count({}, {2}, 2, base), std::invalid_argument);
  EXPECT_THROW(select_state_count({{1.0, 2.0}}, {}, 2, base), std::invalid_argument);
  EXPECT_THROW(select_state_count({{1.0, 2.0}}, {2}, 1, base), std::invalid_argument);
}

}  // namespace
}  // namespace cs2p
