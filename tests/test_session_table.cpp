// SessionTable: sharded session state of the serving core (net/session_table.h).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "net/session_table.h"
#include "obs/metrics.h"

namespace cs2p {
namespace {

using Clock = SessionTable::Clock;

SessionTable::Entry bare_entry(Clock::time_point last_used, bool traced = false) {
  SessionTable::Entry entry;
  entry.last_used = last_used;
  entry.traced = traced;
  return entry;
}

TEST(SessionTable, EmplaceWithSessionErase) {
  SessionTable table({.shards = 4, .ttl_ms = 0});
  const auto now = Clock::now();

  const std::uint64_t id = table.emplace([&](std::uint64_t) {
    return bare_entry(now, /*traced=*/true);
  });
  EXPECT_GE(id, 1u);
  EXPECT_EQ(table.size(), 1u);

  bool saw = false;
  EXPECT_TRUE(table.with_session(id, [&](SessionTable::Entry& entry) {
    saw = entry.traced;
    entry.last_used = now;
  }));
  EXPECT_TRUE(saw);
  EXPECT_FALSE(table.with_session(id + 999, [](SessionTable::Entry&) {}));

  bool traced = false;
  EXPECT_TRUE(table.erase(id, &traced));
  EXPECT_TRUE(traced);
  EXPECT_FALSE(table.erase(id));
  EXPECT_EQ(table.size(), 0u);
}

TEST(SessionTable, IdsAreUniqueAcrossThreads) {
  SessionTable table({.shards = 8, .ttl_ms = 0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::vector<std::uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i)
        ids[t].push_back(table.emplace(
            [](std::uint64_t) { return bare_entry(Clock::now()); }));
    });
  }
  for (auto& t : threads) t.join();

  std::set<std::uint64_t> unique;
  for (const auto& batch : ids) unique.insert(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(table.size(), unique.size());
  EXPECT_GE(*unique.begin(), 1u);
}

TEST(SessionTable, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SessionTable({.shards = 1}).shard_count(), 1u);
  EXPECT_EQ(SessionTable({.shards = 3}).shard_count(), 4u);
  EXPECT_EQ(SessionTable({.shards = 16}).shard_count(), 16u);
  EXPECT_EQ(SessionTable({.shards = 0}).shard_count(), 16u);  // 0 = default
}

// The satellite guarantee: with 10k expired sessions in the table, no single
// eviction lock hold scans anywhere near the whole table — each hold is
// bounded by evict_scan_budget (plus at most one hash-bucket chain, since a
// hold finishes the bucket it started), while repeated ticks still drain
// every expired entry.
TEST(SessionTable, EvictionIsIncrementalOverTenThousandExpired) {
  constexpr std::size_t kSessions = 10'000;
  constexpr std::size_t kBudget = 64;
  SessionTable table({.shards = 8, .ttl_ms = 1'000, .evict_scan_budget = kBudget});

  const auto now = Clock::now();
  const auto stale = now - std::chrono::seconds(10);
  for (std::size_t i = 0; i < kSessions; ++i)
    table.emplace([&](std::uint64_t) { return bare_entry(stale); });
  ASSERT_EQ(table.size(), kSessions);

  std::atomic<std::size_t> callback_count{0};
  std::size_t ticks = 0;
  std::size_t total_scanned = 0;
  while (table.size() > 0) {
    const auto stats = table.evict_tick(
        now, [&](std::uint64_t, const SessionTable::Entry&) { ++callback_count; });
    total_scanned += stats.scanned;
    ASSERT_LT(++ticks, 10'000u) << "eviction failed to make progress";
  }

  EXPECT_EQ(callback_count.load(), kSessions);
  EXPECT_GE(total_scanned, kSessions);
  // Amortization held: the worst lock hold examined ~budget entries, not 10k.
  EXPECT_LE(table.max_scanned_in_one_hold(), 2 * kBudget);
  // And it genuinely took many small steps, not one big sweep.
  EXPECT_GT(ticks, kSessions / (kBudget * table.shard_count()) / 2);
}

TEST(SessionTable, RecentlyTouchedEntriesSurviveEviction) {
  SessionTable table({.shards = 2, .ttl_ms = 1'000, .evict_scan_budget = 64});
  const auto now = Clock::now();
  const auto stale = now - std::chrono::seconds(5);

  const std::uint64_t fresh = table.emplace(
      [&](std::uint64_t) { return bare_entry(now); });
  const std::uint64_t expired = table.emplace(
      [&](std::uint64_t) { return bare_entry(stale); });
  const std::uint64_t refreshed = table.emplace(
      [&](std::uint64_t) { return bare_entry(stale); });
  table.with_session(refreshed,
                     [&](SessionTable::Entry& e) { e.last_used = now; });

  for (int i = 0; i < 64 && table.size() > 2; ++i) table.evict_tick(now);

  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.with_session(fresh, [](SessionTable::Entry&) {}));
  EXPECT_TRUE(table.with_session(refreshed, [](SessionTable::Entry&) {}));
  EXPECT_FALSE(table.with_session(expired, [](SessionTable::Entry&) {}));
}

// Arena lifetime rules (DESIGN.md §16): TTL eviction returns slots to the
// shard freelists, a same-size refill reuses them without growing the arena,
// and a reused slot carries nothing of its previous occupant — the entry is
// reset at release time, so stale predictor beliefs cannot leak into a new
// session that happens to land on the same slot.
TEST(SessionTable, ArenaSlotsReusedAfterEvictWithoutStaleState) {
  constexpr std::size_t kSessions = 500;
  // One shard: freelists are per-shard, so with a single shard a same-size
  // refill must reuse exactly the evicted generation's slots.
  SessionTable table({.shards = 1, .ttl_ms = 1'000, .evict_scan_budget = 64});
  const auto now = Clock::now();
  const auto stale = now - std::chrono::seconds(10);

  for (std::size_t i = 0; i < kSessions; ++i)
    table.emplace([&](std::uint64_t) {
      auto entry = bare_entry(stale, /*traced=*/true);
      entry.start_hour = 13.0;
      entry.observations = {1.0, 2.0, 3.0};
      return entry;
    });
  const std::size_t high_water = table.arena_slots();
  EXPECT_GE(high_water, kSessions);

  std::size_t ticks = 0;
  while (table.size() > 0) {
    table.evict_tick(now);
    ASSERT_LT(++ticks, 10'000u);
  }
  // Eviction freed the slots but not the arena: capacity is retained.
  EXPECT_EQ(table.arena_slots(), high_water);

  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < kSessions; ++i)
    ids.push_back(table.emplace([&](std::uint64_t) {
      return bare_entry(now);  // untraced, no history
    }));
  // Every new session landed on a recycled slot — zero arena growth.
  EXPECT_EQ(table.arena_slots(), high_water);
  // And none of them inherited the evicted generation's state.
  for (const std::uint64_t id : ids) {
    ASSERT_TRUE(table.with_session(id, [&](SessionTable::Entry& entry) {
      EXPECT_FALSE(entry.traced);
      EXPECT_EQ(entry.start_hour, 0.0);
      EXPECT_TRUE(entry.observations.empty());
      EXPECT_EQ(entry.predictor, nullptr);
      EXPECT_EQ(entry.owner, nullptr);
    }));
  }
}

// with_sessions: the batch path's multi-session lookup locks each involved
// shard once, hands back entries in id order, and reports misses as null.
TEST(SessionTable, WithSessionsResolvesHitsAndMissesInOrder) {
  SessionTable table({.shards = 4, .ttl_ms = 0});
  const auto now = Clock::now();
  const std::uint64_t a =
      table.emplace([&](std::uint64_t) { return bare_entry(now, true); });
  const std::uint64_t b =
      table.emplace([&](std::uint64_t) { return bare_entry(now, false); });
  const std::uint64_t gone =
      table.emplace([&](std::uint64_t) { return bare_entry(now); });
  ASSERT_TRUE(table.erase(gone));

  const std::uint64_t ids[] = {b, gone, a};
  bool ran = false;
  table.with_sessions(ids, [&](std::span<SessionTable::Entry* const> entries) {
    ran = true;
    ASSERT_EQ(entries.size(), 3u);
    ASSERT_NE(entries[0], nullptr);
    EXPECT_FALSE(entries[0]->traced);
    EXPECT_EQ(entries[1], nullptr);
    ASSERT_NE(entries[2], nullptr);
    EXPECT_TRUE(entries[2]->traced);
    entries[0]->last_used = now;  // writable under the shard locks
  });
  EXPECT_TRUE(ran);
}

TEST(SessionTable, TtlDisabledNeverEvicts) {
  SessionTable table({.shards = 2, .ttl_ms = 0});
  const auto stale = Clock::now() - std::chrono::hours(24);
  for (int i = 0; i < 100; ++i)
    table.emplace([&](std::uint64_t) { return bare_entry(stale); });
  const auto stats = table.evict_tick(Clock::now());
  EXPECT_EQ(stats.scanned, 0u);
  EXPECT_EQ(stats.evicted, 0u);
  EXPECT_EQ(table.size(), 100u);
}

TEST(SessionTable, RegistersPerShardContentionCounters) {
  obs::MetricsRegistry registry;
  SessionTable table({.shards = 4, .ttl_ms = 0}, &registry);
  EXPECT_EQ(registry.series_count(), 4u);
  const std::string scrape = registry.scrape();
  EXPECT_NE(scrape.find("cs2p_server_session_shard_contention_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(scrape.find("cs2p_server_session_shard_contention_total{shard=\"3\"}"),
            std::string::npos);
}

// Hammer one table from several threads (emplace + touch + erase + evict) so
// TSan gets a fair shot at the shard locking.
TEST(SessionTable, SurvivesConcurrentMutationAndEviction) {
  SessionTable table({.shards = 4, .ttl_ms = 50, .evict_scan_budget = 32});
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> touched{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      std::vector<std::uint64_t> mine;
      for (int i = 0; i < 300; ++i) {
        mine.push_back(table.emplace(
            [](std::uint64_t) { return bare_entry(Clock::now()); }));
        for (const std::uint64_t id : mine)
          if (table.with_session(id, [&](SessionTable::Entry& e) {
                e.last_used = Clock::now();
              }))
            touched.fetch_add(1, std::memory_order_relaxed);
        if (mine.size() > 8) {
          table.erase(mine.front());
          mine.erase(mine.begin());
        }
      }
      for (const std::uint64_t id : mine) table.erase(id);
    });
  }
  std::thread evictor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      table.evict_tick(Clock::now());
      std::this_thread::yield();
    }
  });
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  evictor.join();

  EXPECT_GT(touched.load(), 0u);
  // Whatever survived the churn is eventually evictable.
  const auto later = Clock::now() + std::chrono::seconds(1);
  for (int i = 0; i < 1'000 && table.size() > 0; ++i) table.evict_tick(later);
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace cs2p
